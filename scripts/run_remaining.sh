#!/usr/bin/env bash
# Continuation runner: finishes the bench suite from fig08 onward at the
# scale given in CABA_SCALE (the big fig07 sweep runs at full scale).
set -u
BUILD=${1:-build}
OUT=bench_results
mkdir -p "$OUT"
for name in fig08_bw_utilization fig09_energy fig10_algorithms \
            fig11_compression_ratio fig12_bw_sensitivity \
            fig13_cache_compression md_cache_study; do
    b="$BUILD/bench/$name"
    [ -x "$b" ] || continue
    echo "=== $name ==="
    "$b" 2>/dev/null | tee "$OUT/$name.txt"
    echo
done
