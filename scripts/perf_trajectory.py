#!/usr/bin/env python3
"""Measure fig07 wall-clock and emit a caba-perf-v1 BENCH document.

Runs one experiment (default fig07_performance) through the unified
caba_bench CLI N times (serially, CABA_JOBS=1), times each rep, and
writes a stable machine-readable perf document:

    {
      "schema": "caba-perf-v1",
      "bench": "fig07_performance",
      "commit": "<git sha or 'unknown'>",
      "host": {"machine": ..., "cpus": ...},
      "scale": 0.25,
      "reps": 2,
      "wall_seconds": [ ... one entry per rep ... ],
      "wall_seconds_best": 90.4,
      "cells": 100,
      "cells_per_second": 1.11,
      "design_wall_seconds": {"Base": ..., ...},   # from the best rep
      "rows": [{"app": ..., "design": ..., "cycles": ...,
                "instructions": ...}, ...]
    }

Timing lives ONLY in this document — the bench's own caba-bench-v1
JSON stays byte-deterministic (the CI determinism jobs cmp it), and
this script verifies that determinism across its own reps.

Per-design wall-clock is attributed by timestamping the sweep's
progress records ("[sweep] k/N APP x DESIGN", emitted when a cell
finishes) on the bench's stderr; with CABA_JOBS=1 the cells run
serially, so inter-record deltas are per-cell wall time.
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time

PROGRESS_RE = re.compile(r"\[sweep\]\s*\d+/\d+\s+(\S+)\s+x\s+(\S+)")


def run_rep(bench, experiment, scale, json_path):
    """One timed bench run; returns (wall_seconds, per_design_wall)."""
    env = dict(os.environ)
    env["CABA_SCALE"] = repr(scale)
    env["CABA_JOBS"] = "1"  # serial: progress deltas == per-cell wall
    # A warm cell cache would skip the simulation being timed.
    env.pop("CABA_CACHE_DIR", None)
    start = time.monotonic()
    proc = subprocess.Popen(
        [bench, experiment, "--json=" + json_path],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=env,
    )
    design_wall = {}
    prev = start
    buf = b""
    # Progress records are \r-terminated; read the raw byte stream and
    # timestamp each complete record on arrival.
    while True:
        chunk = proc.stderr.read(64)
        if not chunk:
            break
        buf += chunk
        while True:
            cut = min(
                (i for i in (buf.find(b"\r"), buf.find(b"\n")) if i >= 0),
                default=-1,
            )
            if cut < 0:
                break
            record, buf = buf[:cut], buf[cut + 1 :]
            now = time.monotonic()
            m = PROGRESS_RE.search(record.decode("utf-8", "replace"))
            if m:
                design = m.group(2)
                design_wall[design] = design_wall.get(design, 0.0) + (
                    now - prev
                )
                prev = now
    rc = proc.wait()
    wall = time.monotonic() - start
    if rc != 0:
        sys.exit(f"error: bench exited with status {rc}")
    return wall, design_wall


def run_profiled_rep(bench, experiment, scale, json_path, prof_path):
    """One extra rep with CABA_PROF attached (not counted in wall time).

    Returns the per-(component, phase) attribution from the bench's
    caba-prof-v1 document. The rep doubles as an end-to-end determinism
    check: the caller compares its bench JSON against the timed reps'.
    """
    env = dict(os.environ)
    env["CABA_SCALE"] = repr(scale)
    env["CABA_JOBS"] = "1"
    env["CABA_PROF"] = prof_path
    env.pop("CABA_CACHE_DIR", None)
    subprocess.run(
        [bench, experiment, "--json=" + json_path],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
        check=True,
    )
    with open(prof_path) as f:
        prof_doc = json.load(f)
    if prof_doc.get("schema") != "caba-prof-v1":
        sys.exit("error: unexpected profile JSON schema")
    return {
        f"{e['component']}/{e['phase']}": e["ns"]
        for e in prof_doc["entries"]
        if e["calls"] > 0
    }


def result_rows(bench_doc):
    """Compact per-cell digest: enough to prove identical simulation."""
    rows = []
    for cell in bench_doc["cells"]:
        r = cell["result"]
        rows.append(
            {
                "app": cell["app"],
                "design": cell["design"],
                "cycles": r["cycles"],
                "instructions": r["instructions"],
            }
        )
    rows.sort(key=lambda r: (r["app"], r["design"]))
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the caba_bench binary")
    ap.add_argument("--experiment", default="fig07_performance",
                    help="experiment to time (see caba_bench --list)")
    ap.add_argument("--out", required=True,
                    help="output path for the caba-perf-v1 document")
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument("--reps", type=int, default=2)
    ap.add_argument("--commit", default=None,
                    help="commit sha to record (default: git rev-parse)")
    ap.add_argument("--note", default=None,
                    help="free-form annotation recorded in the document")
    ap.add_argument("--profile", action="store_true",
                    help="add one untimed CABA_PROF rep and record the "
                         "per-component wall-clock attribution (written "
                         "to <out>.prof.json and embedded under "
                         "'profile', a key bench_compare ignores)")
    args = ap.parse_args()

    commit = args.commit
    if commit is None:
        try:
            commit = subprocess.check_output(
                ["git", "rev-parse", "HEAD"], text=True
            ).strip()
        except (OSError, subprocess.CalledProcessError):
            commit = "unknown"

    walls = []
    best_design_wall = None
    first_bench_json = None
    for rep in range(args.reps):
        json_path = f"{args.out}.rep{rep}.bench.json"
        wall, design_wall = run_rep(args.bench, args.experiment, args.scale,
                                    json_path)
        print(f"rep {rep}: {wall:.3f}s", file=sys.stderr)
        with open(json_path, "rb") as f:
            bench_bytes = f.read()
        if first_bench_json is None:
            first_bench_json = bench_bytes
        elif bench_bytes != first_bench_json:
            sys.exit("error: bench JSON differs between reps "
                     "(simulator output is not deterministic)")
        if not walls or wall < min(walls):
            best_design_wall = design_wall
        walls.append(wall)
        os.remove(json_path)

    profile_attr = None
    if args.profile:
        json_path = f"{args.out}.prof_rep.bench.json"
        prof_path = f"{args.out}.prof.json"
        profile_attr = run_profiled_rep(
            args.bench, args.experiment, args.scale, json_path, prof_path
        )
        with open(json_path, "rb") as f:
            if f.read() != first_bench_json:
                sys.exit("error: bench JSON differs with CABA_PROF set "
                         "(the profiler perturbed the simulation)")
        os.remove(json_path)
        print(f"profiled rep: attribution in {prof_path}", file=sys.stderr)

    bench_doc = json.loads(first_bench_json)
    if bench_doc.get("schema") != "caba-bench-v1":
        sys.exit("error: unexpected bench JSON schema")
    rows = result_rows(bench_doc)

    best = min(walls)
    doc = {
        "schema": "caba-perf-v1",
        "bench": bench_doc["bench"],
        "commit": commit,
        "host": {
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 0,
        },
        "scale": args.scale,
        "reps": args.reps,
        "wall_seconds": [round(w, 3) for w in walls],
        "wall_seconds_best": round(best, 3),
        "cells": len(bench_doc["cells"]),
        "cells_per_second": round(len(bench_doc["cells"]) / best, 4),
        "design_wall_seconds": {
            d: round(w, 3) for d, w in sorted(best_design_wall.items())
        },
        "rows": rows,
    }
    if args.note:
        doc["note"] = args.note
    if profile_attr is not None:
        doc["profile"] = {
            "source": os.path.basename(f"{args.out}.prof.json"),
            "attributed_ns": profile_attr,
        }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=False)
        f.write("\n")
    print(f"wrote {args.out}: best {best:.3f}s over {args.reps} reps, "
          f"{doc['cells_per_second']} cells/s", file=sys.stderr)


if __name__ == "__main__":
    main()
