#!/usr/bin/env bash
# Regenerates every paper figure/table, saving one log per bench binary
# into bench_results/ and a combined bench_output.txt at the repo root.
#
# Usage: scripts/run_all_benches.sh [build-dir]
set -u
BUILD=${1:-build}
OUT=bench_results
mkdir -p "$OUT"
: > bench_output.txt
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "=== $name ===" | tee -a bench_output.txt
    "$b" 2>/dev/null | tee "$OUT/$name.txt" | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
echo "All bench logs in $OUT/, combined log in bench_output.txt"
