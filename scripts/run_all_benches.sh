#!/usr/bin/env bash
# Regenerates every paper figure/table through the unified caba_bench
# CLI. One process runs all experiments, so cells shared between them
# (Figures 7/8/9 sweep the same grid) simulate once via the in-process
# cell cache; set CABA_CACHE_DIR to also persist cells across runs.
#
# Saves one log per experiment into bench_results/ (plus each
# experiment's caba-bench-v1 JSON) and a combined bench_output.txt at
# the repo root.
#
# Usage: scripts/run_all_benches.sh [build-dir]
set -u
BUILD=${1:-build}
OUT=bench_results
mkdir -p "$OUT"
"$BUILD"/bench/caba_bench --all --json 2>/dev/null \
    | tee bench_output.txt \
    | awk -v out="$OUT" '
        function emit(    file, i) {
            if (name == "")
                return
            file = out "/" name ".txt"
            # Drop the single separator blank line caba_bench appends,
            # keeping each log identical to the old standalone binary.
            if (n > 0 && lines[n] == "")
                n--
            for (i = 1; i <= n; i++)
                print lines[i] > file
            close(file)
        }
        /^=== .* ===$/ { emit(); name = $2; n = 0; next }
        { lines[++n] = $0 }
        END { emit() }'
echo "All bench logs in $OUT/, combined log in bench_output.txt"
