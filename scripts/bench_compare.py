#!/usr/bin/env python3
"""Compare two caba-perf-v1 documents: results must match, wall-clock
must not regress.

    bench_compare.py BASELINE CURRENT [--max-wall-regress 0.15]
                     [--strict-wall]

Two independent gates:

1. Result rows (always enforcing). Every (app, design) cell must report
   exactly the same cycles and instructions in both documents — a
   performance optimization must not change what the simulator computes.

2. Wall-clock (enforcing on matching hosts). CURRENT's best wall time
   may exceed BASELINE's by at most --max-wall-regress (default 15%).
   When the two documents were measured on different hosts the absolute
   times are not comparable, so the gate downgrades to a warning unless
   --strict-wall forces it.

Exit status 0 = pass, 1 = gate failure, 2 = malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != "caba-perf-v1":
        print(f"error: {path} is not a caba-perf-v1 document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def rows_by_cell(doc):
    return {(r["app"], r["design"]): r for r in doc["rows"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-wall-regress", type=float, default=0.15,
                    help="allowed fractional wall-clock increase")
    ap.add_argument("--strict-wall", action="store_true",
                    help="enforce the wall gate across differing hosts")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failed = False

    for key in ("bench", "scale"):
        if base.get(key) != cur.get(key):
            print(f"FAIL: {key} differs "
                  f"({base.get(key)!r} vs {cur.get(key)!r}) — "
                  "the documents measure different things",
                  file=sys.stderr)
            sys.exit(1)

    # Gate 1: identical simulation results, cell by cell.
    b_rows, c_rows = rows_by_cell(base), rows_by_cell(cur)
    for key in sorted(set(b_rows) | set(c_rows)):
        b, c = b_rows.get(key), c_rows.get(key)
        if b is None or c is None:
            print(f"FAIL: cell {key} present in only one document",
                  file=sys.stderr)
            failed = True
            continue
        for field in ("cycles", "instructions"):
            if b[field] != c[field]:
                print(f"FAIL: {key} {field}: baseline {b[field]} != "
                      f"current {c[field]}", file=sys.stderr)
                failed = True
    if not failed:
        print(f"rows: {len(c_rows)} cells identical")

    # Gate 2: wall-clock trajectory.
    b_wall = base["wall_seconds_best"]
    c_wall = cur["wall_seconds_best"]
    limit = b_wall * (1.0 + args.max_wall_regress)
    same_host = base.get("host") == cur.get("host")
    verdict = (f"wall: baseline {b_wall:.3f}s, current {c_wall:.3f}s "
               f"(limit {limit:.3f}s)")
    if c_wall <= limit:
        print(verdict + " — ok")
        if c_wall < b_wall * (1.0 - args.max_wall_regress):
            print("note: current is much faster than baseline; consider "
                  "refreshing the committed BENCH document")
    elif same_host or args.strict_wall:
        print("FAIL: " + verdict + " — wall-clock regression",
              file=sys.stderr)
        failed = True
    else:
        print("warning: " + verdict + " — exceeded, but hosts differ "
              f"({base.get('host')} vs {cur.get('host')}); not enforced "
              "(pass --strict-wall to enforce)", file=sys.stderr)

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
