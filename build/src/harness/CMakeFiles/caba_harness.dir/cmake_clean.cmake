file(REMOVE_RECURSE
  "CMakeFiles/caba_harness.dir/runner.cc.o"
  "CMakeFiles/caba_harness.dir/runner.cc.o.d"
  "CMakeFiles/caba_harness.dir/sweep.cc.o"
  "CMakeFiles/caba_harness.dir/sweep.cc.o.d"
  "libcaba_harness.a"
  "libcaba_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
