file(REMOVE_RECURSE
  "libcaba_harness.a"
)
