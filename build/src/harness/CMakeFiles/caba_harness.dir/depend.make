# Empty dependencies file for caba_harness.
# This may be replaced when dependencies are built.
