# Empty compiler generated dependencies file for caba_common.
# This may be replaced when dependencies are built.
