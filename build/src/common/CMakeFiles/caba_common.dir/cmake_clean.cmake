file(REMOVE_RECURSE
  "CMakeFiles/caba_common.dir/table.cc.o"
  "CMakeFiles/caba_common.dir/table.cc.o.d"
  "libcaba_common.a"
  "libcaba_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
