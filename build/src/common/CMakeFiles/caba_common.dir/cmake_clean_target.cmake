file(REMOVE_RECURSE
  "libcaba_common.a"
)
