# Empty dependencies file for caba_gpu.
# This may be replaced when dependencies are built.
