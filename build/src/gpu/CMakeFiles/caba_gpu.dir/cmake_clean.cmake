file(REMOVE_RECURSE
  "CMakeFiles/caba_gpu.dir/design.cc.o"
  "CMakeFiles/caba_gpu.dir/design.cc.o.d"
  "CMakeFiles/caba_gpu.dir/gpu_system.cc.o"
  "CMakeFiles/caba_gpu.dir/gpu_system.cc.o.d"
  "libcaba_gpu.a"
  "libcaba_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
