file(REMOVE_RECURSE
  "libcaba_gpu.a"
)
