file(REMOVE_RECURSE
  "CMakeFiles/caba_compress.dir/bdi.cc.o"
  "CMakeFiles/caba_compress.dir/bdi.cc.o.d"
  "CMakeFiles/caba_compress.dir/cpack.cc.o"
  "CMakeFiles/caba_compress.dir/cpack.cc.o.d"
  "CMakeFiles/caba_compress.dir/fpc.cc.o"
  "CMakeFiles/caba_compress.dir/fpc.cc.o.d"
  "CMakeFiles/caba_compress.dir/registry.cc.o"
  "CMakeFiles/caba_compress.dir/registry.cc.o.d"
  "libcaba_compress.a"
  "libcaba_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
