file(REMOVE_RECURSE
  "libcaba_compress.a"
)
