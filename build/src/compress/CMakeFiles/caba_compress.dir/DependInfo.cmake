
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bdi.cc" "src/compress/CMakeFiles/caba_compress.dir/bdi.cc.o" "gcc" "src/compress/CMakeFiles/caba_compress.dir/bdi.cc.o.d"
  "/root/repo/src/compress/cpack.cc" "src/compress/CMakeFiles/caba_compress.dir/cpack.cc.o" "gcc" "src/compress/CMakeFiles/caba_compress.dir/cpack.cc.o.d"
  "/root/repo/src/compress/fpc.cc" "src/compress/CMakeFiles/caba_compress.dir/fpc.cc.o" "gcc" "src/compress/CMakeFiles/caba_compress.dir/fpc.cc.o.d"
  "/root/repo/src/compress/registry.cc" "src/compress/CMakeFiles/caba_compress.dir/registry.cc.o" "gcc" "src/compress/CMakeFiles/caba_compress.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/caba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
