# Empty dependencies file for caba_compress.
# This may be replaced when dependencies are built.
