file(REMOVE_RECURSE
  "CMakeFiles/caba_energy.dir/energy_model.cc.o"
  "CMakeFiles/caba_energy.dir/energy_model.cc.o.d"
  "libcaba_energy.a"
  "libcaba_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
