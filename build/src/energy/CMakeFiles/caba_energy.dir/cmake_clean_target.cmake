file(REMOVE_RECURSE
  "libcaba_energy.a"
)
