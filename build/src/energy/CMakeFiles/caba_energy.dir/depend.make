# Empty dependencies file for caba_energy.
# This may be replaced when dependencies are built.
