
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/caba_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/caba_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/caba_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/caba_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/compression_model.cc" "src/mem/CMakeFiles/caba_mem.dir/compression_model.cc.o" "gcc" "src/mem/CMakeFiles/caba_mem.dir/compression_model.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/caba_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/caba_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/partition.cc" "src/mem/CMakeFiles/caba_mem.dir/partition.cc.o" "gcc" "src/mem/CMakeFiles/caba_mem.dir/partition.cc.o.d"
  "/root/repo/src/mem/xbar.cc" "src/mem/CMakeFiles/caba_mem.dir/xbar.cc.o" "gcc" "src/mem/CMakeFiles/caba_mem.dir/xbar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/caba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/caba_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
