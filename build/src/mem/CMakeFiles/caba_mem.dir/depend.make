# Empty dependencies file for caba_mem.
# This may be replaced when dependencies are built.
