file(REMOVE_RECURSE
  "libcaba_mem.a"
)
