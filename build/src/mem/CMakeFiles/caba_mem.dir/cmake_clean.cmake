file(REMOVE_RECURSE
  "CMakeFiles/caba_mem.dir/backing_store.cc.o"
  "CMakeFiles/caba_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/caba_mem.dir/cache.cc.o"
  "CMakeFiles/caba_mem.dir/cache.cc.o.d"
  "CMakeFiles/caba_mem.dir/compression_model.cc.o"
  "CMakeFiles/caba_mem.dir/compression_model.cc.o.d"
  "CMakeFiles/caba_mem.dir/dram.cc.o"
  "CMakeFiles/caba_mem.dir/dram.cc.o.d"
  "CMakeFiles/caba_mem.dir/partition.cc.o"
  "CMakeFiles/caba_mem.dir/partition.cc.o.d"
  "CMakeFiles/caba_mem.dir/xbar.cc.o"
  "CMakeFiles/caba_mem.dir/xbar.cc.o.d"
  "libcaba_mem.a"
  "libcaba_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
