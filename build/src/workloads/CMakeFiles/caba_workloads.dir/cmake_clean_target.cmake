file(REMOVE_RECURSE
  "libcaba_workloads.a"
)
