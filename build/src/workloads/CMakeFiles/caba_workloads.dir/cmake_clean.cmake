file(REMOVE_RECURSE
  "CMakeFiles/caba_workloads.dir/apps.cc.o"
  "CMakeFiles/caba_workloads.dir/apps.cc.o.d"
  "CMakeFiles/caba_workloads.dir/data_profile.cc.o"
  "CMakeFiles/caba_workloads.dir/data_profile.cc.o.d"
  "CMakeFiles/caba_workloads.dir/occupancy.cc.o"
  "CMakeFiles/caba_workloads.dir/occupancy.cc.o.d"
  "CMakeFiles/caba_workloads.dir/workload.cc.o"
  "CMakeFiles/caba_workloads.dir/workload.cc.o.d"
  "libcaba_workloads.a"
  "libcaba_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
