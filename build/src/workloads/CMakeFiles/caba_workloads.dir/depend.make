# Empty dependencies file for caba_workloads.
# This may be replaced when dependencies are built.
