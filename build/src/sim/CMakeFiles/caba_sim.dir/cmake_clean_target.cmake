file(REMOVE_RECURSE
  "libcaba_sim.a"
)
