# Empty dependencies file for caba_sim.
# This may be replaced when dependencies are built.
