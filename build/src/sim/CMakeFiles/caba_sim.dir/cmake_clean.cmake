file(REMOVE_RECURSE
  "CMakeFiles/caba_sim.dir/sm_core.cc.o"
  "CMakeFiles/caba_sim.dir/sm_core.cc.o.d"
  "libcaba_sim.a"
  "libcaba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
