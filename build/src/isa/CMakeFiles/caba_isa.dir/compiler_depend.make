# Empty compiler generated dependencies file for caba_isa.
# This may be replaced when dependencies are built.
