file(REMOVE_RECURSE
  "libcaba_isa.a"
)
