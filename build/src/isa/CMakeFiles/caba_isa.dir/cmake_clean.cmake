file(REMOVE_RECURSE
  "CMakeFiles/caba_isa.dir/instruction.cc.o"
  "CMakeFiles/caba_isa.dir/instruction.cc.o.d"
  "libcaba_isa.a"
  "libcaba_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
