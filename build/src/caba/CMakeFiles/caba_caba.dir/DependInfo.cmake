
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/caba/awc.cc" "src/caba/CMakeFiles/caba_caba.dir/awc.cc.o" "gcc" "src/caba/CMakeFiles/caba_caba.dir/awc.cc.o.d"
  "/root/repo/src/caba/aws.cc" "src/caba/CMakeFiles/caba_caba.dir/aws.cc.o" "gcc" "src/caba/CMakeFiles/caba_caba.dir/aws.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/caba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/caba_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
