# Empty compiler generated dependencies file for caba_caba.
# This may be replaced when dependencies are built.
