file(REMOVE_RECURSE
  "CMakeFiles/caba_caba.dir/awc.cc.o"
  "CMakeFiles/caba_caba.dir/awc.cc.o.d"
  "CMakeFiles/caba_caba.dir/aws.cc.o"
  "CMakeFiles/caba_caba.dir/aws.cc.o.d"
  "libcaba_caba.a"
  "libcaba_caba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_caba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
