file(REMOVE_RECURSE
  "libcaba_caba.a"
)
