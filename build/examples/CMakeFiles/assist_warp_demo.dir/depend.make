# Empty dependencies file for assist_warp_demo.
# This may be replaced when dependencies are built.
