file(REMOVE_RECURSE
  "CMakeFiles/assist_warp_demo.dir/assist_warp_demo.cpp.o"
  "CMakeFiles/assist_warp_demo.dir/assist_warp_demo.cpp.o.d"
  "assist_warp_demo"
  "assist_warp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assist_warp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
