# Empty dependencies file for caba_cli.
# This may be replaced when dependencies are built.
