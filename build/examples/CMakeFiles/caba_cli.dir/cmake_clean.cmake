file(REMOVE_RECURSE
  "CMakeFiles/caba_cli.dir/caba_sim.cpp.o"
  "CMakeFiles/caba_cli.dir/caba_sim.cpp.o.d"
  "caba_cli"
  "caba_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caba_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
