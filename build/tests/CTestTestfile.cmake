# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitops[1]_include.cmake")
include("/root/repo/build/tests/test_codecs[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_xbar[1]_include.cmake")
include("/root/repo/build/tests/test_mem_functional[1]_include.cmake")
include("/root/repo/build/tests/test_caba_framework[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_isa_energy[1]_include.cmake")
include("/root/repo/build/tests/test_sm_core[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_designs[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_codec_properties[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_system[1]_include.cmake")
