# Empty compiler generated dependencies file for test_mem_functional.
# This may be replaced when dependencies are built.
