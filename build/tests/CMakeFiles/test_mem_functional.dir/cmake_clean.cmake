file(REMOVE_RECURSE
  "CMakeFiles/test_mem_functional.dir/test_mem_functional.cc.o"
  "CMakeFiles/test_mem_functional.dir/test_mem_functional.cc.o.d"
  "test_mem_functional"
  "test_mem_functional.pdb"
  "test_mem_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
