file(REMOVE_RECURSE
  "CMakeFiles/test_isa_energy.dir/test_isa_energy.cc.o"
  "CMakeFiles/test_isa_energy.dir/test_isa_energy.cc.o.d"
  "test_isa_energy"
  "test_isa_energy.pdb"
  "test_isa_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
