# Empty compiler generated dependencies file for test_isa_energy.
# This may be replaced when dependencies are built.
