file(REMOVE_RECURSE
  "CMakeFiles/test_xbar.dir/test_xbar.cc.o"
  "CMakeFiles/test_xbar.dir/test_xbar.cc.o.d"
  "test_xbar"
  "test_xbar.pdb"
  "test_xbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
