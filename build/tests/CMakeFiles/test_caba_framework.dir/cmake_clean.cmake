file(REMOVE_RECURSE
  "CMakeFiles/test_caba_framework.dir/test_caba_framework.cc.o"
  "CMakeFiles/test_caba_framework.dir/test_caba_framework.cc.o.d"
  "test_caba_framework"
  "test_caba_framework.pdb"
  "test_caba_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caba_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
