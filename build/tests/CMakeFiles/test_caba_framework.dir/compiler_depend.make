# Empty compiler generated dependencies file for test_caba_framework.
# This may be replaced when dependencies are built.
