file(REMOVE_RECURSE
  "CMakeFiles/test_codec_properties.dir/test_codec_properties.cc.o"
  "CMakeFiles/test_codec_properties.dir/test_codec_properties.cc.o.d"
  "test_codec_properties"
  "test_codec_properties.pdb"
  "test_codec_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
