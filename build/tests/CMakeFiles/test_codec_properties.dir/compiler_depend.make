# Empty compiler generated dependencies file for test_codec_properties.
# This may be replaced when dependencies are built.
