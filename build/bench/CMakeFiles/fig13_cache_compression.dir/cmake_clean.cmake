file(REMOVE_RECURSE
  "CMakeFiles/fig13_cache_compression.dir/fig13_cache_compression.cc.o"
  "CMakeFiles/fig13_cache_compression.dir/fig13_cache_compression.cc.o.d"
  "fig13_cache_compression"
  "fig13_cache_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cache_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
