file(REMOVE_RECURSE
  "CMakeFiles/fig08_bw_utilization.dir/fig08_bw_utilization.cc.o"
  "CMakeFiles/fig08_bw_utilization.dir/fig08_bw_utilization.cc.o.d"
  "fig08_bw_utilization"
  "fig08_bw_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_bw_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
