file(REMOVE_RECURSE
  "CMakeFiles/fig02_unallocated_regs.dir/fig02_unallocated_regs.cc.o"
  "CMakeFiles/fig02_unallocated_regs.dir/fig02_unallocated_regs.cc.o.d"
  "fig02_unallocated_regs"
  "fig02_unallocated_regs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_unallocated_regs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
