# Empty compiler generated dependencies file for fig02_unallocated_regs.
# This may be replaced when dependencies are built.
