
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_prefetch.cc" "bench/CMakeFiles/ablation_prefetch.dir/ablation_prefetch.cc.o" "gcc" "bench/CMakeFiles/ablation_prefetch.dir/ablation_prefetch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/caba_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/caba_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/caba_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/caba_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/caba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/caba_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/caba/CMakeFiles/caba_caba.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/caba_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/caba_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/caba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
