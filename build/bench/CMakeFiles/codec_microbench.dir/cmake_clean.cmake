file(REMOVE_RECURSE
  "CMakeFiles/codec_microbench.dir/codec_microbench.cc.o"
  "CMakeFiles/codec_microbench.dir/codec_microbench.cc.o.d"
  "codec_microbench"
  "codec_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
