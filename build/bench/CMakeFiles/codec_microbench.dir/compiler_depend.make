# Empty compiler generated dependencies file for codec_microbench.
# This may be replaced when dependencies are built.
