file(REMOVE_RECURSE
  "CMakeFiles/ablation_memoization.dir/ablation_memoization.cc.o"
  "CMakeFiles/ablation_memoization.dir/ablation_memoization.cc.o.d"
  "ablation_memoization"
  "ablation_memoization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
