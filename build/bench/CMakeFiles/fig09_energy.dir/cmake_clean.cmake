file(REMOVE_RECURSE
  "CMakeFiles/fig09_energy.dir/fig09_energy.cc.o"
  "CMakeFiles/fig09_energy.dir/fig09_energy.cc.o.d"
  "fig09_energy"
  "fig09_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
