file(REMOVE_RECURSE
  "CMakeFiles/md_cache_study.dir/md_cache_study.cc.o"
  "CMakeFiles/md_cache_study.dir/md_cache_study.cc.o.d"
  "md_cache_study"
  "md_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
