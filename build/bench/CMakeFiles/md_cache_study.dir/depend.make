# Empty dependencies file for md_cache_study.
# This may be replaced when dependencies are built.
