# Empty dependencies file for ablation_throttling.
# This may be replaced when dependencies are built.
