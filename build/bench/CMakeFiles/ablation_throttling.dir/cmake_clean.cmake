file(REMOVE_RECURSE
  "CMakeFiles/ablation_throttling.dir/ablation_throttling.cc.o"
  "CMakeFiles/ablation_throttling.dir/ablation_throttling.cc.o.d"
  "ablation_throttling"
  "ablation_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
