/**
 * @file
 * Include-graph extraction and architectural layering for caba-lint
 * (DESIGN.md §14). Quoted includes are resolved against the linted file
 * set itself (same-directory first, then the src/ root, then the repo
 * root), so the graph is a pure function of the inputs — unit tests
 * feed synthetic files, the tree walk feeds the real repo, and both go
 * through identical code.
 *
 * Two rules consume the graph:
 *  - include-cycle  strongly connected components among src/ headers
 *                   and sources (a cycle means no valid build order and
 *                   usually a leaked abstraction);
 *  - layering       the explicit layer map below is the normative
 *                   architecture contract: an include may point
 *                   sideways (same layer) or down, never up.
 *
 * The layer map (level 0 at the bottom):
 *   0  common                      depends on nothing
 *   1  isa, compress, energy       on common
 *   2  mem, workloads              above those
 *   3  sim, gpu, caba              above mem
 *   4  harness                     above sim
 *   5  bench, tools, tests, examples   the top: may include anything
 */
#ifndef CABA_TOOLS_LINT_GRAPH_H
#define CABA_TOOLS_LINT_GRAPH_H

#include <string>
#include <vector>

#include "lint.h"

namespace caba {
namespace lint {

/** One resolved quoted include. */
struct IncludeEdge
{
    std::string from;     ///< including file (repo-relative)
    int line = 0;         ///< 1-based line of the #include
    std::string include;  ///< the quoted spelling, verbatim
    std::string to;       ///< resolved repo-relative path ("" = external)
};

/** The whole-program include graph over one lint input set. */
struct IncludeGraph
{
    /** Every input path, sorted (the node set used for resolution). */
    std::vector<std::string> nodes;

    /** Quoted-include edges in (from, line) order. Unresolvable
     *  includes (system headers spelled with quotes, generated files)
     *  keep an empty @p to and are ignored by the rules. */
    std::vector<IncludeEdge> edges;
};

/** Extracts `#include "..."` edges from @p files (raw text scan — the
 *  lexer deliberately skips preprocessor lines). */
IncludeGraph buildIncludeGraph(const std::vector<SourceFile> &files);

/**
 * Layer level of @p path per the map above, or -1 when the path is not
 * covered (docs, files outside the walked roots). A src/ subdirectory
 * missing from the map returns -2: the layer map is normative, so a new
 * subsystem must be added to it (and to DESIGN.md §14) explicitly.
 */
int layerOf(const std::string &path);

/** Human-readable layer tag for messages ("mem/2", "tools/5"). */
std::string layerName(const std::string &path);

/**
 * Appends include-cycle findings: one per strongly connected component
 * of two or more src/ files (or a self-include), anchored at the
 * lexicographically smallest member's offending #include line.
 */
void ruleIncludeCycle(const IncludeGraph &graph, std::vector<Finding> &out);

/**
 * Appends layering findings: one per resolved edge whose source layer
 * is below its target layer, plus one per src/ file whose subdirectory
 * is absent from the layer map.
 */
void ruleLayering(const IncludeGraph &graph, std::vector<Finding> &out);

/** GraphViz DOT rendering of the resolved graph (src/ plus the other
 *  walked roots), clustered by top-level directory; deterministic. */
std::string toDot(const IncludeGraph &graph);

} // namespace lint
} // namespace caba

#endif // CABA_TOOLS_LINT_GRAPH_H
