/**
 * @file
 * Tree walking, report rendering and baseline handling for caba-lint.
 * Everything here is deterministic: files are visited in sorted
 * repo-relative path order, findings are sorted, and the JSON report is
 * emitted with the same JsonWriter the benches use — two runs over the
 * same tree are byte-identical.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.h"
#include "lint.h"
#include "tests/mini_json.h"

namespace caba {
namespace lint {

namespace {

namespace fs = std::filesystem;

/** Rule ids in fixed report order. */
const char *const kRules[] = {
    "determinism", "iteration-order", "env-access", "check-discipline",
    "stat-hygiene", "experiment-registry", "include-cycle", "layering",
    "env-drift", "stat-drift", "lock-discipline",
};

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool
readFile(const fs::path &p, std::string *out, std::string *error)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        *error = "cannot open " + p.string();
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

std::string
baselineKey(const Finding &f)
{
    // Line numbers drift with unrelated edits; identity is
    // rule + file + message.
    return f.rule + "\n" + f.file + "\n" + f.message;
}

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names(std::begin(kRules),
                                                std::end(kRules));
    return names;
}

bool
collectTree(const std::string &root, std::vector<SourceFile> *files,
            std::string *error)
{
    const fs::path base(root);
    std::vector<std::string> rel_paths;
    for (const char *top : {"bench", "examples", "src", "tests", "tools"}) {
        const fs::path dir = base / top;
        if (!fs::exists(dir)) {
            *error = "missing directory " + dir.string() +
                     " (is --root the repo root?)";
            return false;
        }
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file() ||
                !lintableExtension(entry.path()))
                continue;
            const std::string rel =
                entry.path().lexically_relative(base).generic_string();
            // The fixtures are deliberate violations for test_lint.
            if (rel.rfind("tools/lint/fixtures/", 0) == 0)
                continue;
            rel_paths.push_back(rel);
        }
    }
    std::sort(rel_paths.begin(), rel_paths.end());

    files->clear();
    files->reserve(rel_paths.size());
    for (const std::string &rel : rel_paths) {
        SourceFile f;
        f.path = rel;
        if (!readFile(base / rel, &f.text, error))
            return false;
        files->push_back(std::move(f));
    }
    return true;
}

bool
runTree(const std::string &root, Options opts, std::vector<Finding> *out,
        std::string *error)
{
    std::vector<SourceFile> files;
    if (!collectTree(root, &files, error))
        return false;
    if (opts.readme_text.empty()) {
        // Best-effort: a missing README just skips env-drift's
        // documentation direction.
        std::string readme, ignored;
        if (readFile(fs::path(root) / "README.md", &readme, &ignored))
            opts.readme_text = std::move(readme);
    }
    *out = run(files, opts);
    return true;
}

bool
runTree(const std::string &root, std::vector<Finding> *out,
        std::string *error)
{
    return runTree(root, Options(), out, error);
}

std::string
toText(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    for (const Finding &f : findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    return os.str();
}

std::string
toJson(const std::vector<Finding> &findings,
       const std::vector<Finding> &baselined)
{
    std::multiset<std::string> matched;
    for (const Finding &f : baselined)
        matched.insert(baselineKey(f));

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "caba-lint-v1");
    w.key("counts").beginObject();
    for (const char *rule : kRules) {
        std::uint64_t n = 0;
        for (const Finding &f : findings)
            if (f.rule == rule)
                ++n;
        w.kv(rule, n);
    }
    w.kv("total", static_cast<std::uint64_t>(findings.size()));
    w.kv("baselined", static_cast<std::uint64_t>(baselined.size()));
    w.endObject();
    w.key("findings").beginArray();
    for (const Finding &f : findings) {
        bool is_baselined = false;
        auto it = matched.find(baselineKey(f));
        if (it != matched.end()) {
            matched.erase(it);
            is_baselined = true;
        }
        w.beginObject()
            .kv("rule", f.rule)
            .kv("file", f.file)
            .kv("line", static_cast<std::int64_t>(f.line))
            .kv("message", f.message)
            .kv("baselined", is_baselined)
            .endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

bool
parseBaseline(const std::string &json_text, std::vector<Finding> *out,
              std::string *error)
{
    minijson::Value doc;
    if (!minijson::parse(json_text, &doc) || !doc.isObject()) {
        *error = "baseline is not valid JSON";
        return false;
    }
    const minijson::Value *findings = doc.find("findings");
    if (!findings || !findings->isArray()) {
        *error = "baseline lacks a \"findings\" array";
        return false;
    }
    for (const minijson::Value &v : findings->array) {
        const minijson::Value *rule = v.find("rule");
        const minijson::Value *file = v.find("file");
        const minijson::Value *message = v.find("message");
        if (!rule || !rule->isString() || !file || !file->isString() ||
            !message || !message->isString()) {
            *error = "baseline entry lacks rule/file/message strings";
            return false;
        }
        Finding f;
        f.rule = rule->string;
        f.file = file->string;
        f.message = message->string;
        const minijson::Value *line = v.find("line");
        if (line && line->isNumber())
            f.line = static_cast<int>(line->number);
        out->push_back(std::move(f));
    }
    return true;
}

void
applyBaseline(const std::vector<Finding> &findings,
              const std::vector<Finding> &baseline,
              std::vector<Finding> *fresh, std::vector<Finding> *matched)
{
    std::multiset<std::string> keys;
    for (const Finding &b : baseline)
        keys.insert(baselineKey(b));
    for (const Finding &f : findings) {
        auto it = keys.find(baselineKey(f));
        if (it != keys.end()) {
            keys.erase(it);
            matched->push_back(f);
        } else {
            fresh->push_back(f);
        }
    }
}

} // namespace lint
} // namespace caba
