/**
 * @file
 * Include-graph extraction, SCC detection, the layer map, and DOT
 * rendering. Everything is deterministic: nodes are sorted, edges are
 * emitted in (from, line) order, and Tarjan's algorithm visits roots in
 * sorted order so component numbering is machine-independent.
 */
#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "graph.h"

namespace caba {
namespace lint {

namespace {

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** dirname of a '/'-separated repo-relative path ("" for top level). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/** Lexically normalizes @p path: resolves "." and ".." segments. */
std::string
normalize(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (cur == "..") {
                if (!parts.empty())
                    parts.pop_back();
            } else if (!cur.empty() && cur != ".") {
                parts.push_back(cur);
            }
            cur.clear();
        } else {
            cur += path[i];
        }
    }
    std::string out;
    for (const std::string &p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    return out;
}

/** Matches `#include "..."` (arbitrary space around '#'); returns the
 *  quoted spelling or "" when the line is not a quoted include. */
std::string
quotedInclude(const std::string &line)
{
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    if (i >= line.size() || line[i] != '#')
        return std::string();
    ++i;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    if (line.compare(i, 7, "include") != 0)
        return std::string();
    i += 7;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    if (i >= line.size() || line[i] != '"')
        return std::string();
    const std::size_t close = line.find('"', i + 1);
    if (close == std::string::npos)
        return std::string();
    return line.substr(i + 1, close - i - 1);
}

} // namespace

IncludeGraph
buildIncludeGraph(const std::vector<SourceFile> &files)
{
    IncludeGraph g;
    g.nodes.reserve(files.size());
    for (const SourceFile &f : files)
        g.nodes.push_back(f.path);
    std::sort(g.nodes.begin(), g.nodes.end());
    const std::set<std::string> node_set(g.nodes.begin(), g.nodes.end());

    for (const SourceFile &f : files) {
        int line_no = 0;
        std::istringstream is(f.text);
        std::string line;
        while (std::getline(is, line)) {
            ++line_no;
            const std::string inc = quotedInclude(line);
            if (inc.empty())
                continue;
            IncludeEdge e;
            e.from = f.path;
            e.line = line_no;
            e.include = inc;
            // Resolution candidates, in preprocessor-like order:
            // relative to the including file, then the src/ include
            // root, then the repo root (tests/mini_json.h style).
            const std::string candidates[] = {
                normalize(dirOf(f.path) + "/" + inc),
                "src/" + inc,
                inc,
            };
            for (const std::string &cand : candidates) {
                if (node_set.count(cand) != 0) {
                    e.to = cand;
                    break;
                }
            }
            g.edges.push_back(std::move(e));
        }
    }
    std::sort(g.edges.begin(), g.edges.end(),
              [](const IncludeEdge &a, const IncludeEdge &b) {
                  if (a.from != b.from)
                      return a.from < b.from;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.include < b.include;
              });
    return g;
}

int
layerOf(const std::string &path)
{
    // bench/, tools/, tests/ and examples/ sit at the top and may
    // include anything below.
    if (startsWith(path, "bench/") || startsWith(path, "tools/") ||
        startsWith(path, "tests/") || startsWith(path, "examples/"))
        return 5;
    if (!startsWith(path, "src/"))
        return -1;
    const std::string rest = path.substr(4);
    const std::string dir = rest.substr(0, rest.find('/'));
    // The normative layer map — keep in sync with DESIGN.md §14.
    static const std::map<std::string, int> kLayers = {
        {"common", 0},
        {"isa", 1}, {"compress", 1}, {"energy", 1},
        {"mem", 2}, {"workloads", 2},
        {"sim", 3}, {"gpu", 3}, {"caba", 3},
        {"harness", 4},
    };
    const auto it = kLayers.find(dir);
    return it == kLayers.end() ? -2 : it->second;
}

std::string
layerName(const std::string &path)
{
    std::string dir;
    if (startsWith(path, "src/")) {
        const std::string rest = path.substr(4);
        dir = rest.substr(0, rest.find('/'));
    } else {
        dir = path.substr(0, path.find('/'));
    }
    return dir + "/" + std::to_string(layerOf(path));
}

void
ruleIncludeCycle(const IncludeGraph &graph, std::vector<Finding> &out)
{
    // Adjacency over src/ nodes only (resolved edges both ends in src/).
    std::vector<std::string> nodes;
    for (const std::string &n : graph.nodes)
        if (startsWith(n, "src/"))
            nodes.push_back(n);
    std::map<std::string, int> id;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        id.emplace(nodes[i], static_cast<int>(i));
    std::vector<std::vector<int>> adj(nodes.size());
    for (const IncludeEdge &e : graph.edges) {
        if (e.to.empty())
            continue;
        const auto a = id.find(e.from);
        const auto b = id.find(e.to);
        if (a != id.end() && b != id.end())
            adj[static_cast<std::size_t>(a->second)].push_back(b->second);
    }

    // Iterative Tarjan, roots visited in sorted-node order.
    const int n = static_cast<int>(nodes.size());
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int next_index = 0;

    struct Frame
    {
        int v;
        std::size_t child = 0;
    };
    for (int root = 0; root < n; ++root) {
        if (index[static_cast<std::size_t>(root)] != -1)
            continue;
        std::vector<Frame> frames;
        frames.push_back({root});
        while (!frames.empty()) {
            Frame &f = frames.back();
            const std::size_t v = static_cast<std::size_t>(f.v);
            if (f.child == 0) {
                index[v] = low[v] = next_index++;
                stack.push_back(f.v);
                on_stack[v] = true;
            }
            bool descended = false;
            while (f.child < adj[v].size()) {
                const int w = adj[v][f.child++];
                const std::size_t wi = static_cast<std::size_t>(w);
                if (index[wi] == -1) {
                    frames.push_back({w});
                    descended = true;
                    break;
                }
                if (on_stack[wi])
                    low[v] = std::min(low[v], index[wi]);
            }
            if (descended)
                continue;
            if (low[v] == index[v]) {
                std::vector<int> scc;
                int w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    on_stack[static_cast<std::size_t>(w)] = false;
                    scc.push_back(w);
                } while (w != f.v);
                sccs.push_back(std::move(scc));
            }
            const int low_v = low[v];
            frames.pop_back();
            if (!frames.empty()) {
                const std::size_t p =
                    static_cast<std::size_t>(frames.back().v);
                low[p] = std::min(low[p], low_v);
            }
        }
    }

    // Self-includes are 1-node cycles Tarjan reports as trivial SCCs.
    std::set<int> self_loop;
    for (int v = 0; v < n; ++v) {
        const std::size_t vi = static_cast<std::size_t>(v);
        for (int w : adj[vi])
            if (w == v)
                self_loop.insert(v);
    }

    std::vector<Finding> found;
    for (const std::vector<int> &scc : sccs) {
        if (scc.size() < 2 &&
            self_loop.count(scc.front()) == 0)
            continue;
        std::vector<std::string> members;
        for (int v : scc)
            members.push_back(nodes[static_cast<std::size_t>(v)]);
        std::sort(members.begin(), members.end());
        const std::string &anchor = members.front();
        // Anchor line: the first include from the anchor into the SCC.
        const std::set<std::string> in_scc(members.begin(), members.end());
        int line = 1;
        for (const IncludeEdge &e : graph.edges) {
            if (e.from == anchor && in_scc.count(e.to) != 0) {
                line = e.line;
                break;
            }
        }
        std::string chain;
        for (const std::string &m : members) {
            if (!chain.empty())
                chain += " -> ";
            chain += m;
        }
        found.push_back(
            {"include-cycle", anchor, line,
             "include cycle among " + std::to_string(members.size()) +
                 " file(s): " + chain +
                 " — break the cycle with an interface header or a "
                 "forward declaration"});
    }
    std::sort(found.begin(), found.end(),
              [](const Finding &a, const Finding &b) {
                  return a.file < b.file;
              });
    for (Finding &f : found)
        out.push_back(std::move(f));
}

void
ruleLayering(const IncludeGraph &graph, std::vector<Finding> &out)
{
    std::set<std::string> unmapped_reported;
    for (const std::string &n : graph.nodes) {
        if (layerOf(n) != -2)
            continue;
        const std::string rest = n.substr(4);
        const std::string dir = rest.substr(0, rest.find('/'));
        if (!unmapped_reported.insert(dir).second)
            continue;
        out.push_back(
            {"layering", n, 1,
             "src/" + dir + "/ is not in the layer map — the map is the "
             "normative architecture contract; add the subsystem to "
             "tools/lint/graph.cc and DESIGN.md §14"});
    }
    for (const IncludeEdge &e : graph.edges) {
        if (e.to.empty())
            continue;
        const int from = layerOf(e.from);
        const int to = layerOf(e.to);
        if (from < 0 || to < 0)
            continue; // unmapped dirs are reported above
        if (from < to) {
            out.push_back(
                {"layering", e.from, e.line,
                 "layering violation: " + layerName(e.from) +
                     " includes \"" + e.include + "\" (" +
                     layerName(e.to) +
                     ") — includes may point sideways or down the layer "
                     "map, never up"});
        }
    }
}

std::string
toDot(const IncludeGraph &graph)
{
    // Cluster nodes by top-level directory (src/<sub> counts as the
    // subsystem) so the rendering mirrors the layer map.
    std::map<std::string, std::vector<std::string>> clusters;
    for (const std::string &n : graph.nodes) {
        std::string dir = n.substr(0, n.find('/'));
        if (dir == "src") {
            const std::string rest = n.substr(4);
            dir = "src/" + rest.substr(0, rest.find('/'));
        }
        clusters[dir].push_back(n);
    }
    std::ostringstream os;
    os << "digraph caba_includes {\n"
       << "  rankdir=BT;\n"
       << "  node [shape=box, fontsize=9];\n";
    int ci = 0;
    for (const auto &[dir, members] : clusters) {
        os << "  subgraph cluster_" << ci++ << " {\n"
           << "    label=\"" << dir << "\";\n";
        for (const std::string &m : members)
            os << "    \"" << m << "\";\n";
        os << "  }\n";
    }
    for (const IncludeEdge &e : graph.edges) {
        if (e.to.empty())
            continue;
        os << "  \"" << e.from << "\" -> \"" << e.to << "\"";
        const int from = layerOf(e.from);
        const int to = layerOf(e.to);
        if (from >= 0 && to >= 0 && from < to)
            os << " [color=red, penwidth=2]";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace lint
} // namespace caba
