/**
 * @file
 * Minimal C++ lexer for caba-lint. Deliberately not a parser: the lint
 * rules pattern-match over a flat token stream, which is robust against
 * the subset of C++ this repo uses and keeps the tool dependency-free
 * (no libclang). The lexer understands comments (kept separately so
 * rules can honor `// lint: ...` annotations), string/char literals
 * including raw strings, preprocessor directives (skipped wholesale),
 * digit separators, and the multi-character operators the rules care
 * about (`::`, `->`, shift/comparison operators).
 */
#ifndef CABA_TOOLS_LINT_LEXER_H
#define CABA_TOOLS_LINT_LEXER_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace caba {
namespace lint {

struct Token
{
    enum Kind {
        Ident,    ///< identifier or keyword
        Number,   ///< numeric literal (incl. digit separators)
        String,   ///< string literal (text excludes quotes/prefix)
        CharLit,  ///< character literal
        Punct,    ///< operator or punctuator, longest-match
    };

    Kind kind;
    std::string text;
    int line;   ///< 1-based line of the token's first character

    bool is(Kind k, const char *t) const { return kind == k && text == t; }
    bool ident(const char *t) const { return is(Ident, t); }
    bool punct(const char *t) const { return is(Punct, t); }
};

/** One lexed translation unit. */
struct LexedFile
{
    std::vector<Token> tokens;

    /**
     * Lines whose comments carry a `lint: <tag> <reason>` annotation,
     * keyed by tag. Recognized tags (each a rule's escape hatch):
     *   order-insensitive  iteration-order: loop result is order-free
     *   not-env            env-drift: a CABA_* literal that is not an
     *                      environment variable name
     *   stat-external      stat-drift: a stat name read that is
     *                      deliberately never produced (negative tests)
     *   stat-producer      stat-drift: marks a wrapper function whose
     *                      literal first argument registers a stat name
     *   manual-lock        lock-discipline: a naked mutex lock/unlock
     *                      that cannot be a scoped guard
     */
    std::map<std::string, std::set<int>> annotations;

    /** True when @p line (or the line above it) carries @p tag. */
    bool
    annotated(const std::string &tag, int line) const
    {
        auto it = annotations.find(tag);
        return it != annotations.end() &&
               (it->second.count(line) != 0 ||
                it->second.count(line - 1) != 0);
    }
};

/** Lexes @p text; never fails (unknown bytes become 1-char puncts). */
LexedFile lex(const std::string &text);

} // namespace lint
} // namespace caba

#endif // CABA_TOOLS_LINT_LEXER_H
