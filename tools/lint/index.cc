/**
 * @file
 * Cross-TU index construction and the three drift rules. The index is a
 * pure function of the lexed inputs, so unit tests can feed synthetic
 * registries/producers and the tree walk exercises the same code.
 */
#include <algorithm>
#include <cctype>

#include "index.h"

namespace caba {
namespace lint {

namespace {

const char *const kEnvRegistryPath = "src/common/env.cc";

bool
inSrc(const std::string &path)
{
    return path.rfind("src/", 0) == 0;
}

/** Entire literal matches CABA_[A-Z0-9_]+ (an env-knob-shaped name). */
bool
envShaped(const std::string &s)
{
    const std::string prefix = std::string("CABA") + "_";
    if (s.size() <= prefix.size() || s.rfind(prefix, 0) != 0)
        return false;
    for (std::size_t i = prefix.size(); i < s.size(); ++i) {
        const char c = s[i];
        if (!std::isupper(static_cast<unsigned char>(c)) &&
            !std::isdigit(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

bool
isProduceMethod(const std::string &s)
{
    return s == "add" || s == "set" || s == "setCounter" || s == "dist";
}

bool
isConsumeMethod(const std::string &s)
{
    return s == "get" || s == "findDist" || s == "isGauge";
}

bool
isMutexType(const std::string &s)
{
    return s == "mutex" || s == "recursive_mutex" || s == "shared_mutex" ||
           s == "timed_mutex" || s == "recursive_timed_mutex" ||
           s == "shared_timed_mutex";
}

/** Index of the ')' matching the '(' at @p open, or npos. */
std::size_t
matchParen(const std::vector<Token> &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].punct("("))
            ++depth;
        else if (t[i].punct(")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/**
 * Collects the names of `lint: stat-producer` annotated wrapper
 * functions: the identifier immediately before the first '(' on the
 * annotated line or the two lines below it (covers the repo's
 * return-type-on-its-own-line definition style).
 */
void
collectProducerWrappers(const LexedFile &f, std::set<std::string> &wrappers)
{
    const auto it = f.annotations.find("stat-producer");
    if (it == f.annotations.end())
        return;
    for (const int line : it->second) {
        const Token *prev_ident = nullptr;
        for (std::size_t i = 0; i < f.tokens.size(); ++i) {
            const Token &tok = f.tokens[i];
            if (tok.line < line || tok.line > line + 2)
                continue;
            if (tok.punct("(") && prev_ident != nullptr) {
                wrappers.insert(prev_ident->text);
                break;
            }
            prev_ident = tok.kind == Token::Ident ? &tok : nullptr;
        }
    }
}

/** Adds the members of every all-string brace list in @p f to
 *  @p produced: name tables like kSlotStatNames are registered at
 *  runtime via a loop, so their literals are legitimate stat names. */
void
collectNameTables(const LexedFile &f, std::set<std::string> &produced)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].punct("{") || i + 1 >= t.size() ||
            t[i + 1].kind != Token::String)
            continue;
        std::vector<const std::string *> members;
        std::size_t j = i + 1;
        bool ok = false;
        while (j < t.size()) {
            if (t[j].kind != Token::String)
                break;
            members.push_back(&t[j].text);
            ++j;
            if (j < t.size() && t[j].punct(",")) {
                ++j;
                if (j < t.size() && t[j].punct("}")) {
                    ok = true; // trailing comma
                    break;
                }
                continue;
            }
            if (j < t.size() && t[j].punct("}"))
                ok = true;
            break;
        }
        if (ok)
            for (const std::string *m : members)
                produced.insert(*m);
    }
}

void
indexFile(const SourceFile &src, const LexedFile &f,
          const std::set<std::string> &wrappers, IdentIndex &index)
{
    const std::string &path = src.path;
    const bool is_registry = path == kEnvRegistryPath;
    const auto &t = f.tokens;

    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];

        // -- environment names --
        if (tok.kind == Token::String && envShaped(tok.text)) {
            if (is_registry)
                index.env_registered.push_back({path, tok.line, tok.text});
            else if (!f.annotated("not-env", tok.line))
                index.env_uses.push_back({path, tok.line, tok.text});
        }

        // -- stat produce/consume sites (member calls) --
        if ((tok.punct(".") || tok.punct("->")) && i + 3 < t.size()) {
            const Token &m = t[i + 1];
            if (m.kind == Token::Ident && t[i + 2].punct("(") &&
                t[i + 3].kind == Token::String) {
                if (isProduceMethod(m.text))
                    index.stat_produced.insert(t[i + 3].text);
                else if (isConsumeMethod(m.text) &&
                         !f.annotated("stat-external", t[i + 3].line))
                    index.stat_consumed.push_back(
                        {path, t[i + 3].line, t[i + 3].text});
            }
            // ratio("num", "den"): both arguments are stat reads.
            if (m.ident("ratio") && i + 2 < t.size() && t[i + 2].punct("(")) {
                for (std::size_t j = i + 3;
                     j + 1 < t.size() && j < i + 8; ++j) {
                    if (t[j].kind == Token::String &&
                        (t[j + 1].punct(",") || t[j + 1].punct(")")) &&
                        !f.annotated("stat-external", t[j].line))
                        index.stat_consumed.push_back(
                            {path, t[j].line, t[j].text});
                    if (t[j].punct(")"))
                        break;
                }
            }
        }

        // -- producer wrappers (bare or qualified calls) --
        if (tok.kind == Token::Ident && wrappers.count(tok.text) != 0 &&
            i + 2 < t.size() && t[i + 1].punct("(") &&
            t[i + 2].kind == Token::String) {
            index.stat_produced.insert(t[i + 2].text);
        }

        // -- merge prefixes --
        if (tok.kind == Token::Ident &&
            (tok.text == "mergePrefixed" || tok.text == "merge_prefixed") &&
            i + 1 < t.size() && t[i + 1].punct("(")) {
            const std::size_t close = matchParen(t, i + 1);
            if (close == std::string::npos)
                continue;
            int depth = 0;
            std::size_t arg_start = std::string::npos;
            for (std::size_t j = i + 2; j < close; ++j) {
                if (t[j].punct("(") || t[j].punct("[") || t[j].punct("{") ||
                    t[j].punct("<"))
                    ++depth;
                else if (t[j].punct(")") || t[j].punct("]") ||
                         t[j].punct("}") || t[j].punct(">"))
                    --depth;
                else if (depth == 0 && t[j].punct(",")) {
                    arg_start = j + 1;
                    break;
                }
            }
            if (arg_start != std::string::npos &&
                t[arg_start].kind == Token::String && arg_start + 1 == close)
                index.merge_prefixes.insert(t[arg_start].text);
        }

        // -- mutex-typed declarations --
        if (tok.kind == Token::Ident && isMutexType(tok.text) &&
            i + 1 < t.size()) {
            std::size_t j = i + 1;
            while (j < t.size() &&
                   (t[j].punct("&") || t[j].punct("*") || t[j].ident("const")))
                ++j;
            if (j < t.size() && t[j].kind == Token::Ident &&
                (j + 1 >= t.size() || t[j + 1].punct(";") ||
                 t[j + 1].punct(",") || t[j + 1].punct(")") ||
                 t[j + 1].punct("{") || t[j + 1].punct("=")))
                index.mutex_names.insert(t[j].text);
        }
    }

    if (inSrc(path))
        collectNameTables(f, index.stat_produced);
}

} // namespace

IdentIndex
buildIndex(const std::vector<SourceFile> &files,
           const std::vector<LexedFile> &lexed)
{
    IdentIndex index;
    index.merge_prefixes.insert(std::string());

    // Pass 1: wrapper names, so pass 2 can attribute their call sites
    // regardless of file order.
    std::set<std::string> wrappers;
    for (const LexedFile &f : lexed)
        collectProducerWrappers(f, wrappers);

    for (std::size_t i = 0; i < files.size(); ++i) {
        if (files[i].path == kEnvRegistryPath)
            index.has_env_registry = true;
        indexFile(files[i], lexed[i], wrappers, index);
    }
    return index;
}

void
ruleEnvDrift(const IdentIndex &index, const std::string &readme_text,
             std::vector<Finding> &out)
{
    if (!index.has_env_registry)
        return; // loose fixture run without a registry: nothing to check
    std::set<std::string> registered;
    for (const NameUse &r : index.env_registered)
        registered.insert(r.name);

    for (const NameUse &u : index.env_uses) {
        if (registered.count(u.name) != 0)
            continue;
        out.push_back(
            {"env-drift", u.file, u.line,
             "\"" + u.name + "\" names no variable registered in "
             "src/common/env.cc — register the knob (or annotate the "
             "line '// lint: not-env <why>' if it is not an environment "
             "variable)"});
    }

    if (readme_text.empty())
        return;
    std::set<std::string> reported;
    for (const NameUse &r : index.env_registered) {
        if (!reported.insert(r.name).second)
            continue;
        if (readme_text.find(r.name) == std::string::npos) {
            out.push_back(
                {"env-drift", r.file, r.line,
                 "registered knob " + r.name + " is not mentioned in "
                 "README.md — document it in the environment-variable "
                 "table"});
        }
    }
}

void
ruleStatDrift(const IdentIndex &index, std::vector<Finding> &out)
{
    for (const NameUse &u : index.stat_consumed) {
        if (index.stat_produced.count(u.name) != 0)
            continue;
        bool resolved = false;
        for (const std::string &prefix : index.merge_prefixes) {
            if (prefix.empty() || u.name.size() <= prefix.size() ||
                u.name.rfind(prefix, 0) != 0)
                continue;
            if (index.stat_produced.count(u.name.substr(prefix.size())) !=
                0) {
                resolved = true;
                break;
            }
        }
        if (resolved)
            continue;
        out.push_back(
            {"stat-drift", u.file, u.line,
             "stat \"" + u.name + "\" is read here but produced by no "
             "add/set/setCounter/dist site under any merge prefix — a "
             "renamed counter? (annotate '// lint: stat-external <why>' "
             "for deliberate negative reads)"});
    }
}

void
ruleLockDiscipline(const LexedFile &lexed, const std::string &path,
                   const IdentIndex &index, std::vector<Finding> &out)
{
    const auto &t = lexed.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].kind != Token::Ident ||
            index.mutex_names.count(t[i].text) == 0)
            continue;
        if (!t[i + 1].punct(".") && !t[i + 1].punct("->"))
            continue;
        const Token &m = t[i + 2];
        if (!m.ident("lock") && !m.ident("unlock"))
            continue;
        if (!t[i + 3].punct("("))
            continue;
        if (lexed.annotated("manual-lock", t[i].line))
            continue;
        out.push_back(
            {"lock-discipline", path, t[i].line,
             "naked " + t[i].text + "." + m.text + "() — an early "
             "return or exception leaks the mutex; use std::lock_guard/"
             "std::scoped_lock/std::unique_lock (or annotate "
             "'// lint: manual-lock <why>')"});
    }
}

} // namespace lint
} // namespace caba
