/**
 * @file
 * caba-lint — project-specific static analysis enforcing the
 * simulator's determinism and invariant contracts (see DESIGN.md §9 and
 * §14). v2 is a whole-program analyzer: besides the per-file token
 * rules it builds an include graph and a cross-TU identifier index over
 * the entire input set.
 *
 * Rules (rule ids are stable; they appear in findings, baselines and
 * the JSON report):
 *
 *  - determinism      rand/srand, std::random_device, time(),
 *                     std::chrono::*_clock::now and pointer-value
 *                     comparisons in sort predicates are banned outside
 *                     a whitelist (common/rng.h, common/self_profile.*,
 *                     common/trace.cc, harness/sweep_service.cc).
 *  - iteration-order  range-for over a variable declared as
 *                     std::unordered_map/set anywhere in the scanned
 *                     tree is flagged in src/ unless the line (or the
 *                     line above) carries `// lint: order-insensitive`.
 *  - env-access       getenv is only legal inside src/common/env.cc,
 *                     the environment registry.
 *  - check-discipline bare assert( in src/ must be CABA_CHECK (always
 *                     on, prints context, independent of NDEBUG).
 *  - stat-hygiene     StatSet names must be snake_case; re-registering
 *                     the same set/setCounter name in one file is a
 *                     silent overwrite and an error; mergePrefixed
 *                     prefixes must be snake_case ending in '_'.
 *  - experiment-registry
 *                     CABA_REGISTER_EXPERIMENT names (which double as
 *                     caba_bench CLI selectors and JSON "bench" ids)
 *                     must be snake_case and unique across the whole
 *                     tree — a duplicate panics at static-init time.
 *  - include-cycle    strongly connected components in the quoted-
 *                     include graph over src/ (tools/lint/graph.h).
 *  - layering         includes must point sideways or down the layer
 *                     map in DESIGN.md §14, never up.
 *  - env-drift        every full-literal CABA_* string must name a
 *                     variable registered in src/common/env.cc, and
 *                     every registered knob must appear in README.md
 *                     (tools/lint/index.h).
 *  - stat-drift       stat names read via get/ratio/findDist/isGauge
 *                     must be produced by some add/set/setCounter/dist
 *                     site, modulo mergePrefixed prefixes — a silently
 *                     renamed counter orphans its readers loudly.
 *  - lock-discipline  naked .lock()/.unlock() on mutex-typed variables;
 *                     use lock_guard / scoped_lock / unique_lock.
 */
#ifndef CABA_TOOLS_LINT_LINT_H
#define CABA_TOOLS_LINT_LINT_H

#include <set>
#include <string>
#include <vector>

namespace caba {
namespace lint {

struct Finding
{
    std::string rule;      ///< stable rule id (see file comment)
    std::string file;      ///< repo-relative path, '/'-separated
    int line = 0;          ///< 1-based
    std::string message;
};

/** A source file to lint: @p path is the repo-relative path (which
 *  decides rule scoping and whitelists), @p text the contents. */
struct SourceFile
{
    std::string path;
    std::string text;
};

/** Driver options. The defaults reproduce a serial all-rules run. */
struct Options
{
    /** Worker threads for lexing and the per-file rules. Findings are
     *  merged in deterministic order, so output is byte-identical at
     *  any job count; <= 1 runs inline with no pool. */
    int jobs = 1;

    /** Rule ids to run; empty = all. Names must come from ruleNames(). */
    std::set<std::string> rules;

    /** README.md contents for env-drift's documentation direction
     *  ("" = skip that direction). runTree fills this from
     *  <root>/README.md when left empty. */
    std::string readme_text;
};

/** Every rule id, in fixed report order. */
const std::vector<std::string> &ruleNames();

/**
 * Lints @p files as one program: pass 1 lexes (parallel across
 * opts.jobs workers), pass 2 builds the cross-file structures (unordered
 * names, experiment registrations, include graph, identifier index),
 * pass 3 applies the per-file rules (parallel), pass 4 the
 * whole-program rules. Findings are sorted by (file, line, rule,
 * message) regardless of job count.
 */
std::vector<Finding> run(const std::vector<SourceFile> &files,
                         const Options &opts);

/** run() with default options (serial, all rules). */
std::vector<Finding> run(const std::vector<SourceFile> &files);

/**
 * Reads .h, .cc and .cpp files under <root>/{bench, examples, src,
 * tests, tools} (lexicographic walk, so results are machine-independent),
 * skipping tools/lint/fixtures/ (deliberate violations). Sets @p *files.
 * On I/O failure returns false and sets @p error.
 */
bool collectTree(const std::string &root, std::vector<SourceFile> *files,
                 std::string *error);

/**
 * collectTree + run. When @p opts.readme_text is empty, <root>/README.md
 * is read for env-drift (a missing README skips that direction).
 */
bool runTree(const std::string &root, Options opts,
             std::vector<Finding> *out, std::string *error);

/** runTree with default options. */
bool runTree(const std::string &root, std::vector<Finding> *out,
             std::string *error);

/** Human-readable report: "file:line: [rule] message" lines. */
std::string toText(const std::vector<Finding> &findings);

/**
 * Deterministic JSON report (schema caba-lint-v1): per-rule counts and
 * the full finding list, with @p baselined entries marked.
 */
std::string toJson(const std::vector<Finding> &findings,
                   const std::vector<Finding> &baselined);

/**
 * Parses a baseline document (same schema as toJson; only the rule,
 * file and message fields are consulted — line numbers may drift).
 * Returns false on malformed input.
 */
bool parseBaseline(const std::string &json_text, std::vector<Finding> *out,
                   std::string *error);

/**
 * Splits @p findings into @p fresh and @p matched against @p baseline.
 * A finding matches a baseline entry with the same rule, file and
 * message, regardless of line.
 */
void applyBaseline(const std::vector<Finding> &findings,
                   const std::vector<Finding> &baseline,
                   std::vector<Finding> *fresh,
                   std::vector<Finding> *matched);

} // namespace lint
} // namespace caba

#endif // CABA_TOOLS_LINT_LINT_H
