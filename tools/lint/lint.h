/**
 * @file
 * caba-lint — project-specific static analysis enforcing the
 * simulator's determinism and invariant contracts (see DESIGN.md §9).
 *
 * Rules (rule ids are stable; they appear in findings, baselines and
 * the JSON report):
 *
 *  - determinism      rand/srand, std::random_device, time(),
 *                     std::chrono::*_clock::now and pointer-value
 *                     comparisons in sort predicates are banned outside
 *                     a whitelist (common/rng.h, common/self_profile.*,
 *                     common/trace.cc).
 *  - iteration-order  range-for over a variable declared as
 *                     std::unordered_map/set anywhere in the scanned
 *                     tree is flagged in src/ unless the line (or the
 *                     line above) carries `// lint: order-insensitive`.
 *  - env-access       getenv is only legal inside src/common/env.cc,
 *                     the environment registry.
 *  - check-discipline bare assert( in src/ must be CABA_CHECK (always
 *                     on, prints context, independent of NDEBUG).
 *  - stat-hygiene     StatSet names must be snake_case; re-registering
 *                     the same set/setCounter name in one file is a
 *                     silent overwrite and an error; mergePrefixed
 *                     prefixes must be snake_case ending in '_'.
 *  - experiment-registry
 *                     CABA_REGISTER_EXPERIMENT names (which double as
 *                     caba_bench CLI selectors and JSON "bench" ids)
 *                     must be snake_case and unique across the whole
 *                     tree — a duplicate panics at static-init time.
 */
#ifndef CABA_TOOLS_LINT_LINT_H
#define CABA_TOOLS_LINT_LINT_H

#include <string>
#include <vector>

namespace caba {
namespace lint {

struct Finding
{
    std::string rule;      ///< stable rule id (see file comment)
    std::string file;      ///< repo-relative path, '/'-separated
    int line = 0;          ///< 1-based
    std::string message;
};

/** A source file to lint: @p path is the repo-relative path (which
 *  decides rule scoping and whitelists), @p text the contents. */
struct SourceFile
{
    std::string path;
    std::string text;
};

/**
 * Lints @p files as one project: pass 1 collects the names of every
 * variable declared with an unordered container type, pass 2 applies
 * all rules per file. Findings are sorted by (file, line, rule).
 */
std::vector<Finding> run(const std::vector<SourceFile> &files);

/**
 * Reads .h, .cc and .cpp files under <root>/bench, <root>/src and
 * <root>/tests (lexicographic walk, so results are machine-independent)
 * and lints them. On I/O failure returns false and sets @p error.
 */
bool runTree(const std::string &root, std::vector<Finding> *out,
             std::string *error);

/** Human-readable report: "file:line: [rule] message" lines. */
std::string toText(const std::vector<Finding> &findings);

/**
 * Deterministic JSON report (schema caba-lint-v1): per-rule counts and
 * the full finding list, with @p baselined entries marked.
 */
std::string toJson(const std::vector<Finding> &findings,
                   const std::vector<Finding> &baselined);

/**
 * Parses a baseline document (same schema as toJson; only the rule,
 * file and message fields are consulted — line numbers may drift).
 * Returns false on malformed input.
 */
bool parseBaseline(const std::string &json_text, std::vector<Finding> *out,
                   std::string *error);

/**
 * Splits @p findings into @p fresh and @p matched against @p baseline.
 * A finding matches a baseline entry with the same rule, file and
 * message, regardless of line.
 */
void applyBaseline(const std::vector<Finding> &findings,
                   const std::vector<Finding> &baseline,
                   std::vector<Finding> *fresh,
                   std::vector<Finding> *matched);

} // namespace lint
} // namespace caba

#endif // CABA_TOOLS_LINT_LINT_H
