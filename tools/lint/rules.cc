/**
 * @file
 * The six caba-lint rules, pattern-matching over lexed token streams.
 * Each rule is deliberately narrow: it must fire on every seeded
 * violation in tools/lint/fixtures/ and stay silent on the real tree
 * (or the finding goes to tools/lint/baseline.json with a reason).
 */
#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "common/thread_pool.h"
#include "graph.h"
#include "index.h"
#include "lexer.h"
#include "lint.h"

namespace caba {
namespace lint {

namespace {

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inSrc(const std::string &path)
{
    return startsWith(path, "src/");
}

/** Files allowed to touch wall clocks / entropy: the seeded RNG itself,
 *  the stderr-only self-profiler, the in-loop profiler (host-time
 *  attribution that never reads simulation state), the trace sink
 *  (whose timestamps are simulated cycles; the whitelist covers its
 *  atexit machinery), and the sweep service (request deadlines and
 *  per-request wall time — never simulation state). */
bool
determinismWhitelisted(const std::string &path)
{
    static const std::set<std::string> allow = {
        "src/common/rng.h",
        "src/common/self_profile.h",
        "src/common/self_profile.cc",
        "src/common/prof.cc",
        "src/common/trace.cc",
        "src/harness/sweep_service.cc",
    };
    return allow.count(path) != 0;
}

bool
isEnvRegistry(const std::string &path)
{
    return path == "src/common/env.cc";
}

/** [a-z][a-z0-9]*(_[a-z0-9]+)* — lower snake_case, no leading/trailing
 *  or doubled underscores. */
bool
snakeCase(const std::string &s)
{
    if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
        return false;
    bool prev_underscore = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '_') {
            if (prev_underscore || i + 1 == s.size())
                return false;
            prev_underscore = true;
            continue;
        }
        if (!std::islower(static_cast<unsigned char>(c)) &&
            !std::isdigit(static_cast<unsigned char>(c)))
            return false;
        prev_underscore = false;
    }
    return true;
}

/** Index of the ')' matching the '(' at @p open, or npos. */
std::size_t
matchParen(const std::vector<Token> &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].punct("("))
            ++depth;
        else if (t[i].punct(")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

bool
isMemberAccess(const std::vector<Token> &t, std::size_t i)
{
    return i > 0 && (t[i - 1].punct(".") || t[i - 1].punct("->"));
}

void
add(std::vector<Finding> &out, const std::string &rule,
    const std::string &file, int line, std::string message)
{
    out.push_back({rule, file, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// determinism

const char *const kSortFns[] = {
    "sort", "stable_sort", "partial_sort", "nth_element",
    "min_element", "max_element",
};

bool
isSortFn(const std::string &s)
{
    for (const char *fn : kSortFns)
        if (s == fn)
            return true;
    return false;
}

/** One lambda parameter: pointer-typed iff its declarator contains '*'. */
struct LambdaParam
{
    std::string name;
    bool pointer = false;
};

/** Splits the token span [begin, end) at top-level commas and extracts
 *  (last-identifier, saw-star) per parameter. */
std::vector<LambdaParam>
parseParams(const std::vector<Token> &t, std::size_t begin, std::size_t end)
{
    std::vector<LambdaParam> params;
    LambdaParam cur;
    int depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
        if (t[i].punct("(") || t[i].punct("<") || t[i].punct("["))
            ++depth;
        else if (t[i].punct(")") || t[i].punct(">") || t[i].punct("]"))
            --depth;
        else if (t[i].punct(",") && depth == 0) {
            if (!cur.name.empty())
                params.push_back(cur);
            cur = LambdaParam();
            continue;
        }
        if (t[i].punct("*"))
            cur.pointer = true;
        if (t[i].kind == Token::Ident)
            cur.name = t[i].text;
    }
    if (!cur.name.empty())
        params.push_back(cur);
    return params;
}

/** True when token @p i is a bare use of pointer parameter: the
 *  identifier itself, not dereferenced and not a member access base. */
bool
barePointerUse(const std::vector<Token> &t, std::size_t i,
               const std::vector<LambdaParam> &params)
{
    if (t[i].kind != Token::Ident)
        return false;
    bool is_ptr_param = false;
    for (const LambdaParam &p : params)
        if (p.pointer && p.name == t[i].text)
            is_ptr_param = true;
    if (!is_ptr_param)
        return false;
    if (i > 0 && (t[i - 1].punct("*") || t[i - 1].punct(".") ||
                  t[i - 1].punct("->")))
        return false;   // *a (value) or x.a / x->a (different variable)
    if (i + 1 < t.size() &&
        (t[i + 1].punct("->") || t[i + 1].punct(".") || t[i + 1].punct("[") ||
         t[i + 1].punct("(")))
        return false;   // a->key, a.key, a[i], a(...) — not the address
    return true;
}

/** Flags `a < b` / `a > b` comparisons of raw pointer parameters inside
 *  comparator lambdas passed to the sort family. */
void
checkSortPredicate(const std::vector<Token> &t, std::size_t call_open,
                   std::size_t call_close, const std::string &path,
                   std::vector<Finding> &out)
{
    for (std::size_t i = call_open + 1; i < call_close; ++i) {
        // Lambda introducer: '[' not preceded by a value expression.
        if (!t[i].punct("["))
            continue;
        if (i > 0 && (t[i - 1].kind == Token::Ident ||
                      t[i - 1].punct(")") || t[i - 1].punct("]")))
            continue;   // subscript, not a lambda
        // Capture list.
        std::size_t j = i;
        int depth = 0;
        for (; j < call_close; ++j) {
            if (t[j].punct("["))
                ++depth;
            else if (t[j].punct("]") && --depth == 0)
                break;
        }
        if (j >= call_close || !t[j + 1].punct("("))
            continue;
        const std::size_t params_open = j + 1;
        const std::size_t params_close = matchParen(t, params_open);
        if (params_close == std::string::npos || params_close >= call_close)
            continue;
        const auto params =
            parseParams(t, params_open + 1, params_close);
        // Body: first '{' after the parameter list.
        std::size_t body_open = params_close + 1;
        while (body_open < call_close && !t[body_open].punct("{"))
            ++body_open;
        if (body_open >= call_close)
            continue;
        int braces = 0;
        std::size_t body_close = body_open;
        for (; body_close < t.size(); ++body_close) {
            if (t[body_close].punct("{"))
                ++braces;
            else if (t[body_close].punct("}") && --braces == 0)
                break;
        }
        for (std::size_t k = body_open + 1;
             k + 1 < body_close && k < t.size(); ++k) {
            if (!t[k].punct("<") && !t[k].punct(">"))
                continue;
            if (barePointerUse(t, k - 1, params) ||
                barePointerUse(t, k + 1, params)) {
                add(out, "determinism", path, t[k].line,
                    "sort predicate compares pointer values — addresses "
                    "vary run to run; compare a stable key instead");
                break;  // one finding per lambda is enough
            }
        }
        i = body_close;
    }
}

void
ruleDeterminism(const LexedFile &f, const std::string &path,
                std::vector<Finding> &out)
{
    if (determinismWhitelisted(path))
        return;
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Ident)
            continue;
        const bool calls =
            i + 1 < t.size() && t[i + 1].punct("(");
        const bool member = isMemberAccess(t, i);
        if ((t[i].text == "rand" || t[i].text == "srand") && calls &&
            !member) {
            add(out, "determinism", path, t[i].line,
                "call to " + t[i].text +
                    "() — use caba::Rng (common/rng.h) with an explicit "
                    "seed");
            continue;
        }
        if (t[i].text == "random_device") {
            add(out, "determinism", path, t[i].line,
                "std::random_device draws OS entropy — use caba::Rng "
                "with an explicit seed");
            continue;
        }
        if (t[i].text == "time" && calls && !member) {
            // std::time( and bare time( are hazards; other::time( is not.
            if (i > 0 && t[i - 1].punct("::") &&
                !(i > 1 && t[i - 2].ident("std")))
                continue;
            add(out, "determinism", path, t[i].line,
                "call to time() — wall-clock reads make runs "
                "unreproducible; use simulated cycles");
            continue;
        }
        if ((t[i].text == "steady_clock" || t[i].text == "system_clock" ||
             t[i].text == "high_resolution_clock") &&
            i + 2 < t.size() && t[i + 1].punct("::") && t[i + 2].ident("now")) {
            add(out, "determinism", path, t[i].line,
                "std::chrono::" + t[i].text +
                    "::now() — wall-clock reads are banned outside "
                    "the determinism whitelist (profilers and the "
                    "sweep service)");
            continue;
        }
        if (isSortFn(t[i].text) && calls && !member) {
            const std::size_t close = matchParen(t, i + 1);
            if (close != std::string::npos)
                checkSortPredicate(t, i + 1, close, path, out);
        }
    }
}

// ---------------------------------------------------------------------------
// iteration-order

const char *const kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

bool
isUnorderedType(const std::string &s)
{
    for (const char *u : kUnorderedTypes)
        if (s == u)
            return true;
    return false;
}

/** Records every identifier declared with an unordered container type
 *  (members, locals, parameters) into @p names. */
void
collectUnorderedNames(const LexedFile &f, std::set<std::string> &names)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Ident || !isUnorderedType(t[i].text))
            continue;
        std::size_t j = i + 1;
        if (j >= t.size() || !t[j].punct("<"))
            continue;
        // Balance template angles; `>>` closes two.
        int depth = 0;
        for (; j < t.size(); ++j) {
            if (t[j].punct("<"))
                ++depth;
            else if (t[j].punct(">")) {
                if (--depth == 0) {
                    ++j;
                    break;
                }
            } else if (t[j].punct(">>")) {
                depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            } else if (t[j].punct(";") || t[j].punct("{")) {
                depth = -1; // malformed / not a declaration
                break;
            }
        }
        if (depth != 0)
            continue;
        // Skip cv/ref tokens, take the declarator name.
        while (j < t.size() &&
               (t[j].ident("const") || t[j].punct("&") || t[j].punct("*") ||
                t[j].punct("&&")))
            ++j;
        if (j >= t.size() || t[j].kind != Token::Ident)
            continue;
        // A following '(' means a function declarator, not a variable.
        if (j + 1 < t.size() && t[j + 1].punct("("))
            continue;
        names.insert(t[j].text);
    }
}

bool
annotated(const LexedFile &f, int line)
{
    return f.annotated("order-insensitive", line);
}

void
ruleIterationOrder(const LexedFile &f, const std::string &path,
                   const std::set<std::string> &unordered_names,
                   std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident("for") || !t[i + 1].punct("("))
            continue;
        const std::size_t close = matchParen(t, i + 1);
        if (close == std::string::npos)
            continue;
        // Find the range-for ':' at top nesting level; a ';' there means
        // a classic for loop.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].punct("(") || t[j].punct("[") || t[j].punct("{"))
                ++depth;
            else if (t[j].punct(")") || t[j].punct("]") || t[j].punct("}"))
                --depth;
            else if (depth == 0 && t[j].punct(";"))
                break;
            else if (depth == 0 && t[j].punct(":")) {
                colon = j;
                break;
            }
        }
        if (colon == std::string::npos || colon + 1 >= close)
            continue;
        // The iterated expression resolves to an unordered container
        // only when its final token is a known unordered variable
        // (calls and complex expressions are out of a lexer's reach).
        const Token &last = t[close - 1];
        if (last.kind != Token::Ident || !unordered_names.count(last.text))
            continue;
        if (annotated(f, t[i].line) || annotated(f, t[colon].line))
            continue;
        add(out, "iteration-order", path, t[i].line,
            "range-for over unordered container '" + last.text +
                "' — iteration order is implementation-defined; iterate "
                "a sorted copy or annotate the line with "
                "'// lint: order-insensitive <reason>'");
    }
}

// ---------------------------------------------------------------------------
// env-access

void
ruleEnvAccess(const LexedFile &f, const std::string &path,
              std::vector<Finding> &out)
{
    if (isEnvRegistry(path))
        return;
    for (const Token &tok : f.tokens) {
        if (tok.ident("getenv")) {
            add(out, "env-access", path, tok.line,
                "direct getenv — read the environment through the "
                "registry in common/env.h (and register the variable "
                "there)");
        }
    }
}

// ---------------------------------------------------------------------------
// check-discipline

void
ruleCheckDiscipline(const LexedFile &f, const std::string &path,
                    std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident("assert") || !t[i + 1].punct("("))
            continue;
        if (isMemberAccess(t, i) || (i > 0 && t[i - 1].punct("::")))
            continue;
        add(out, "check-discipline", path, t[i].line,
            "bare assert() compiles out under NDEBUG — use CABA_CHECK "
            "(common/log.h), which always fires and prints context");
    }
}

// ---------------------------------------------------------------------------
// stat-hygiene

const char *const kStatMethods[] = {"add", "set", "setCounter", "dist"};

bool
isStatMethod(const std::string &s)
{
    for (const char *m : kStatMethods)
        if (s == m)
            return true;
    return false;
}

bool
prefixOk(const std::string &p)
{
    return p.size() >= 2 && p.back() == '_' &&
           snakeCase(p.substr(0, p.size() - 1));
}

void
ruleStatHygiene(const LexedFile &f, const std::string &path,
                std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    // Names registered with overwrite semantics in this file.
    std::map<std::string, int> overwrite_names;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].punct(".") || t[i].punct("->")) {
            const Token &m = t[i + 1];
            if (m.kind != Token::Ident || !isStatMethod(m.text))
                continue;
            if (!t[i + 2].punct("(") || t[i + 3].kind != Token::String)
                continue;
            const std::string &name = t[i + 3].text;
            if (!snakeCase(name)) {
                add(out, "stat-hygiene", path, t[i + 3].line,
                    "stat name \"" + name +
                        "\" violates the snake_case convention "
                        "(lowercase, single underscores)");
            }
            if (m.text == "set" || m.text == "setCounter") {
                auto [it, fresh] =
                    overwrite_names.emplace(name, t[i + 3].line);
                if (!fresh) {
                    add(out, "stat-hygiene", path, t[i + 3].line,
                        "duplicate stat registration \"" + name +
                            "\" — " + m.text +
                            " overwrites the value first registered on "
                            "line " + std::to_string(it->second));
                }
            }
            continue;
        }
        // mergePrefixed(set, "prefix_"): the literal must be a
        // snake_case subsystem prefix ending in '_'.
        if (t[i].kind == Token::Ident &&
            (t[i].text == "mergePrefixed" || t[i].text == "merge_prefixed") &&
            t[i + 1].punct("(")) {
            const std::size_t close = matchParen(t, i + 1);
            if (close == std::string::npos)
                continue;
            // Second top-level argument.
            int depth = 0;
            std::size_t arg_start = std::string::npos;
            for (std::size_t j = i + 2; j < close; ++j) {
                if (t[j].punct("(") || t[j].punct("[") || t[j].punct("{") ||
                    t[j].punct("<"))
                    ++depth;
                else if (t[j].punct(")") || t[j].punct("]") ||
                         t[j].punct("}") || t[j].punct(">"))
                    --depth;
                else if (depth == 0 && t[j].punct(",")) {
                    arg_start = j + 1;
                    break;
                }
            }
            if (arg_start == std::string::npos ||
                t[arg_start].kind != Token::String ||
                arg_start + 1 != close)
                continue;   // dynamic prefix or more tokens: not checkable
            const std::string &prefix = t[arg_start].text;
            if (!prefixOk(prefix)) {
                add(out, "stat-hygiene", path, t[arg_start].line,
                    "merge prefix \"" + prefix +
                        "\" must be a snake_case subsystem tag ending "
                        "in '_' (e.g. \"dram_\")");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// experiment-registry

/** One CABA_REGISTER_EXPERIMENT(name) call site. */
struct ExperimentRegistration
{
    std::string file;
    int line = 0;
    std::string name;
};

/** Collects `CABA_REGISTER_EXPERIMENT ( ident )` call sites. The macro
 *  definition itself lives on preprocessor lines the lexer skips, so
 *  only invocations match. */
void
collectExperimentRegistrations(const LexedFile &f, const std::string &path,
                               std::vector<ExperimentRegistration> &regs)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        // lint: not-env the registration macro's name, not a knob
        if (!t[i].ident("CABA_REGISTER_EXPERIMENT") || !t[i + 1].punct("("))
            continue;
        if (t[i + 2].kind != Token::Ident || !t[i + 3].punct(")"))
            continue;
        regs.push_back({path, t[i + 2].line, t[i + 2].text});
    }
}

/** Experiment names double as CLI selectors and JSON "bench" ids: they
 *  must be snake_case and globally unique. A duplicate would panic in
 *  ExperimentRegistry::add at static-init time; lint catches it before
 *  any binary runs. Registrations are sorted so the finding lands on
 *  the lexicographically later site regardless of input file order. */
void
ruleExperimentRegistry(std::vector<ExperimentRegistration> regs,
                       std::vector<Finding> &out)
{
    std::sort(regs.begin(), regs.end(),
              [](const ExperimentRegistration &a,
                 const ExperimentRegistration &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.name < b.name;
              });
    std::map<std::string, std::string> first_file;
    for (const ExperimentRegistration &r : regs) {
        if (!snakeCase(r.name)) {
            add(out, "experiment-registry", r.file, r.line,
                "experiment name '" + r.name +
                    "' violates the snake_case convention (lowercase, "
                    "single underscores)");
        }
        auto [it, fresh] = first_file.emplace(r.name, r.file);
        if (!fresh) {
            add(out, "experiment-registry", r.file, r.line,
                "duplicate experiment registration '" + r.name +
                    "' — first registered in " + it->second +
                    "; the registry panics on duplicates at startup");
        }
    }
}

bool
enabled(const Options &opts, const char *rule)
{
    return opts.rules.empty() || opts.rules.count(rule) != 0;
}

} // namespace

std::vector<Finding>
run(const std::vector<SourceFile> &files, const Options &opts)
{
    const int n = static_cast<int>(files.size());

    // Pass 1: lex, embarrassingly parallel, results indexed by file so
    // ordering cannot depend on scheduling.
    std::vector<LexedFile> lexed(files.size());
    parallelFor(n, opts.jobs,
                [&](int i) { lexed[static_cast<std::size_t>(i)] =
                                 lex(files[static_cast<std::size_t>(i)].text); });

    // Pass 2 (serial): the cross-file structures every later pass reads.
    std::set<std::string> unordered_names;
    std::vector<ExperimentRegistration> registrations;
    for (std::size_t i = 0; i < files.size(); ++i) {
        // Unordered declarations are collected from src/ only: a
        // test-local container must not poison same-named variables in
        // the simulator (the rule itself also only fires in src/).
        if (inSrc(files[i].path))
            collectUnorderedNames(lexed[i], unordered_names);
        collectExperimentRegistrations(lexed[i], files[i].path,
                                       registrations);
    }
    const IdentIndex index = buildIndex(files, lexed);

    // Pass 3: per-file rules, parallel into per-file slots merged in
    // file order — output is independent of the job count.
    std::vector<std::vector<Finding>> per_file(files.size());
    parallelFor(n, opts.jobs, [&](int idx) {
        const std::size_t i = static_cast<std::size_t>(idx);
        const std::string &path = files[i].path;
        const LexedFile &lf = lexed[i];
        std::vector<Finding> &slot = per_file[i];
        if (enabled(opts, "determinism"))
            ruleDeterminism(lf, path, slot);
        if (enabled(opts, "env-access"))
            ruleEnvAccess(lf, path, slot);
        if (enabled(opts, "lock-discipline"))
            ruleLockDiscipline(lf, path, index, slot);
        if (inSrc(path)) {
            if (enabled(opts, "iteration-order"))
                ruleIterationOrder(lf, path, unordered_names, slot);
            if (enabled(opts, "check-discipline"))
                ruleCheckDiscipline(lf, path, slot);
            if (enabled(opts, "stat-hygiene"))
                ruleStatHygiene(lf, path, slot);
        }
    });

    std::vector<Finding> out;
    for (std::vector<Finding> &slot : per_file)
        for (Finding &f : slot)
            out.push_back(std::move(f));

    // Pass 4 (serial): whole-program rules.
    if (enabled(opts, "experiment-registry"))
        ruleExperimentRegistry(std::move(registrations), out);
    if (enabled(opts, "include-cycle") || enabled(opts, "layering")) {
        const IncludeGraph graph = buildIncludeGraph(files);
        if (enabled(opts, "include-cycle"))
            ruleIncludeCycle(graph, out);
        if (enabled(opts, "layering"))
            ruleLayering(graph, out);
    }
    if (enabled(opts, "env-drift"))
        ruleEnvDrift(index, opts.readme_text, out);
    if (enabled(opts, "stat-drift"))
        ruleStatDrift(index, out);

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return out;
}

std::vector<Finding>
run(const std::vector<SourceFile> &files)
{
    return run(files, Options());
}

} // namespace lint
} // namespace caba
