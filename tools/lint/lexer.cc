#include "lexer.h"

#include <cctype>

namespace caba {
namespace lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators, longest first (only ones whose splitting
 *  would mislead a rule need to be here; `>>=` before `>>` before `>`). */
const char *const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*", "##",
};

class Lexer
{
  public:
    explicit Lexer(const std::string &text) : text_(text) {}

    LexedFile
    run()
    {
        while (pos_ < text_.size())
            step();
        return std::move(out_);
    }

  private:
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        const char c = text_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }

    void
    emit(Token::Kind kind, std::string text, int line)
    {
        out_.tokens.push_back({kind, std::move(text), line});
    }

    void
    noteComment(const std::string &body, int line)
    {
        // `lint: <tag> <reason>` — the tag is the maximal run of
        // [a-z-] after the marker; the reason is free text for humans.
        const std::size_t at = body.find("lint: ");
        if (at == std::string::npos)
            return;
        std::size_t i = at + 6;
        std::string tag;
        while (i < body.size() &&
               (std::islower(static_cast<unsigned char>(body[i])) ||
                body[i] == '-'))
            tag += body[i++];
        if (!tag.empty())
            out_.annotations[tag].insert(line);
    }

    /** Consumes to end of line, honoring backslash continuations. */
    void
    skipLogicalLine()
    {
        while (pos_ < text_.size()) {
            const char c = advance();
            if (c == '\\' && peek() == '\n') {
                advance();
                continue;
            }
            // A // comment inside a directive can still carry an
            // annotation and hides any continuation that follows it.
            if (c == '/' && peek() == '/') {
                lineComment();
                return;
            }
            if (c == '/' && peek() == '*') {
                advance();
                blockComment();
                continue;
            }
            if (c == '\n')
                return;
        }
    }

    void
    lineComment()
    {
        const int start = line_;
        std::string body;
        advance(); // second '/'
        while (pos_ < text_.size() && peek() != '\n')
            body += advance();
        noteComment(body, start);
    }

    void
    blockComment()
    {
        const int start = line_;
        std::string body;
        advance(); // '*'
        while (pos_ < text_.size()) {
            if (peek() == '*' && peek(1) == '/') {
                advance();
                advance();
                break;
            }
            body += advance();
        }
        noteComment(body, start);
    }

    /** Body of a quoted literal after the opening quote was consumed. */
    std::string
    quoted(char close)
    {
        std::string body;
        while (pos_ < text_.size()) {
            const char c = advance();
            if (c == close)
                break;
            if (c == '\\' && pos_ < text_.size()) {
                body += c;
                body += advance();
                continue;
            }
            body += c;
        }
        return body;
    }

    /** R"delim( ... )delim" with the R and opening quote consumed. */
    std::string
    rawString()
    {
        std::string delim;
        while (pos_ < text_.size() && peek() != '(')
            delim += advance();
        if (pos_ < text_.size())
            advance(); // '('
        const std::string close = ")" + delim + "\"";
        std::string body;
        while (pos_ < text_.size()) {
            if (text_.compare(pos_, close.size(), close) == 0) {
                for (std::size_t i = 0; i < close.size(); ++i)
                    advance();
                break;
            }
            body += advance();
        }
        return body;
    }

    void
    step()
    {
        const char c = peek();
        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            if (c == '\n')
                at_line_start_ = true;
            advance();
            return;
        }
        const int line = line_;
        // Preprocessor directive: '#' with only whitespace before it on
        // the line (comments between a newline and '#' don't occur in
        // this repo's layout and are deliberately not handled).
        if (c == '#' && at_line_start_) {
            skipLogicalLine();
            at_line_start_ = true;
            return;
        }
        if (c == '/' && peek(1) == '/') {
            advance();
            lineComment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            blockComment();
            return;
        }
        at_line_start_ = false;
        if (identStart(c)) {
            std::string id;
            while (identChar(peek()))
                id += advance();
            // String/char prefixes: R"..., u8"..., L'x' etc.
            if (peek() == '"') {
                const bool raw = !id.empty() && id.back() == 'R';
                const std::string base = raw ? id.substr(0, id.size() - 1) : id;
                if (base.empty() || base == "u8" || base == "u" ||
                    base == "U" || base == "L") {
                    advance(); // opening quote
                    emit(Token::String, raw ? rawString() : quoted('"'), line);
                    return;
                }
            }
            if (peek() == '\'' &&
                (id == "u8" || id == "u" || id == "U" || id == "L")) {
                advance();
                emit(Token::CharLit, quoted('\''), line);
                return;
            }
            emit(Token::Ident, std::move(id), line);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::string num;
            num += advance();
            while (pos_ < text_.size()) {
                const char n = peek();
                if (identChar(n) || n == '.' || n == '\'') {
                    num += advance();
                    continue;
                }
                // Exponent signs: 1e-5, 0x1p+3.
                if ((n == '+' || n == '-') && !num.empty() &&
                    (num.back() == 'e' || num.back() == 'E' ||
                     num.back() == 'p' || num.back() == 'P')) {
                    num += advance();
                    continue;
                }
                break;
            }
            emit(Token::Number, std::move(num), line);
            return;
        }
        if (c == '"') {
            advance();
            emit(Token::String, quoted('"'), line);
            return;
        }
        if (c == '\'') {
            advance();
            emit(Token::CharLit, quoted('\''), line);
            return;
        }
        for (const char *op : kPuncts) {
            const std::size_t n = std::char_traits<char>::length(op);
            if (text_.compare(pos_, n, op) == 0) {
                for (std::size_t i = 0; i < n; ++i)
                    advance();
                emit(Token::Punct, op, line);
                return;
            }
        }
        emit(Token::Punct, std::string(1, advance()), line);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool at_line_start_ = true;
    LexedFile out_;
};

} // namespace

LexedFile
lex(const std::string &text)
{
    return Lexer(text).run();
}

} // namespace lint
} // namespace caba
