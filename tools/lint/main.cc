/**
 * @file
 * caba-lint CLI. Exit codes: 0 = clean (every finding baselined),
 * 1 = non-baselined findings, 2 = usage or I/O error.
 *
 *   caba-lint --root . --baseline tools/lint/baseline.json --json=report.json
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: caba-lint [--root DIR] [--baseline FILE] [--json[=PATH]]\n"
        "  --root DIR       repo root to scan (bench/, src/ and tests/; "
        "default .)\n"
        "  --baseline FILE  accepted findings (default ROOT/tools/lint/\n"
        "                   baseline.json when present)\n"
        "  --json[=PATH]    write the caba-lint-v1 JSON report to PATH\n"
        "                   (stdout when no PATH; suppresses text output)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baseline_path;
    bool emit_json = false;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--json") {
            emit_json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            emit_json = true;
            json_path = arg.substr(7);
        } else {
            return usage();
        }
    }

    std::string error;
    std::vector<caba::lint::Finding> findings;
    if (!caba::lint::runTree(root, &findings, &error)) {
        std::fprintf(stderr, "caba-lint: %s\n", error.c_str());
        return 2;
    }

    std::vector<caba::lint::Finding> baseline;
    if (baseline_path.empty()) {
        const std::string candidate = root + "/tools/lint/baseline.json";
        if (std::ifstream(candidate).good())
            baseline_path = candidate;
    }
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr, "caba-lint: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        if (!caba::lint::parseBaseline(ss.str(), &baseline, &error)) {
            std::fprintf(stderr, "caba-lint: %s: %s\n",
                         baseline_path.c_str(), error.c_str());
            return 2;
        }
    }

    std::vector<caba::lint::Finding> fresh;
    std::vector<caba::lint::Finding> matched;
    caba::lint::applyBaseline(findings, baseline, &fresh, &matched);

    if (emit_json) {
        const std::string doc = caba::lint::toJson(findings, matched);
        if (json_path.empty()) {
            std::fputs(doc.c_str(), stdout);
        } else {
            std::ofstream out(json_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "caba-lint: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            out << doc;
        }
    }
    if (!emit_json || !json_path.empty()) {
        std::fputs(caba::lint::toText(fresh).c_str(), stdout);
        std::fprintf(stdout,
                     "caba-lint: %zu finding(s), %zu baselined, %zu new\n",
                     findings.size(), matched.size(), fresh.size());
    }
    return fresh.empty() ? 0 : 1;
}
