/**
 * @file
 * caba-lint CLI. Exit codes: 0 = clean (every finding baselined),
 * 1 = non-baselined findings, 2 = usage or I/O error. Unknown or
 * malformed flags are hard errors — a typoed --rule silently linting
 * nothing would defeat the gate.
 *
 *   caba-lint --root . --baseline tools/lint/baseline.json --json=report.json
 *   caba-lint --rule layering --rule include-cycle --dot=includes.dot
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/parse.h"
#include "common/thread_pool.h"
#include "graph.h"
#include "lint.h"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: caba-lint [--root DIR] [--baseline FILE] [--json[=PATH]]\n"
        "                 [--rule NAME]... [--list-rules] [--jobs N]\n"
        "                 [--dot PATH]\n"
        "  --root DIR       repo root to scan (bench/, examples/, src/,\n"
        "                   tests/ and tools/; default .)\n"
        "  --baseline FILE  accepted findings (default ROOT/tools/lint/\n"
        "                   baseline.json when present)\n"
        "  --json[=PATH]    write the caba-lint-v1 JSON report to PATH\n"
        "                   (stdout when no PATH; suppresses text output)\n"
        "  --rule NAME      run only the named rule (repeatable; see\n"
        "                   --list-rules)\n"
        "  --list-rules     print every rule id and exit\n"
        "  --jobs N         worker threads (default CABA_JOBS, else all\n"
        "                   cores; output is identical at any N)\n"
        "  --dot PATH       also write the resolved include graph as\n"
        "                   GraphViz DOT to PATH\n");
    return 2;
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baseline_path;
    bool emit_json = false;
    std::string json_path;
    std::string dot_path;
    caba::lint::Options opts;
    opts.jobs = caba::env::positiveIntOr("CABA_JOBS",
                                         caba::ThreadPool::defaultWorkers());

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--json") {
            emit_json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            emit_json = true;
            json_path = arg.substr(7);
        } else if (arg == "--list-rules") {
            for (const std::string &r : caba::lint::ruleNames())
                std::fprintf(stdout, "%s\n", r.c_str());
            return 0;
        } else if (arg == "--rule" && i + 1 < argc) {
            const std::string name = argv[++i];
            const auto &known = caba::lint::ruleNames();
            if (std::find(known.begin(), known.end(), name) == known.end()) {
                std::fprintf(stderr, "caba-lint: unknown rule '%s' "
                             "(--list-rules prints the valid ids)\n",
                             name.c_str());
                return usage();
            }
            opts.rules.insert(name);
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = 0;
            if (!caba::parse::intInRange(argv[++i], 1, &jobs)) {
                std::fprintf(stderr,
                             "caba-lint: --jobs wants a positive integer, "
                             "got '%s'\n", argv[i]);
                return usage();
            }
            opts.jobs = jobs;
        } else if (arg == "--dot" && i + 1 < argc) {
            dot_path = argv[++i];
        } else if (arg.rfind("--dot=", 0) == 0) {
            dot_path = arg.substr(6);
        } else {
            std::fprintf(stderr, "caba-lint: unknown or malformed "
                         "argument '%s'\n", arg.c_str());
            return usage();
        }
    }

    std::string error;
    std::vector<caba::lint::SourceFile> files;
    if (!caba::lint::collectTree(root, &files, &error)) {
        std::fprintf(stderr, "caba-lint: %s\n", error.c_str());
        return 2;
    }
    // env-drift direction 2 wants the README; absence just skips it.
    readWholeFile(root + "/README.md", &opts.readme_text);

    if (!dot_path.empty()) {
        const caba::lint::IncludeGraph graph =
            caba::lint::buildIncludeGraph(files);
        std::ofstream out(dot_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "caba-lint: cannot write %s\n",
                         dot_path.c_str());
            return 2;
        }
        out << caba::lint::toDot(graph);
    }

    const std::vector<caba::lint::Finding> findings =
        caba::lint::run(files, opts);

    std::vector<caba::lint::Finding> baseline;
    if (baseline_path.empty()) {
        const std::string candidate = root + "/tools/lint/baseline.json";
        if (std::ifstream(candidate).good())
            baseline_path = candidate;
    }
    if (!baseline_path.empty()) {
        std::string text;
        if (!readWholeFile(baseline_path, &text)) {
            std::fprintf(stderr, "caba-lint: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 2;
        }
        if (!caba::lint::parseBaseline(text, &baseline, &error)) {
            std::fprintf(stderr, "caba-lint: %s: %s\n",
                         baseline_path.c_str(), error.c_str());
            return 2;
        }
    }

    std::vector<caba::lint::Finding> fresh;
    std::vector<caba::lint::Finding> matched;
    caba::lint::applyBaseline(findings, baseline, &fresh, &matched);

    if (emit_json) {
        const std::string doc = caba::lint::toJson(findings, matched);
        if (json_path.empty()) {
            std::fputs(doc.c_str(), stdout);
        } else {
            std::ofstream out(json_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "caba-lint: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            out << doc;
        }
    }
    if (!emit_json || !json_path.empty()) {
        std::fputs(caba::lint::toText(fresh).c_str(), stdout);
        std::fprintf(stdout,
                     "caba-lint: %zu finding(s), %zu baselined, %zu new\n",
                     findings.size(), matched.size(), fresh.size());
    }
    return fresh.empty() ? 0 : 1;
}
