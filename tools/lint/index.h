/**
 * @file
 * Cross-TU string/identifier index for caba-lint's drift rules
 * (DESIGN.md §14). Built once from the lexed token streams, it records
 * what the tree *declares* — environment variables registered in
 * common/env.cc, stat names produced at StatSet call sites, merge
 * prefixes, mutex-typed variable names — and what the rest of the tree
 * *uses*, so the drift rules can cross-check the two sides:
 *
 *  - env-drift        every full-literal CABA_* string outside the
 *                     registry must name a registered variable, and
 *                     every registered knob must be documented in
 *                     README (dead knobs and phantom knobs both fail);
 *  - stat-drift       stat names read through get/ratio/findDist/
 *                     isGauge must be produced by some add/set/
 *                     setCounter/dist site (modulo the mergePrefixed
 *                     prefixes), so a silently renamed counter orphans
 *                     its readers loudly;
 *  - lock-discipline  naked .lock()/.unlock() on a variable declared
 *                     with a mutex type anywhere in the tree — use
 *                     lock_guard / scoped_lock / unique_lock.
 */
#ifndef CABA_TOOLS_LINT_INDEX_H
#define CABA_TOOLS_LINT_INDEX_H

#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace caba {
namespace lint {

/** One use of an indexed name at a specific site. */
struct NameUse
{
    std::string file;
    int line = 0;
    std::string name;
};

/** The whole-program identifier index. */
struct IdentIndex
{
    /** True when src/common/env.cc was part of the input set (unit
     *  tests over loose fixtures skip registry-dependent checks). */
    bool has_env_registry = false;

    /** CABA_* names registered in src/common/env.cc, with their
     *  registration sites (for anchoring README-drift findings). */
    std::vector<NameUse> env_registered;

    /** Full-literal CABA_* strings outside the registry. */
    std::vector<NameUse> env_uses;

    /** Stat names registered by produce sites: literal first arguments
     *  of add/set/setCounter/dist calls anywhere, literal members of
     *  all-string brace arrays in src/ (name tables indexed at runtime),
     *  and literal first arguments of `lint: stat-producer` wrappers. */
    std::set<std::string> stat_produced;

    /** Literal mergePrefixed/merge_prefixed prefixes (plus ""). */
    std::set<std::string> merge_prefixes;

    /** Literal stat names at read sites: get/findDist/isGauge first
     *  argument, both ratio arguments. */
    std::vector<NameUse> stat_consumed;

    /** Names of variables declared with a mutex type, tree-wide. */
    std::set<std::string> mutex_names;
};

/** Builds the index over @p files / @p lexed (parallel vectors). */
IdentIndex buildIndex(const std::vector<SourceFile> &files,
                      const std::vector<LexedFile> &lexed);

/** env-drift over the index; @p readme_text is the README contents
 *  ("" = not available, README-side checks skipped). */
void ruleEnvDrift(const IdentIndex &index, const std::string &readme_text,
                  std::vector<Finding> &out);

/** stat-drift over the index. */
void ruleStatDrift(const IdentIndex &index, std::vector<Finding> &out);

/** lock-discipline over one file, using the tree-wide mutex names. */
void ruleLockDiscipline(const LexedFile &lexed, const std::string &path,
                        const IdentIndex &index, std::vector<Finding> &out);

} // namespace lint
} // namespace caba

#endif // CABA_TOOLS_LINT_INDEX_H
