// caba-lint fixture: determinism hazards — entropy and wall-clock reads.
// Expected findings (rule "determinism"): 7.
// Never compiled; linted by tests/test_lint.cc posing as a src/ file.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long
fixtureEntropy()
{
    std::srand(42);                                      // finding 1: srand
    unsigned long x = std::rand();                       // finding 2: rand
    std::random_device rd;                               // finding 3
    x += rd();
    x += static_cast<unsigned long>(std::time(nullptr)); // finding 4
    const auto a = std::chrono::steady_clock::now();     // finding 5
    const auto b = std::chrono::system_clock::now();     // finding 6
    const auto c = std::chrono::high_resolution_clock::now(); // finding 7
    x += static_cast<unsigned long>(a.time_since_epoch().count());
    x += static_cast<unsigned long>(b.time_since_epoch().count());
    x += static_cast<unsigned long>(c.time_since_epoch().count());
    // Negative controls: member access and non-std qualification.
    // (Declaring a function *named* time would itself be flagged — the
    // lexical pass cannot tell declarations from calls, and shadowing
    // libc time() in the simulator is worth flagging anyway.)
    struct Timer { long ticks(int) { return 0; } } t;
    x += static_cast<unsigned long>(t.time(0)); // member access, not libc
    // A steady_clock mention without ::now is type plumbing, not a read.
    std::chrono::steady_clock::time_point unused{};
    (void)unused;
    return x;
}
