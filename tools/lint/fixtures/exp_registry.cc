// Fixture for the experiment-registry rule: two findings — the
// CamelCase name and the duplicate registration of `alpha`. The first
// `alpha` and `beta_two` are clean.
#include "harness/experiment.h"

CABA_REGISTER_EXPERIMENT(alpha)
{
    exp.description = "first registration, clean";
}

CABA_REGISTER_EXPERIMENT(BadName)
{
    exp.description = "not snake_case";
}

CABA_REGISTER_EXPERIMENT(beta_two)
{
    exp.description = "clean";
}

CABA_REGISTER_EXPERIMENT(alpha)
{
    exp.description = "duplicate of the first";
}
