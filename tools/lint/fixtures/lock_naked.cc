// caba-lint fixture: naked mutex lock/unlock vs scoped guards.

#include <mutex>

namespace fixture {

std::mutex mu;

void
bad()
{
    mu.lock();   // finding 1
    mu.unlock(); // finding 2
}

void
annotated()
{
    // lint: manual-lock handed off across a callback boundary
    mu.lock();
    mu.unlock(); // lint: manual-lock released for the callback
}

void
good()
{
    std::lock_guard<std::mutex> lk(mu);
}

} // namespace fixture
