// caba-lint fixture: direct environment access outside common/env.cc.
// Expected findings (rule "env-access"): 2.
#include <cstdlib>
#include <string>

std::string
fixtureEnv()
{
    const char *a = std::getenv("CABA_FIXTURE"); // finding 1
    const char *b = getenv("PATH");              // finding 2: unqualified
    // Negative control: the variable name in a string is not a read.
    std::string doc = "set CABA_FIXTURE or consult getenv docs";
    return doc + (a ? a : "") + (b ? b : "");
}
