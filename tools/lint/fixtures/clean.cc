// caba-lint fixture: negative control — zero findings expected.
// Exercises the constructs adjacent to every rule's trigger.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

int
fixtureClean(std::map<std::string, int> &ordered, caba::StatSet &s)
{
    caba::Rng rng(12345);                  // seeded PRNG is the sanctioned source
    int total = static_cast<int>(rng.below(100));
    for (const auto &[key, value] : ordered) // std::map iterates sorted
        total += value;
    std::vector<int> v{3, 1, 2};
    std::sort(v.begin(), v.end(), [](int a, int b) { return a < b; });
    s.add("fixture_clean_total", static_cast<std::uint64_t>(total));
    const std::string rand_doc = "mentions rand and getenv in a string";
    return total + static_cast<int>(rand_doc.size());
}
