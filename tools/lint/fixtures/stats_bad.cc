// caba-lint fixture: StatSet naming and registration hygiene.
// Expected findings (rule "stat-hygiene"): 4.
#include "common/stats.h"

void
fixtureStats(caba::StatSet &s, const caba::StatSet &other)
{
    s.setCounter("fixture_hits", 1);
    s.setCounter("fixture_hits", 2);   // finding 1: duplicate overwrite
    s.add("FixtureCamelCase");         // finding 2: not snake_case
    s.set("fixture__gap", 3);          // finding 3: doubled underscore
    s.mergePrefixed(other, "BadPrefix"); // finding 4: not a snake tag_
    // Negative controls.
    s.add("fixture_ok_counter");
    s.add("fixture_ok_counter");       // add() accumulates; repeats fine
    s.dist("fixture_latency").record(1);
    s.mergePrefixed(other, "fixture_");
}
