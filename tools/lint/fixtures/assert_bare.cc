// caba-lint fixture: bare assert() instead of CABA_CHECK.
// Expected findings (rule "check-discipline"): 2.
#include <cassert>
#include <cstddef>

int
fixtureChecked(int v)
{
    assert(v > 0); // finding 1: compiles out under NDEBUG
    if (v > 1)
        assert(v != 3); // finding 2
    // Negative controls: static_assert is compile-time and fine; a
    // member named assert is not the macro.
    static_assert(sizeof(int) >= 2, "toy platforms unsupported");
    struct Checker { void assert_ok() {} } c;
    c.assert_ok();
    return v;
}
