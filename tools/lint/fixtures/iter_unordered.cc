// caba-lint fixture: range-for over unordered containers.
// Expected findings (rule "iteration-order"): 3.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

class FixtureTable
{
  public:
    int
    total() const
    {
        int s = 0;
        for (const auto &[key, value] : members_) // finding 1
            s += value;
        for (const int key : keys_) // finding 2
            s += key;
        return s;
    }

    int
    localScan() const
    {
        std::unordered_map<int, int> scratch{members_.begin(),
                                             members_.end()};
        int s = 0;
        for (const auto &kv : scratch) // finding 3: locals count too
            s += kv.second;
        return s;
    }

    int
    annotatedTotal() const
    {
        // Summation is commutative, so hash order cannot leak into the
        // result; the annotation records that justification.
        int s = 0;
        for (const auto &[key, value] : members_) // lint: order-insensitive — sum is commutative
            s += value;
        // The annotation also works from the preceding line.
        // lint: order-insensitive — max is order-free
        for (const int key : keys_)
            s = s > key ? s : key;
        return s;
    }

    int
    orderedScan(const std::vector<int> &order) const
    {
        // Negative controls: ordered containers and lookup results.
        int s = 0;
        for (const int key : order) {
            auto it = members_.find(key);
            if (it != members_.end())
                s += it->second;
        }
        return s;
    }

  private:
    std::unordered_map<int, int> members_;
    std::unordered_set<int> keys_;
};
