// caba-lint fixture: pointer-value comparison in a sort predicate.
// Expected findings (rule "determinism"): 2.
#include <algorithm>
#include <vector>

struct Node
{
    int key;
};

void
fixtureSort(std::vector<Node *> &v)
{
    // finding 1: comparator orders by address — heap layout leaks into
    // the simulation.
    std::sort(v.begin(), v.end(),
              [](const Node *a, const Node *b) { return a < b; });

    // finding 2: same hazard via stable_sort, pointer on one side only.
    const Node *pivot = v.empty() ? nullptr : v.front();
    std::stable_sort(v.begin(), v.end(),
                     [pivot](const Node *a, const Node *) {
                         return a > pivot && a != nullptr;
                     });

    // Negative controls: dereferenced and member-projected comparisons.
    std::sort(v.begin(), v.end(),
              [](const Node *a, const Node *b) { return a->key < b->key; });
    std::vector<Node> owned;
    std::sort(owned.begin(), owned.end(),
              [](const Node &a, const Node &b) { return a.key < b.key; });
}
