/**
 * @file
 * caba_sweepd: the sweep-as-a-service daemon (DESIGN.md §13). Binds a
 * Unix-domain (or tcp:HOST:PORT) socket, then serves caba-sweep-req-v1
 * requests — registered experiments by name, or explicit app x design
 * cell lists — as byte-identical caba-bench-v1 documents, answering
 * warm repeats entirely from the cell cache. SIGTERM/SIGINT stop
 * admission and drain every already-admitted request before exit.
 *
 * Configuration comes from CABA_SWEEPD_SOCKET / CABA_SWEEPD_QUEUE /
 * CABA_SWEEPD_TIMEOUT_MS (see --help-env), each overridable by flag.
 */
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/parse.h"
#include "harness/sweep_service.h"

namespace {

using namespace caba;

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: caba_sweepd [options]\n"
        "\n"
        "Long-running sweep service: accepts caba-sweep-req-v1 requests\n"
        "(see caba_sweep) and streams back the same caba-bench-v1 bytes\n"
        "caba_bench --json writes. Repeated requests are answered from\n"
        "the cell cache without simulating.\n"
        "\n"
        "options:\n"
        "  --socket ADDR    listen address: UDS path or tcp:HOST:PORT\n"
        "                   (default: $CABA_SWEEPD_SOCKET)\n"
        "  --queue N        admission queue bound; over-limit requests\n"
        "                   get queue_full (default: $CABA_SWEEPD_QUEUE)\n"
        "  --timeout-ms N   default per-request deadline, 0 = none\n"
        "                   (default: $CABA_SWEEPD_TIMEOUT_MS)\n"
        "  --help-env       list environment variables and exit\n"
        "  -h, --help       this help\n");
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "caba_sweepd: %s\n\n", msg.c_str());
    usage(stderr);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepServiceConfig cfg;
    cfg.address = env::strOr("CABA_SWEEPD_SOCKET", "caba_sweepd.sock");
    cfg.max_queue = env::intOr("CABA_SWEEPD_QUEUE", 64);
    cfg.default_timeout_ms = env::intOr("CABA_SWEEPD_TIMEOUT_MS", 0);

    const auto valueOf = [&](const std::string &flag, int &i) {
        if (i + 1 >= argc)
            usageError("flag " + flag + " needs a value");
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--help-env") {
            env::printHelp(stdout);
            return 0;
        } else if (arg == "--socket") {
            cfg.address = valueOf(arg, i);
        } else if (arg == "--queue") {
            int n = 0;
            if (!parse::intInRange(valueOf(arg, i), 0, &n))
                usageError("--queue needs a non-negative integer");
            cfg.max_queue = n;
        } else if (arg == "--timeout-ms") {
            int n = 0;
            if (!parse::intInRange(valueOf(arg, i), 0, &n))
                usageError("--timeout-ms needs a non-negative integer");
            cfg.default_timeout_ms = n;
        } else {
            usageError("unknown flag '" + arg + "'");
        }
    }
    if (cfg.max_queue < 0 || cfg.default_timeout_ms < 0)
        usageError("queue and timeout must be non-negative");

    SweepService service(cfg);
    std::string error;
    if (!service.start(&error)) {
        std::fprintf(stderr, "caba_sweepd: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "[sweepd] listening on %s (queue=%d, timeout_ms=%lld)\n",
                 cfg.address.c_str(), cfg.max_queue,
                 static_cast<long long>(cfg.default_timeout_ms));

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    while (g_stop == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "[sweepd] signal received; draining...\n");
    service.shutdown();

    std::fprintf(stderr, "[sweepd] final stats:\n");
    // Keep the snapshot alive across the loop: all() returns a
    // reference into the StatSet, and a temporary would be gone by the
    // first iteration.
    const StatSet final_stats = service.stats();
    for (const auto &[name, value] : final_stats.all())
        std::fprintf(stderr, "[sweepd]   %-26s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
    std::fprintf(stderr, "[sweepd] drained; bye\n");
    return 0;
}
