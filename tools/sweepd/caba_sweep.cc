/**
 * @file
 * caba_sweep: thin client for caba_sweepd. Builds a caba-sweep-req-v1
 * request (--experiment, or --apps/--designs cell lists, or --request
 * for raw JSON passthrough), submits it, and writes the returned
 * caba-bench-v1 document to stdout or --out. Per-request server stats
 * land on stderr as one greppable line.
 *
 * Exit status: 0 on success, 2 when the server answered with a
 * structured error (bad request, unknown experiment, queue_full,
 * deadline_exceeded, ...), 1 on transport/usage failures.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/parse.h"
#include "harness/sweep_service.h"

namespace {

using namespace caba;

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: caba_sweep [options]\n"
        "\n"
        "Submits one sweep request to a running caba_sweepd and writes\n"
        "the caba-bench-v1 document to stdout (or --out PATH).\n"
        "\n"
        "options:\n"
        "  --socket ADDR     daemon address: UDS path or tcp:HOST:PORT\n"
        "                    (default: $CABA_SWEEPD_SOCKET)\n"
        "  --experiment NAME registered experiment to run\n"
        "  --apps A,B,...    cell-list form: app names (with --designs)\n"
        "  --designs D,E,... cell-list form: design names (with --apps)\n"
        "  --scale X         workload loop-trip multiplier\n"
        "  --jobs N          sweep worker threads on the server\n"
        "  --warps N         cap resident warps per SM\n"
        "  --timeout-ms N    per-request deadline (overrides the "
        "server's)\n"
        "  --out PATH        write the document to PATH instead of "
        "stdout\n"
        "  --request FILE    send FILE's bytes as the request verbatim\n"
        "                    (\"-\" reads stdin); bypasses the builder\n"
        "  --help-env        list environment variables and exit\n"
        "  -h, --help        this help\n");
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "caba_sweep: %s\n\n", msg.c_str());
    usage(stderr);
    std::exit(1);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::string piece =
            s.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!piece.empty())
            out.push_back(piece);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::FILE *f =
        path == "-" ? stdin : std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out->append(buf, n);
    if (f != stdin)
        std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string address =
        env::strOr("CABA_SWEEPD_SOCKET", "caba_sweepd.sock");
    std::string out_path;
    std::string request_file;
    SweepRequestSpec spec;

    const auto valueOf = [&](const std::string &flag, int &i) {
        if (i + 1 >= argc)
            usageError("flag " + flag + " needs a value");
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--help-env") {
            env::printHelp(stdout);
            return 0;
        } else if (arg == "--socket") {
            address = valueOf(arg, i);
        } else if (arg == "--experiment") {
            spec.experiment = valueOf(arg, i);
        } else if (arg == "--apps") {
            spec.apps = splitCommas(valueOf(arg, i));
        } else if (arg == "--designs") {
            spec.designs = splitCommas(valueOf(arg, i));
        } else if (arg == "--scale") {
            const std::string v = valueOf(arg, i);
            if (!parse::finitePositiveReal(v, &spec.scale))
                usageError("--scale needs a finite positive number, "
                           "got '" + v + "'");
        } else if (arg == "--jobs" || arg == "--warps") {
            const std::string v = valueOf(arg, i);
            int n = 0;
            if (!parse::intInRange(v, 0, &n))
                usageError(arg + " needs a non-negative integer in int "
                           "range, got '" + v + "'");
            (arg == "--jobs" ? spec.jobs : spec.warps) = n;
        } else if (arg == "--timeout-ms") {
            const std::string v = valueOf(arg, i);
            int n = 0;
            if (!parse::intInRange(v, 0, &n))
                usageError("--timeout-ms needs a non-negative integer");
            spec.timeout_ms = n;
        } else if (arg == "--out") {
            out_path = valueOf(arg, i);
        } else if (arg == "--request") {
            request_file = valueOf(arg, i);
        } else {
            usageError("unknown flag '" + arg + "'");
        }
    }

    std::string request_json;
    if (!request_file.empty()) {
        if (!spec.experiment.empty() || !spec.apps.empty() ||
            !spec.designs.empty())
            usageError("--request is exclusive with "
                       "--experiment/--apps/--designs");
        if (!readWholeFile(request_file, &request_json))
            usageError("cannot read request file '" + request_file + "'");
    } else {
        const bool cells = !spec.apps.empty() || !spec.designs.empty();
        if (spec.experiment.empty() && !cells)
            usageError("pick --experiment NAME, --apps/--designs, or "
                       "--request FILE");
        if (!spec.experiment.empty() && cells)
            usageError("--experiment is exclusive with "
                       "--apps/--designs");
        if (cells && (spec.apps.empty() || spec.designs.empty()))
            usageError("cell-list requests need both --apps and "
                       "--designs");
        request_json = buildSweepRequestJson(spec);
    }

    SweepReply reply;
    std::string error;
    if (!submitSweepRequest(address, request_json, &reply, &error)) {
        std::fprintf(stderr, "caba_sweep: %s\n", error.c_str());
        return 1;
    }
    if (!reply.ok) {
        std::fprintf(stderr, "caba_sweep: server error %s: %s\n",
                     reply.code.c_str(), reply.message.c_str());
        return 2;
    }

    std::fprintf(stderr,
                 "[sweep] status=ok queue_depth=%llu simulations=%llu "
                 "cache_served=%llu wall_ms=%llu payload_bytes=%llu\n",
                 static_cast<unsigned long long>(reply.queue_depth),
                 static_cast<unsigned long long>(reply.simulations),
                 static_cast<unsigned long long>(reply.cache_served),
                 static_cast<unsigned long long>(reply.wall_ms),
                 static_cast<unsigned long long>(reply.payload.size()));

    if (out_path.empty()) {
        std::fwrite(reply.payload.data(), 1, reply.payload.size(), stdout);
    } else {
        std::FILE *f = std::fopen(out_path.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "caba_sweep: cannot write '%s'\n",
                         out_path.c_str());
            return 1;
        }
        std::fwrite(reply.payload.data(), 1, reply.payload.size(), f);
        std::fclose(f);
    }
    return 0;
}
