/**
 * @file
 * Socket and message-framing helpers for the sweep service
 * (harness/sweep_service.h, tools/sweepd/). Unix-domain sockets are the
 * default transport (address = a filesystem path); "tcp:HOST:PORT"
 * selects TCP for multi-machine use.
 *
 * Framing: every protocol message is one length-prefixed frame
 *
 *   magic "CSW1" (4 bytes) | type u32 LE | length u64 LE | payload
 *
 * so the same encoding can later carry cells to worker processes or
 * remote shards — nothing in the frame layer knows about requests.
 * Frame types are defined by the service protocol (sweep_service.h).
 *
 * All helpers return false/-1 on error with a one-line reason in the
 * caller's error string; none of them throws, and SIGPIPE is never
 * raised (sends use MSG_NOSIGNAL).
 */
#ifndef CABA_COMMON_SOCKET_H
#define CABA_COMMON_SOCKET_H

#include <cstdint>
#include <string>

namespace caba {
namespace net {

/** A parsed listen/connect address: UDS path or tcp:host:port. */
struct Address
{
    bool tcp = false;
    std::string host;   ///< TCP only.
    int port = 0;       ///< TCP only.
    std::string path;   ///< UDS only.

    /** The canonical string form ("path" or "tcp:host:port"). */
    std::string str() const;
};

/**
 * Parses @p spec: "tcp:HOST:PORT" selects TCP, anything else is a
 * Unix-domain socket path. @return false with @p *error set on a
 * malformed TCP spec or an over-long UDS path (sun_path is 108 bytes).
 */
bool parseAddress(const std::string &spec, Address *out, std::string *error);

/**
 * Binds and listens on @p addr. A stale UDS path from a previous run is
 * unlinked first. @return the listening fd, or -1 with @p *error set.
 */
int listenOn(const Address &addr, std::string *error);

/** Connects to @p addr. @return fd, or -1 with @p *error set. */
int connectTo(const Address &addr, std::string *error);

/**
 * Waits up to @p timeout_ms for a connection on @p listen_fd.
 * @return the accepted fd, -1 on timeout (poll again), or -2 on a
 * listener error (socket closed — stop accepting).
 */
int acceptClient(int listen_fd, int timeout_ms);

/** Sets per-syscall send/receive timeouts on @p fd (slow-peer guard). */
void setIoTimeout(int fd, int timeout_ms);

/** Closes @p fd (ignores -1). */
void closeFd(int fd);

/** Removes a UDS socket file; no-op for TCP addresses. */
void unlinkIfUds(const Address &addr);

/** Writes one frame. @return false on any short write or error. */
bool writeFrame(int fd, std::uint32_t type, const std::string &payload);

/**
 * Reads one frame. Rejects bad magic and payloads over @p max_len
 * bytes. @return false with @p *error set on EOF, timeout, or a
 * malformed frame.
 */
bool readFrame(int fd, std::uint32_t *type, std::string *payload,
               std::uint64_t max_len, std::string *error);

} // namespace net
} // namespace caba

#endif // CABA_COMMON_SOCKET_H
