#include "common/audit.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/env.h"
#include "common/log.h"

namespace caba {

namespace {

/** CABA_AUDIT, read once (sweep workers construct GpuSystems from many
 *  threads; getenv after startup is not reliably thread-safe). */
const char *
auditEnv()
{
    static const char *const spec = env::raw("CABA_AUDIT");
    return spec;
}

} // namespace

AuditConfig
AuditConfig::applySpec(AuditConfig base, const char *spec)
{
    if (!spec || !*spec)
        return base;
    const std::string s(spec);
    if (s == "off" || s == "0" || s == "none") {
        base.level = AuditLevel::Off;
        return base;
    }
    if (s == "end" || s == "1") {
        base.level = AuditLevel::EndOfRun;
        return base;
    }
    if (s == "full") {
        base.level = AuditLevel::Periodic;
        return base;
    }
    bool numeric = true;
    for (const char c : s)
        numeric = numeric && std::isdigit(static_cast<unsigned char>(c));
    if (numeric) {
        base.level = AuditLevel::Periodic;
        base.period = std::strtoull(s.c_str(), nullptr, 10);
        CABA_CHECK(base.period > 0, "CABA_AUDIT period must be positive");
    }
    return base;    // unknown spec: keep the configured level
}

AuditConfig
AuditConfig::resolve(AuditConfig base)
{
    if (base.ignore_env)
        return base;
    return applySpec(base, auditEnv());
}

Audit::Audit(const AuditConfig &cfg) : cfg_(cfg)
{
    if (periodic())
        CABA_CHECK(cfg_.period > 0, "periodic audit needs a period");
}

const char *
reqStageName(ReqStage s)
{
    switch (s) {
      case ReqStage::Injected: return "injected";
      case ReqStage::XbarReq: return "xbar_req";
      case ReqStage::AtPartition: return "at_partition";
      case ReqStage::DramWait: return "dram_wait";
      case ReqStage::Replied: return "replied";
      case ReqStage::XbarReply: return "xbar_reply";
    }
    return "unknown";
}

void
Audit::fail(std::string msg)
{
    failures_.push_back(std::move(msg));
}

void
Audit::checkEq(const char *where, const char *what, std::uint64_t lhs,
               std::uint64_t rhs)
{
    if (lhs == rhs)
        return;
    std::ostringstream os;
    os << where << ": " << what << " (" << lhs << " != " << rhs << ")";
    fail(os.str());
}

void
Audit::checkLe(const char *where, const char *what, std::uint64_t lhs,
               std::uint64_t rhs)
{
    if (lhs <= rhs)
        return;
    std::ostringstream os;
    os << where << ": " << what << " (" << lhs << " > " << rhs << ")";
    fail(os.str());
}

void
Audit::checkTrue(const char *where, const char *what, bool ok)
{
    if (ok)
        return;
    std::ostringstream os;
    os << where << ": " << what;
    fail(os.str());
}

void
Audit::checkLifecycle(Cycle now, bool at_drain)
{
    checkEq("lifecycle", "injected == retired + live", injected_,
            retired_ + static_cast<std::uint64_t>(live_.size()));
    if (!at_drain)
        return;
    // Report orphans in key order: live_ is an unordered_map, and the
    // failure dump must not depend on hash-bucket iteration order.
    std::vector<std::uint64_t> keys;
    keys.reserve(live_.size());
    for (const auto &entry : live_) // lint: order-insensitive — keys sorted below
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t k : keys) {
        const Tracked &t = live_.at(k);
        std::ostringstream os;
        os << "lifecycle: orphan request (id " << (k >> 8) << ", SM "
           << (k & 0xff) << ", " << (t.is_write ? "store" : "load")
           << " of line 0x" << std::hex << t.line << std::dec
           << ") injected at cycle " << t.injected
           << " still at stage " << reqStageName(t.stage)
           << " when the system drained at cycle " << now;
        fail(os.str());
    }
}

} // namespace caba
