#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <vector>

#include "common/env.h"
#include "common/json.h"
#include "common/log.h"

namespace caba {
namespace trace {

std::atomic<unsigned> g_mask{0};

namespace {

struct Event
{
    const char *name;
    const char *arg_name;
    std::uint64_t ts;
    std::uint64_t dur;
    std::uint64_t arg;
    int pid;
    int tid;
    Category cat;
    char ph;
};

/** Per-thread event buffer; owned jointly by the thread (for lock-free
 *  appends) and the registry (so events survive thread exit). */
struct ThreadBuffer
{
    std::vector<Event> events;
    std::uint64_t session = 0;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::string path;
    std::atomic<std::uint64_t> session{0};
};

Registry &
registry()
{
    static Registry r;
    return r;
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>();
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
emit(const Event &ev)
{
    Registry &r = registry();
    ThreadBuffer &buf = localBuffer();
    const std::uint64_t session = r.session.load(std::memory_order_acquire);
    if (buf.session != session) {
        // Stale events from a previous session: drop them.
        buf.events.clear();
        buf.session = session;
    }
    buf.events.push_back(ev);
}

const char *
categoryName(Category c)
{
    switch (c) {
      case kWarp: return "warp";
      case kAssistWarp: return "assist";
      case kCache: return "cache";
      case kDram: return "dram";
      case kXbar: return "xbar";
      case kSlots: return "slots";
      case kCounter: return "counter";
      default: return "other";
    }
}

void
writeProcessNames(std::FILE *f)
{
    struct { int pid; const char *name; } procs[] = {
        {kPidSm, "SM issue"},       {kPidAssist, "assist warps"},
        {kPidCache, "caches"},      {kPidDram, "dram banks"},
        {kPidXbar, "crossbar"},     {kPidSlots, "issue slots"},
        {kPidCounter, "counters"},
    };
    for (const auto &p : procs) {
        std::fprintf(f,
                     "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                     "\"tid\":0,\"args\":{\"name\":\"%s\"}},\n",
                     p.pid, p.name);
    }
}

void
writeEvent(std::FILE *f, const Event &ev, bool last)
{
    JsonWriter w;
    w.beginObject()
        .kv("name", ev.name)
        .kv("cat", categoryName(ev.cat))
        .kv("ph", std::string(1, ev.ph))
        .kv("ts", ev.ts);
    if (ev.ph == 'X')
        w.kv("dur", ev.dur);
    if (ev.ph == 'i')
        w.kv("s", "t");     // thread-scoped instant
    w.kv("pid", ev.pid).kv("tid", ev.tid);
    if (ev.arg_name) {
        w.key("args").beginObject().kv(ev.arg_name, ev.arg).endObject();
    }
    w.endObject();
    std::fprintf(f, "%s%s\n", w.str().c_str(), last ? "" : ",");
}

/** Reads CABA_TRACE at process start; the matching stop() runs atexit
 *  so a plain `CABA_TRACE=t.json ./bench` writes a complete file. */
struct EnvActivation
{
    EnvActivation()
    {
        const char *path = env::raw("CABA_TRACE");
        if (!path || !*path)
            return;
        unsigned mask = kAll;
        if (const char *cats = env::raw("CABA_TRACE_CATEGORIES"))
            mask = maskFromNames(cats);
        start(path, mask);
        std::atexit([] { stop(); });
    }
};
EnvActivation g_env_activation;

} // namespace

unsigned
maskFromNames(const char *csv)
{
    unsigned mask = 0;
    std::string token;
    for (const char *p = csv;; ++p) {
        if (*p != ',' && *p != '\0' && *p != ' ') {
            token += *p;
            continue;
        }
        if (token == "warp")
            mask |= kWarp;
        else if (token == "assist" || token == "assist-warp" ||
                 token == "assist_warp")
            mask |= kAssistWarp;
        else if (token == "cache")
            mask |= kCache;
        else if (token == "dram")
            mask |= kDram;
        else if (token == "xbar")
            mask |= kXbar;
        else if (token == "slots")
            mask |= kSlots;
        else if (token == "counter" || token == "counters")
            mask |= kCounter;
        else if (token == "all")
            mask |= kAll;
        token.clear();
        if (*p == '\0')
            break;
    }
    return mask;
}

bool
active()
{
    return g_mask.load(std::memory_order_relaxed) != 0;
}

void
start(const std::string &path, unsigned mask)
{
    if (active())
        stop();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.path = path;
    r.session.fetch_add(1, std::memory_order_release);
    g_mask.store(mask & kAll, std::memory_order_release);
}

void
stop()
{
    if (!active())
        return;
    g_mask.store(0, std::memory_order_release);

    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const std::uint64_t session = r.session.load(std::memory_order_acquire);

    std::vector<Event> all;
    for (const auto &buf : r.buffers) {
        if (buf->session == session) {
            all.insert(all.end(), buf->events.begin(), buf->events.end());
            buf->events.clear();
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Event &a, const Event &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         return a.tid < b.tid;
                     });

    const std::filesystem::path out(r.path);
    std::error_code ec;
    if (out.has_parent_path())
        std::filesystem::create_directories(out.parent_path(), ec);
    std::FILE *f = std::fopen(r.path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "trace: cannot open %s for writing\n",
                     r.path.c_str());
        return;
    }
    std::fprintf(f, "{\"traceEvents\":[\n");
    writeProcessNames(f);
    for (std::size_t i = 0; i < all.size(); ++i)
        writeEvent(f, all[i], i + 1 == all.size());
    if (all.empty()) {
        // The process-name block above ends with a comma; close the
        // array with a harmless final metadata event.
        std::fprintf(f, "{\"name\":\"trace_end\",\"ph\":\"M\",\"pid\":0,"
                        "\"tid\":0,\"args\":{}}\n");
    }
    std::fprintf(f, "],\"displayTimeUnit\":\"ms\"}\n");
    std::fclose(f);
}

void
instant(Category cat, int pid, int tid, const char *name, Cycle ts,
        const char *arg_name, std::uint64_t arg)
{
    if (!on(cat))
        return;
    emit({name, arg_name, ts, 0, arg, pid, tid, cat, 'i'});
}

void
complete(Category cat, int pid, int tid, const char *name, Cycle ts,
         Cycle dur, const char *arg_name, std::uint64_t arg)
{
    if (!on(cat))
        return;
    emit({name, arg_name, ts, dur, arg, pid, tid, cat, 'X'});
}

void
counter(Category cat, int pid, int tid, const char *name, Cycle ts,
        std::uint64_t value)
{
    if (!on(cat))
        return;
    emit({name, "value", ts, 0, value, pid, tid, cat, 'C'});
}

} // namespace trace
} // namespace caba
