#include "common/env.h"

#include <array>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace caba {
namespace env {

namespace {

/* The registry proper. Adding a variable means adding a row here —
 * nothing else: snapshotting, raw(), typed accessors and --help-env all
 * derive from this table. Keep rows in the order users should read
 * them. */
constexpr std::array<Var, 12> kVars{{
    {"CABA_SCALE", Type::Real, "1.0",
     "Workload loop-trip multiplier, applied on top of any --scale flag; "
     "non-positive or unset keeps the configured scale."},
    {"CABA_JOBS", Type::Int, "hardware concurrency",
     "Sweep worker threads (1 = serial); ExperimentOptions::jobs wins "
     "when positive."},
    {"CABA_AUDIT", Type::Str, "end",
     "Self-consistency audit level: off|end|full|<period-cycles>."},
    {"CABA_TRACE", Type::Str, "(unset: tracing off)",
     "Chrome trace-event output path; presence enables tracing for the "
     "whole process."},
    {"CABA_TRACE_CATEGORIES", Type::Str, "all",
     "Comma-separated trace categories: "
     "warp,assist,cache,dram,xbar,slots,counter,all."},
    {"CABA_NO_FASTFORWARD", Type::Flag, "(unset: fast-forward on)",
     "Force cycle-by-cycle simulation, disabling quiescence fast-forward "
     "(the CI determinism smoke job byte-diffs both modes)."},
    {"CABA_EVENT_DRIVEN", Type::Int, "1",
     "Event-driven run loop: components sleep until their nextWork() "
     "hint or incoming traffic. 0 forces the legacy walk-everything "
     "loop (CI byte-diffs both; results are bit-identical)."},
    {"CABA_CACHE_DIR", Type::Str, "(unset: cell cache off)",
     "Content-addressed RunResult cache directory for sweep cells "
     "(harness/cell_cache.h). Hits are byte-identical to recomputation; "
     "entries are keyed on every semantic input plus a code version and "
     "self-checked under CABA_AUDIT=full."},
    {"CABA_PROF", Type::Str, "(unset: profiler off)",
     "In-loop wall-clock profiler output path: attributes host time per "
     "component class and phase, writes caba-prof-v1 JSON at exit plus "
     "a top-N table on stderr. Simulation results are bit-identical "
     "profiler on/off."},
    {"CABA_SWEEPD_SOCKET", Type::Str, "caba_sweepd.sock",
     "caba_sweepd/caba_sweep listen/connect address: a Unix-domain "
     "socket path, or tcp:HOST:PORT for multi-machine use."},
    {"CABA_SWEEPD_QUEUE", Type::Int, "64",
     "caba_sweepd admission-queue bound; requests beyond it are "
     "rejected immediately with a queue_full error (backpressure)."},
    {"CABA_SWEEPD_TIMEOUT_MS", Type::Int, "0",
     "caba_sweepd default per-request deadline in milliseconds "
     "(0 = none); a request's own timeout_ms field overrides."},
}};

std::size_t
indexOf(const char *name)
{
    for (std::size_t i = 0; i < kVars.size(); ++i)
        if (std::strcmp(kVars[i].name, name) == 0)
            return i;
    CABA_PANIC("env: variable not in registry (add it to common/env.cc)");
}

const char *
typeName(Type t)
{
    switch (t) {
      case Type::Flag: return "flag";
      case Type::Int: return "int";
      case Type::Real: return "real";
      case Type::Str: return "string";
    }
    return "?";
}

} // namespace

const std::vector<Var> &
registry()
{
    static const std::vector<Var> vars(kVars.begin(), kVars.end());
    return vars;
}

const char *
raw(const char *name)
{
    return std::getenv(kVars[indexOf(name)].name);
}

bool
flagSet(const char *name)
{
    return raw(name) != nullptr;
}

int
intOr(const char *name, int fallback)
{
    const char *v = raw(name);
    return v ? std::atoi(v) : fallback;
}

int
positiveIntOr(const char *name, int fallback)
{
    const char *v = raw(name);
    if (!v)
        return fallback;
    const int parsed = std::atoi(v);
    return parsed > 0 ? parsed : fallback;
}

const char *
strOr(const char *name, const char *fallback)
{
    const char *v = raw(name);
    return v != nullptr ? v : fallback;
}

double
positiveRealOr(const char *name, double fallback)
{
    const char *v = raw(name);
    if (!v)
        return fallback;
    const double parsed = std::atof(v);
    return parsed > 0.0 ? parsed : fallback;
}

void
printHelp(std::FILE *out)
{
    std::fprintf(out, "Environment variables (all optional):\n");
    for (const Var &v : registry()) {
        std::fprintf(out, "  %-22s %-7s default: %s\n", v.name,
                     typeName(v.type), v.fallback);
        std::fprintf(out, "      %s\n", v.doc);
    }
}

} // namespace env
} // namespace caba
