#include "common/component.h"

namespace caba {

// Out-of-line so the vtable has a home translation unit.
Clocked::~Clocked() = default;

} // namespace caba
