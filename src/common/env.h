/**
 * @file
 * Central registry for every environment variable the simulator reads.
 * Determinism contract: the environment is part of a run's inputs, so
 * all access goes through this one translation unit — every variable
 * carries a type, default and doc string, and `caba_cli --help-env`
 * prints the registry. caba-lint (tools/lint/) flags any direct getenv
 * call outside src/common/env.cc.
 *
 * raw() reads the live environment: the sweep tests re-point CABA_JOBS
 * between Sweep constructions. Consumers that run on worker threads
 * (CABA_SCALE, CABA_AUDIT) cache the first read in a magic static at
 * the call site, because getenv during multithreaded phases is not
 * reliably safe against concurrent environment mutation.
 */
#ifndef CABA_COMMON_ENV_H
#define CABA_COMMON_ENV_H

#include <cstdio>
#include <vector>

namespace caba {
namespace env {

/** How a variable's raw string is interpreted at its point of use. */
enum class Type {
    Flag,   ///< presence alone is the signal; the value is ignored
    Int,    ///< decimal integer
    Real,   ///< decimal floating point
    Str,    ///< free-form string (path, spec, comma list)
};

/** One registered variable: the full contract a user can rely on. */
struct Var
{
    const char *name;       ///< e.g. "CABA_SCALE"
    Type type;              ///< interpretation of the raw value
    const char *fallback;   ///< human-readable default shown in --help-env
    const char *doc;        ///< one-line description
};

/** Every variable the simulator consults, in display order. */
const std::vector<Var> &registry();

/**
 * Live raw value of registered variable @p name (nullptr when unset).
 * Panics on a name that is not in the registry — a read of an
 * undeclared variable is a contract violation, not a lookup miss.
 */
const char *raw(const char *name);

/** True when the variable is present in the environment (Flag vars). */
bool flagSet(const char *name);

/** Parsed integer (any value, including 0), or @p fallback when unset. */
int intOr(const char *name, int fallback);

/** Parsed positive integer, or @p fallback when unset/non-positive. */
int positiveIntOr(const char *name, int fallback);

/** Raw string value, or @p fallback when unset. */
const char *strOr(const char *name, const char *fallback);

/** Parsed positive real, or @p fallback when unset/non-positive. */
double positiveRealOr(const char *name, double fallback);

/** Prints the registry (name, type, default, doc) to @p out. */
void printHelp(std::FILE *out);

} // namespace env
} // namespace caba

#endif // CABA_COMMON_ENV_H
