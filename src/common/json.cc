#include "common/json.h"

#include <cstdio>

#include "common/log.h"

namespace caba {

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_item_.empty()) {
        if (has_item_.back())
            out_ += ',';
        has_item_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    CABA_CHECK(!has_item_.empty(), "endObject without beginObject");
    has_item_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    CABA_CHECK(!has_item_.empty(), "endArray without beginArray");
    has_item_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no inf/nan literals; clamp to null.
    std::string s(buf);
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos) {
        s = "null";
    }
    out_ += s;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace caba
