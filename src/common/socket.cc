#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/parse.h"

namespace caba {
namespace net {

namespace {

const char kFrameMagic[4] = {'C', 'S', 'W', '1'};

std::string
errnoStr(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

void
storeLe32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
storeLe64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
loadLe32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
loadLe64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool
sendAll(int fd, const void *buf, std::size_t len)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
recvAll(int fd, void *buf, std::size_t len)
{
    char *p = static_cast<char *>(buf);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
fillSockaddrUn(const std::string &path, sockaddr_un *sa, std::string *error)
{
    std::memset(sa, 0, sizeof(*sa));
    sa->sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa->sun_path)) {
        *error = "socket path too long (" + std::to_string(path.size()) +
                 " bytes, limit " +
                 std::to_string(sizeof(sa->sun_path) - 1) + "): " + path;
        return false;
    }
    std::memcpy(sa->sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
fillSockaddrIn(const Address &addr, sockaddr_in *sa, std::string *error)
{
    std::memset(sa, 0, sizeof(*sa));
    sa->sin_family = AF_INET;
    sa->sin_port = htons(static_cast<std::uint16_t>(addr.port));
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa->sin_addr) != 1) {
        *error = "tcp address must use a dotted-quad host, got '" +
                 addr.host + "'";
        return false;
    }
    return true;
}

} // namespace

std::string
Address::str() const
{
    if (!tcp)
        return path;
    return "tcp:" + host + ":" + std::to_string(port);
}

bool
parseAddress(const std::string &spec, Address *out, std::string *error)
{
    if (spec.empty()) {
        *error = "empty socket address";
        return false;
    }
    Address a;
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0) {
            *error = "tcp address must be tcp:HOST:PORT, got '" + spec + "'";
            return false;
        }
        a.tcp = true;
        a.host = rest.substr(0, colon);
        long port = 0;
        if (!parse::boundedInt(rest.substr(colon + 1), 1, 65535, &port)) {
            *error = "tcp port must be 1..65535, got '" +
                     rest.substr(colon + 1) + "'";
            return false;
        }
        a.port = static_cast<int>(port);
    } else {
        a.path = spec;
        sockaddr_un probe;
        if (!fillSockaddrUn(a.path, &probe, error))
            return false;
    }
    *out = a;
    return true;
}

int
listenOn(const Address &addr, std::string *error)
{
    const int fd =
        ::socket(addr.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = errnoStr("socket");
        return -1;
    }
    int rc;
    if (addr.tcp) {
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in sa;
        if (!fillSockaddrIn(addr, &sa, error)) {
            closeFd(fd);
            return -1;
        }
        rc = ::bind(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa));
    } else {
        // A previous daemon that crashed leaves the socket file behind;
        // bind would fail with EADDRINUSE, so clear it first. A live
        // daemon on the same path loses its listener name — running two
        // daemons on one socket is operator error either way.
        ::unlink(addr.path.c_str());
        sockaddr_un sa;
        if (!fillSockaddrUn(addr.path, &sa, error)) {
            closeFd(fd);
            return -1;
        }
        rc = ::bind(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa));
    }
    if (rc != 0) {
        *error = errnoStr("bind " + addr.str());
        closeFd(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        *error = errnoStr("listen " + addr.str());
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
connectTo(const Address &addr, std::string *error)
{
    const int fd =
        ::socket(addr.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = errnoStr("socket");
        return -1;
    }
    int rc;
    if (addr.tcp) {
        sockaddr_in sa;
        if (!fillSockaddrIn(addr, &sa, error)) {
            closeFd(fd);
            return -1;
        }
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa));
    } else {
        sockaddr_un sa;
        if (!fillSockaddrUn(addr.path, &sa, error)) {
            closeFd(fd);
            return -1;
        }
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa));
    }
    if (rc != 0) {
        *error = errnoStr("connect " + addr.str());
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
acceptClient(int listen_fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0)
        return -1;
    if (rc < 0)
        return errno == EINTR ? -1 : -2;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0)
        return -2;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    return fd < 0 ? -1 : fd;
}

void
setIoTimeout(int fd, int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

void
unlinkIfUds(const Address &addr)
{
    if (!addr.tcp && !addr.path.empty())
        ::unlink(addr.path.c_str());
}

bool
writeFrame(int fd, std::uint32_t type, const std::string &payload)
{
    unsigned char header[16];
    std::memcpy(header, kFrameMagic, 4);
    storeLe32(header + 4, type);
    storeLe64(header + 8, payload.size());
    if (!sendAll(fd, header, sizeof(header)))
        return false;
    return payload.empty() || sendAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::uint32_t *type, std::string *payload,
          std::uint64_t max_len, std::string *error)
{
    unsigned char header[16];
    if (!recvAll(fd, header, sizeof(header))) {
        *error = "connection closed or timed out reading frame header";
        return false;
    }
    if (std::memcmp(header, kFrameMagic, 4) != 0) {
        *error = "bad frame magic (not a caba-sweep peer?)";
        return false;
    }
    *type = loadLe32(header + 4);
    const std::uint64_t len = loadLe64(header + 8);
    if (len > max_len) {
        *error = "frame of " + std::to_string(len) +
                 " bytes exceeds the " + std::to_string(max_len) +
                 "-byte limit";
        return false;
    }
    payload->resize(static_cast<std::size_t>(len));
    if (len > 0 && !recvAll(fd, payload->data(),
                            static_cast<std::size_t>(len))) {
        *error = "connection closed or timed out reading frame payload";
        return false;
    }
    return true;
}

} // namespace net
} // namespace caba
