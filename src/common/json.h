/**
 * @file
 * Minimal JSON writer used for the machine-readable run exports
 * (bench `--json` files), the Chrome trace-event sink, and the sweep
 * service's protocol documents. Emission only — parsing lives in
 * common/json_parse.h (tests carry their own tiny parser). Output is
 * deterministic: keys are written in call order, doubles with "%.17g"
 * (shortest round-trippable form), so two runs producing bit-identical
 * values produce byte-identical JSON.
 */
#ifndef CABA_COMMON_JSON_H
#define CABA_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace caba {

/** Streaming JSON builder with explicit begin/end nesting. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Starts a "key": inside an object; follow with a value or begin*. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }

    /** Shorthand for key(k).value(v). */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** The document built so far (call when nesting is balanced). */
    const std::string &str() const { return out_; }

    /** Escapes @p s for embedding inside a JSON string literal. */
    static std::string escape(const std::string &s);

  private:
    void separate();

    std::string out_;
    /** One entry per open container: has a value been written yet? */
    std::vector<bool> has_item_;
    bool after_key_ = false;
};

} // namespace caba

#endif // CABA_COMMON_JSON_H
