#include "common/json_parse.h"

#include <cstdlib>

namespace caba {
namespace json {

const Value *
Value::find(const std::string &key) const
{
    if (kind != Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Value *out, std::string *error)
    {
        *out = parseValue();
        skipSpace();
        if (ok_ && pos_ != text_.size())
            fail("trailing garbage after document");
        if (!ok_ && error != nullptr)
            *error = error_;
        return ok_;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why + " at offset " + std::to_string(pos_);
        }
    }

    char
    peek()
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    next()
    {
        return pos_ < text_.size() ? text_[pos_++] : '\0';
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p)
            if (next() != *p)
                return fail(std::string("bad literal (expected ") + word +
                            ")");
    }

    Value
    parseValue()
    {
        skipSpace();
        Value v;
        switch (peek()) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"':
            v.kind = Value::String;
            v.string = parseString();
            break;
          case 't':
            literal("true");
            v.kind = Value::Bool;
            v.boolean = true;
            break;
          case 'f':
            literal("false");
            v.kind = Value::Bool;
            break;
          case 'n': literal("null"); break;
          default: v = parseNumber(); break;
        }
        return v;
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Object;
        next(); // '{'
        skipSpace();
        if (peek() == '}') {
            next();
            return v;
        }
        while (ok_) {
            skipSpace();
            if (peek() != '"') {
                fail("expected object key");
                break;
            }
            const std::string key = parseString();
            skipSpace();
            if (next() != ':') {
                fail("expected ':' after object key");
                break;
            }
            // A duplicate key means the request author's intent is
            // ambiguous — reject rather than let last-writer win.
            if (v.object.count(key) != 0) {
                fail("duplicate object key \"" + key + "\"");
                break;
            }
            v.object[key] = parseValue();
            skipSpace();
            const char c = next();
            if (c == '}')
                break;
            if (c != ',') {
                fail("expected ',' or '}' in object");
                break;
            }
        }
        return v;
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Array;
        next(); // '['
        skipSpace();
        if (peek() == ']') {
            next();
            return v;
        }
        while (ok_) {
            v.array.push_back(parseValue());
            skipSpace();
            const char c = next();
            if (c == ']')
                break;
            if (c != ',') {
                fail("expected ',' or ']' in array");
                break;
            }
        }
        return v;
    }

    std::string
    parseString()
    {
        std::string s;
        next(); // '"'
        while (ok_) {
            const char c = next();
            if (c == '"')
                break;
            if (c == '\0') {
                fail("unterminated string");
                break;
            }
            if (c != '\\') {
                s += c;
                continue;
            }
            const char e = next();
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // ASCII only: request fields are identifiers and paths;
                // anything higher is replaced, never mis-decoded.
                s += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: fail("bad escape"); break;
            }
        }
        return s;
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                (text_[pos_] >= '0' && text_[pos_] <= '9')))
            ++pos_;
        Value v;
        if (pos_ == start) {
            fail("expected value");
            return v;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        v.number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            fail("bad number '" + tok + "'");
            return v;
        }
        v.kind = Value::Number;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace

bool
parse(const std::string &text, Value *out, std::string *error)
{
    return Parser(text).parse(out, error);
}

} // namespace json
} // namespace caba
