/**
 * @file
 * Minimal fixed-size thread pool / work queue used to fan independent
 * simulations out across host cores (the app x design sweep being the
 * primary customer). Jobs are plain std::function<void()>; completion is
 * observed with wait(), which blocks until every submitted job has
 * finished. The pool is deliberately tiny: no futures, no priorities,
 * no work stealing — just enough to keep hardware_concurrency() workers
 * busy with coarse-grained, independent cells.
 */
#ifndef CABA_COMMON_THREAD_POOL_H
#define CABA_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace caba {

/** Fixed-size worker pool draining a FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * Spawns @p workers threads. @p workers must be >= 1; a pool of one
     * worker still runs jobs off-thread but in strict submission order.
     */
    explicit ThreadPool(int workers);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues @p job; runs on some worker in FIFO dispatch order. */
    void submit(std::function<void()> job);

    /** Blocks until every job submitted so far has completed. */
    void wait();

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Worker count for "use the whole machine": hardware_concurrency(),
     * or 1 when the runtime cannot tell.
     */
    static int defaultWorkers();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable job_ready_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    int pending_ = 0; ///< queued + currently running jobs
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

/**
 * Runs fn(0..n-1) across @p jobs workers and returns once every index
 * has been processed. With jobs <= 1 (or n <= 1) the calls happen
 * inline on the caller's thread, in index order, with no pool spun up —
 * callers get serial semantics for free. @p fn must be safe to invoke
 * concurrently from multiple threads when jobs > 1.
 */
void parallelFor(int n, int jobs, const std::function<void(int)> &fn);

} // namespace caba

#endif // CABA_COMMON_THREAD_POOL_H
