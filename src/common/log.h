/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh: panic() for
 * simulator bugs (aborts), fatal() for user/configuration errors (exits),
 * a checked assertion macro that prints context before aborting, and a
 * thread-safe single-line progress reporter for long sweeps.
 */
#ifndef CABA_COMMON_LOG_H
#define CABA_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace caba {

/** Aborts with a message; use for conditions that indicate a simulator bug. */
[[noreturn]] inline void
panic(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/** Exits with a message; use for invalid user configuration. */
[[noreturn]] inline void
fatal(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/**
 * Serialized \r-rewriting progress line on stderr. tick() may be called
 * from any thread; the counter and the write are guarded by one mutex so
 * concurrent workers never interleave partial lines. The destructor
 * blanks the line, matching the old serial sweep behaviour.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::string label, int total)
        : label_(std::move(label)), total_(total)
    {}

    ~ProgressReporter()
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Blank exactly as many columns as the widest line we wrote;
        // a long label or unit name would otherwise leave its tail
        // behind (and a short one would over-erase the caller's text).
        if (max_width_ > 0) {
            std::fprintf(stderr, "%*s\r", max_width_, "");
            std::fflush(stderr);
        }
    }

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Marks one unit done; @p what names the unit (e.g. "app x design"). */
    void
    tick(const std::string &what)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++done_;
        int len = std::fprintf(stderr, "  [%s] %3d/%-3d %-32s\r",
                               label_.c_str(), done_, total_, what.c_str());
        --len;  // The trailing \r occupies no column.
        if (len > max_width_)
            max_width_ = len;
        std::fflush(stderr);
    }

    /** Widest progress line written so far, in columns. */
    int maxWidth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return max_width_;
    }

    int done() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return done_;
    }

  private:
    mutable std::mutex mu_;
    std::string label_;
    int total_;
    int done_ = 0;
    int max_width_ = 0;
};

} // namespace caba

#define CABA_PANIC(msg) ::caba::panic(__FILE__, __LINE__, (msg))
#define CABA_FATAL(msg) ::caba::fatal(__FILE__, __LINE__, (msg))

/** Always-on invariant check (independent of NDEBUG). */
#define CABA_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::caba::panic(__FILE__, __LINE__, (msg));                       \
    } while (0)

#endif // CABA_COMMON_LOG_H
