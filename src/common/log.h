/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh: panic() for
 * simulator bugs (aborts), fatal() for user/configuration errors (exits),
 * and a checked assertion macro that prints context before aborting.
 */
#ifndef CABA_COMMON_LOG_H
#define CABA_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>

namespace caba {

/** Aborts with a message; use for conditions that indicate a simulator bug. */
[[noreturn]] inline void
panic(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/** Exits with a message; use for invalid user configuration. */
[[noreturn]] inline void
fatal(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace caba

#define CABA_PANIC(msg) ::caba::panic(__FILE__, __LINE__, (msg))
#define CABA_FATAL(msg) ::caba::fatal(__FILE__, __LINE__, (msg))

/** Always-on invariant check (independent of NDEBUG). */
#define CABA_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::caba::panic(__FILE__, __LINE__, (msg));                       \
    } while (0)

#endif // CABA_COMMON_LOG_H
