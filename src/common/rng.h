/**
 * @file
 * Deterministic xorshift64* pseudo-random generator. Every stochastic
 * element of the reproduction (data generators, irregular address streams)
 * draws from an explicitly seeded Rng so runs are exactly repeatable.
 */
#ifndef CABA_COMMON_RNG_H
#define CABA_COMMON_RNG_H

#include <cstdint>

namespace caba {

/** Small, fast, seedable PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

/**
 * Stateless 64-bit mix hash (splitmix64 finalizer). Used to derive
 * deterministic per-line data from an address and a seed without storing
 * the whole simulated memory image.
 */
inline std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace caba

#endif // CABA_COMMON_RNG_H
