/**
 * @file
 * In-loop wall-clock profiler for the run loop (DESIGN.md section 11).
 * When CABA_PROF=<path> is set, GpuSystem timestamps every component
 * cycle batch, skipIdle catch-up and quiescence jump, attributing host
 * nanoseconds to (component class, phase) buckets. The process exit
 * hook writes a deterministic-schema `caba-prof-v1` JSON document to
 * the given path (every bucket always present, fixed order — only the
 * measured values vary) and prints a top-N table to stderr. This is
 * the tool that found the DRAM FR-FCFS hotspot behind the PR 6
 * speedup, built in.
 *
 * Determinism contract: the profiler reads host clocks but never reads
 * or writes simulation state, so RunResult is bit-identical with
 * profiling on or off (asserted by tests/test_prof.cc). All wall-clock
 * reads live in prof.cc, which is whitelisted by caba-lint's
 * determinism rule alongside common/self_profile.*.
 */
#ifndef CABA_COMMON_PROF_H
#define CABA_COMMON_PROF_H

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace caba {
namespace prof {

/** Component classes host time is attributed to. */
enum class Comp : int {
    Sm,         ///< SmCore cycle/catch-up work.
    XbarReq,    ///< Request-crossbar direction.
    XbarReply,  ///< Reply-crossbar direction.
    Partition,  ///< Memory partition (L2 + MD + DRAM channel).
    Wire,       ///< Traffic pumping (includes wake-side catch-ups).
    Loop,       ///< Whole-run loop (inclusive; jump = quiescence skips).
    kCount,
};

/** What the component was doing when the time was spent. */
enum class Phase : int {
    Cycle,      ///< cycle(now) calls.
    CatchUp,    ///< Deferred skipIdle() spans charged on wake.
    Jump,       ///< Quiescence-jump bookkeeping (eventJump/fastForward).
    kCount,
};

inline constexpr int kComps = static_cast<int>(Comp::kCount);
inline constexpr int kPhases = static_cast<int>(Phase::kCount);
inline constexpr int kBuckets = kComps * kPhases;

/** Stable lower-case names (JSON schema fields). */
const char *compName(Comp c);
const char *phaseName(Phase p);

/** Live read of CABA_PROF: non-empty means profiling is requested.
 *  GpuSystem samples this once per construction. */
bool enabledEnv();

/** Monotonic host time in nanoseconds. The only wall-clock read on the
 *  simulator side outside common/self_profile.* and the trace sink. */
std::int64_t nowNs();

/**
 * Per-GpuSystem accumulator: plain arrays on the hot path (no locking,
 * no allocation), merged into the process-global table by flush() once
 * per run. Sweeps run cells on worker threads; each cell owns its
 * Recorder, so the global mutex is taken once per cell, not per cycle.
 */
class Recorder
{
  public:
    void
    add(Comp c, Phase p, std::int64_t ns)
    {
        const std::size_t i = index(c, p);
        ns_[i] += ns;
        ++calls_[i];
    }

    /** Merges this recorder into the global table and zeroes it. */
    void flush();

  private:
    static std::size_t
    index(Comp c, Phase p)
    {
        return static_cast<std::size_t>(static_cast<int>(c) * kPhases +
                                        static_cast<int>(p));
    }

    std::array<std::int64_t, kBuckets> ns_{};
    std::array<std::uint64_t, kBuckets> calls_{};
};

/** Snapshot of one global bucket (tests / report). */
struct Bucket
{
    Comp comp = Comp::Sm;
    Phase phase = Phase::Cycle;
    std::int64_t ns = 0;
    std::uint64_t calls = 0;
};

/** All kBuckets global buckets in fixed (component, phase) order. */
std::array<Bucket, kBuckets> snapshot();

/** Zeroes the global table (test isolation). */
void resetForTest();

/**
 * Writes the `caba-prof-v1` document to @p path: the fixed-order
 * bucket array plus the SelfProfile build/run wall-clock totals, so
 * the harness self-profile lands in the same artifact.
 * @return false when the file cannot be opened.
 */
bool writeReport(const std::string &path);

/** Prints the top-@p n buckets by wall time to @p out. */
void reportTopN(std::FILE *out, int n);

} // namespace prof
} // namespace caba

#endif // CABA_COMMON_PROF_H
