/**
 * @file
 * The clocked-object / port discipline every timed component follows
 * (gem5 / GPGPU-Sim style). Three pieces:
 *
 *  - Clocked: cycle(now) advances one cycle, busy() reports outstanding
 *    state, and nextWork(now) hints the earliest cycle at which calling
 *    cycle() could do anything. The hint powers quiescence fast-forward
 *    in GpuSystem::run(): when every component reports no work before
 *    cycle C, the clock jumps to C and skipIdle() charges the skipped
 *    cycles to the same accounting the per-cycle path would have used.
 *    The contract is one-sided: reporting work too EARLY only costs a
 *    wasted tick; reporting it too LATE is a simulation bug.
 *
 *  - Sink<T> / Source<T>: the two ends of a typed connection with
 *    explicit backpressure (canAccept / hasData).
 *
 *  - Channel<T>: a bounded FIFO implementing both ends, and Wire<T>,
 *    which greedily pumps a Source into a Sink once per cycle. The
 *    GpuSystem traffic-moving loops are a flat list of Wires.
 */
#ifndef CABA_COMMON_COMPONENT_H
#define CABA_COMMON_COMPONENT_H

#include <cstddef>
#include <deque>

#include "common/types.h"

namespace caba {

/** nextWork() sentinel: the component will never act again on its own
 *  (it may still be reactivated by traffic pushed into it). */
inline constexpr Cycle kNoWork = ~Cycle{0};

/** A component advanced by the global clock. */
class Clocked
{
  public:
    virtual ~Clocked();

    /** Advances the component one cycle. */
    virtual void cycle(Cycle now) = 0;

    /** True while the component holds undrained state. */
    virtual bool busy() const = 0;

    /**
     * Earliest cycle >= @p now at which cycle() could change any state
     * or counter (kNoWork when it never will). Must be conservative:
     * never later than the true next event.
     */
    virtual Cycle
    nextWork(Cycle now) const
    {
        (void)now;
        return now;
    }

    /**
     * Applies the accounting the skipped cycles [@p from, @p to) would
     * have performed, given that nextWork(from) >= to held for every
     * component in the system. Default: nothing to account.
     */
    virtual void
    skipIdle(Cycle from, Cycle to)
    {
        (void)from;
        (void)to;
    }
};

/** Receiving end of a typed connection. */
template <typename T>
class Sink
{
  public:
    virtual ~Sink() = default;

    /** True when one more packet can be accepted this cycle. */
    virtual bool canAccept() const = 0;

    /** Hands over one packet; canAccept() must be true. */
    virtual void accept(const T &pkt, Cycle now) = 0;
};

/** Producing end of a typed connection. */
template <typename T>
class Source
{
  public:
    virtual ~Source() = default;

    /** True when a packet is ready to be taken at @p now. */
    virtual bool hasData(Cycle now) const = 0;

    /** Removes and returns the next packet; hasData() must be true. */
    virtual T take() = 0;
};

/**
 * Bounded FIFO implementing both connection ends. The capacity gates
 * canAccept()/canPush() only: push() itself never refuses, so producers
 * with reserved slots (e.g. assist-warp store release) can exceed the
 * advertised capacity exactly like the hand-rolled deques they replace.
 */
template <typename T>
class Channel : public Source<T>, public Sink<T>
{
  public:
    /** @p capacity < 0 means unbounded. */
    explicit Channel(int capacity = -1) : capacity_(capacity) {}

    bool
    canPush() const
    {
        return capacity_ < 0 ||
               q_.size() < static_cast<std::size_t>(capacity_);
    }

    void push(const T &v) { q_.push_back(v); }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    const T &front() const { return q_.front(); }
    void pop_front() { q_.pop_front(); }
    void clear() { q_.clear(); }

    // Source
    bool hasData(Cycle) const override { return !q_.empty(); }

    T
    take() override
    {
        T v = q_.front();
        q_.pop_front();
        return v;
    }

    // Sink
    bool canAccept() const override { return canPush(); }
    void accept(const T &pkt, Cycle) override { push(pkt); }

  private:
    std::deque<T> q_;
    int capacity_;
};

/** One Source-to-Sink binding; pump() drains greedily under
 *  backpressure, replacing a hand-rolled while loop per connection. */
template <typename T>
struct Wire
{
    Source<T> *src = nullptr;
    Sink<T> *dst = nullptr;

    void
    pump(Cycle now)
    {
        while (src->hasData(now) && dst->canAccept())
            dst->accept(src->take(), now);
    }

    /** Would pump() move at least one item right now? Quiescence
     *  checks use this: a pumpable wire means the next cycle is not a
     *  no-op even if every component reports future work. */
    bool
    canPump(Cycle now) const
    {
        return src->hasData(now) && dst->canAccept();
    }
};

} // namespace caba

#endif // CABA_COMMON_COMPONENT_H
