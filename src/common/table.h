/**
 * @file
 * ASCII table formatter used by the benchmark harness to print the rows
 * and series that correspond to the paper's tables and figures.
 */
#ifndef CABA_COMMON_TABLE_H
#define CABA_COMMON_TABLE_H

#include <string>
#include <vector>

namespace caba {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Appends one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: formats a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: formats a value as a percentage string ("41.7%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Renders the table, header first, columns padded to content width. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace caba

#endif // CABA_COMMON_TABLE_H
