/**
 * @file
 * Implementation of the in-loop wall-clock profiler (see prof.h).
 * This file is the sanctioned home for run-loop clock reads: it is on
 * caba-lint's determinism whitelist, and nothing here reads or writes
 * simulation state — the sim stays bit-identical profiler on/off.
 */
#include "common/prof.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/env.h"
#include "common/json.h"
#include "common/log.h"
#include "common/self_profile.h"

namespace caba {
namespace prof {

namespace {

struct Table
{
    std::mutex mu;
    std::array<std::int64_t, kBuckets> ns{};
    std::array<std::uint64_t, kBuckets> calls{};
};

Table &
table()
{
    static Table t;
    return t;
}

/** Writes `caba-prof-v1` at exit when CABA_PROF was set at startup —
 *  same activation pattern as the trace sink. */
struct EnvActivation
{
    std::string path;

    EnvActivation()
    {
        const char *p = env::raw("CABA_PROF");
        if (p == nullptr || p[0] == '\0')
            return;
        path = p;
        std::atexit(&EnvActivation::emit);
    }

    static void
    emit()
    {
        const std::string &path = activation().path;
        if (path.empty())
            return;
        if (!writeReport(path))
            std::fprintf(stderr, "caba: CABA_PROF: cannot write %s\n",
                         path.c_str());
        else
            std::fprintf(stderr, "caba: profile written to %s\n",
                         path.c_str());
        reportTopN(stderr, 8);
    }

    static EnvActivation &
    activation()
    {
        /* Deliberately leaked: emit() runs from atexit, which fires
         * after function-local statics registered later in the same
         * constructor would be destroyed — `path` must outlive it. */
        static EnvActivation *a = new EnvActivation;
        return *a;
    }
};

const bool g_env_activated = !EnvActivation::activation().path.empty();

} // namespace

const char *
compName(Comp c)
{
    switch (c) {
    case Comp::Sm:
        return "sm";
    case Comp::XbarReq:
        return "xbar_req";
    case Comp::XbarReply:
        return "xbar_reply";
    case Comp::Partition:
        return "partition";
    case Comp::Wire:
        return "wire";
    case Comp::Loop:
        return "loop";
    case Comp::kCount:
        break;
    }
    CABA_PANIC("bad prof component");
}

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::Cycle:
        return "cycle";
    case Phase::CatchUp:
        return "catch_up";
    case Phase::Jump:
        return "jump";
    case Phase::kCount:
        break;
    }
    CABA_PANIC("bad prof phase");
}

bool
enabledEnv()
{
    (void)g_env_activated; // force activation even if nothing else links it
    const char *p = env::raw("CABA_PROF");
    return p != nullptr && p[0] != '\0';
}

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
Recorder::flush()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    for (std::size_t i = 0; i < kBuckets; ++i) {
        t.ns[i] += ns_[i];
        t.calls[i] += calls_[i];
        ns_[i] = 0;
        calls_[i] = 0;
    }
}

std::array<Bucket, kBuckets>
snapshot()
{
    std::array<Bucket, kBuckets> out;
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    for (int c = 0; c < kComps; ++c) {
        for (int p = 0; p < kPhases; ++p) {
            const std::size_t i =
                static_cast<std::size_t>(c * kPhases + p);
            out[i].comp = static_cast<Comp>(c);
            out[i].phase = static_cast<Phase>(p);
            out[i].ns = t.ns[i];
            out[i].calls = t.calls[i];
        }
    }
    return out;
}

void
resetForTest()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    t.ns.fill(0);
    t.calls.fill(0);
}

bool
writeReport(const std::string &path)
{
    const std::array<Bucket, kBuckets> buckets = snapshot();

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "caba-prof-v1");
    w.key("entries").beginArray();
    for (const Bucket &b : buckets) {
        w.beginObject();
        w.kv("component", compName(b.comp));
        w.kv("phase", phaseName(b.phase));
        w.kv("ns", static_cast<std::uint64_t>(b.ns < 0 ? 0 : b.ns));
        w.kv("calls", b.calls);
        w.endObject();
    }
    w.endArray();
    // The harness-level wall-clock scopes (std::map -> sorted keys, so
    // the key order is deterministic even though the values are not).
    w.key("self_profile").beginObject();
    for (const auto &[name, ns] : SelfProfile::snapshot())
        w.kv(name, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    w.endObject();
    w.endObject();

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

void
reportTopN(std::FILE *out, int n)
{
    std::array<Bucket, kBuckets> buckets = snapshot();
    std::sort(buckets.begin(), buckets.end(),
              [](const Bucket &a, const Bucket &b) {
                  if (a.ns != b.ns)
                      return a.ns > b.ns;
                  if (a.comp != b.comp)
                      return a.comp < b.comp;
                  return a.phase < b.phase;
              });
    std::int64_t total = 0;
    for (const Bucket &b : buckets)
        total += b.ns;
    if (total <= 0)
        return;
    std::fprintf(out, "caba: profile top %d (of %.3fs attributed):\n", n,
                 static_cast<double>(total) * 1e-9);
    for (int i = 0; i < n && i < static_cast<int>(buckets.size()); ++i) {
        const Bucket &b = buckets[i];
        if (b.ns <= 0)
            break;
        std::fprintf(out, "  %-10s %-8s %9.3fs %5.1f%%  %llu calls\n",
                     compName(b.comp), phaseName(b.phase),
                     static_cast<double>(b.ns) * 1e-9,
                     100.0 * static_cast<double>(b.ns) /
                         static_cast<double>(total),
                     static_cast<unsigned long long>(b.calls));
    }
}

} // namespace prof
} // namespace caba
