#include "common/table.h"

#include <cstdio>

#include "common/log.h"

namespace caba {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    CABA_CHECK(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    CABA_CHECK(row.size() == header_.size(), "row width != header width");
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row, std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out += std::string(width[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(header_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        emit_row(row, out);
    return out;
}

} // namespace caba
