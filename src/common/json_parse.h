/**
 * @file
 * Strict recursive-descent JSON parser for the sweep service's request
 * documents (harness/sweep_service.h). Until the service existed the
 * simulator only ever wrote JSON (common/json.h) and the tests carried
 * their own parser (tests/mini_json.h); caba_sweepd accepts JSON over a
 * socket, so parsing is now a library concern.
 *
 * Strictness over speed, exactly like the test parser: trailing
 * garbage, unbalanced nesting, bad escapes and duplicate-key objects
 * are all parse errors — a malformed request must be rejected, never
 * half-understood. Object members are kept in a std::map, so iteration
 * order is deterministic.
 */
#ifndef CABA_COMMON_JSON_PARSE_H
#define CABA_COMMON_JSON_PARSE_H

#include <map>
#include <string>
#include <vector>

namespace caba {
namespace json {

/** One parsed JSON value (tagged union over the standard kinds). */
struct Value
{
    enum Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Null; }
    bool isBool() const { return kind == Bool; }
    bool isNumber() const { return kind == Number; }
    bool isString() const { return kind == String; }
    bool isArray() const { return kind == Array; }
    bool isObject() const { return kind == Object; }

    /** Member lookup; null when absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parses @p text into @p *out. @return false on any syntax error,
 * trailing garbage, or a duplicate object key; @p *error (optional)
 * receives a one-line reason.
 */
bool parse(const std::string &text, Value *out, std::string *error = nullptr);

} // namespace json
} // namespace caba

#endif // CABA_COMMON_JSON_PARSE_H
