/**
 * @file
 * gem5-style self-consistency audits. The determinism machinery proves a
 * run is *repeatable*; the audit layer proves it is *self-consistent*:
 * every MemRequest injected by an SM is tracked to retirement (zero
 * orphans at drain), and stat identities that must hold by construction
 * (hits + misses == accesses, packet conservation through the crossbars,
 * burst conservation through the DRAM ledger, AWT triggers ==
 * completions + kills + live) are cross-checked at end of run or every N
 * cycles. The audit reads simulator state but never mutates timing or
 * statistics, so RunResult is bit-identical with audits on or off.
 *
 * Levels (CABA_AUDIT environment variable, or GpuConfig::audit):
 *   off | 0        no auditing
 *   end | 1        checks at drain only (the default; tier-1 cheap)
 *   full           checks every AuditConfig::period cycles and at drain
 *   <N>            checks every N cycles and at drain
 */
#ifndef CABA_COMMON_AUDIT_H
#define CABA_COMMON_AUDIT_H

#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace caba {

/** How often invariants are evaluated. */
enum class AuditLevel : std::uint8_t { Off, EndOfRun, Periodic };

/** Deliberate faults for the mutation self-test (tests/test_audit.cc):
 *  each one simulates a silent bookkeeping bug the audit must catch. */
enum class AuditFault : std::uint8_t
{
    DropStorePacket,    ///< Crossbar loses the next write packet.
    DoubleCountBurst,   ///< Partition counts the next read's bursts twice.
    LeakLoadSlot,       ///< LDST unit never frees the next finished slot.
};

/** Audit knobs (GpuConfig::audit; CABA_AUDIT overrides level/period). */
struct AuditConfig
{
    AuditLevel level = AuditLevel::EndOfRun;

    /** Cycles between in-flight checks at AuditLevel::Periodic. */
    Cycle period = 65536;

    /** Panic on the first failed audit (tests clear this and inspect
     *  Audit::failures() instead). */
    bool fatal = true;

    /** Ignore CABA_AUDIT (tests that pin a level programmatically). */
    bool ignore_env = false;

    /** Applies the CABA_AUDIT environment override (read once). */
    static AuditConfig resolve(AuditConfig base);

    /** Applies one override spec ("off", "end", "full", "<N>") to
     *  @p base. Exposed for tests; unknown specs leave @p base alone. */
    static AuditConfig applySpec(AuditConfig base, const char *spec);
};

/** Last place a tracked request was seen alive. */
enum class ReqStage : std::uint8_t
{
    Injected,       ///< Pushed into the SM out-queue.
    XbarReq,        ///< Entered the request crossbar.
    AtPartition,    ///< Accepted by a memory partition.
    DramWait,       ///< Waiting on a DRAM read.
    Replied,        ///< Reply queued at the partition.
    XbarReply,      ///< Reply entered the reply crossbar.
};

const char *reqStageName(ReqStage s);

/**
 * One audit instance per GpuSystem (parallel sweeps each own one).
 * Components call the on*() lifecycle hooks from their hot paths (cheap:
 * one hash-map operation per request per stage) and implement an
 * audit(Audit&, bool at_drain) method holding their invariant checks,
 * driven by GpuSystem::runAudit().
 */
class Audit
{
  public:
    explicit Audit(const AuditConfig &cfg);

    bool enabled() const { return cfg_.level != AuditLevel::Off; }
    bool periodic() const { return cfg_.level == AuditLevel::Periodic; }
    const AuditConfig &config() const { return cfg_; }

    // -- request lifecycle --
    //
    // Templated on the request type so common/ stays below mem/ in the
    // layer map (DESIGN.md §14): the audit needs only the id / src_sm /
    // line / is_write fields, which any packet-shaped struct provides.

    /** A new request entered the memory system at @p now. */
    template <typename Req>
    void
    onInject(const Req &req, Cycle now)
    {
        if (!enabled())
            return;
        ++injected_;
        Tracked t;
        t.stage = ReqStage::Injected;
        t.injected = now;
        t.line = req.line;
        t.is_write = req.is_write;
        const auto [it, fresh] = live_.emplace(key(req), t);
        (void)it;
        if (!fresh) {
            std::ostringstream os;
            os << "lifecycle: duplicate injection of request id " << req.id
               << " from SM " << req.src_sm;
            fail(os.str());
        }
    }

    /** The request was seen alive at @p stage. */
    template <typename Req>
    void
    onStage(const Req &req, ReqStage stage)
    {
        if (!enabled())
            return;
        auto it = live_.find(key(req));
        if (it == live_.end()) {
            std::ostringstream os;
            os << "lifecycle: request id " << req.id << " from SM "
               << req.src_sm << " reached stage " << reqStageName(stage)
               << " without being injected";
            fail(os.str());
            return;
        }
        it->second.stage = stage;
    }

    /** The request left the memory system (reply consumed / store
     *  absorbed). */
    template <typename Req>
    void
    onRetire(const Req &req)
    {
        if (!enabled())
            return;
        auto it = live_.find(key(req));
        if (it == live_.end()) {
            std::ostringstream os;
            os << "lifecycle: request id " << req.id << " from SM "
               << req.src_sm << " retired twice (or never injected)";
            fail(os.str());
            return;
        }
        live_.erase(it);
        ++retired_;
    }

    std::size_t liveRequests() const { return live_.size(); }
    std::uint64_t injected() const { return injected_; }
    std::uint64_t retired() const { return retired_; }

    // -- invariant checks (used by per-subsystem audit() methods) --

    void fail(std::string msg);
    void checkEq(const char *where, const char *what, std::uint64_t lhs,
                 std::uint64_t rhs);
    void checkLe(const char *where, const char *what, std::uint64_t lhs,
                 std::uint64_t rhs);
    void checkTrue(const char *where, const char *what, bool ok);

    /** Orphan check over the lifecycle table: at drain no request may
     *  still be live; injected == retired + live always. */
    void checkLifecycle(Cycle now, bool at_drain);

    const std::vector<std::string> &failures() const { return failures_; }

  private:
    struct Tracked
    {
        ReqStage stage = ReqStage::Injected;
        Cycle injected = 0;
        Addr line = 0;
        bool is_write = false;
    };

    /** Ids are a per-SM sequence, so (id, src_sm) is unique system-wide. */
    template <typename Req>
    static std::uint64_t
    key(const Req &req)
    {
        return (req.id << 8) | static_cast<std::uint64_t>(req.src_sm & 0xff);
    }

    AuditConfig cfg_;
    std::unordered_map<std::uint64_t, Tracked> live_;
    std::vector<std::string> failures_;
    std::uint64_t injected_ = 0;
    std::uint64_t retired_ = 0;
};

} // namespace caba

#endif // CABA_COMMON_AUDIT_H
