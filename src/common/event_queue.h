/**
 * @file
 * Wake-time tracker for the event-driven run loop: a binary min-heap
 * over a fixed id space [0, n) where each id carries one authoritative
 * wake cycle. schedule() overwrites the id's wake time and pushes a new
 * heap entry; superseded entries stay in the heap and are discarded
 * lazily when they surface (the classic lazy-deletion calendar queue —
 * cheaper than decrease-key for the few dozen components a GpuSystem
 * clocks, and trivially exercisable in isolation by tests).
 *
 * GpuSystem uses it to answer one question in O(1) amortized time:
 * "what is the earliest cycle any sleeping component wants to run?" —
 * the quiescence jump target. Per-id due checks read the flat array.
 */
#ifndef CABA_COMMON_EVENT_QUEUE_H
#define CABA_COMMON_EVENT_QUEUE_H

#include <cstddef>
#include <utility>
#include <vector>

#include "common/component.h"
#include "common/log.h"
#include "common/types.h"

namespace caba {

/** Min-heap of (wake cycle, component id) with lazy stale deletion. */
class EventQueue
{
  public:
    explicit EventQueue(int ids = 0) { reset(ids); }

    /** Clears all state and resizes the id space to [0, @p ids). */
    void
    reset(int ids)
    {
        CABA_CHECK(ids >= 0, "negative id space");
        when_.assign(static_cast<std::size_t>(ids), kNoWork);
        heap_.clear();
    }

    int size() const { return static_cast<int>(when_.size()); }

    /** Authoritative wake time of @p id (kNoWork = never). */
    Cycle
    when(int id) const
    {
        return when_[static_cast<std::size_t>(id)];
    }

    /** True when @p id wants to run at @p now. */
    bool due(int id, Cycle now) const { return when(id) <= now; }

    /**
     * (Re)schedules @p id to wake at @p at, superseding any earlier
     * schedule — later, earlier, or equal are all fine. kNoWork parks
     * the id without a heap entry.
     */
    void
    schedule(int id, Cycle at)
    {
        when_[static_cast<std::size_t>(id)] = at;
        if (at != kNoWork)
            heap_.push_back({at, id});
        siftUp(heap_.size());
    }

    /**
     * Earliest authoritative wake time over all ids (kNoWork when every
     * id is parked). Pops superseded entries as a side effect.
     */
    Cycle
    minTime()
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.front();
            if (when_[static_cast<std::size_t>(top.id)] == top.at)
                return top.at;
            popTop();
        }
        return kNoWork;
    }

    /** Live heap entries, stale ones included (tests/introspection). */
    std::size_t heapEntries() const { return heap_.size(); }

  private:
    struct Entry
    {
        Cycle at;
        int id;
    };

    void
    siftUp(std::size_t n)
    {
        if (n == 0)
            return;
        std::size_t i = n - 1;
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (heap_[parent].at <= heap_[i].at)
                break;
            std::swap(heap_[parent], heap_[i]);
            i = parent;
        }
    }

    void
    popTop()
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        std::size_t i = 0;
        const std::size_t n = heap_.size();
        while (true) {
            const std::size_t l = 2 * i + 1;
            const std::size_t r = l + 1;
            std::size_t smallest = i;
            if (l < n && heap_[l].at < heap_[smallest].at)
                smallest = l;
            if (r < n && heap_[r].at < heap_[smallest].at)
                smallest = r;
            if (smallest == i)
                return;
            std::swap(heap_[i], heap_[smallest]);
            i = smallest;
        }
    }

    std::vector<Cycle> when_;   ///< Authoritative wake per id.
    std::vector<Entry> heap_;   ///< Lazy min-heap over schedule() calls.
};

} // namespace caba

#endif // CABA_COMMON_EVENT_QUEUE_H
