#include "common/thread_pool.h"

#include "common/log.h"

namespace caba {

ThreadPool::ThreadPool(int workers)
{
    CABA_CHECK(workers >= 1, "thread pool needs at least one worker");
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    job_ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        CABA_CHECK(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(job));
        ++pending_;
    }
    job_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
}

int
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            job_ready_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--pending_ == 0)
                all_done_.notify_all();
        }
    }
}

void
parallelFor(int n, int jobs, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(jobs < n ? jobs : n);
    for (int i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace caba
