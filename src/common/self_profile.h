/**
 * @file
 * Wall-clock self-profiling for the harness: named scopes accumulate
 * host-time totals into a process-global table so a sweep can report
 * where real time went (workload synthesis vs. simulation vs. export).
 * This measures the *simulator*, not the simulated GPU — totals go to
 * stderr and, when CABA_PROF is set, into the `caba-prof-v1` artifact
 * (common/prof.h embeds snapshot() under "self_profile"); they are
 * deliberately kept out of the deterministic bench JSON exports, which
 * must stay byte-identical across runs and job counts.
 */
#ifndef CABA_COMMON_SELF_PROFILE_H
#define CABA_COMMON_SELF_PROFILE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace caba {

/** Process-global accumulation of host nanoseconds by scope name.
 *  All methods are thread-safe. */
class SelfProfile
{
  public:
    /** RAII scope: adds its lifetime to the named bucket. */
    class Scope
    {
      public:
        explicit Scope(const char *name)
            : name_(name), begin_(std::chrono::steady_clock::now())
        {}

        ~Scope()
        {
            auto end = std::chrono::steady_clock::now();
            add(name_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                           end - begin_)
                           .count());
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        const char *name_;
        std::chrono::steady_clock::time_point begin_;
    };

    /** Adds @p ns to bucket @p name. */
    static void add(const char *name, std::int64_t ns);

    /** Snapshot of all buckets (name -> total nanoseconds). */
    static std::map<std::string, std::int64_t> snapshot();

    /** Prints non-empty buckets to stderr as "  self: name 1.234s". */
    static void report(const char *header);
};

} // namespace caba

#endif // CABA_COMMON_SELF_PROFILE_H
