/**
 * @file
 * Bit-level helpers used by the compression codecs: byte (de)serialization
 * of fixed-width little-endian words and range checks for signed deltas.
 */
#ifndef CABA_COMMON_BITOPS_H
#define CABA_COMMON_BITOPS_H

#include <cstdint>
#include <cstddef>
#include <cstring>

#include "common/log.h"

namespace caba {

/** Reads a little-endian unsigned value of @p size bytes (1,2,4,8). */
inline std::uint64_t
loadLe(const std::uint8_t *p, int size)
{
    // On little-endian hosts the power-of-two widths are single
    // (unaligned) loads via fixed-size memcpy — these sit in the
    // codecs' per-element inner loops.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    switch (size) {
      case 1: return *p;
      case 2: { std::uint16_t v; std::memcpy(&v, p, 2); return v; }
      case 4: { std::uint32_t v; std::memcpy(&v, p, 4); return v; }
      case 8: { std::uint64_t v; std::memcpy(&v, p, 8); return v; }
      default: break;
    }
#endif
    std::uint64_t v = 0;
    for (int i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Writes @p v little-endian into @p size bytes at @p p. */
inline void
storeLe(std::uint8_t *p, int size, std::uint64_t v)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    switch (size) {
      case 1: *p = static_cast<std::uint8_t>(v); return;
      case 2: { const std::uint16_t w = static_cast<std::uint16_t>(v);
                std::memcpy(p, &w, 2); return; }
      case 4: { const std::uint32_t w = static_cast<std::uint32_t>(v);
                std::memcpy(p, &w, 4); return; }
      case 8: std::memcpy(p, &v, 8); return;
      default: break;
    }
#endif
    for (int i = 0; i < size; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/**
 * True if the signed difference @p delta fits in @p bytes bytes, i.e. can
 * be represented as a sign-extended @p bytes-byte two's-complement value.
 */
inline bool
fitsSigned(std::int64_t delta, int bytes)
{
    if (bytes >= 8)
        return true;
    const std::int64_t lim = std::int64_t{1} << (8 * bytes - 1);
    return delta >= -lim && delta < lim;
}

/** True if the unsigned value @p v fits in @p bytes bytes. */
inline bool
fitsUnsigned(std::uint64_t v, int bytes)
{
    if (bytes >= 8)
        return true;
    return v < (std::uint64_t{1} << (8 * bytes));
}

/** Sign-extends the low @p bytes bytes of @p v to 64 bits. */
inline std::int64_t
signExtend(std::uint64_t v, int bytes)
{
    if (bytes >= 8)
        return static_cast<std::int64_t>(v);
    const int shift = 64 - 8 * bytes;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

} // namespace caba

#endif // CABA_COMMON_BITOPS_H
