/**
 * @file
 * Fundamental scalar types and architectural constants shared by every
 * subsystem of the CABA reproduction.
 */
#ifndef CABA_COMMON_TYPES_H
#define CABA_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace caba {

/** Simulated clock cycle count (core clock domain unless noted). */
using Cycle = std::uint64_t;

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** SIMT lane count per warp (Table 1: 32 threads/warp). */
inline constexpr int kWarpSize = 32;

/** Cache line / DRAM access granularity in bytes (GPGPU-Sim default:
 *  128B lines; a line moves in 1-4 GDDR5 bursts, Section 4.3.2). */
inline constexpr int kLineSize = 128;

/** GDDR5 moves data in 32-byte bursts (paper Section 4.1.3). */
inline constexpr int kBurstSize = 32;

/** Number of 32B bursts in an uncompressed line. */
inline constexpr int kBurstsPerLine = kLineSize / kBurstSize;

/** Invalid / "no warp" sentinel. */
inline constexpr int kInvalidWarp = -1;

/** Rounds @p value up to the next multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr value, Addr align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Rounds @p value down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr value, Addr align)
{
    return value & ~(align - 1);
}

/** Line-aligned base address of @p addr. */
constexpr Addr
lineAddr(Addr addr)
{
    return alignDown(addr, kLineSize);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace caba

#endif // CABA_COMMON_TYPES_H
