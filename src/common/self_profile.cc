#include "common/self_profile.h"

#include <cstdio>
#include <mutex>

namespace caba {
namespace {

struct Table
{
    std::mutex mu;
    std::map<std::string, std::int64_t> ns;
};

Table &
table()
{
    static Table t;
    return t;
}

} // namespace

void
SelfProfile::add(const char *name, std::int64_t ns)
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    t.ns[name] += ns;
}

std::map<std::string, std::int64_t>
SelfProfile::snapshot()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.ns;
}

void
SelfProfile::report(const char *header)
{
    auto snap = snapshot();
    if (snap.empty())
        return;
    std::fprintf(stderr, "%s\n", header);
    for (const auto &[name, ns] : snap) {
        std::fprintf(stderr, "  self: %-12s %8.3fs\n", name.c_str(),
                     static_cast<double>(ns) * 1e-9);
    }
}

} // namespace caba
