/**
 * @file
 * Named-statistics registry. Subsystems register scalars by name; the
 * harness dumps them, tests assert on them, and the JSON export
 * serializes them. A deliberately small take on gem5's stats package,
 * in three pieces:
 *
 *  - counters: monotonically accumulated event counts. Merging two
 *    sets (e.g. per-SM snapshots into a whole-GPU result) SUMS them.
 *  - gauges: point-in-time or configuration values (capacities, knob
 *    settings). Merging OVERWRITES instead of summing — an 8KB MD
 *    cache per partition is still 8KB after six partitions merge.
 *  - distributions: log2-bucketed histograms (latencies, queue depths,
 *    compressed sizes). Merging adds bucket-wise.
 */
#ifndef CABA_COMMON_STATS_H
#define CABA_COMMON_STATS_H

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>

namespace caba {

/**
 * Log2-bucketed histogram of unsigned samples. Bucket 0 holds exactly
 * the value 0; bucket b (1..64) holds [2^(b-1), 2^b - 1]. Recording is
 * a handful of arithmetic ops, cheap enough for per-event hot paths.
 */
class Distribution
{
  public:
    static constexpr int kBuckets = 65;

    /** Bucket index for @p v (0 for 0, else bit width, 1..64). */
    static int
    bucketOf(std::uint64_t v)
    {
        return v == 0 ? 0 : std::bit_width(v);
    }

    /** Smallest value falling in bucket @p b. */
    static std::uint64_t
    bucketLow(int b)
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    void
    record(std::uint64_t v)
    {
        if (count_ == 0) {
            min_ = v;
            max_ = v;
        } else {
            min_ = v < min_ ? v : min_;
            max_ = v > max_ ? v : max_;
        }
        ++count_;
        // Saturating sum: a histogram that has seen ~2^64 total keeps
        // reporting the ceiling instead of wrapping to a small lie.
        const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max();
        sum_ = v > cap - sum_ ? cap : sum_ + v;
        ++buckets_[static_cast<std::size_t>(bucketOf(v))];
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return min_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Bucket-wise accumulation of @p other into this histogram. */
    void
    merge(const Distribution &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        min_ = other.min_ < min_ ? other.min_ : min_;
        max_ = other.max_ > max_ ? other.max_ : max_;
        count_ += other.count_;
        const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max();
        sum_ = other.sum_ > cap - sum_ ? cap : sum_ + other.sum_;
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
    }

    bool
    operator==(const Distribution &other) const
    {
        return count_ == other.count_ && sum_ == other.sum_ &&
               min_ == other.min_ && max_ == other.max_ &&
               buckets_ == other.buckets_;
    }

    /** Rebuilds a histogram from previously observed state (the cell
     *  cache round-trips distributions through this). */
    static Distribution
    restore(std::uint64_t count, std::uint64_t sum, std::uint64_t min,
            std::uint64_t max,
            const std::array<std::uint64_t, kBuckets> &buckets)
    {
        Distribution d;
        d.count_ = count;
        d.sum_ = sum;
        d.min_ = min;
        d.max_ = max;
        d.buckets_ = buckets;
        return d;
    }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

/** A bag of named counters, gauges and distributions with merge and
 *  format support. */
class StatSet
{
  public:
    /** Adds @p delta to counter @p name, creating it at zero if absent. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /**
     * Snapshot-sets counter @p name to @p value. Counter semantics:
     * merging sums. Use for counters kept as plain struct members on
     * the hot path and assembled into a StatSet afterwards.
     */
    void
    setCounter(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /**
     * Sets gauge @p name to @p value. Gauge semantics: merging
     * overwrites, so configuration/capacity values survive per-SM or
     * per-partition aggregation unscaled.
     */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
        gauges_.insert(name);
    }

    /** Value of counter/gauge @p name (zero if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** True when @p name was written with gauge semantics. */
    bool
    isGauge(const std::string &name) const
    {
        return gauges_.count(name) != 0;
    }

    /** Ratio of two counters; 0 when the denominator is zero. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        const double d = static_cast<double>(get(den));
        return d == 0.0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** The named histogram, created empty on first use. */
    Distribution &
    dist(const std::string &name)
    {
        return dists_[name];
    }

    /** The named histogram, or null when never recorded. */
    const Distribution *
    findDist(const std::string &name) const
    {
        auto it = dists_.find(name);
        return it == dists_.end() ? nullptr : &it->second;
    }

    /**
     * Accumulates every stat of @p other into this set: counters sum,
     * gauges overwrite, distributions merge bucket-wise.
     */
    void
    merge(const StatSet &other)
    {
        mergePrefixed(other, std::string());
    }

    /** merge() with @p prefix prepended to every incoming name (the
     *  GpuSystem aggregation: "sm_" + "issued_alu" etc.). */
    void
    mergePrefixed(const StatSet &other, const std::string &prefix)
    {
        for (const auto &[k, v] : other.counters_) {
            const std::string name = prefix + k;
            if (other.gauges_.count(k) != 0) {
                counters_[name] = v;
                gauges_.insert(name);
            } else {
                counters_[name] += v;
            }
        }
        for (const auto &[k, d] : other.dists_)
            dists_[prefix + k].merge(d);
    }

    /** All counters and gauges, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** All distributions, sorted by name. */
    const std::map<std::string, Distribution> &allDists() const
    {
        return dists_;
    }

    void
    clear()
    {
        counters_.clear();
        gauges_.clear();
        dists_.clear();
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::set<std::string> gauges_;
    std::map<std::string, Distribution> dists_;
};

} // namespace caba

#endif // CABA_COMMON_STATS_H
