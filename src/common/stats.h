/**
 * @file
 * Lightweight named-statistics registry. Subsystems register scalar
 * counters by name; the harness dumps them, and tests assert on them.
 * This is a deliberately tiny take on gem5's stats package: scalar
 * counters and derived ratios only, no binning.
 */
#ifndef CABA_COMMON_STATS_H
#define CABA_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace caba {

/** A flat bag of named uint64 counters with merge/format support. */
class StatSet
{
  public:
    /** Adds @p delta to counter @p name, creating it at zero if absent. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Sets counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Value of counter @p name (zero if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Ratio of two counters; 0 when the denominator is zero. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        const double d = static_cast<double>(get(den));
        return d == 0.0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** Accumulates every counter of @p other into this set. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[k, v] : other.counters_)
            counters_[k] += v;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    void clear() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace caba

#endif // CABA_COMMON_STATS_H
