#include "common/parse.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace caba {
namespace parse {

bool
finitePositiveReal(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    // ERANGE covers overflow to HUGE_VAL and underflow to 0/denormal;
    // isfinite covers explicit "nan"/"inf" spellings, which strtod
    // happily parses (and NaN defeats any <=/>= rejection).
    if (errno == ERANGE || !std::isfinite(v) || v <= 0.0)
        return false;
    *out = v;
    return true;
}

bool
boundedInt(const std::string &s, long min, long max, long *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long n = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    if (n < min || n > max)
        return false;
    *out = n;
    return true;
}

bool
intInRange(const std::string &s, int min, int *out)
{
    long n = 0;
    if (!boundedInt(s, min, INT_MAX, &n))
        return false;
    *out = static_cast<int>(n);
    return true;
}

} // namespace parse
} // namespace caba
