/**
 * @file
 * Event tracing for the simulator, emitting Chrome trace-event JSON
 * (open the file in Perfetto / chrome://tracing). Categories are gated
 * at runtime: every instrumentation site is guarded by trace::on(cat),
 * a single relaxed load of a process-global mask, so a build with
 * tracing compiled in but disabled pays one predictable branch per
 * site and never touches simulation state — results are bit-identical
 * with tracing on, off, or filtered.
 *
 * Activation:
 *  - environment: CABA_TRACE=<path> turns tracing on for the whole
 *    process and writes the trace at exit; CABA_TRACE_CATEGORIES is an
 *    optional comma list (warp,assist,cache,dram,xbar,slots,counter)
 *    defaulting to all of them.
 *  - programmatic: trace::start(path, mask) / trace::stop() (tests).
 *
 * Threading: events append to per-thread buffers with no locking on
 * the hot path (registration of a new thread's buffer takes a mutex
 * once). Timestamps are simulated cycles, one microsecond per cycle in
 * the Chrome timeline. start()/stop() must not run concurrently with
 * simulation; the sweep driver satisfies this because cells are joined
 * before results are read.
 */
#ifndef CABA_COMMON_TRACE_H
#define CABA_COMMON_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace caba {
namespace trace {

/** Event categories; a bitmask gates emission per category. */
enum Category : unsigned {
    kWarp = 1u << 0,        ///< Issue/stall spans, warp launch/retire.
    kAssistWarp = 1u << 1,  ///< AWC spawn / kill / complete.
    kCache = 1u << 2,       ///< L1 / L2 hit-miss, MD-cache lookups.
    kDram = 1u << 3,        ///< Per-bank GDDR5 data-bus bursts.
    kXbar = 1u << 4,        ///< Crossbar packet transfers.
    kSlots = 1u << 5,       ///< Exact per-scheduler issue-slot taxonomy
                            ///< spans (DESIGN.md section 11).
    kCounter = 1u << 6,     ///< Counter tracks: event-queue depth,
                            ///< issuable warps, DRAM read-queue depth.
    kAll = (1u << 7) - 1,
};

/** Trace-process ids: one Chrome "process" lane per subsystem. */
inline constexpr int kPidSm = 1;     ///< tid = SM id.
inline constexpr int kPidAssist = 2; ///< tid = SM id.
inline constexpr int kPidCache = 3;  ///< tid = SM (L1), 100+part (L2),
                                     ///<       200+part (MD cache).
inline constexpr int kPidDram = 4;   ///< tid = channel * 100 + bank.
inline constexpr int kPidXbar = 5;   ///< tid = direction base + port.
inline constexpr int kPidSlots = 6;  ///< tid = SM id * schedulers + s.
inline constexpr int kPidCounter = 7; ///< tid = SM / partition id.

/** Currently enabled categories; zero while no sink is open. */
extern std::atomic<unsigned> g_mask;

/** True when events of @p c are being collected (hot-path guard). */
inline bool
on(Category c)
{
    return (g_mask.load(std::memory_order_relaxed) & c) != 0;
}

/** Parses "warp,assist,cache,dram,xbar,slots,counter" (unknown names
 *  ignored). */
unsigned maskFromNames(const char *csv);

/**
 * Opens a trace sink at @p path collecting categories in @p mask.
 * Replaces any active session. Creates parent directories.
 */
void start(const std::string &path, unsigned mask = kAll);

/** Flushes all buffered events to the sink and closes it. No-op when
 *  no session is active. Events are written sorted by timestamp. */
void stop();

/** True between start() and stop(). */
bool active();

/**
 * Records an instant event. @p name and @p arg_name must be string
 * literals (or otherwise outlive stop()); @p arg_name may be null.
 */
void instant(Category cat, int pid, int tid, const char *name, Cycle ts,
             const char *arg_name = nullptr, std::uint64_t arg = 0);

/** Records a complete ("X") event spanning [@p ts, @p ts + @p dur]. */
void complete(Category cat, int pid, int tid, const char *name, Cycle ts,
              Cycle dur, const char *arg_name = nullptr,
              std::uint64_t arg = 0);

/** Records a counter ("C") sample: a named counter track whose value
 *  at @p ts is @p value. One track per (pid, tid, name). */
void counter(Category cat, int pid, int tid, const char *name, Cycle ts,
             std::uint64_t value);

} // namespace trace
} // namespace caba

#endif // CABA_COMMON_TRACE_H
