/**
 * @file
 * Strict numeric parsing shared by the caba_bench CLI and the sweep
 * service's request validation. These exist because the lenient
 * strtod/strtol idiom has bitten twice: strtod accepts "nan"/"inf"
 * (and `x <= 0` is false for NaN, so a sign check does not reject it),
 * and strtol saturates huge values to LONG_MAX which then truncates
 * silently through an int cast. Every helper here demands the whole
 * token parse, rejects non-finite values, and range-checks before any
 * narrowing.
 */
#ifndef CABA_COMMON_PARSE_H
#define CABA_COMMON_PARSE_H

#include <string>

namespace caba {
namespace parse {

/**
 * Parses @p s as a finite, strictly positive real. Rejects empty
 * strings, trailing garbage, "nan", "inf"/"infinity", hex floats are
 * fine (strtod grammar) as long as they are finite and > 0.
 * @return true and sets @p *out on success; false leaves @p *out alone.
 */
bool finitePositiveReal(const std::string &s, double *out);

/**
 * Parses @p s as a decimal integer in [@p min, @p max]. Rejects empty
 * strings, trailing garbage, and out-of-range values (including
 * strtol's ERANGE saturation, which would otherwise truncate through a
 * narrowing cast). @return true and sets @p *out on success.
 */
bool boundedInt(const std::string &s, long min, long max, long *out);

/** boundedInt into an int, range [@p min, INT_MAX]. */
bool intInRange(const std::string &s, int min, int *out);

} // namespace parse
} // namespace caba

#endif // CABA_COMMON_PARSE_H
