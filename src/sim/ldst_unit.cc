#include "sim/ldst_unit.h"

#include "common/audit.h"
#include "common/log.h"
#include "common/trace.h"
#include "sim/sm_core.h"

namespace caba {

LdstUnit::LdstUnit(int sm_id, const SmConfig &cfg, const CacheConfig &l1_cfg,
                   Hooks *hooks)
    : sm_id_(sm_id), mshr_entries_(cfg.mshr_entries),
      out_queue_(cfg.out_queue), lines_per_cycle_(cfg.lines_per_cycle),
      hooks_(hooks), l1_(l1_cfg), out_req_(cfg.out_queue)
{
    CABA_CHECK(hooks_, "LDST unit needs core hooks");
    loads_.resize(static_cast<std::size_t>(cfg.max_warps) * 8);
    for (int i = static_cast<int>(loads_.size()) - 1; i >= 0; --i)
        free_load_slots_.push_back(i);
}

MemAccess &
LdstUnit::beginAccess(bool is_store, int warp)
{
    CABA_CHECK(!st_.busy, "LDST unit already busy");
    st_.busy = true;
    st_.is_store = is_store;
    st_.warp = warp;
    st_.cursor = 0;
    return st_.access;
}

void
LdstUnit::armLoad(int warp, std::uint64_t regmask)
{
    st_.load_slot = allocLoadSlot(
        warp, regmask, static_cast<int>(st_.access.lines.size()));
}

int
LdstUnit::allocLoadSlot(int warp, std::uint64_t regmask, int lines)
{
    CABA_CHECK(!free_load_slots_.empty(), "load slot pool exhausted");
    const int slot = free_load_slots_.back();
    free_load_slots_.pop_back();
    PendingLoad &pl = loads_[static_cast<std::size_t>(slot)];
    pl.active = true;
    pl.warp = warp;
    pl.regmask = regmask;
    pl.lines_left = lines;
    return slot;
}

void
LdstUnit::loadLineDone(int slot)
{
    if (slot < 0)
        return;
    PendingLoad &pl = loads_[static_cast<std::size_t>(slot)];
    CABA_CHECK(pl.active, "completion for dead load");
    if (--pl.lines_left == 0) {
        hooks_->clearPending(pl.warp, pl.regmask);
        if (fault_leak_load_slot_) {
            // Seeded fault: the warp proceeds but the slot is never
            // freed -- invisible to drained(). The audit must notice.
            fault_leak_load_slot_ = false;
            return;
        }
        pl.active = false;
        free_load_slots_.push_back(slot);
    }
}

void
LdstUnit::completeFill(Addr line, int bytes)
{
    std::vector<Eviction> evicted;
    l1_.insert(line, bytes, false, &evicted);   // L1 is write-evict: clean
    auto it = mshrs_.find(line);
    if (it == mshrs_.end())
        return;                                 // e.g. prefetch raced
    for (int slot : it->second)
        loadLineDone(slot);
    mshrs_.erase(it);
}

bool
LdstUnit::issuePrefetch(Addr line, Cycle now)
{
    if (!l1_.contains(line) && !mshrs_.count(line) &&
        static_cast<int>(mshrs_.size()) < mshr_entries_ &&
        static_cast<int>(out_req_.size()) < out_queue_) {
        mshrs_[line] = {};      // fill with no waiters
        MemRequest req;
        req.id = hooks_->allocReqId();
        req.line = line;
        req.src_sm = sm_id_;
        req.payload_bytes = 8;
        out_req_.push(req);
        if (audit_)
            audit_->onInject(req, now);
        return true;
    }
    return false;
}

bool
LdstUnit::drain(Cycle now)
{
    if (!st_.busy)
        return false;
    for (int n = 0; n < lines_per_cycle_; ++n) {
        if (st_.cursor >= st_.access.lines.size()) {
            st_.busy = false;
            return false;
        }
        const Addr line = st_.access.lines[st_.cursor];
        if (!st_.is_store) {
            // ---- load line ----
            // Probe without counting first so replayed lines do not
            // inflate hit/miss statistics or churn LRU state.
            if (!l1_.contains(line)) {
                auto it = mshrs_.find(line);
                if (it != mshrs_.end()) {
                    if (trace::on(trace::kCache)) {
                        trace::instant(trace::kCache, trace::kPidCache,
                                       sm_id_, "l1_miss", now, "line", line);
                    }
                    l1_.access(line);   // counts the miss
                    it->second.push_back(st_.load_slot);
                    ++l1_load_misses_;
                    ++mshr_merges_;
                    ++st_.cursor;
                    continue;
                }
                if (static_cast<int>(mshrs_.size()) >= mshr_entries_ ||
                    static_cast<int>(out_req_.size()) >= out_queue_) {
                    // Pure replay: no counter, trace or LRU effect
                    // until an MSHR or out-queue slot frees up.
                    return true;
                }
                if (trace::on(trace::kCache)) {
                    trace::instant(trace::kCache, trace::kPidCache, sm_id_,
                                   "l1_miss", now, "line", line);
                }
                l1_.access(line);       // counts the miss
                ++l1_load_misses_;
                mshrs_[line] = {st_.load_slot};
                MemRequest req;
                req.id = hooks_->allocReqId();
                req.line = line;
                req.is_write = false;
                req.src_sm = sm_id_;
                req.warp = st_.warp;
                req.created = now;
                req.payload_bytes = 8;  // read request header
                out_req_.push(req);
                if (audit_)
                    audit_->onInject(req, now);
                ++st_.cursor;
                continue;
            }
            if (l1_.access(line)) {
                ++l1_load_hits_;
                if (trace::on(trace::kCache)) {
                    trace::instant(trace::kCache, trace::kPidCache, sm_id_,
                                   "l1_hit", now, "line", line);
                }
                if (!hooks_->onLoadHit(line, st_.load_slot, now)) {
                    // AWT full: retry next cycle (the retry re-counts
                    // the hit).
                    return true;
                }
                ++st_.cursor;
                continue;
            }
            CABA_PANIC("L1 probe/access disagreement");
        } else {
            // ---- store line ----
            if (static_cast<int>(out_req_.size()) >= out_queue_) {
                return true;
            }
            hooks_->commitStore(line);
            // L1 is write-evict for global stores.
            Eviction ev;
            l1_.invalidate(line, &ev);
            hooks_->routeStore(line, st_.access.full_line, st_.warp, now);
            ++st_.cursor;
        }
    }
    if (st_.cursor >= st_.access.lines.size())
        st_.busy = false;
    return false;
}

void
LdstUnit::audit(Audit &a, bool at_drain) const
{
    a.checkEq("l1", "hits + misses == accesses",
              l1_.hits() + l1_.misses(), l1_.accesses());
    std::uint64_t active = 0;
    for (const PendingLoad &pl : loads_)
        active += pl.active ? 1 : 0;
    a.checkEq("ldst", "active + free load slots == pool size",
              active + free_load_slots_.size(), loads_.size());
    if (!at_drain)
        return;
    a.checkEq("ldst", "no active load slots at drain", active, 0);
    a.checkTrue("ldst", "MSHRs empty at drain", mshrs_.empty());
    a.checkTrue("ldst", "out-queue empty at drain", out_req_.empty());
}

} // namespace caba
