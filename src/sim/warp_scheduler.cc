#include "sim/warp_scheduler.h"

#include <algorithm>

#include "common/log.h"

namespace caba {

WarpScheduler::WarpScheduler(int max_warps, int schedulers,
                             int ibuffer_entries, int decode_width, bool gto)
    : max_warps_(max_warps), schedulers_(schedulers),
      ibuffer_entries_(ibuffer_entries), decode_width_(decode_width),
      gto_(gto),
      greedy_warp_(static_cast<std::size_t>(schedulers), kInvalidWarp),
      decode_rr_(static_cast<std::size_t>(schedulers), 0),
      lrr_next_(static_cast<std::size_t>(schedulers), 0)
{
    CABA_CHECK(schedulers_ >= 1, "need at least one scheduler");
    warps_.resize(static_cast<std::size_t>(max_warps));
}

void
WarpScheduler::launch(const KernelInfo *kernel, int num_warps,
                      int warp_global_base, int warp_global_stride)
{
    CABA_CHECK(kernel, "null kernel");
    CABA_CHECK(num_warps > 0 && num_warps <= max_warps_,
               "bad warp count for launch");
    CABA_CHECK(kernel->program().numRegs() <= 64,
               "scoreboard supports at most 64 registers per thread");
    kernel_ = kernel;
    live_warps_ = num_warps;
    for (int w = 0; w < num_warps; ++w) {
        WarpState &ws = warps_[static_cast<std::size_t>(w)];
        ws = WarpState{};
        ws.exists = true;
        ws.global_id = warp_global_base + w * warp_global_stride;
        ws.trips_left = std::max(1, kernel->iterations(ws.global_id));
    }
}

void
WarpScheduler::decodeOneWarp(WarpState &w)
{
    const Program &prog = kernel_->program();
    for (int n = 0; n < decode_width_; ++n) {
        if (w.decode_done ||
            static_cast<int>(w.ibuf.size()) >= ibuffer_entries_) {
            return;
        }
        const Instruction &inst = prog.at(w.pc);
        w.ibuf.push({&inst, w.iter});
        if (inst.op == Opcode::Branch) {
            // Back-edge resolves at decode: trip counters are explicit.
            --w.trips_left;
            if (w.trips_left > 0) {
                w.pc = inst.branch_target;
                ++w.iter;
            } else {
                ++w.pc;
            }
        } else if (inst.op == Opcode::Exit) {
            w.decode_done = true;
        } else {
            ++w.pc;
        }
    }
}

void
WarpScheduler::decodeCycle()
{
    if (!kernel_)
        return;
    for (int s = 0; s < schedulers_; ++s) {
        // Round-robin pick of one warp of this scheduler's parity.
        const int slots = max_warps_ / schedulers_;
        for (int k = 0; k < slots; ++k) {
            const int w = ((decode_rr_[static_cast<std::size_t>(s)] + k) %
                           slots) * schedulers_ + s;
            WarpState &ws = warps_[static_cast<std::size_t>(w)];
            if (!ws.exists || ws.done || ws.decode_done ||
                static_cast<int>(ws.ibuf.size()) >= ibuffer_entries_) {
                continue;
            }
            decodeOneWarp(ws);
            decode_rr_[static_cast<std::size_t>(s)] =
                (w / schedulers_ + 1) % slots;
            break;
        }
    }
}

bool
WarpScheduler::warpReady(const WarpState &w) const
{
    if (!w.exists || w.done || w.ibuf.empty())
        return false;
    const Instruction &inst = *w.ibuf.front().inst;
    std::uint64_t need = 0;
    if (inst.dst >= 0)
        need |= std::uint64_t{1} << inst.dst;
    if (inst.src0 >= 0)
        need |= std::uint64_t{1} << inst.src0;
    if (inst.src1 >= 0)
        need |= std::uint64_t{1} << inst.src1;
    return (w.pending_regs & need) == 0;
}

bool
WarpScheduler::anyDecodable() const
{
    if (!kernel_)
        return false;
    for (const WarpState &w : warps_) {
        if (w.exists && !w.done && !w.decode_done &&
            static_cast<int>(w.ibuf.size()) < ibuffer_entries_) {
            return true;
        }
    }
    return false;
}

bool
WarpScheduler::anyReady() const
{
    for (const WarpState &w : warps_)
        if (warpReady(w))
            return true;
    return false;
}

} // namespace caba
