#include "sim/warp_scheduler.h"

#include <algorithm>

#include "common/log.h"

namespace caba {

WarpScheduler::WarpScheduler(int max_warps, int schedulers,
                             int ibuffer_entries, int decode_width, bool gto)
    : max_warps_(max_warps), schedulers_(schedulers),
      ibuffer_entries_(ibuffer_entries), decode_width_(decode_width),
      gto_(gto),
      greedy_warp_(static_cast<std::size_t>(schedulers), kInvalidWarp),
      decode_rr_(static_cast<std::size_t>(schedulers), 0),
      lrr_next_(static_cast<std::size_t>(schedulers), 0),
      parity_mask_(static_cast<std::size_t>(schedulers), 0)
{
    CABA_CHECK(schedulers_ >= 1, "need at least one scheduler");
    CABA_CHECK(max_warps_ >= 1 && max_warps_ <= 64,
               "selection bitsets support at most 64 warps per SM");
    warps_.resize(static_cast<std::size_t>(max_warps));
    for (int w = 0; w < max_warps_; ++w)
        parity_mask_[static_cast<std::size_t>(w % schedulers_)] |=
            std::uint64_t{1} << w;
}

void
WarpScheduler::launch(const KernelInfo *kernel, int num_warps,
                      int warp_global_base, int warp_global_stride)
{
    CABA_CHECK(kernel, "null kernel");
    CABA_CHECK(num_warps > 0 && num_warps <= max_warps_,
               "bad warp count for launch");
    CABA_CHECK(kernel->program().numRegs() <= 64,
               "scoreboard supports at most 64 registers per thread");
    kernel_ = kernel;
    live_warps_ = num_warps;
    for (int w = 0; w < num_warps; ++w) {
        WarpState &ws = warps_[static_cast<std::size_t>(w)];
        ws = WarpState{};
        ws.exists = true;
        ws.global_id = warp_global_base + w * warp_global_stride;
        ws.trips_left = std::max(1, kernel->iterations(ws.global_id));
    }
    issuable_ = blocked_ = mem_blocked_ = live_ = decodable_ = 0;
    for (int w = 0; w < max_warps_; ++w)
        refreshWarp(w);
}

void
WarpScheduler::decodeOneWarp(WarpState &w)
{
    const Program &prog = kernel_->program();
    for (int n = 0; n < decode_width_; ++n) {
        if (w.decode_done ||
            static_cast<int>(w.ibuf.size()) >= ibuffer_entries_) {
            return;
        }
        const Instruction &inst = prog.at(w.pc);
        w.ibuf.push({&inst, w.iter});
        if (inst.op == Opcode::Branch) {
            // Back-edge resolves at decode: trip counters are explicit.
            --w.trips_left;
            if (w.trips_left > 0) {
                w.pc = inst.branch_target;
                ++w.iter;
            } else {
                ++w.pc;
            }
        } else if (inst.op == Opcode::Exit) {
            w.decode_done = true;
        } else {
            ++w.pc;
        }
    }
}

void
WarpScheduler::decodeCycle()
{
    if (!kernel_)
        return;
    const int slots = max_warps_ / schedulers_;
    for (int s = 0; s < schedulers_; ++s) {
        // Round-robin pick of one warp of this scheduler's parity: the
        // first decodable warp at or after the rotation point, wrapping.
        const std::size_t si = static_cast<std::size_t>(s);
        const std::uint64_t cand = decodable_ & parity_mask_[si];
        if (cand == 0)
            continue;
        const int start_w = decode_rr_[si] * schedulers_ + s;
        const std::uint64_t hi = cand & (~std::uint64_t{0} << start_w);
        const int w = std::countr_zero(hi != 0 ? hi : cand);
        decodeOneWarp(warps_[static_cast<std::size_t>(w)]);
        refreshWarp(w);
        decode_rr_[si] = (w / schedulers_ + 1) % slots;
    }
}

bool
WarpScheduler::warpReady(const WarpState &w) const
{
    if (!w.exists || w.done || w.ibuf.empty())
        return false;
    return frontReady(w);
}

bool
WarpScheduler::anyDecodable() const
{
    return kernel_ != nullptr && decodable_ != 0;
}

bool
WarpScheduler::anyReady() const
{
    return issuable_ != 0;
}

} // namespace caba
