/**
 * @file
 * Warp front-end of one SM: per-warp decode state and instruction
 * buffers, the round-robin decode pick, scoreboard readiness, and the
 * greedy-then-oldest (or loose round-robin) issue selection of Table 1.
 * Execution itself stays with SmCore — the scheduler hands it a warp id
 * through a try-issue callback and keeps its greedy/rotation bookkeeping
 * consistent with whether the issue actually happened.
 *
 * Selection is struct-of-arrays: three uint64 bitsets (issuable,
 * operand-blocked, decodable — one bit per warp) are kept in lockstep
 * with the per-warp state, so the per-cycle decode and issue picks are
 * rotated word-scans instead of per-warp loops. Any out-of-band
 * mutation of a WarpState must be followed by refreshWarp(); the picks
 * visit warps in exactly the order the historical loops did.
 */
#ifndef CABA_SIM_WARP_SCHEDULER_H
#define CABA_SIM_WARP_SCHEDULER_H

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "workloads/kernel.h"

namespace caba {

struct SmConfig;

/** Decode/issue front-end shared by the SmCore pipelines. */
class WarpScheduler
{
  public:
    struct DecodedInst
    {
        const Instruction *inst = nullptr;
        int iter = 0;
    };

    /** Fixed-capacity instruction buffer (2 entries per Table 1). */
    struct IBuf
    {
        DecodedInst slots[4];
        std::uint8_t head = 0;
        std::uint8_t count = 0;

        bool empty() const { return count == 0; }
        int size() const { return count; }
        const DecodedInst &front() const { return slots[head]; }

        void
        push(const DecodedInst &d)
        {
            slots[(head + count) & 3] = d;
            ++count;
        }

        void
        pop()
        {
            head = (head + 1) & 3;
            --count;
        }
    };

    struct WarpState
    {
        bool exists = false;
        bool done = false;
        bool decode_done = false;
        int pc = 0;
        int iter = 0;
        int trips_left = 0;
        int global_id = 0;
        std::uint64_t pending_regs = 0;
        /** Subset of pending_regs whose producer is an outstanding
         *  load (LdGlobal/LdShared). Distinguishes memory-data stalls
         *  from plain scoreboard stalls in the slot taxonomy. */
        std::uint64_t pending_mem_regs = 0;
        IBuf ibuf;
    };

    WarpScheduler(int max_warps, int schedulers, int ibuffer_entries,
                  int decode_width, bool gto);

    /** Initializes warp state for a kernel launch (see SmCore::launch). */
    void launch(const KernelInfo *kernel, int num_warps,
                int warp_global_base, int warp_global_stride);

    const KernelInfo *kernel() const { return kernel_; }

    /** Decode stage: each scheduler picks one warp round-robin. */
    void decodeCycle();

    /** Scoreboard check of the warp's next buffered instruction. */
    bool warpReady(const WarpState &w) const;

    /** Mutable warp state. Callers that change readiness-relevant
     *  fields (pending_regs, ibuf, done) must call refreshWarp() —
     *  pickAndIssue() does so around its try-issue callback. */
    WarpState &
    warp(int w)
    {
        return warps_[static_cast<std::size_t>(w)];
    }

    const WarpState &
    warp(int w) const
    {
        return warps_[static_cast<std::size_t>(w)];
    }

    /** Writeback: clears @p mask from the warp's pending registers.
     *  A pending register has exactly one producer in flight, so the
     *  memory subset can be cleared with the same mask. */
    void
    clearPending(int w, std::uint64_t mask)
    {
        if (w == kInvalidWarp)
            return;
        WarpState &ws = warps_[static_cast<std::size_t>(w)];
        ws.pending_regs &= ~mask;
        ws.pending_mem_regs &= ~mask;
        refreshWarp(w);
    }

    /** Recomputes warp @p w's cached selection bits from its state. */
    void
    refreshWarp(int w)
    {
        const WarpState &ws = warps_[static_cast<std::size_t>(w)];
        const std::uint64_t bit = std::uint64_t{1} << w;
        const bool alive = ws.exists && !ws.done;
        const bool buffered = alive && !ws.ibuf.empty();
        const bool ready = buffered && frontReady(ws);
        setBit(&issuable_, bit, ready);
        setBit(&blocked_, bit, buffered && !ready);
        setBit(&mem_blocked_, bit,
               buffered && !ready &&
                   (frontNeed(ws) & ws.pending_mem_regs) != 0);
        setBit(&live_, bit, alive);
        setBit(&decodable_, bit,
               alive && !ws.decode_done &&
                   static_cast<int>(ws.ibuf.size()) < ibuffer_entries_);
    }

    int liveWarps() const { return live_warps_; }

    /** Bookkeeping for a warp issuing its Exit. */
    void noteWarpRetired() { --live_warps_; }

    /**
     * Issue selection for scheduler @p s: greedy-then-oldest over its
     * warp parity (loose round-robin when gto is off). @p try_issue is
     * invoked with a ready warp id and reports whether the issue took a
     * pipeline slot; greedy/rotation state updates only on success.
     * Warps blocked on operands set @p *saw_data_block.
     */
    template <typename TryIssue>
    bool
    pickAndIssue(int s, bool *saw_data_block, TryIssue &&try_issue)
    {
        const std::size_t si = static_cast<std::size_t>(s);
        const int g = greedy_warp_[si];
        if (gto_ && g != kInvalidWarp && ((issuable_ >> g) & 1)) {
            const bool ok = try_issue(g);
            refreshWarp(g);
            if (ok)
                return true;
        }
        const int slots = max_warps_ / schedulers_;
        const int start = gto_ ? 0 : lrr_next_[si];
        // Rotated word-scan over this scheduler's parity. Candidates
        // are the issuable and operand-blocked warps; visiting them in
        // the historical slot order keeps the blocked-warp stall
        // attribution (only warps scanned before a successful issue
        // report a data block) exactly as the per-warp loop had it.
        const std::uint64_t cand =
            (issuable_ | blocked_) & parity_mask_[si];
        const int start_w = start * schedulers_ + s;
        const std::uint64_t hi = cand & (~std::uint64_t{0} << start_w);
        for (std::uint64_t m : {hi, cand ^ hi}) {
            while (m != 0) {
                const int w = std::countr_zero(m);
                m &= m - 1;
                if ((blocked_ >> w) & 1) {
                    *saw_data_block = true;
                    continue;
                }
                const bool ok = try_issue(w);
                refreshWarp(w);
                if (ok) {
                    greedy_warp_[si] = w;
                    lrr_next_[si] = (w / schedulers_ + 1) % slots;
                    return true;
                }
            }
        }
        return false;
    }

    // -- quiescence queries (for SmCore::nextWork / skipIdle) --

    /** True when any warp could accept decoded instructions. */
    bool anyDecodable() const;

    /** True when any warp passes the scoreboard this cycle. */
    bool anyReady() const;

    // -- selection-bitset views (for SmCore's slot taxonomy and the
    //    profiling assist warp's stall-vector samples) --

    std::uint64_t issuableMask() const { return issuable_; }
    std::uint64_t blockedMask() const { return blocked_; }
    std::uint64_t memBlockedMask() const { return mem_blocked_; }
    std::uint64_t liveMask() const { return live_; }

    std::uint64_t
    parityMask(int s) const
    {
        return parity_mask_[static_cast<std::size_t>(s)];
    }

  private:
    void decodeOneWarp(WarpState &w);

    /** Register mask @p w's front instruction waits on (ibuf nonempty). */
    static std::uint64_t
    frontNeed(const WarpState &w)
    {
        const Instruction &inst = *w.ibuf.front().inst;
        std::uint64_t need = 0;
        if (inst.dst >= 0)
            need |= std::uint64_t{1} << inst.dst;
        if (inst.src0 >= 0)
            need |= std::uint64_t{1} << inst.src0;
        if (inst.src1 >= 0)
            need |= std::uint64_t{1} << inst.src1;
        return need;
    }

    /** Scoreboard check of @p w's front instruction (ibuf nonempty). */
    static bool
    frontReady(const WarpState &w)
    {
        return (w.pending_regs & frontNeed(w)) == 0;
    }

    static void
    setBit(std::uint64_t *mask, std::uint64_t bit, bool on)
    {
        *mask = on ? (*mask | bit) : (*mask & ~bit);
    }

    int max_warps_;
    int schedulers_;
    int ibuffer_entries_;
    int decode_width_;
    bool gto_;

    const KernelInfo *kernel_ = nullptr;
    std::vector<WarpState> warps_;
    int live_warps_ = 0;

    std::vector<int> greedy_warp_;
    std::vector<int> decode_rr_;
    std::vector<int> lrr_next_;     ///< Rotation points for LRR mode.

    // Selection bitsets, bit w = warps_[w] (kept in lockstep by
    // refreshWarp; max_warps <= 64 is checked at construction).
    std::uint64_t issuable_ = 0;    ///< exists, buffered, scoreboard-clear
    std::uint64_t blocked_ = 0;     ///< exists, buffered, operand-blocked
    std::uint64_t mem_blocked_ = 0; ///< blocked, waiting on a load result
    std::uint64_t live_ = 0;        ///< exists and not retired
    std::uint64_t decodable_ = 0;   ///< exists, fetchable, ibuf has room

    /** Bit w set iff w % schedulers == s (scheduler s's warps). */
    std::vector<std::uint64_t> parity_mask_;
};

} // namespace caba

#endif // CABA_SIM_WARP_SCHEDULER_H
