/**
 * @file
 * Warp front-end of one SM: per-warp decode state and instruction
 * buffers, the round-robin decode pick, scoreboard readiness, and the
 * greedy-then-oldest (or loose round-robin) issue selection of Table 1.
 * Execution itself stays with SmCore — the scheduler hands it a warp id
 * through a try-issue callback and keeps its greedy/rotation bookkeeping
 * consistent with whether the issue actually happened.
 */
#ifndef CABA_SIM_WARP_SCHEDULER_H
#define CABA_SIM_WARP_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/kernel.h"

namespace caba {

struct SmConfig;

/** Decode/issue front-end shared by the SmCore pipelines. */
class WarpScheduler
{
  public:
    struct DecodedInst
    {
        const Instruction *inst = nullptr;
        int iter = 0;
    };

    /** Fixed-capacity instruction buffer (2 entries per Table 1). */
    struct IBuf
    {
        DecodedInst slots[4];
        std::uint8_t head = 0;
        std::uint8_t count = 0;

        bool empty() const { return count == 0; }
        int size() const { return count; }
        const DecodedInst &front() const { return slots[head]; }

        void
        push(const DecodedInst &d)
        {
            slots[(head + count) & 3] = d;
            ++count;
        }

        void
        pop()
        {
            head = (head + 1) & 3;
            --count;
        }
    };

    struct WarpState
    {
        bool exists = false;
        bool done = false;
        bool decode_done = false;
        int pc = 0;
        int iter = 0;
        int trips_left = 0;
        int global_id = 0;
        std::uint64_t pending_regs = 0;
        IBuf ibuf;
    };

    WarpScheduler(int max_warps, int schedulers, int ibuffer_entries,
                  int decode_width, bool gto);

    /** Initializes warp state for a kernel launch (see SmCore::launch). */
    void launch(const KernelInfo *kernel, int num_warps,
                int warp_global_base, int warp_global_stride);

    const KernelInfo *kernel() const { return kernel_; }

    /** Decode stage: each scheduler picks one warp round-robin. */
    void decodeCycle();

    /** Scoreboard check of the warp's next buffered instruction. */
    bool warpReady(const WarpState &w) const;

    WarpState &
    warp(int w)
    {
        return warps_[static_cast<std::size_t>(w)];
    }

    const WarpState &
    warp(int w) const
    {
        return warps_[static_cast<std::size_t>(w)];
    }

    /** Writeback: clears @p mask from the warp's pending registers. */
    void
    clearPending(int w, std::uint64_t mask)
    {
        if (w != kInvalidWarp)
            warps_[static_cast<std::size_t>(w)].pending_regs &= ~mask;
    }

    int liveWarps() const { return live_warps_; }

    /** Bookkeeping for a warp issuing its Exit. */
    void noteWarpRetired() { --live_warps_; }

    /**
     * Issue selection for scheduler @p s: greedy-then-oldest over its
     * warp parity (loose round-robin when gto is off). @p try_issue is
     * invoked with a ready warp id and reports whether the issue took a
     * pipeline slot; greedy/rotation state updates only on success.
     * Warps blocked on operands set @p *saw_data_block.
     */
    template <typename TryIssue>
    bool
    pickAndIssue(int s, bool *saw_data_block, TryIssue &&try_issue)
    {
        const int g = greedy_warp_[static_cast<std::size_t>(s)];
        if (gto_ && g != kInvalidWarp &&
            warpReady(warps_[static_cast<std::size_t>(g)])) {
            if (try_issue(g))
                return true;
        }
        const int slots = max_warps_ / schedulers_;
        const int start = gto_ ? 0 : lrr_next_[static_cast<std::size_t>(s)];
        for (int k = 0; k < slots; ++k) {
            const int w = ((start + k) % slots) * schedulers_ + s;
            const WarpState &ws = warps_[static_cast<std::size_t>(w)];
            if (!ws.exists || ws.done)
                continue;
            if (!ws.ibuf.empty() && !warpReady(ws)) {
                *saw_data_block = true;
                continue;
            }
            if (!warpReady(ws))
                continue;
            if (try_issue(w)) {
                greedy_warp_[static_cast<std::size_t>(s)] = w;
                lrr_next_[static_cast<std::size_t>(s)] =
                    (start + k + 1) % slots;
                return true;
            }
        }
        return false;
    }

    // -- quiescence queries (for SmCore::nextWork / skipIdle) --

    /** True when any warp could accept decoded instructions. */
    bool anyDecodable() const;

    /** True when any warp passes the scoreboard this cycle. */
    bool anyReady() const;

  private:
    void decodeOneWarp(WarpState &w);

    int max_warps_;
    int schedulers_;
    int ibuffer_entries_;
    int decode_width_;
    bool gto_;

    const KernelInfo *kernel_ = nullptr;
    std::vector<WarpState> warps_;
    int live_warps_ = 0;

    std::vector<int> greedy_warp_;
    std::vector<int> decode_rr_;
    std::vector<int> lrr_next_;     ///< Rotation points for LRR mode.
};

} // namespace caba

#endif // CABA_SIM_WARP_SCHEDULER_H
