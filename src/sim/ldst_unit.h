/**
 * @file
 * The coalescing LDST unit of one SM: L1 data cache, MSHRs, pending-load
 * slots, and the per-cycle drain that turns one coalesced access into
 * hits, merged misses, and outgoing requests. Everything CABA-specific
 * (compressed-hit decompression, store compression routing) is delegated
 * back to SmCore through the Hooks interface so the drain order of the
 * original monolithic core is preserved statement for statement.
 */
#ifndef CABA_SIM_LDST_UNIT_H
#define CABA_SIM_LDST_UNIT_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/audit.h"
#include "common/component.h"
#include "mem/cache.h"
#include "mem/request.h"
#include "workloads/kernel.h"

namespace caba {

struct SmConfig;

/** L1 + MSHRs + coalescer drain for one SM. */
class LdstUnit
{
  public:
    /** CABA/core services the drain path calls back into. */
    class Hooks
    {
      public:
        virtual ~Hooks() = default;

        /** Next SM-wide request id (one sequence across all paths). */
        virtual std::uint64_t allocReqId() = 0;

        /**
         * An L1 load hit: schedule its completion (plain hit latency,
         * or a decompression assist warp for a compressed line).
         * @return false when the hit must replay next cycle (AWT full).
         */
        virtual bool onLoadHit(Addr line, int load_slot, Cycle now) = 0;

        /** Commits store data to the backing image. */
        virtual void commitStore(Addr line) = 0;

        /** Routes a committed store out (compressed or not). @p warp is
         *  the storing warp (parent of a compress assist warp). */
        virtual void routeStore(Addr line, bool full_line, int warp,
                                Cycle now) = 0;

        /** Register writeback for a fully-arrived load. */
        virtual void clearPending(int warp, std::uint64_t mask) = 0;
    };

    struct PendingLoad
    {
        bool active = false;
        int warp = kInvalidWarp;
        std::uint64_t regmask = 0;
        int lines_left = 0;
    };

    LdstUnit(int sm_id, const SmConfig &cfg, const CacheConfig &l1_cfg,
             Hooks *hooks);

    // -- issue-time interface (SmCore::tryIssueRegular) --

    bool busy() const { return st_.busy; }
    bool hasFreeLoadSlot() const { return !free_load_slots_.empty(); }

    /** Starts a coalesced access; returns the buffer genLines fills. */
    MemAccess &beginAccess(bool is_store, int warp);

    /** Load setup: allocates the pending-load slot for the access. */
    void armLoad(int warp, std::uint64_t regmask);

    /** Store setup: no load slot. */
    void armStore() { st_.load_slot = -1; }

    /** Degenerate access (no lines): releases the unit. */
    void cancel() { st_.busy = false; }

    // -- per-cycle drain --

    /**
     * Processes up to lines_per_cycle coalesced lines of the current
     * access. @return true when the unit stalled on a structural
     * resource this cycle (MSHRs/out-queue full, AWT full on a
     * compressed hit) — a memory structural stall for classifyCycle.
     */
    bool drain(Cycle now);

    // -- completion --

    /** One coalesced line of load @p slot finished. */
    void loadLineDone(int slot);

    /** A fill arrived: inserts the line and releases MSHR waiters. */
    void completeFill(Addr line, int bytes);

    /** Prefetch issue if the line is absent and resources allow. */
    bool issuePrefetch(Addr line, Cycle now);

    // -- state queries --

    Channel<MemRequest> &out() { return out_req_; }
    const Channel<MemRequest> &out() const { return out_req_; }
    const Cache &l1() const { return l1_; }

    bool
    drained() const
    {
        return mshrs_.empty() && !st_.busy && out_req_.empty();
    }

    std::uint64_t loadHits() const { return l1_load_hits_; }
    std::uint64_t loadMisses() const { return l1_load_misses_; }
    std::uint64_t mshrMerges() const { return mshr_merges_; }

    /** Registers the request-lifecycle audit. */
    void attachAudit(Audit *audit) { audit_ = audit; }

    /** Mutation self-test hook: the next load slot that completes is
     *  never returned to the free pool (simulates a slot leak, which
     *  drained() does not see). */
    void faultLeakNextLoadSlot() { fault_leak_load_slot_ = true; }

    /** Slot-pool conservation and drain-time emptiness checks. */
    void audit(Audit &a, bool at_drain) const;

  private:
    struct State
    {
        bool busy = false;
        bool is_store = false;
        int warp = kInvalidWarp;
        int load_slot = -1;
        MemAccess access;
        std::size_t cursor = 0;
    };

    int allocLoadSlot(int warp, std::uint64_t regmask, int lines);

    int sm_id_;
    int mshr_entries_;
    int out_queue_;
    int lines_per_cycle_;
    Hooks *hooks_;

    Cache l1_;
    std::vector<PendingLoad> loads_;
    std::vector<int> free_load_slots_;
    std::unordered_map<Addr, std::vector<int>> mshrs_;
    State st_;
    Channel<MemRequest> out_req_;

    std::uint64_t l1_load_hits_ = 0;
    std::uint64_t l1_load_misses_ = 0;
    std::uint64_t mshr_merges_ = 0;
    Audit *audit_ = nullptr;
    bool fault_leak_load_slot_ = false;
};

} // namespace caba

#endif // CABA_SIM_LDST_UNIT_H
