/**
 * @file
 * One streaming multiprocessor: fine-grained multithreaded warps fed
 * through per-warp instruction buffers into two GTO schedulers, with
 * ALU/SFU/LDST pipelines, a coalescing LDST unit with MSHRs and an L1,
 * and the CABA machinery (AWC/AWT/AWB + AWS-supplied subroutines)
 * grafted onto the issue stage exactly as in Figure 3.
 *
 * Structurally the core is a thin conductor over two extracted units —
 * the WarpScheduler front-end (decode, scoreboard, GTO/LRR pick) and the
 * LdstUnit back-end (L1, MSHRs, coalescer drain) — plus the execution
 * pipelines and the CABA hooks that glue them together. It implements
 * the Clocked protocol so GpuSystem can fast-forward through quiescent
 * stretches, and its reply-side Sink face is what the reply crossbar's
 * output port is wired to.
 *
 * The core also attributes every no-issue cycle to one of the paper's
 * Figure 1 categories (memory structural, compute structural, data
 * dependence, idle).
 */
#ifndef CABA_SIM_SM_CORE_H
#define CABA_SIM_SM_CORE_H

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "caba/awc.h"
#include "caba/aws.h"
#include "common/component.h"
#include "common/rng.h"
#include "common/stats.h"
#include "compress/design.h"
#include "mem/backing_store.h"
#include "mem/cache.h"
#include "mem/compression_model.h"
#include "mem/request.h"
#include "workloads/kernel.h"
#include "sim/ldst_unit.h"
#include "sim/warp_scheduler.h"

namespace caba {

/** SM pipeline parameters (Table 1 defaults). */
struct SmConfig
{
    int max_warps = 48;
    int schedulers = 2;
    int ibuffer_entries = 2;
    int decode_width = 2;       ///< Instructions decoded per warp pick.

    int alu_latency = 6;
    int sfu_latency = 24;
    int shmem_latency = 24;
    int l1_latency = 20;

    /** Operand-collector style in-flight caps (structural stall source). */
    int alu_inflight_max = 12;
    int sfu_inflight_max = 4;

    int mshr_entries = 64;
    int out_queue = 32;
    int lines_per_cycle = 2;    ///< Coalesced lines the LDST handles/cycle.

    CacheConfig l1{16 * 1024, 4, 1};

    bool gto = true;            ///< Greedy-then-oldest (else loose RR).
};

/** Optional CABA applications beyond compression (Section 7). */
struct ExtrasConfig
{
    bool memoize = false;
    double memo_hit_rate = 0.0;     ///< Workload input-redundancy level.

    bool prefetch = false;
    int prefetch_lookahead = 4;     ///< Lines ahead of the demand stream.

    bool profile = false;           ///< Profiling assist warps (framework
                                    ///< paper generalization).
    int profile_interval = 512;     ///< Cycles between profile-AW spawns.
};

/**
 * Exact per-issue-slot taxonomy (DESIGN.md section 11): every scheduler
 * slot of every accounted cycle is charged to exactly one category.
 * Audit cross-checks sum(categories) == accounted cycles x schedulers.
 */
enum SlotCategory : int {
    kSlotIssued = 0,    ///< A regular warp instruction issued.
    kSlotAwIssued,      ///< An assist-warp instruction issued.
    kSlotMemStruct,     ///< Memory structural: LDST drain stalled, mem
                        ///< port taken, or no load slot for a ready op.
    kSlotCompStruct,    ///< Compute structural: ALU/SFU caps or SFU port.
    kSlotMemData,       ///< Scoreboard wait on an outstanding load.
    kSlotScoreboard,    ///< Scoreboard wait on a non-memory producer.
    kSlotSync,          ///< Barrier wait (reserved: this ISA has no
                        ///< barrier ops; audited to stay zero).
    kSlotIbufEmpty,     ///< Live warps, but none buffered this parity.
    kSlotIdle,          ///< No live warp on this scheduler's parity.
    kNumSlotCategories,
};

/** Stable stat/trace names, indexed by SlotCategory. */
extern const char *const kSlotCategoryNames[kNumSlotCategories];

/** Figure 1 issue-cycle breakdown. */
struct CycleBreakdown
{
    std::uint64_t active = 0;
    std::uint64_t mem_stall = 0;
    std::uint64_t comp_stall = 0;
    std::uint64_t data_stall = 0;
    std::uint64_t idle = 0;

    std::uint64_t
    total() const
    {
        return active + mem_stall + comp_stall + data_stall + idle;
    }
};

/** One streaming multiprocessor. */
class SmCore : public Clocked,
               public Sink<MemRequest>,
               private LdstUnit::Hooks
{
  public:
    SmCore(int id, const SmConfig &cfg, const DesignConfig &design,
           const CabaConfig &caba_cfg, const ExtrasConfig &extras,
           AssistWarpStore *aws, CompressionModel *model,
           BackingStore *backing);

    /**
     * Launches @p num_warps warps of @p kernel on this SM. Global warp
     * ids are @p warp_global_base + k * @p warp_global_stride — thread
     * blocks distribute round-robin across SMs, so stride = num SMs.
     */
    void launch(const KernelInfo *kernel, int num_warps,
                int warp_global_base, int warp_global_stride = 1);

    /** Advances the core one cycle. */
    void cycle(Cycle now) override;

    /** True when every warp retired and all machinery drained. */
    bool done() const;

    /** Clocked face: the core needs cycles until fully drained. */
    bool busy() const override { return !done(); }

    /**
     * Earliest cycle >= @p now at which ticking this core could change
     * state: an event-ring bucket fires, an assist warp becomes ready,
     * a warp can decode or issue, or the LDST unit has work in flight.
     */
    Cycle nextWork(Cycle now) const override;

    /**
     * Accounts the skipped cycles [from, to) exactly as ticking them
     * would have: issue-slot history for the throttle window, the
     * Figure 1 breakdown, and the warp-category trace span.
     */
    void skipIdle(Cycle from, Cycle to) override;

    // -- crossbar-facing interface --

    /** Outgoing request port (the request crossbar's input is wired
     *  to this). */
    Channel<MemRequest> &out() { return ldst_.out(); }

    bool hasOutgoing() const { return !ldst_.out().empty(); }
    const MemRequest &peekOutgoing() const { return ldst_.out().front(); }
    MemRequest popOutgoing();

    /** Fill/reply delivery from the reply crossbar. */
    void deliver(const MemRequest &reply, Cycle now);

    /** Sink face: the reply crossbar's output port delivers here. An SM
     *  always sinks replies (fills never back-pressure the crossbar). */
    bool canAccept() const override { return true; }

    void
    accept(const MemRequest &reply, Cycle now) override
    {
        deliver(reply, now);
    }

    // -- inspection --

    int id() const { return id_; }
    const CycleBreakdown &breakdown() const { return breakdown_; }

    /** Warps passing the scoreboard right now (counter trace track). */
    int issuableWarps() const
    {
        return std::popcount(sched_.issuableMask());
    }

    /** Exact slot-taxonomy counters (tests; stats() exports them). */
    std::uint64_t slotCount(SlotCategory c) const
    {
        return slot_counts_[static_cast<std::size_t>(c)];
    }
    std::uint64_t accountedCycles() const { return accounted_cycles_; }

    /** Snapshot of every per-SM counter. */
    StatSet stats() const;

    /** Registers the request-lifecycle audit (forwards to the LDST
     *  unit, which injects and the core, which retires). */
    void
    attachAudit(Audit *audit)
    {
        audit_ = audit;
        ldst_.attachAudit(audit);
    }

    /** Mutation self-test hook (see LdstUnit::faultLeakNextLoadSlot). */
    void faultLeakNextLoadSlot() { ldst_.faultLeakNextLoadSlot(); }

    /** Core-level invariants: LDST/AWC checks, the fill identity, and
     *  drain-time emptiness of the CABA bookkeeping. */
    void audit(Audit &a, bool at_drain) const;
    const Cache &l1() const { return ldst_.l1(); }
    const AssistWarpController &awc() const { return awc_; }
    std::uint64_t instructionsIssued() const { return instr_issued_; }

  private:
    using WarpState = WarpScheduler::WarpState;
    using DecodedInst = WarpScheduler::DecodedInst;

    /** Delayed writeback / pipeline-release event. */
    struct Event
    {
        enum class Kind : std::uint8_t {
            RegWriteback,   ///< Clear regs; release alu/sfu slot.
            LoadLineDone,   ///< One coalesced line of a load finished.
            FillDone,       ///< HW decompression at L1 fill finished.
        };
        Kind kind = Kind::RegWriteback;
        int warp = kInvalidWarp;
        std::uint64_t regmask = 0;
        int pipe = 0;           ///< 0 none, 1 alu, 2 sfu.
        int load_slot = -1;
        Addr line = 0;
    };

    struct PendingStore
    {
        Addr line = 0;
        bool full_line = true;
    };

    // LdstUnit::Hooks — the CABA/core services the drain path needs.
    std::uint64_t allocReqId() override { return next_req_id_++; }
    bool onLoadHit(Addr line, int load_slot, Cycle now) override;
    void commitStore(Addr line) override;
    void routeStore(Addr line, bool full_line, int warp,
                    Cycle now) override;

    void
    clearPending(int warp, std::uint64_t mask) override
    {
        sched_.clearPending(warp, mask);
    }

    // pipeline stages
    void processEvents(Cycle now);
    void reapAssistWarps(Cycle now);
    void retryPendingFills(Cycle now);
    void issueStage(Cycle now);
    void classifyCycle(Cycle now);

    // slot taxonomy
    int classifySlotStall(int s) const;
    int classifySlotQuiescent(int s) const;
    void recordSlot(int s, int cat, Cycle now);
    void closeSlotSpans(Cycle now);

    // profiling assist warp
    void tickProfileTrigger(Cycle now);
    void spawnProfileWarp(Cycle now);
    void sampleStallVector();

    // helpers
    bool tryIssueRegular(int warp, Cycle now);
    bool tryIssueAssist(AssistWarp &aw, Cycle now);
    void scheduleEvent(Cycle at, Event ev, Cycle now);
    void completeFill(Addr line, Cycle now);
    void emitStoreRequest(Addr line, bool full_line, bool compressed_ok,
                          Cycle now);
    bool triggerDecompress(Addr line, AssistPurpose purpose,
                           std::uint64_t token, Cycle now);
    void maybePrefetch(Addr line, int stream, Cycle now);

    static constexpr int kRingSize = 64;

    int id_;
    SmConfig cfg_;
    DesignConfig design_;
    ExtrasConfig extras_;
    AssistWarpStore *aws_;
    CompressionModel *model_;
    BackingStore *backing_;
    const KernelInfo *kernel_ = nullptr;

    AssistWarpController awc_;
    Rng rng_;
    WarpScheduler sched_;
    LdstUnit ldst_;

    std::deque<Addr> pending_fills_;            ///< Awaiting AWT room.
    std::unordered_map<std::uint64_t, PendingStore> comp_stores_;
    std::uint64_t next_store_token_ = 1;
    std::uint64_t next_req_id_ = 1;

    std::vector<std::vector<Event>> ring_;
    int outstanding_events_ = 0;

    // per-cycle port state
    int alu_inflight_ = 0;
    int sfu_inflight_ = 0;
    bool mem_port_used_ = false;
    bool sfu_port_used_ = false;
    bool ldst_stalled_this_cycle_ = false;

    // per-cycle classification hints
    bool saw_mem_block_ = false;
    bool saw_compute_block_ = false;
    bool saw_data_block_ = false;
    bool issued_any_ = false;

    // per-slot classification hints (reset at the top of every
    // scheduler slot in issueStage; unlike the saw_* flags above they
    // do not accumulate across the cycle)
    bool slot_mem_block_ = false;
    bool slot_comp_block_ = false;

    int assist_rr_ = 0;

    CycleBreakdown breakdown_;
    std::uint64_t instr_issued_ = 0;

    // exact slot taxonomy (DESIGN.md section 11)
    std::array<std::uint64_t, kNumSlotCategories> slot_counts_{};
    /** Cycles with accounting open: a live warp or resident AW existed
     *  at the top of the issue stage. Audit identity:
     *  sum(slot_counts_) == accounted_cycles_ * schedulers. */
    std::uint64_t accounted_cycles_ = 0;
    /** AW-issued slots split by AssistPurpose (sums to the AW-issued
     *  category; second audit identity). */
    static constexpr int kNumAwPurposes = 6;
    std::array<std::uint64_t, kNumAwPurposes> aw_slots_{};

    // profiling assist warp (extras_.profile)
    int profile_countdown_ = 0;
    Distribution profile_ready_dist_;
    Distribution profile_blocked_dist_;
    Distribution profile_mem_blocked_dist_;

    /** Span tracking for the warp-category trace: current issue class
     *  (index into the Figure 1 breakdown, -1 none) and its start. */
    int trace_class_ = -1;
    Cycle trace_class_start_ = 0;

    /** Per-scheduler slot-taxonomy trace spans (kSlots category):
     *  current category (-1 none) and span start. */
    std::vector<int> slot_trace_class_;
    std::vector<Cycle> slot_trace_start_;

    Distribution fill_latency_dist_;

    /** Hot-path counters (assembled into a StatSet by stats()). */
    struct Counters
    {
        std::uint64_t issued_alu = 0;
        std::uint64_t issued_sfu = 0;
        std::uint64_t issued_shmem = 0;
        std::uint64_t issued_branches = 0;
        std::uint64_t issued_global_loads = 0;
        std::uint64_t issued_global_stores = 0;
        std::uint64_t global_lines_accessed = 0;
        std::uint64_t warps_retired = 0;
        std::uint64_t assist_alu_issued = 0;
        std::uint64_t assist_mem_issued = 0;
        std::uint64_t assist_instructions = 0;
        std::uint64_t assist_idle_slot_issues = 0;
        std::uint64_t fills = 0;
        std::uint64_t fill_latency_total = 0;
        std::uint64_t fills_compressed = 0;
        std::uint64_t caba_decompressions = 0;
        std::uint64_t caba_hit_decompressions = 0;
        std::uint64_t caba_compressions = 0;
        std::uint64_t hw_l1_decompressions = 0;
        std::uint64_t hw_store_compressions = 0;
        std::uint64_t stores_sent_compressed = 0;
        std::uint64_t stores_sent_uncompressed = 0;
        std::uint64_t stores_buffered = 0;
        std::uint64_t store_buffer_overflows = 0;
        std::uint64_t memo_hits = 0;
        std::uint64_t memoize_warps = 0;
        std::uint64_t prefetch_warps = 0;
        std::uint64_t prefetches_issued = 0;
        std::uint64_t prefetches_dropped = 0;
        std::uint64_t profile_warps = 0;
        std::uint64_t profile_samples = 0;
        std::uint64_t profile_drops = 0;
    };
    Counters n_;
    std::uint64_t stats_add_store_kill_ = 0;
    Audit *audit_ = nullptr;
};

} // namespace caba

#endif // CABA_SIM_SM_CORE_H
