#include "sim/sm_core.h"

#include <algorithm>

#include "common/audit.h"
#include "common/log.h"
#include "common/trace.h"

namespace caba {

namespace {

/** Trace label for an assist-warp purpose (string literals only: the
 *  tracer keeps pointers until flush). */
const char *
purposeName(AssistPurpose p)
{
    switch (p) {
      case AssistPurpose::DecompressFill: return "decompress_fill";
      case AssistPurpose::DecompressHit: return "decompress_hit";
      case AssistPurpose::Compress: return "compress";
      case AssistPurpose::Memoize: return "memoize";
      case AssistPurpose::Prefetch: return "prefetch";
      case AssistPurpose::Profile: return "profile";
    }
    return "assist";
}

const char *const kIssueClassNames[] = {
    "active", "mem_stall", "comp_stall", "data_stall", "idle",
};

} // namespace

const char *const kSlotCategoryNames[kNumSlotCategories] = {
    "slot_issued",     "slot_aw_issued", "slot_mem_struct",
    "slot_comp_struct", "slot_mem_data",  "slot_scoreboard",
    "slot_sync",       "slot_ibuf_empty", "slot_idle",
};

SmCore::SmCore(int id, const SmConfig &cfg, const DesignConfig &design,
               const CabaConfig &caba_cfg, const ExtrasConfig &extras,
               AssistWarpStore *aws, CompressionModel *model,
               BackingStore *backing)
    : id_(id), cfg_(cfg), design_(design), extras_(extras), aws_(aws),
      model_(model), backing_(backing),
      awc_(caba_cfg),
      rng_(0xC0FFEEull + static_cast<std::uint64_t>(id) * 7919),
      sched_(cfg.max_warps, cfg.schedulers, cfg.ibuffer_entries,
             cfg.decode_width, cfg.gto),
      ldst_(id, cfg, {cfg.l1.size_bytes, cfg.l1.assoc, design.l1_tag_factor},
            this),
      ring_(kRingSize)
{
    CABA_CHECK(cfg_.alu_latency < kRingSize &&
               cfg_.sfu_latency < kRingSize &&
               cfg_.shmem_latency < kRingSize &&
               cfg_.l1_latency < kRingSize,
               "pipeline latency exceeds event ring");
    if (design_.usesCompression()) {
        CABA_CHECK(model_, "compressed design needs a compression model");
        CABA_CHECK(aws_, "CABA design needs an assist warp store");
    }
    if (extras_.profile) {
        CABA_CHECK(aws_, "profiling assist warps need an assist warp store");
        CABA_CHECK(extras_.profile_interval >= 1,
                   "profile interval must be at least one cycle");
    }
    slot_trace_class_.assign(static_cast<std::size_t>(cfg_.schedulers), -1);
    slot_trace_start_.assign(static_cast<std::size_t>(cfg_.schedulers), 0);
}

void
SmCore::launch(const KernelInfo *kernel, int num_warps, int warp_global_base,
               int warp_global_stride)
{
    sched_.launch(kernel, num_warps, warp_global_base, warp_global_stride);
    kernel_ = kernel;
    profile_countdown_ = extras_.profile ? extras_.profile_interval : 0;
    trace::instant(trace::kWarp, trace::kPidSm, id_, "launch", 0, "warps",
                   static_cast<std::uint64_t>(num_warps));
}

// ---------------------------------------------------------------- events

void
SmCore::scheduleEvent(Cycle at, Event ev, Cycle now)
{
    CABA_CHECK(at > now && at - now < kRingSize, "event beyond ring reach");
    ring_[at % kRingSize].push_back(ev);
    ++outstanding_events_;
}

void
SmCore::processEvents(Cycle now)
{
    auto &bucket = ring_[now % kRingSize];
    if (bucket.empty())
        return;
    // Handlers never schedule same-cycle events, so the bucket can be
    // iterated in place and cleared (keeping its capacity).
    outstanding_events_ -= static_cast<int>(bucket.size());
    for (const Event &ev : bucket) {
        switch (ev.kind) {
          case Event::Kind::RegWriteback:
            sched_.clearPending(ev.warp, ev.regmask);
            if (ev.pipe == 1)
                --alu_inflight_;
            else if (ev.pipe == 2)
                --sfu_inflight_;
            break;
          case Event::Kind::LoadLineDone:
            ldst_.loadLineDone(ev.load_slot);
            break;
          case Event::Kind::FillDone:
            completeFill(ev.line, now);
            break;
        }
    }
    bucket.clear();
}

// ------------------------------------------------------------- the cycle

void
SmCore::cycle(Cycle now)
{
    mem_port_used_ = false;
    sfu_port_used_ = false;
    ldst_stalled_this_cycle_ = false;
    saw_mem_block_ = false;
    saw_compute_block_ = false;
    saw_data_block_ = false;
    issued_any_ = false;

    tickProfileTrigger(now);
    processEvents(now);
    reapAssistWarps(now);
    retryPendingFills(now);
    if (ldst_.drain(now)) {
        ldst_stalled_this_cycle_ = true;
        saw_mem_block_ = true;
    }
    sched_.decodeCycle();
    issueStage(now);
    classifyCycle(now);
}

// ------------------------------------------------------------ LDST hooks

void
SmCore::commitStore(Addr line)
{
    std::uint8_t buf[kLineSize];
    kernel_->outputLine(line, buf);
    backing_->write(line, buf);
}

bool
SmCore::onLoadHit(Addr line, int load_slot, Cycle now)
{
    if (design_.l1_tag_factor > 1 && design_.usesCaba() &&
        !model_->lookup(line).isUncompressed()) {
        // Compressed L1 (Section 6.5): every hit pays a decompression
        // assist warp. AWT full means the line replays next cycle.
        return triggerDecompress(line, AssistPurpose::DecompressHit,
                                 static_cast<std::uint64_t>(load_slot), now);
    }
    Event ev;
    ev.kind = Event::Kind::LoadLineDone;
    ev.load_slot = load_slot;
    scheduleEvent(now + cfg_.l1_latency, ev, now);
    return true;
}

void
SmCore::routeStore(Addr line, bool full_line, int warp, Cycle now)
{
    if (design_.caba_compress_stores) {
        // A newer store to a line whose compression is still in flight
        // supersedes it: kill the stale assist warp (Section 3.4) and
        // recompress the fresh contents.
        for (auto it = comp_stores_.begin(); it != comp_stores_.end();) {
            if (it->second.line == line) {
                awc_.killByToken(it->first, AssistPurpose::Compress);
                trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                               "kill_compress", now, "line", line);
                it = comp_stores_.erase(it);
                stats_add_store_kill_ += 1;
            } else {
                ++it;
            }
        }
        if (static_cast<int>(comp_stores_.size()) <
                awc_.config().store_buffer &&
            awc_.hasRoom()) {
            const std::uint64_t token = next_store_token_++;
            comp_stores_[token] = {line, full_line};
            AssistWarp aw;
            aw.parent_warp = warp;
            aw.priority = awc_.config().compress_low_priority
                ? AssistPriority::Low : AssistPriority::High;
            aw.purpose = AssistPurpose::Compress;
            aw.code = &aws_->compressRoutine(getCodec(design_.algo));
            aw.line = line;
            aw.token = token;
            aw.spawned = now;
            const bool ok = awc_.trigger(std::move(aw));
            CABA_CHECK(ok, "AWT trigger failed despite hasRoom");
            trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                           "spawn_compress", now, "line", line);
            ++n_.stores_buffered;
        } else {
            // Buffer overflow: release uncompressed (Section 4.2.2,
            // step 4).
            ++n_.store_buffer_overflows;
            emitStoreRequest(line, full_line, false, now);
        }
    } else {
        const bool hw_compress =
            design_.xbar_compressed && design_.usesCompression();
        emitStoreRequest(line, full_line, hw_compress, now);
    }
}

void
SmCore::emitStoreRequest(Addr line, bool full_line, bool compressed_ok,
                         Cycle now)
{
    MemRequest req;
    req.id = next_req_id_++;
    req.line = line;
    req.is_write = true;
    req.full_line = full_line;
    req.src_sm = id_;
    if (compressed_ok && design_.xbar_compressed) {
        const CompressedLine &cl = model_->lookup(line);
        req.payload_bytes = cl.size();
        req.compressed = !cl.isUncompressed();
        req.encoding = cl.encoding;
        ++n_.stores_sent_compressed;
        if (design_.decompress == DecompressSite::L1Hw)
            ++n_.hw_store_compressions;
    } else {
        req.payload_bytes = kLineSize;
        ++n_.stores_sent_uncompressed;
    }
    ldst_.out().push(req);
    if (audit_)
        audit_->onInject(req, now);
}

bool
SmCore::triggerDecompress(Addr line, AssistPurpose purpose,
                          std::uint64_t token, Cycle now)
{
    const Codec &codec = getCodec(design_.algo);
    const CompressedLine &cl = model_->lookup(line);
    AssistWarp aw;
    aw.parent_warp = kInvalidWarp;
    aw.priority = awc_.config().decompress_high_priority
        ? AssistPriority::High : AssistPriority::Low;
    aw.purpose = purpose;
    aw.code = &aws_->decompressRoutine(codec, cl);
    aw.line = line;
    aw.token = token;
    aw.spawned = now;
    const bool ok = awc_.trigger(std::move(aw));
    if (ok) {
        trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                       "spawn_decompress", now, "line", line);
    }
    return ok;
}

void
SmCore::maybePrefetch(Addr line, int stream, Cycle now)
{
    if (!extras_.prefetch || stream < 0)
        return;
    // Stride assist warp (Section 7.2): computes the lookahead address
    // and issues a prefetch, deployed at low priority so it only uses
    // idle slots.
    const Addr pf_line =
        line + static_cast<Addr>(extras_.prefetch_lookahead) * kLineSize;
    AssistWarp aw;
    aw.priority = AssistPriority::Low;
    aw.purpose = AssistPurpose::Prefetch;
    aw.code = &aws_->prefetchRoutine();
    aw.line = pf_line;
    aw.token = 0;
    aw.spawned = now;
    if (awc_.trigger(std::move(aw))) {
        ++n_.prefetch_warps;
        trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                       "spawn_prefetch", now, "line", pf_line);
    }
}

// ------------------------------------------------------------ CABA hooks

void
SmCore::reapAssistWarps(Cycle now)
{
    if (awc_.table().empty())
        return;
    std::vector<AssistWarp> finished;
    awc_.reapFinished(now, &finished);
    for (const AssistWarp &aw : finished) {
        if (trace::on(trace::kAssistWarp)) {
            // One span per assist warp, from spawn to completion.
            const Cycle dur = now > aw.spawned ? now - aw.spawned : 1;
            trace::complete(trace::kAssistWarp, trace::kPidAssist, id_,
                            purposeName(aw.purpose), aw.spawned, dur, "line",
                            aw.line);
        }
        switch (aw.purpose) {
          case AssistPurpose::DecompressFill:
            ++n_.caba_decompressions;
            completeFill(aw.line, now);
            break;
          case AssistPurpose::DecompressHit:
            ++n_.caba_hit_decompressions;
            ldst_.loadLineDone(static_cast<int>(aw.token));
            break;
          case AssistPurpose::Compress: {
            ++n_.caba_compressions;
            auto it = comp_stores_.find(aw.token);
            CABA_CHECK(it != comp_stores_.end(), "orphan compress warp");
            emitStoreRequest(it->second.line, it->second.full_line, true,
                             now);
            comp_stores_.erase(it);
            break;
          }
          case AssistPurpose::Memoize:

            break;
          case AssistPurpose::Prefetch:
            // Issue the prefetch if it is useful and resources allow.
            if (ldst_.issuePrefetch(aw.line, now))
                ++n_.prefetches_issued;
            else
                ++n_.prefetches_dropped;
            break;
          case AssistPurpose::Profile:
            // Profiling assist warp (framework-paper generalization):
            // on completion it samples the resident warps' stall
            // vectors into distributions.
            ++n_.profile_samples;
            sampleStallVector();
            break;
        }
    }
}

void
SmCore::retryPendingFills(Cycle now)
{
    while (!pending_fills_.empty()) {
        const Addr line = pending_fills_.front();
        if (!triggerDecompress(line, AssistPurpose::DecompressFill, 0, now))
            return;
        pending_fills_.pop_front();
    }
}

void
SmCore::completeFill(Addr line, Cycle now)
{
    (void)now;
    const int bytes = design_.l1_tag_factor > 1
        ? model_->compressedSize(line) : kLineSize;
    ldst_.completeFill(line, bytes);
}

void
SmCore::deliver(const MemRequest &reply, Cycle now)
{
    if (audit_)
        audit_->onRetire(reply);
    ++n_.fills;
    n_.fill_latency_total += now - reply.created;
    fill_latency_dist_.record(now - reply.created);
    if (reply.compressed) {
        switch (design_.decompress) {
          case DecompressSite::L1Caba:
            ++n_.fills_compressed;
            if (!triggerDecompress(reply.line, AssistPurpose::DecompressFill,
                                   0, now)) {
                pending_fills_.push_back(reply.line);
            }
            return;
          case DecompressSite::L1Hw: {
            Event ev;
            ev.kind = Event::Kind::FillDone;
            ev.line = reply.line;
            const int lat =
                std::max(1, getCodec(design_.algo).hwDecompressLatency());
            scheduleEvent(now + lat, ev, now);
            ++n_.hw_l1_decompressions;
            return;
          }
          case DecompressSite::Free:
          case DecompressSite::MemCtrl:
          case DecompressSite::None:
            break;
        }
    }
    completeFill(reply.line, now);
}

MemRequest
SmCore::popOutgoing()
{
    CABA_CHECK(!ldst_.out().empty(), "pop from empty out queue");
    return ldst_.out().take();
}

// ------------------------------------------------------------ issue

bool
SmCore::tryIssueRegular(int warp, Cycle now)
{
    WarpState &w = sched_.warp(warp);
    const DecodedInst di = w.ibuf.front();
    const Instruction &inst = *di.inst;

    switch (inst.op) {
      case Opcode::AluInt:
      case Opcode::AluFp:
      case Opcode::Mov: {
        if (alu_inflight_ >= cfg_.alu_inflight_max) {
            saw_compute_block_ = true;
            slot_comp_block_ = true;
            return false;
        }
        ++alu_inflight_;
        Event ev;
        ev.warp = warp;
        ev.pipe = 1;
        if (inst.dst >= 0) {
            ev.regmask = std::uint64_t{1} << inst.dst;
            w.pending_regs |= ev.regmask;
        }
        scheduleEvent(now + cfg_.alu_latency, ev, now);
        ++n_.issued_alu;
        break;
      }
      case Opcode::Sfu: {
        if (sfu_inflight_ >= cfg_.sfu_inflight_max || sfu_port_used_) {
            saw_compute_block_ = true;
            slot_comp_block_ = true;
            return false;
        }
        sfu_port_used_ = true;
        // Memoization (Section 7.1): a fraction of SFU computations hit
        // the shared-memory LUT and complete at shared-memory latency.
        bool memo_hit = false;
        if (extras_.memoize) {
            memo_hit = rng_.chance(extras_.memo_hit_rate);
            AssistWarp aw;
            aw.parent_warp = warp;
            aw.priority = AssistPriority::Low;
            aw.purpose = AssistPurpose::Memoize;
            aw.code = &aws_->memoizeRoutine();
            aw.spawned = now;
            if (awc_.trigger(std::move(aw))) {
                ++n_.memoize_warps;
                trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                               "spawn_memoize", now);
            }
        }
        Event ev;
        ev.warp = warp;
        if (inst.dst >= 0) {
            ev.regmask = std::uint64_t{1} << inst.dst;
            w.pending_regs |= ev.regmask;
        }
        if (memo_hit) {
            ev.pipe = 0;
            scheduleEvent(now + cfg_.shmem_latency, ev, now);
            ++n_.memo_hits;
        } else {
            ++sfu_inflight_;
            ev.pipe = 2;
            scheduleEvent(now + cfg_.sfu_latency, ev, now);
        }
        ++n_.issued_sfu;
        break;
      }
      case Opcode::LdShared:
      case Opcode::StShared: {
        if (mem_port_used_) {
            saw_mem_block_ = true;
            slot_mem_block_ = true;
            return false;
        }
        mem_port_used_ = true;
        if (inst.op == Opcode::LdShared && inst.dst >= 0) {
            Event ev;
            ev.warp = warp;
            ev.regmask = std::uint64_t{1} << inst.dst;
            w.pending_regs |= ev.regmask;
            w.pending_mem_regs |= ev.regmask;
            scheduleEvent(now + cfg_.shmem_latency, ev, now);
        }
        ++n_.issued_shmem;
        break;
      }
      case Opcode::LdGlobal:
      case Opcode::StGlobal: {
        const bool is_store = inst.op == Opcode::StGlobal;
        if (mem_port_used_ || ldst_.busy() ||
            (!is_store && !ldst_.hasFreeLoadSlot())) {
            saw_mem_block_ = true;
            slot_mem_block_ = true;
            return false;
        }
        mem_port_used_ = true;
        MemAccess &access = ldst_.beginAccess(is_store, warp);
        kernel_->genLines(inst.stream, w.global_id, di.iter, &access);
        if (!is_store) {
            std::uint64_t mask = 0;
            if (inst.dst >= 0)
                mask = std::uint64_t{1} << inst.dst;
            if (access.lines.empty()) {
                // Degenerate: nothing to fetch.
                ldst_.cancel();
            } else {
                w.pending_regs |= mask;
                w.pending_mem_regs |= mask;
                ldst_.armLoad(warp, mask);
                maybePrefetch(access.lines.front(), inst.stream, now);
            }
            ++n_.issued_global_loads;
        } else {
            ldst_.armStore();
            if (access.lines.empty())
                ldst_.cancel();
            ++n_.issued_global_stores;
        }
        n_.global_lines_accessed += access.lines.size();
        break;
      }
      case Opcode::Branch:
        ++n_.issued_branches;
        break;
      case Opcode::Exit:
        w.done = true;
        sched_.noteWarpRetired();
        ++n_.warps_retired;
        trace::instant(trace::kWarp, trace::kPidSm, id_, "warp_retire", now,
                       "warp", static_cast<std::uint64_t>(w.global_id));
        break;
    }

    w.ibuf.pop();
    ++instr_issued_;
    return true;
}

bool
SmCore::tryIssueAssist(AssistWarp &aw, Cycle now)
{
    const AssistInstr &ai = (*aw.code)[static_cast<std::size_t>(aw.next)];
    if (ai.is_mem) {
        if (mem_port_used_) {
            slot_mem_block_ = true;
            return false;
        }
        mem_port_used_ = true;
        ++n_.assist_mem_issued;
    } else {
        if (alu_inflight_ >= cfg_.alu_inflight_max) {
            slot_comp_block_ = true;
            return false;
        }
        ++alu_inflight_;
        Event ev;
        ev.pipe = 1;
        scheduleEvent(now + cfg_.alu_latency, ev, now);
        ++n_.assist_alu_issued;
    }
    aw.ready_at = now + ai.latency;
    ++aw.next;
    ++n_.assist_instructions;
    ++aw_slots_[static_cast<std::size_t>(aw.purpose)];
    return true;
}

void
SmCore::issueStage(Cycle now)
{
    if (!kernel_)
        return;
    // Slot-accounting gate, snapshotted before any issue can retire a
    // warp: the cycle a warp issues its Exit still charges its slots
    // (skipIdle sees the same condition on frozen post-cycle state).
    const bool acct = sched_.liveWarps() > 0 || !awc_.table().empty();
    for (int s = 0; s < cfg_.schedulers; ++s) {
        bool issued = false;
        bool aw_issued = false;
        slot_mem_block_ = false;
        slot_comp_block_ = false;

        // 1. High-priority assist warps take precedence (Section 3.2.3).
        auto &table = awc_.table();
        const int tsize = static_cast<int>(table.size());
        for (int k = 0; k < tsize && !issued; ++k) {
            AssistWarp &aw = table[static_cast<std::size_t>(
                (assist_rr_ + k) % tsize)];
            if (aw.priority != AssistPriority::High || aw.finishedIssuing() ||
                aw.ready_at > now) {
                continue;
            }
            if (tryIssueAssist(aw, now)) {
                issued = true;
                aw_issued = true;
                assist_rr_ = (assist_rr_ + k + 1) % std::max(tsize, 1);
            }
        }

        // 2. Regular warps: greedy-then-oldest (Table 1), or loose
        // round-robin when cfg_.gto is off (scheduler ablation).
        if (!issued) {
            issued = sched_.pickAndIssue(
                s, &saw_data_block_,
                [&](int w) { return tryIssueRegular(w, now); });
        }

        // 3. Low-priority assist warps fill idle slots (Section 3.4).
        for (int k = 0; k < tsize && !issued; ++k) {
            AssistWarp &aw = table[static_cast<std::size_t>(
                (assist_rr_ + k) % tsize)];
            if (aw.priority != AssistPriority::Low || aw.finishedIssuing() ||
                aw.ready_at > now || !awc_.eligible(aw)) {
                continue;
            }
            if (tryIssueAssist(aw, now)) {
                issued = true;
                aw_issued = true;
                ++n_.assist_idle_slot_issues;
            }
        }

        awc_.noteIssueSlot(issued);
        issued_any_ = issued_any_ || issued;
        if (acct) {
            const int cat = issued
                ? (aw_issued ? kSlotAwIssued : kSlotIssued)
                : classifySlotStall(s);
            recordSlot(s, cat, now);
        }
    }
    if (acct)
        ++accounted_cycles_;
}

int
SmCore::classifySlotStall(int s) const
{
    // Priority mirrors classifyCycle: structural hazards seen by this
    // slot's issue attempts first, then scoreboard state, then idle.
    if (slot_mem_block_ || ldst_stalled_this_cycle_)
        return kSlotMemStruct;
    if (slot_comp_block_)
        return kSlotCompStruct;
    return classifySlotQuiescent(s);
}

int
SmCore::classifySlotQuiescent(int s) const
{
    // Classification from the scheduler bitsets alone — exactly what a
    // no-attempt slot reduces to, and what skipIdle replays over frozen
    // state for skipped cycles.
    const std::uint64_t parity = sched_.parityMask(s);
    const std::uint64_t blocked = sched_.blockedMask() & parity;
    if ((blocked & sched_.memBlockedMask()) != 0)
        return kSlotMemData;
    if (blocked != 0)
        return kSlotScoreboard;
    if ((sched_.liveMask() & parity) != 0)
        return kSlotIbufEmpty;
    return kSlotIdle;
}

void
SmCore::recordSlot(int s, int cat, Cycle now)
{
    ++slot_counts_[static_cast<std::size_t>(cat)];
    const std::size_t si = static_cast<std::size_t>(s);
    if (!trace::on(trace::kSlots)) {
        slot_trace_class_[si] = -1;
        return;
    }
    if (cat != slot_trace_class_[si]) {
        if (slot_trace_class_[si] >= 0) {
            trace::complete(trace::kSlots, trace::kPidSlots,
                            id_ * cfg_.schedulers + s,
                            kSlotCategoryNames[slot_trace_class_[si]],
                            slot_trace_start_[si],
                            now - slot_trace_start_[si]);
        }
        slot_trace_class_[si] = cat;
        slot_trace_start_[si] = now;
    }
}

void
SmCore::closeSlotSpans(Cycle now)
{
    if (!trace::on(trace::kSlots))
        return;
    for (int s = 0; s < cfg_.schedulers; ++s) {
        const std::size_t si = static_cast<std::size_t>(s);
        if (slot_trace_class_[si] >= 0) {
            trace::complete(trace::kSlots, trace::kPidSlots,
                            id_ * cfg_.schedulers + s,
                            kSlotCategoryNames[slot_trace_class_[si]],
                            slot_trace_start_[si],
                            now - slot_trace_start_[si]);
            slot_trace_class_[si] = -1;
        }
    }
}

void
SmCore::classifyCycle(Cycle now)
{
    if (sched_.liveWarps() == 0 && awc_.table().empty()) {
        // Retired SM: not counted in the issue breakdown. Close any
        // open trace span at the retirement boundary.
        if (trace_class_ >= 0) {
            trace::complete(trace::kWarp, trace::kPidSm, id_,
                            kIssueClassNames[trace_class_],
                            trace_class_start_, now - trace_class_start_);
            trace_class_ = -1;
        }
        closeSlotSpans(now);
        return;
    }
    int cls;
    if (issued_any_) {
        ++breakdown_.active;
        cls = 0;
    } else if (saw_mem_block_ || ldst_stalled_this_cycle_) {
        ++breakdown_.mem_stall;
        cls = 1;
    } else if (saw_compute_block_) {
        ++breakdown_.comp_stall;
        cls = 2;
    } else if (saw_data_block_) {
        ++breakdown_.data_stall;
        cls = 3;
    } else {
        ++breakdown_.idle;
        cls = 4;
    }
    if (!trace::on(trace::kWarp)) {
        trace_class_ = -1;
        return;
    }
    // Issue-class spans: emit one complete event per maximal run of
    // same-classified cycles rather than one instant per cycle.
    if (cls != trace_class_) {
        if (trace_class_ >= 0) {
            trace::complete(trace::kWarp, trace::kPidSm, id_,
                            kIssueClassNames[trace_class_],
                            trace_class_start_, now - trace_class_start_);
        }
        trace_class_ = cls;
        trace_class_start_ = now;
    }
}

// ------------------------------------------------- profiling assist warp

void
SmCore::tickProfileTrigger(Cycle now)
{
    if (!kernel_ || !extras_.profile || sched_.liveWarps() == 0)
        return;
    if (--profile_countdown_ > 0)
        return;
    spawnProfileWarp(now);
    profile_countdown_ = extras_.profile_interval;
}

void
SmCore::spawnProfileWarp(Cycle now)
{
    if (!awc_.hasRoom()) {
        ++n_.profile_drops;
        return;
    }
    AssistWarp aw;
    aw.parent_warp = kInvalidWarp;
    aw.priority = AssistPriority::Low;
    aw.purpose = AssistPurpose::Profile;
    aw.code = &aws_->profileRoutine();
    aw.line = 0;
    aw.token = 0;
    aw.spawned = now;
    const bool ok = awc_.trigger(std::move(aw));
    CABA_CHECK(ok, "AWT trigger failed despite hasRoom");
    ++n_.profile_warps;
    trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                   "spawn_profile", now);
}

void
SmCore::sampleStallVector()
{
    const std::uint64_t blocked = sched_.blockedMask();
    profile_ready_dist_.record(
        static_cast<std::uint64_t>(std::popcount(sched_.issuableMask())));
    profile_blocked_dist_.record(
        static_cast<std::uint64_t>(std::popcount(blocked)));
    profile_mem_blocked_dist_.record(static_cast<std::uint64_t>(
        std::popcount(blocked & sched_.memBlockedMask())));
}

// ------------------------------------------------------------ quiescence

Cycle
SmCore::nextWork(Cycle now) const
{
    if (done())
        return kNoWork;
    // Any in-flight LDST work, queued requests, or fills awaiting AWT
    // room can change state next cycle (queued fills also burn an AWT
    // rejection counter per ticked cycle — the skip must not hide that).
    // A structurally stalled LDST unit replays as a near-no-op, but
    // letting the clock skip over it would also skip the DRAM command
    // scheduler's cycle-accurate arbitration downstream, so a busy LDST
    // unit always pins `now`.
    if (ldst_.busy() || !ldst_.out().empty() || !pending_fills_.empty())
        return now;
    // A decodable warp fills its ibuf; a scoreboard-ready warp issues.
    if (kernel_ && (sched_.anyDecodable() || sched_.anyReady()))
        return now;
    Cycle e = kNoWork;
    for (const AssistWarp &aw : awc_.table()) {
        if (!aw.finishedIssuing() && aw.priority == AssistPriority::Low) {
            // Low-priority eligibility depends on the sliding issue
            // window, which every cycle ages. Never skip over it.
            return now;
        }
        // High-priority warps issue — and finished warps reap — once
        // ready_at arrives.
        const Cycle t = aw.ready_at > now ? aw.ready_at : now;
        if (t <= now)
            return now;
        e = std::min(e, t);
    }
    if (outstanding_events_ > 0) {
        for (Cycle t = now; t < now + kRingSize; ++t) {
            if (!ring_[t % kRingSize].empty()) {
                e = std::min(e, t);
                break;
            }
        }
    }
    if (kernel_ && extras_.profile && sched_.liveWarps() > 0) {
        // The countdown reaches zero (and spawns) on its
        // profile_countdown_'th tick counting this one.
        e = std::min(e, now + static_cast<Cycle>(profile_countdown_) - 1);
    }
    return e;
}

void
SmCore::skipIdle(Cycle from, Cycle to)
{
    const std::uint64_t k = to - from;
    // issueStage runs (and feeds the throttle window) every cycle once a
    // kernel is bound, even after all warps retire.
    if (kernel_)
        awc_.skipIdleSlots(k * static_cast<std::uint64_t>(cfg_.schedulers));
    // The profile countdown ages on every cycle with live warps; the
    // spawn cycle itself is always ticked (nextWork pins it), so at
    // least one tick must remain after the skip.
    if (kernel_ && extras_.profile && sched_.liveWarps() > 0) {
        profile_countdown_ -= static_cast<int>(k);
        CABA_CHECK(profile_countdown_ >= 1,
                   "quiescence skip jumped over a profile-AW spawn");
    }
    if (sched_.liveWarps() == 0 && awc_.table().empty())
        return;     // retired SM: classifyCycle counts nothing.
    // During a quiescent stretch every live warp holds a scoreboard-
    // blocked instruction (else nextWork would have returned `now`), a
    // data stall; with no live warps but a non-empty AWT the cycles are
    // idle — exactly what classifyCycle would have counted.
    const int cls = sched_.liveWarps() > 0 ? 3 : 4;
    if (cls == 3)
        breakdown_.data_stall += k;
    else
        breakdown_.idle += k;
    // Exact slot taxonomy over the skipped cycles: no issue attempts
    // happen while quiescent (issuable is empty, the LDST unit is
    // drained, no assist warp is ready), so every slot classifies from
    // the frozen scheduler bitsets — identical for each skipped cycle.
    accounted_cycles_ += k;
    for (int s = 0; s < cfg_.schedulers; ++s) {
        const int cat = classifySlotQuiescent(s);
        slot_counts_[static_cast<std::size_t>(cat)] += k;
        const std::size_t si = static_cast<std::size_t>(s);
        if (!trace::on(trace::kSlots)) {
            slot_trace_class_[si] = -1;
        } else if (cat != slot_trace_class_[si]) {
            if (slot_trace_class_[si] >= 0) {
                trace::complete(trace::kSlots, trace::kPidSlots,
                                id_ * cfg_.schedulers + s,
                                kSlotCategoryNames[slot_trace_class_[si]],
                                slot_trace_start_[si],
                                from - slot_trace_start_[si]);
            }
            slot_trace_class_[si] = cat;
            slot_trace_start_[si] = from;
        }
    }
    if (!trace::on(trace::kWarp)) {
        trace_class_ = -1;
        return;
    }
    if (cls != trace_class_) {
        if (trace_class_ >= 0) {
            trace::complete(trace::kWarp, trace::kPidSm, id_,
                            kIssueClassNames[trace_class_],
                            trace_class_start_, from - trace_class_start_);
        }
        trace_class_ = cls;
        trace_class_start_ = from;
    }
}

StatSet
SmCore::stats() const
{
    StatSet s;
    s.setCounter("issued_alu", n_.issued_alu);
    s.setCounter("issued_sfu", n_.issued_sfu);
    s.setCounter("issued_shmem", n_.issued_shmem);
    s.setCounter("issued_branches", n_.issued_branches);
    s.setCounter("issued_global_loads", n_.issued_global_loads);
    s.setCounter("issued_global_stores", n_.issued_global_stores);
    s.setCounter("global_lines_accessed", n_.global_lines_accessed);
    s.setCounter("warps_retired", n_.warps_retired);
    s.setCounter("l1_load_hits", ldst_.loadHits());
    s.setCounter("l1_load_misses", ldst_.loadMisses());
    s.setCounter("mshr_merges", ldst_.mshrMerges());
    s.setCounter("assist_alu_issued", n_.assist_alu_issued);
    s.setCounter("assist_mem_issued", n_.assist_mem_issued);
    s.setCounter("assist_instructions", n_.assist_instructions);
    s.setCounter("assist_idle_slot_issues", n_.assist_idle_slot_issues);
    s.setCounter("fills", n_.fills);
    s.setCounter("fill_latency_total", n_.fill_latency_total);
    s.setCounter("fills_compressed", n_.fills_compressed);
    s.setCounter("caba_decompressions", n_.caba_decompressions);
    s.setCounter("caba_hit_decompressions", n_.caba_hit_decompressions);
    s.setCounter("caba_compressions", n_.caba_compressions);
    s.setCounter("hw_l1_decompressions", n_.hw_l1_decompressions);
    s.setCounter("hw_store_compressions", n_.hw_store_compressions);
    s.setCounter("stores_sent_compressed", n_.stores_sent_compressed);
    s.setCounter("stores_sent_uncompressed", n_.stores_sent_uncompressed);
    s.setCounter("stores_buffered_for_compression", n_.stores_buffered);
    s.setCounter("store_buffer_overflows", n_.store_buffer_overflows);
    s.setCounter("stale_compressions_killed", stats_add_store_kill_);
    s.setCounter("memo_hits", n_.memo_hits);
    s.setCounter("memoize_warps", n_.memoize_warps);
    s.setCounter("prefetch_warps", n_.prefetch_warps);
    s.setCounter("prefetches_issued", n_.prefetches_issued);
    s.setCounter("prefetches_dropped", n_.prefetches_dropped);
    // Exact slot taxonomy (DESIGN.md section 11): fig01 reads these.
    for (int c = 0; c < kNumSlotCategories; ++c)
        s.setCounter(kSlotCategoryNames[c],
                     slot_counts_[static_cast<std::size_t>(c)]);
    s.setCounter("slot_cycles_accounted", accounted_cycles_);
    s.setCounter("aw_slots_decompress_fill", aw_slots_[0]);
    s.setCounter("aw_slots_decompress_hit", aw_slots_[1]);
    s.setCounter("aw_slots_compress", aw_slots_[2]);
    s.setCounter("aw_slots_memoize", aw_slots_[3]);
    s.setCounter("aw_slots_prefetch", aw_slots_[4]);
    s.setCounter("aw_slots_profile", aw_slots_[5]);
    s.setCounter("profile_warps", n_.profile_warps);
    s.setCounter("profile_samples", n_.profile_samples);
    s.setCounter("profile_drops", n_.profile_drops);
    s.dist("fill_latency").merge(fill_latency_dist_);
    s.dist("aw_profile_ready_warps").merge(profile_ready_dist_);
    s.dist("aw_profile_blocked_warps").merge(profile_blocked_dist_);
    s.dist("aw_profile_mem_blocked_warps").merge(profile_mem_blocked_dist_);
    return s;
}

void
SmCore::audit(Audit &a, bool at_drain) const
{
    ldst_.audit(a, at_drain);
    awc_.audit(a);
    // Taxonomy exactness (holds at every audit, not only at drain):
    // every accounted cycle charges each scheduler slot exactly once.
    std::uint64_t slot_sum = 0;
    for (const std::uint64_t c : slot_counts_)
        slot_sum += c;
    a.checkEq("sm", "slot categories sum to cycles x issue slots",
              slot_sum,
              accounted_cycles_ *
                  static_cast<std::uint64_t>(cfg_.schedulers));
    a.checkEq("sm", "sync slots stay zero (ISA has no barriers)",
              slot_counts_[kSlotSync], 0);
    std::uint64_t aw_slot_sum = 0;
    for (const std::uint64_t c : aw_slots_)
        aw_slot_sum += c;
    a.checkEq("sm", "per-purpose AW slots sum to AW-issued slots",
              aw_slot_sum, slot_counts_[kSlotAwIssued]);
    if (!at_drain)
        return;
    // Every reply delivered is either a demand miss that sent a request
    // (merges ride an existing MSHR) or an issued prefetch.
    a.checkEq("sm", "fills == misses - merges + prefetches at drain",
              n_.fills,
              ldst_.loadMisses() - ldst_.mshrMerges() +
                  n_.prefetches_issued);
    a.checkTrue("sm", "no buffered compress stores at drain",
                comp_stores_.empty());
    a.checkTrue("sm", "no queued fills at drain", pending_fills_.empty());
    a.checkEq("sm", "no outstanding pipeline events at drain",
              static_cast<std::uint64_t>(outstanding_events_), 0);
}

bool
SmCore::done() const
{
    return sched_.liveWarps() == 0 && outstanding_events_ == 0 &&
           ldst_.drained() && comp_stores_.empty() &&
           pending_fills_.empty() && awc_.table().empty();
}

} // namespace caba
