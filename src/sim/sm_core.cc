#include "sim/sm_core.h"

#include <algorithm>

#include "common/log.h"
#include "common/trace.h"

namespace caba {

namespace {

/** Trace label for an assist-warp purpose (string literals only: the
 *  tracer keeps pointers until flush). */
const char *
purposeName(AssistPurpose p)
{
    switch (p) {
      case AssistPurpose::DecompressFill: return "decompress_fill";
      case AssistPurpose::DecompressHit: return "decompress_hit";
      case AssistPurpose::Compress: return "compress";
      case AssistPurpose::Memoize: return "memoize";
      case AssistPurpose::Prefetch: return "prefetch";
    }
    return "assist";
}

const char *const kIssueClassNames[] = {
    "active", "mem_stall", "comp_stall", "data_stall", "idle",
};

} // namespace

SmCore::SmCore(int id, const SmConfig &cfg, const DesignConfig &design,
               const CabaConfig &caba_cfg, const ExtrasConfig &extras,
               AssistWarpStore *aws, CompressionModel *model,
               BackingStore *backing)
    : id_(id), cfg_(cfg), design_(design), extras_(extras), aws_(aws),
      model_(model), backing_(backing),
      l1_({cfg.l1.size_bytes, cfg.l1.assoc, design.l1_tag_factor}),
      awc_(caba_cfg),
      rng_(0xC0FFEEull + static_cast<std::uint64_t>(id) * 7919),
      ring_(kRingSize),
      greedy_warp_(static_cast<std::size_t>(cfg.schedulers), kInvalidWarp),
      decode_rr_(static_cast<std::size_t>(cfg.schedulers), 0),
      lrr_next_(static_cast<std::size_t>(cfg.schedulers), 0)
{
    CABA_CHECK(cfg_.schedulers >= 1, "need at least one scheduler");
    CABA_CHECK(cfg_.alu_latency < kRingSize &&
               cfg_.sfu_latency < kRingSize &&
               cfg_.shmem_latency < kRingSize &&
               cfg_.l1_latency < kRingSize,
               "pipeline latency exceeds event ring");
    if (design_.usesCompression()) {
        CABA_CHECK(model_, "compressed design needs a compression model");
        CABA_CHECK(aws_, "CABA design needs an assist warp store");
    }
    warps_.resize(static_cast<std::size_t>(cfg_.max_warps));
    loads_.resize(static_cast<std::size_t>(cfg_.max_warps) * 8);
    for (int i = static_cast<int>(loads_.size()) - 1; i >= 0; --i)
        free_load_slots_.push_back(i);
}

void
SmCore::launch(const KernelInfo *kernel, int num_warps, int warp_global_base,
               int warp_global_stride)
{
    CABA_CHECK(kernel, "null kernel");
    CABA_CHECK(num_warps > 0 && num_warps <= cfg_.max_warps,
               "bad warp count for launch");
    CABA_CHECK(kernel->program().numRegs() <= 64,
               "scoreboard supports at most 64 registers per thread");
    kernel_ = kernel;
    live_warps_ = num_warps;
    trace::instant(trace::kWarp, trace::kPidSm, id_, "launch", 0, "warps",
                   static_cast<std::uint64_t>(num_warps));
    for (int w = 0; w < num_warps; ++w) {
        WarpState &ws = warps_[static_cast<std::size_t>(w)];
        ws = WarpState{};
        ws.exists = true;
        ws.global_id = warp_global_base + w * warp_global_stride;
        ws.trips_left = std::max(1, kernel->iterations(ws.global_id));
    }
}

// ---------------------------------------------------------------- events

void
SmCore::scheduleEvent(Cycle at, Event ev, Cycle now)
{
    CABA_CHECK(at > now && at - now < kRingSize, "event beyond ring reach");
    ring_[at % kRingSize].push_back(ev);
    ++outstanding_events_;
}

void
SmCore::processEvents(Cycle now)
{
    auto &bucket = ring_[now % kRingSize];
    if (bucket.empty())
        return;
    // Handlers never schedule same-cycle events, so the bucket can be
    // iterated in place and cleared (keeping its capacity).
    outstanding_events_ -= static_cast<int>(bucket.size());
    for (const Event &ev : bucket) {
        switch (ev.kind) {
          case Event::Kind::RegWriteback:
            if (ev.warp != kInvalidWarp)
                warps_[static_cast<std::size_t>(ev.warp)].pending_regs &=
                    ~ev.regmask;
            if (ev.pipe == 1)
                --alu_inflight_;
            else if (ev.pipe == 2)
                --sfu_inflight_;
            break;
          case Event::Kind::LoadLineDone:
            loadLineDone(ev.load_slot);
            break;
          case Event::Kind::FillDone:
            completeFill(ev.line, now);
            break;
        }
    }
    bucket.clear();
}

// ------------------------------------------------------------- the cycle

void
SmCore::cycle(Cycle now)
{
    mem_port_used_ = false;
    sfu_port_used_ = false;
    ldst_stalled_this_cycle_ = false;
    saw_mem_block_ = false;
    saw_compute_block_ = false;
    saw_data_block_ = false;
    issued_any_ = false;

    processEvents(now);
    reapAssistWarps(now);
    retryPendingFills(now);
    drainLdst(now);
    decodeStage();
    issueStage(now);
    classifyCycle(now);
}

// ------------------------------------------------------------ decode

void
SmCore::decodeOneWarp(WarpState &w)
{
    const Program &prog = kernel_->program();
    for (int n = 0; n < cfg_.decode_width; ++n) {
        if (w.decode_done ||
            static_cast<int>(w.ibuf.size()) >= cfg_.ibuffer_entries) {
            return;
        }
        const Instruction &inst = prog.at(w.pc);
        w.ibuf.push({&inst, w.iter});
        if (inst.op == Opcode::Branch) {
            // Back-edge resolves at decode: trip counters are explicit.
            --w.trips_left;
            if (w.trips_left > 0) {
                w.pc = inst.branch_target;
                ++w.iter;
            } else {
                ++w.pc;
            }
        } else if (inst.op == Opcode::Exit) {
            w.decode_done = true;
        } else {
            ++w.pc;
        }
    }
}

void
SmCore::decodeStage()
{
    if (!kernel_)
        return;
    for (int s = 0; s < cfg_.schedulers; ++s) {
        // Round-robin pick of one warp of this scheduler's parity.
        const int slots = cfg_.max_warps / cfg_.schedulers;
        for (int k = 0; k < slots; ++k) {
            const int w = ((decode_rr_[s] + k) % slots) * cfg_.schedulers + s;
            WarpState &ws = warps_[static_cast<std::size_t>(w)];
            if (!ws.exists || ws.done || ws.decode_done ||
                static_cast<int>(ws.ibuf.size()) >= cfg_.ibuffer_entries) {
                continue;
            }
            decodeOneWarp(ws);
            decode_rr_[s] = (w / cfg_.schedulers + 1) % slots;
            break;
        }
    }
}

// ------------------------------------------------------------ LDST unit

int
SmCore::allocLoadSlot(int warp, std::uint64_t regmask, int lines)
{
    CABA_CHECK(!free_load_slots_.empty(), "load slot pool exhausted");
    const int slot = free_load_slots_.back();
    free_load_slots_.pop_back();
    PendingLoad &pl = loads_[static_cast<std::size_t>(slot)];
    pl.active = true;
    pl.warp = warp;
    pl.regmask = regmask;
    pl.lines_left = lines;
    return slot;
}

void
SmCore::loadLineDone(int slot)
{
    if (slot < 0)
        return;
    PendingLoad &pl = loads_[static_cast<std::size_t>(slot)];
    CABA_CHECK(pl.active, "completion for dead load");
    if (--pl.lines_left == 0) {
        if (pl.warp != kInvalidWarp)
            warps_[static_cast<std::size_t>(pl.warp)].pending_regs &=
                ~pl.regmask;
        pl.active = false;
        free_load_slots_.push_back(slot);
    }
}

void
SmCore::commitStoreLine(Addr line)
{
    std::uint8_t buf[kLineSize];
    kernel_->outputLine(line, buf);
    backing_->write(line, buf);
}

void
SmCore::emitStoreRequest(Addr line, bool full_line, bool compressed_ok)
{
    MemRequest req;
    req.id = next_req_id_++;
    req.line = line;
    req.is_write = true;
    req.full_line = full_line;
    req.src_sm = id_;
    if (compressed_ok && design_.xbar_compressed) {
        const CompressedLine &cl = model_->lookup(line);
        req.payload_bytes = cl.size();
        req.compressed = !cl.isUncompressed();
        req.encoding = cl.encoding;
        ++n_.stores_sent_compressed;
        if (design_.decompress == DecompressSite::L1Hw)
            ++n_.hw_store_compressions;
    } else {
        req.payload_bytes = kLineSize;
        ++n_.stores_sent_uncompressed;
    }
    out_req_.push_back(req);
}

bool
SmCore::triggerDecompress(Addr line, AssistPurpose purpose,
                          std::uint64_t token, Cycle now)
{
    const Codec &codec = getCodec(design_.algo);
    const CompressedLine &cl = model_->lookup(line);
    AssistWarp aw;
    aw.parent_warp = kInvalidWarp;
    aw.priority = awc_.config().decompress_high_priority
        ? AssistPriority::High : AssistPriority::Low;
    aw.purpose = purpose;
    aw.code = &aws_->decompressRoutine(codec, cl);
    aw.line = line;
    aw.token = token;
    aw.spawned = now;
    const bool ok = awc_.trigger(std::move(aw));
    if (ok) {
        trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                       "spawn_decompress", now, "line", line);
    }
    return ok;
}

void
SmCore::maybePrefetch(Addr line, int stream, Cycle now)
{
    if (!extras_.prefetch || stream < 0)
        return;
    // Stride assist warp (Section 7.2): computes the lookahead address
    // and issues a prefetch, deployed at low priority so it only uses
    // idle slots.
    const Addr pf_line =
        line + static_cast<Addr>(extras_.prefetch_lookahead) * kLineSize;
    AssistWarp aw;
    aw.priority = AssistPriority::Low;
    aw.purpose = AssistPurpose::Prefetch;
    aw.code = &aws_->prefetchRoutine();
    aw.line = pf_line;
    aw.token = 0;
    aw.spawned = now;
    if (awc_.trigger(std::move(aw))) {
        ++n_.prefetch_warps;
        trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                       "spawn_prefetch", now, "line", pf_line);
    }
}

void
SmCore::drainLdst(Cycle now)
{
    if (!ldst_.busy)
        return;
    for (int n = 0; n < cfg_.lines_per_cycle; ++n) {
        if (ldst_.cursor >= ldst_.access.lines.size()) {
            ldst_.busy = false;
            return;
        }
        const Addr line = ldst_.access.lines[ldst_.cursor];
        if (!ldst_.is_store) {
            // ---- load line ----
            // Probe without counting first so replayed lines do not
            // inflate hit/miss statistics or churn LRU state.
            if (!l1_.contains(line)) {
                if (trace::on(trace::kCache)) {
                    trace::instant(trace::kCache, trace::kPidCache, id_,
                                   "l1_miss", now, "line", line);
                }
                auto it = mshrs_.find(line);
                if (it != mshrs_.end()) {
                    l1_.access(line);   // counts the miss
                    it->second.push_back(ldst_.load_slot);
                    ++n_.l1_load_misses;
                    ++n_.mshr_merges;
                    ++ldst_.cursor;
                    continue;
                }
                if (static_cast<int>(mshrs_.size()) >= cfg_.mshr_entries ||
                    static_cast<int>(out_req_.size()) >= cfg_.out_queue) {
                    ldst_stalled_this_cycle_ = true;
                    saw_mem_block_ = true;
                    return;         // structural memory stall; replay
                }
                l1_.access(line);       // counts the miss
                ++n_.l1_load_misses;
                mshrs_[line] = {ldst_.load_slot};
                MemRequest req;
                req.id = next_req_id_++;
                req.line = line;
                req.is_write = false;
                req.src_sm = id_;
                req.warp = ldst_.warp;
                req.created = now;
                req.payload_bytes = 8;  // read request header
                out_req_.push_back(req);
                ++ldst_.cursor;
                continue;
            }
            if (l1_.access(line)) {
                ++n_.l1_load_hits;
                if (trace::on(trace::kCache)) {
                    trace::instant(trace::kCache, trace::kPidCache, id_,
                                   "l1_hit", now, "line", line);
                }
                if (design_.l1_tag_factor > 1 && design_.usesCaba() &&
                    !model_->lookup(line).isUncompressed()) {
                    // Compressed L1 (Section 6.5): every hit pays a
                    // decompression assist warp.
                    if (!triggerDecompress(
                            line, AssistPurpose::DecompressHit,
                            static_cast<std::uint64_t>(ldst_.load_slot),
                            now)) {
                        ldst_stalled_this_cycle_ = true;
                        saw_mem_block_ = true;
                        return;     // AWT full: retry this line next cycle
                    }
                } else {
                    Event ev;
                    ev.kind = Event::Kind::LoadLineDone;
                    ev.load_slot = ldst_.load_slot;
                    scheduleEvent(now + cfg_.l1_latency, ev, now);
                }
                ++ldst_.cursor;
                continue;
            }
            CABA_PANIC("L1 probe/access disagreement");
        } else {
            // ---- store line ----
            if (static_cast<int>(out_req_.size()) >= cfg_.out_queue) {
                ldst_stalled_this_cycle_ = true;
                saw_mem_block_ = true;
                return;
            }
            commitStoreLine(line);
            // L1 is write-evict for global stores.
            Eviction ev;
            l1_.invalidate(line, &ev);

            if (design_.caba_compress_stores) {
                // A newer store to a line whose compression is still in
                // flight supersedes it: kill the stale assist warp
                // (Section 3.4) and recompress the fresh contents.
                for (auto it = comp_stores_.begin();
                     it != comp_stores_.end();) {
                    if (it->second.line == line) {
                        awc_.killByToken(it->first, AssistPurpose::Compress);
                        trace::instant(trace::kAssistWarp, trace::kPidAssist,
                                       id_, "kill_compress", now, "line",
                                       line);
                        it = comp_stores_.erase(it);
                        stats_add_store_kill_ += 1;
                    } else {
                        ++it;
                    }
                }
                if (static_cast<int>(comp_stores_.size()) <
                        awc_.config().store_buffer &&
                    awc_.hasRoom()) {
                    const std::uint64_t token = next_store_token_++;
                    comp_stores_[token] = {line, ldst_.access.full_line};
                    AssistWarp aw;
                    aw.parent_warp = ldst_.warp;
                    aw.priority = awc_.config().compress_low_priority
                        ? AssistPriority::Low : AssistPriority::High;
                    aw.purpose = AssistPurpose::Compress;
                    aw.code = &aws_->compressRoutine(getCodec(design_.algo));
                    aw.line = line;
                    aw.token = token;
                    aw.spawned = now;
                    const bool ok = awc_.trigger(std::move(aw));
                    CABA_CHECK(ok, "AWT trigger failed despite hasRoom");
                    trace::instant(trace::kAssistWarp, trace::kPidAssist,
                                   id_, "spawn_compress", now, "line", line);
                    ++n_.stores_buffered;
                } else {
                    // Buffer overflow: release uncompressed (Section
                    // 4.2.2, step 4).
                    ++n_.store_buffer_overflows;
                    emitStoreRequest(line, ldst_.access.full_line, false);
                }
            } else {
                const bool hw_compress =
                    design_.xbar_compressed && design_.usesCompression();
                emitStoreRequest(line, ldst_.access.full_line, hw_compress);
            }
            ++ldst_.cursor;
        }
    }
    if (ldst_.cursor >= ldst_.access.lines.size())
        ldst_.busy = false;
}

// ------------------------------------------------------------ CABA hooks

void
SmCore::reapAssistWarps(Cycle now)
{
    if (awc_.table().empty())
        return;
    std::vector<AssistWarp> finished;
    awc_.reapFinished(now, &finished);
    for (const AssistWarp &aw : finished) {
        if (trace::on(trace::kAssistWarp)) {
            // One span per assist warp, from spawn to completion.
            const Cycle dur = now > aw.spawned ? now - aw.spawned : 1;
            trace::complete(trace::kAssistWarp, trace::kPidAssist, id_,
                            purposeName(aw.purpose), aw.spawned, dur, "line",
                            aw.line);
        }
        switch (aw.purpose) {
          case AssistPurpose::DecompressFill:
            ++n_.caba_decompressions;
            completeFill(aw.line, now);
            break;
          case AssistPurpose::DecompressHit:
            ++n_.caba_hit_decompressions;
            loadLineDone(static_cast<int>(aw.token));
            break;
          case AssistPurpose::Compress: {
            ++n_.caba_compressions;
            auto it = comp_stores_.find(aw.token);
            CABA_CHECK(it != comp_stores_.end(), "orphan compress warp");
            emitStoreRequest(it->second.line, it->second.full_line, true);
            comp_stores_.erase(it);
            break;
          }
          case AssistPurpose::Memoize:
            
            break;
          case AssistPurpose::Prefetch: {
            // Issue the prefetch if it is useful and resources allow.
            const Addr line = aw.line;
            if (!l1_.contains(line) && !mshrs_.count(line) &&
                static_cast<int>(mshrs_.size()) < cfg_.mshr_entries &&
                static_cast<int>(out_req_.size()) < cfg_.out_queue) {
                mshrs_[line] = {};      // fill with no waiters
                MemRequest req;
                req.id = next_req_id_++;
                req.line = line;
                req.src_sm = id_;
                req.payload_bytes = 8;
                out_req_.push_back(req);
                ++n_.prefetches_issued;
            } else {
                ++n_.prefetches_dropped;
            }
            break;
          }
        }
    }
}

void
SmCore::retryPendingFills(Cycle now)
{
    while (!pending_fills_.empty()) {
        const Addr line = pending_fills_.front();
        if (!triggerDecompress(line, AssistPurpose::DecompressFill, 0, now))
            return;
        pending_fills_.pop_front();
    }
}

void
SmCore::completeFill(Addr line, Cycle now)
{
    (void)now;
    const int bytes = design_.l1_tag_factor > 1
        ? model_->compressedSize(line) : kLineSize;
    std::vector<Eviction> evicted;
    l1_.insert(line, bytes, false, &evicted);   // L1 is write-evict: clean
    auto it = mshrs_.find(line);
    if (it == mshrs_.end())
        return;                                 // e.g. prefetch raced
    for (int slot : it->second)
        loadLineDone(slot);
    mshrs_.erase(it);
}

void
SmCore::deliver(const MemRequest &reply, Cycle now)
{
    ++n_.fills;
    n_.fill_latency_total += now - reply.created;
    fill_latency_dist_.record(now - reply.created);
    if (reply.compressed) {
        switch (design_.decompress) {
          case DecompressSite::L1Caba:
            ++n_.fills_compressed;
            if (!triggerDecompress(reply.line, AssistPurpose::DecompressFill,
                                   0, now)) {
                pending_fills_.push_back(reply.line);
            }
            return;
          case DecompressSite::L1Hw: {
            Event ev;
            ev.kind = Event::Kind::FillDone;
            ev.line = reply.line;
            const int lat =
                std::max(1, getCodec(design_.algo).hwDecompressLatency());
            scheduleEvent(now + lat, ev, now);
            ++n_.hw_l1_decompressions;
            return;
          }
          case DecompressSite::Free:
          case DecompressSite::MemCtrl:
          case DecompressSite::None:
            break;
        }
    }
    completeFill(reply.line, now);
}

MemRequest
SmCore::popOutgoing()
{
    CABA_CHECK(!out_req_.empty(), "pop from empty out queue");
    MemRequest req = out_req_.front();
    out_req_.pop_front();
    return req;
}

// ------------------------------------------------------------ issue

bool
SmCore::warpReady(const WarpState &w) const
{
    if (!w.exists || w.done || w.ibuf.empty())
        return false;
    const Instruction &inst = *w.ibuf.front().inst;
    std::uint64_t need = 0;
    if (inst.dst >= 0)
        need |= std::uint64_t{1} << inst.dst;
    if (inst.src0 >= 0)
        need |= std::uint64_t{1} << inst.src0;
    if (inst.src1 >= 0)
        need |= std::uint64_t{1} << inst.src1;
    return (w.pending_regs & need) == 0;
}

bool
SmCore::tryIssueRegular(int warp, Cycle now)
{
    WarpState &w = warps_[static_cast<std::size_t>(warp)];
    const DecodedInst di = w.ibuf.front();
    const Instruction &inst = *di.inst;

    switch (inst.op) {
      case Opcode::AluInt:
      case Opcode::AluFp:
      case Opcode::Mov: {
        if (alu_inflight_ >= cfg_.alu_inflight_max) {
            saw_compute_block_ = true;
            return false;
        }
        ++alu_inflight_;
        Event ev;
        ev.warp = warp;
        ev.pipe = 1;
        if (inst.dst >= 0) {
            ev.regmask = std::uint64_t{1} << inst.dst;
            w.pending_regs |= ev.regmask;
        }
        scheduleEvent(now + cfg_.alu_latency, ev, now);
        ++n_.issued_alu;
        break;
      }
      case Opcode::Sfu: {
        if (sfu_inflight_ >= cfg_.sfu_inflight_max || sfu_port_used_) {
            saw_compute_block_ = true;
            return false;
        }
        sfu_port_used_ = true;
        // Memoization (Section 7.1): a fraction of SFU computations hit
        // the shared-memory LUT and complete at shared-memory latency.
        bool memo_hit = false;
        if (extras_.memoize) {
            memo_hit = rng_.chance(extras_.memo_hit_rate);
            AssistWarp aw;
            aw.parent_warp = warp;
            aw.priority = AssistPriority::Low;
            aw.purpose = AssistPurpose::Memoize;
            aw.code = &aws_->memoizeRoutine();
            aw.spawned = now;
            if (awc_.trigger(std::move(aw))) {
                ++n_.memoize_warps;
                trace::instant(trace::kAssistWarp, trace::kPidAssist, id_,
                               "spawn_memoize", now);
            }
        }
        Event ev;
        ev.warp = warp;
        if (inst.dst >= 0) {
            ev.regmask = std::uint64_t{1} << inst.dst;
            w.pending_regs |= ev.regmask;
        }
        if (memo_hit) {
            ev.pipe = 0;
            scheduleEvent(now + cfg_.shmem_latency, ev, now);
            ++n_.memo_hits;
        } else {
            ++sfu_inflight_;
            ev.pipe = 2;
            scheduleEvent(now + cfg_.sfu_latency, ev, now);
        }
        ++n_.issued_sfu;
        break;
      }
      case Opcode::LdShared:
      case Opcode::StShared: {
        if (mem_port_used_) {
            saw_mem_block_ = true;
            return false;
        }
        mem_port_used_ = true;
        if (inst.op == Opcode::LdShared && inst.dst >= 0) {
            Event ev;
            ev.warp = warp;
            ev.regmask = std::uint64_t{1} << inst.dst;
            w.pending_regs |= ev.regmask;
            scheduleEvent(now + cfg_.shmem_latency, ev, now);
        }
        ++n_.issued_shmem;
        break;
      }
      case Opcode::LdGlobal:
      case Opcode::StGlobal: {
        if (mem_port_used_ || ldst_.busy ||
            (inst.op == Opcode::LdGlobal && free_load_slots_.empty())) {
            saw_mem_block_ = true;
            return false;
        }
        mem_port_used_ = true;
        ldst_.busy = true;
        ldst_.is_store = inst.op == Opcode::StGlobal;
        ldst_.warp = warp;
        ldst_.cursor = 0;
        kernel_->genLines(inst.stream, w.global_id, di.iter, &ldst_.access);
        if (!ldst_.is_store) {
            std::uint64_t mask = 0;
            if (inst.dst >= 0)
                mask = std::uint64_t{1} << inst.dst;
            if (ldst_.access.lines.empty()) {
                // Degenerate: nothing to fetch.
                ldst_.busy = false;
            } else {
                w.pending_regs |= mask;
                ldst_.load_slot = allocLoadSlot(
                    warp, mask,
                    static_cast<int>(ldst_.access.lines.size()));
                maybePrefetch(ldst_.access.lines.front(), inst.stream, now);
            }
            ++n_.issued_global_loads;
        } else {
            ldst_.load_slot = -1;
            if (ldst_.access.lines.empty())
                ldst_.busy = false;
            ++n_.issued_global_stores;
        }
        n_.global_lines_accessed += ldst_.access.lines.size();
        break;
      }
      case Opcode::Branch:
        ++n_.issued_branches;
        break;
      case Opcode::Exit:
        w.done = true;
        --live_warps_;
        ++n_.warps_retired;
        trace::instant(trace::kWarp, trace::kPidSm, id_, "warp_retire", now,
                       "warp", static_cast<std::uint64_t>(w.global_id));
        break;
    }

    w.ibuf.pop();
    ++instr_issued_;
    return true;
}

bool
SmCore::tryIssueAssist(AssistWarp &aw, Cycle now)
{
    const AssistInstr &ai = (*aw.code)[static_cast<std::size_t>(aw.next)];
    if (ai.is_mem) {
        if (mem_port_used_)
            return false;
        mem_port_used_ = true;
        ++n_.assist_mem_issued;
    } else {
        if (alu_inflight_ >= cfg_.alu_inflight_max)
            return false;
        ++alu_inflight_;
        Event ev;
        ev.pipe = 1;
        scheduleEvent(now + cfg_.alu_latency, ev, now);
        ++n_.assist_alu_issued;
    }
    aw.ready_at = now + ai.latency;
    ++aw.next;
    ++n_.assist_instructions;
    return true;
}

void
SmCore::issueStage(Cycle now)
{
    if (!kernel_)
        return;
    for (int s = 0; s < cfg_.schedulers; ++s) {
        bool issued = false;

        // 1. High-priority assist warps take precedence (Section 3.2.3).
        auto &table = awc_.table();
        const int tsize = static_cast<int>(table.size());
        for (int k = 0; k < tsize && !issued; ++k) {
            AssistWarp &aw = table[static_cast<std::size_t>(
                (assist_rr_ + k) % tsize)];
            if (aw.priority != AssistPriority::High || aw.finishedIssuing() ||
                aw.ready_at > now) {
                continue;
            }
            if (tryIssueAssist(aw, now)) {
                issued = true;
                assist_rr_ = (assist_rr_ + k + 1) % std::max(tsize, 1);
            }
        }

        // 2. Regular warps: greedy-then-oldest (Table 1), or loose
        // round-robin when cfg_.gto is off (scheduler ablation).
        if (!issued) {
            const int g = greedy_warp_[static_cast<std::size_t>(s)];
            if (cfg_.gto && g != kInvalidWarp &&
                warpReady(warps_[static_cast<std::size_t>(g)])) {
                issued = tryIssueRegular(g, now);
            }
            if (!issued) {
                const int slots = cfg_.max_warps / cfg_.schedulers;
                const int start =
                    cfg_.gto ? 0 : lrr_next_[static_cast<std::size_t>(s)];
                for (int k = 0; k < slots; ++k) {
                    const int w =
                        ((start + k) % slots) * cfg_.schedulers + s;
                    const WarpState &ws = warps_[static_cast<std::size_t>(w)];
                    if (!ws.exists || ws.done)
                        continue;
                    if (!ws.ibuf.empty() && !warpReady(ws)) {
                        saw_data_block_ = true;
                        continue;
                    }
                    if (!warpReady(ws))
                        continue;
                    if (tryIssueRegular(w, now)) {
                        issued = true;
                        greedy_warp_[static_cast<std::size_t>(s)] = w;
                        lrr_next_[static_cast<std::size_t>(s)] =
                            (start + k + 1) % slots;
                        break;
                    }
                }
            }
        }

        // 3. Low-priority assist warps fill idle slots (Section 3.4).
        for (int k = 0; k < tsize && !issued; ++k) {
            AssistWarp &aw = table[static_cast<std::size_t>(
                (assist_rr_ + k) % tsize)];
            if (aw.priority != AssistPriority::Low || aw.finishedIssuing() ||
                aw.ready_at > now || !awc_.eligible(aw)) {
                continue;
            }
            if (tryIssueAssist(aw, now)) {
                issued = true;
                ++n_.assist_idle_slot_issues;
            }
        }

        awc_.noteIssueSlot(issued);
        issued_any_ = issued_any_ || issued;
    }
}

void
SmCore::classifyCycle(Cycle now)
{
    if (live_warps_ == 0 && awc_.table().empty()) {
        // Retired SM: not counted in the issue breakdown. Close any
        // open trace span at the retirement boundary.
        if (trace_class_ >= 0) {
            trace::complete(trace::kWarp, trace::kPidSm, id_,
                            kIssueClassNames[trace_class_],
                            trace_class_start_, now - trace_class_start_);
            trace_class_ = -1;
        }
        return;
    }
    int cls;
    if (issued_any_) {
        ++breakdown_.active;
        cls = 0;
    } else if (saw_mem_block_ || ldst_stalled_this_cycle_) {
        ++breakdown_.mem_stall;
        cls = 1;
    } else if (saw_compute_block_) {
        ++breakdown_.comp_stall;
        cls = 2;
    } else if (saw_data_block_) {
        ++breakdown_.data_stall;
        cls = 3;
    } else {
        ++breakdown_.idle;
        cls = 4;
    }
    if (!trace::on(trace::kWarp)) {
        trace_class_ = -1;
        return;
    }
    // Issue-class spans: emit one complete event per maximal run of
    // same-classified cycles rather than one instant per cycle.
    if (cls != trace_class_) {
        if (trace_class_ >= 0) {
            trace::complete(trace::kWarp, trace::kPidSm, id_,
                            kIssueClassNames[trace_class_],
                            trace_class_start_, now - trace_class_start_);
        }
        trace_class_ = cls;
        trace_class_start_ = now;
    }
}

StatSet
SmCore::stats() const
{
    StatSet s;
    s.setCounter("issued_alu", n_.issued_alu);
    s.setCounter("issued_sfu", n_.issued_sfu);
    s.setCounter("issued_shmem", n_.issued_shmem);
    s.setCounter("issued_branches", n_.issued_branches);
    s.setCounter("issued_global_loads", n_.issued_global_loads);
    s.setCounter("issued_global_stores", n_.issued_global_stores);
    s.setCounter("global_lines_accessed", n_.global_lines_accessed);
    s.setCounter("warps_retired", n_.warps_retired);
    s.setCounter("l1_load_hits", n_.l1_load_hits);
    s.setCounter("l1_load_misses", n_.l1_load_misses);
    s.setCounter("mshr_merges", n_.mshr_merges);
    s.setCounter("assist_alu_issued", n_.assist_alu_issued);
    s.setCounter("assist_mem_issued", n_.assist_mem_issued);
    s.setCounter("assist_instructions", n_.assist_instructions);
    s.setCounter("assist_idle_slot_issues", n_.assist_idle_slot_issues);
    s.setCounter("fills", n_.fills);
    s.setCounter("fill_latency_total", n_.fill_latency_total);
    s.setCounter("fills_compressed", n_.fills_compressed);
    s.setCounter("caba_decompressions", n_.caba_decompressions);
    s.setCounter("caba_hit_decompressions", n_.caba_hit_decompressions);
    s.setCounter("caba_compressions", n_.caba_compressions);
    s.setCounter("hw_l1_decompressions", n_.hw_l1_decompressions);
    s.setCounter("hw_store_compressions", n_.hw_store_compressions);
    s.setCounter("stores_sent_compressed", n_.stores_sent_compressed);
    s.setCounter("stores_sent_uncompressed", n_.stores_sent_uncompressed);
    s.setCounter("stores_buffered_for_compression", n_.stores_buffered);
    s.setCounter("store_buffer_overflows", n_.store_buffer_overflows);
    s.setCounter("stale_compressions_killed", stats_add_store_kill_);
    s.setCounter("memo_hits", n_.memo_hits);
    s.setCounter("memoize_warps", n_.memoize_warps);
    s.setCounter("prefetch_warps", n_.prefetch_warps);
    s.setCounter("prefetches_issued", n_.prefetches_issued);
    s.setCounter("prefetches_dropped", n_.prefetches_dropped);
    s.dist("fill_latency").merge(fill_latency_dist_);
    return s;
}

bool
SmCore::done() const
{
    return live_warps_ == 0 && outstanding_events_ == 0 && mshrs_.empty() &&
           !ldst_.busy && out_req_.empty() && comp_stores_.empty() &&
           pending_fills_.empty() && awc_.table().empty();
}

} // namespace caba
