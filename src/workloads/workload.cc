#include "workloads/workload.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/rng.h"

namespace caba {

Workload::Workload(AppDescriptor app, double scale, std::uint64_t seed)
    : app_(std::move(app)),
      iterations_(std::max(1, static_cast<int>(
          std::lround(app_.iterations * scale)))),
      seed_(seed)
{
    buildProgram();
}

void
Workload::buildProgram()
{
    // Streams: one per load plus one per store, each in its own address
    // region so different arrays can have distinct behaviour.
    const int n_irregular = static_cast<int>(
        std::lround(app_.irregular_frac * app_.loads));
    for (int i = 0; i < app_.loads; ++i) {
        StreamDesc sd;
        sd.pattern = i < n_irregular ? AccessPattern::Irregular
                                     : app_.pattern;
        sd.base = (static_cast<Addr>(i) + 1) << 33;
        sd.footprint = std::max<std::uint64_t>(app_.footprint, kLineSize);
        sd.stride = app_.stride_bytes;
        streams_.push_back(sd);
    }
    for (int i = 0; i < app_.stores; ++i) {
        StreamDesc sd;
        // Output arrays are written densely (frontier flags, result
        // vectors, row-major products) even when the input access
        // pattern is irregular — the common GPGPU output idiom.
        sd.pattern = AccessPattern::Streaming;
        sd.base = (static_cast<Addr>(app_.loads + i) + 1) << 33 |
                  (Addr{1} << 42);
        sd.footprint = std::max<std::uint64_t>(app_.footprint, kLineSize);
        sd.stride = std::min(app_.stride_bytes, 8);
        sd.is_store = true;
        streams_.push_back(sd);
    }

    // Register plan: r0 scratch/address, r1..rL load results, then a
    // serial ALU/SFU chain so compute depends on memory (the source of
    // the data-dependence stalls of Figure 1).
    ProgramBuilder pb;
    int next_reg = 1;
    std::vector<int> load_regs;
    for (int i = 0; i < app_.loads; ++i) {
        load_regs.push_back(next_reg);
        pb.ldGlobal(next_reg, i, 0);
        ++next_reg;
    }
    int prev = load_regs.empty() ? 0 : load_regs.back();
    for (int i = 0; i < app_.alu; ++i) {
        const int src1 =
            load_regs.empty() ? 0 : load_regs[i % load_regs.size()];
        pb.alu(i % 2 == 0 ? Opcode::AluInt : Opcode::AluFp, next_reg, prev,
               src1);
        prev = next_reg++;
    }
    for (int i = 0; i < app_.sfu; ++i) {
        pb.alu(Opcode::Sfu, next_reg, prev);
        prev = next_reg++;
    }
    for (int i = 0; i < app_.shmem; ++i) {
        if (i % 2 == 0) {
            pb.ldShared(next_reg, prev);
            prev = next_reg++;
        } else {
            pb.stShared(prev, 0);
        }
    }
    for (int i = 0; i < app_.stores; ++i)
        pb.stGlobal(prev, app_.loads + i, 0);
    pb.branchTo(0);
    pb.exit();
    program_ = pb.build();
    CABA_CHECK(program_.numRegs() <= 64,
               "workload exceeds the 64-register scoreboard");
}

int
Workload::iterations(int warp_global) const
{
    (void)warp_global;
    return iterations_;
}

void
Workload::genLines(int stream, int warp_global, int iter,
                   MemAccess *out) const
{
    CABA_CHECK(stream >= 0 &&
               stream < static_cast<int>(streams_.size()),
               "bad stream index");
    const StreamDesc &sd = streams_[static_cast<std::size_t>(stream)];
    // Grid-stride loop indexing (the standard CUDA idiom): in a given
    // iteration, consecutive warps cover consecutive warp-sized chunks.
    const std::uint64_t idx =
        static_cast<std::uint64_t>(iter) *
            static_cast<std::uint64_t>(total_warps_) +
        static_cast<std::uint64_t>(warp_global);

    out->lines.clear();
    auto push_unique = [&](Addr line) {
        for (Addr l : out->lines)
            if (l == line)
                return;
        out->lines.push_back(line);
    };

    for (int lane = 0; lane < kWarpSize; ++lane) {
        std::uint64_t off;
        switch (sd.pattern) {
          case AccessPattern::Streaming:
          case AccessPattern::Strided:
            off = (idx * kWarpSize + static_cast<std::uint64_t>(lane)) *
                  static_cast<std::uint64_t>(sd.stride);
            break;
          case AccessPattern::Irregular:
          default:
            off = mixHash(seed_ ^ (static_cast<std::uint64_t>(stream) *
                                   0x9E3779B9ull) ^
                          (idx * 37 + static_cast<std::uint64_t>(lane)));
            break;
        }
        off %= sd.footprint;
        off &= ~std::uint64_t{3};
        push_unique(lineAddr(sd.base + off));
    }

    // Streaming stores write contiguous elements, overwriting their
    // lines completely; strided/irregular stores are partial-line
    // (Section 4.2.2).
    out->full_line = sd.pattern == AccessPattern::Streaming;
}

void
Workload::outputLine(Addr line, std::uint8_t *out) const
{
    // Store data keeps the app's value structure (results resemble
    // inputs far more than they resemble noise).
    generateMixLine(app_.data, seed_ ^ 0xA11CE5ull, line, out);
}

LineGenerator
Workload::lineGenerator() const
{
    const DataMix mix = app_.data;
    const std::uint64_t seed = seed_;
    return [mix, seed](Addr line, std::uint8_t *out) {
        generateMixLine(mix, seed, line, out);
    };
}

OccupancyResult
Workload::occupancy(int assist_regs) const
{
    OccupancyParams p;
    p.regs_per_thread = app_.regs_per_thread;
    p.threads_per_block = app_.threads_per_block;
    p.assist_regs_per_thread = assist_regs;
    return computeOccupancy(p);
}

int
Workload::warpsPerSm(int assist_regs, int max_warps) const
{
    const OccupancyResult r = occupancy(assist_regs);
    return std::max(1, std::min(max_warps, r.warps_per_sm));
}

} // namespace caba
