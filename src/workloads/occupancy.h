/**
 * @file
 * Static SM occupancy calculator (Section 2, "Unutilized On-chip
 * Memory"): given per-thread register demand and block geometry, how
 * many blocks fit under the register-file / thread / block limits, and
 * what fraction of the register file is left unallocated (Figure 2).
 * Assist-warp register demand is added to the per-block requirement
 * exactly as Section 3.2.2 prescribes.
 */
#ifndef CABA_WORKLOADS_OCCUPANCY_H
#define CABA_WORKLOADS_OCCUPANCY_H

namespace caba {

/** Inputs to the occupancy computation (Table 1 defaults). */
struct OccupancyParams
{
    int regs_per_thread = 32;
    int threads_per_block = 256;

    int regfile_regs = 32768;       ///< 128KB of 4-byte registers.
    int max_threads = 1536;
    int max_blocks = 8;

    /** Extra per-thread registers reserved for assist warps. */
    int assist_regs_per_thread = 0;
};

/** Outputs. */
struct OccupancyResult
{
    int blocks_per_sm = 0;
    int warps_per_sm = 0;

    /** Fraction of the register file not allocated to any block,
     *  computed against the application's own demand (Figure 2). */
    double unallocated_reg_fraction = 0.0;

    /** True when assist-warp registers fit in the unallocated pool
     *  without reducing the block count (the common case, Section 3.2.2). */
    bool assist_fits_free = false;
};

/** Evaluates the occupancy equations. */
OccupancyResult computeOccupancy(const OccupancyParams &p);

} // namespace caba

#endif // CABA_WORKLOADS_OCCUPANCY_H
