#include "workloads/data_profile.h"

#include <cstring>

#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"

namespace caba {

const char *
dataProfileName(DataProfile p)
{
    switch (p) {
      case DataProfile::Zeros: return "zeros";
      case DataProfile::Pointer: return "pointer";
      case DataProfile::SmallInt: return "small-int";
      case DataProfile::Fp32: return "fp32";
      case DataProfile::Text: return "text";
      case DataProfile::Sparse: return "sparse";
      case DataProfile::Index: return "index";
      case DataProfile::Random: return "random";
    }
    return "?";
}

namespace {

/** Per-line deterministic stream: h(n) = mix(seed, line, n). */
class LineRand
{
  public:
    LineRand(std::uint64_t seed, Addr line)
        : state_(mixHash(seed ^ mixHash(line)))
    {}

    std::uint64_t
    next()
    {
        state_ = mixHash(state_ + 0x9E3779B97F4A7C15ull);
        return state_;
    }

  private:
    std::uint64_t state_;
};

void
genPointer(LineRand &r, Addr line, std::uint8_t *out)
{
    // Addresses into one allocation: shared high bits, small strides —
    // the Figure 5 PVC pattern. Roughly a quarter of slots are null.
    const std::uint64_t region =
        0x800000000000ull + ((mixHash(line >> 14) & 0xFFFF) << 20);
    for (int i = 0; i < kLineSize / 8; ++i) {
        const std::uint64_t roll = r.next();
        std::uint64_t v = 0;
        if ((roll & 3) != 0)
            v = region + ((roll >> 8) & 0xF) * 8;
        storeLe(out + i * 8, 8, v);
    }
}

void
genSmallInt(LineRand &r, std::uint8_t *out)
{
    // Counters / indices: values fit in one byte, occasionally two.
    for (int i = 0; i < kLineSize / 4; ++i) {
        const std::uint64_t roll = r.next();
        std::uint32_t v = static_cast<std::uint32_t>(roll & 0x7F);
        if ((roll & 0x1F00) == 0)
            v = static_cast<std::uint32_t>(roll & 0x7FFF);
        storeLe(out + i * 4, 4, v);
    }
}

void
genFp32(LineRand &r, std::uint8_t *out)
{
    // Physical fields in [1, 4): two exponent values, noisy mantissas.
    for (int i = 0; i < kLineSize / 4; ++i) {
        const std::uint64_t roll = r.next();
        const std::uint32_t exp = (roll & 1) ? 0x3F800000u : 0x40000000u;
        const std::uint32_t mant =
            static_cast<std::uint32_t>(roll >> 16) & 0x007FFFFFu;
        storeLe(out + i * 4, 4, exp | mant);
    }
}

void
genText(LineRand &r, std::uint8_t *out)
{
    // Printable bytes in repeated runs (sequence/key data).
    int i = 0;
    while (i < kLineSize) {
        const std::uint64_t roll = r.next();
        const auto c = static_cast<std::uint8_t>(0x20 + (roll & 0x3F));
        int run = 1 + static_cast<int>((roll >> 8) & 0x7);
        while (run-- > 0 && i < kLineSize)
            out[i++] = c;
    }
}

void
genSparse(LineRand &r, std::uint8_t *out)
{
    // CSR-ish adjacency data: ~75% zero words, the rest small indices.
    for (int i = 0; i < kLineSize / 4; ++i) {
        const std::uint64_t roll = r.next();
        std::uint32_t v = 0;
        if ((roll & 3) == 0)
            v = static_cast<std::uint32_t>(roll >> 32) & 0xFFFF;
        storeLe(out + i * 4, 4, v);
    }
}

void
genIndex(LineRand &r, Addr line, std::uint8_t *out)
{
    // Neighbor lists of a locality-renumbered graph: 4B indices near a
    // per-neighborhood base, with occasional zero padding. Wide values
    // defeat FPC's sign-extension patterns while the shared base suits
    // base-delta and dictionary schemes.
    const std::uint32_t base = static_cast<std::uint32_t>(
        0x00100000u + ((mixHash(line >> 13) & 0x3FFF) << 7));
    for (int i = 0; i < kLineSize / 4; ++i) {
        const std::uint64_t roll = r.next();
        std::uint32_t v = 0;
        if ((roll & 7) != 7)
            v = base + static_cast<std::uint32_t>((roll >> 8) & 0x7F);
        storeLe(out + i * 4, 4, v);
    }
}

void
genRandom(LineRand &r, std::uint8_t *out)
{
    for (int i = 0; i < kLineSize / 8; ++i)
        storeLe(out + i * 8, 8, r.next());
}

} // namespace

void
generateProfileLine(DataProfile profile, std::uint64_t seed, Addr line,
                    std::uint8_t *out)
{
    LineRand r(seed, line);
    switch (profile) {
      case DataProfile::Zeros:
        std::memset(out, 0, kLineSize);
        return;
      case DataProfile::Pointer:
        genPointer(r, line, out);
        return;
      case DataProfile::SmallInt:
        genSmallInt(r, out);
        return;
      case DataProfile::Fp32:
        genFp32(r, out);
        return;
      case DataProfile::Text:
        genText(r, out);
        return;
      case DataProfile::Sparse:
        genSparse(r, out);
        return;
      case DataProfile::Index:
        genIndex(r, line, out);
        return;
      case DataProfile::Random:
        genRandom(r, out);
        return;
    }
    CABA_PANIC("unknown data profile");
}

void
generateMixLine(const DataMix &mix, std::uint64_t seed, Addr line,
                std::uint8_t *out)
{
    const std::uint64_t roll = mixHash(seed ^ mixHash(line * 0x10001));
    const double u =
        static_cast<double>(roll >> 11) * (1.0 / 9007199254740992.0);
    if (u < mix.zero_frac) {
        std::memset(out, 0, kLineSize);
        return;
    }
    const DataProfile p = (u < mix.zero_frac + mix.secondary_frac)
        ? mix.secondary : mix.primary;
    generateProfileLine(p, seed, line, out);
}

} // namespace caba
