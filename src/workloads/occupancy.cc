#include "workloads/occupancy.h"

#include <algorithm>

#include "common/log.h"
#include "common/types.h"

namespace caba {

OccupancyResult
computeOccupancy(const OccupancyParams &p)
{
    CABA_CHECK(p.threads_per_block > 0 && p.regs_per_thread > 0,
               "bad occupancy parameters");

    auto blocks_for = [&](int regs_per_thread) {
        const int per_block = p.threads_per_block * regs_per_thread;
        int blocks = std::min(p.max_blocks,
                              p.max_threads / p.threads_per_block);
        blocks = std::min(blocks, per_block > 0
                                      ? p.regfile_regs / per_block
                                      : p.max_blocks);
        return std::max(blocks, 0);
    };

    OccupancyResult r;
    const int base_blocks = blocks_for(p.regs_per_thread);
    const int with_assist =
        blocks_for(p.regs_per_thread + p.assist_regs_per_thread);

    r.blocks_per_sm = with_assist;
    r.warps_per_sm = with_assist * p.threads_per_block / kWarpSize;
    r.assist_fits_free = with_assist == base_blocks;

    const int allocated =
        base_blocks * p.threads_per_block * p.regs_per_thread;
    r.unallocated_reg_fraction =
        1.0 - static_cast<double>(allocated) /
                  static_cast<double>(p.regfile_regs);
    return r;
}

} // namespace caba
