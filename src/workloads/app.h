/**
 * @file
 * Application descriptors standing in for the paper's 27-benchmark pool
 * (Section 5: CUDA SDK, Rodinia, Mars, Lonestar). Each descriptor
 * captures what the evaluation actually depends on: the instruction mix
 * and arithmetic intensity (Figure 1 stall shape), register/block
 * geometry (Figure 2 occupancy), access pattern and footprint (cache and
 * bandwidth behaviour), and the data-value structure (per-algorithm
 * compressibility, Figure 11).
 */
#ifndef CABA_WORKLOADS_APP_H
#define CABA_WORKLOADS_APP_H

#include <string>
#include <vector>

#include "workloads/data_profile.h"

namespace caba {

/** Global-memory access shape of an app's dominant streams. */
enum class AccessPattern : int {
    Streaming,  ///< Unit-stride, fully coalesced.
    Strided,    ///< Fixed stride > element size (partial coalescing).
    Irregular,  ///< Data-dependent scatter/gather (graphs).
};

/** One synthetic application. */
struct AppDescriptor
{
    std::string name;
    std::string suite;

    bool memory_bound = true;   ///< Figure 1 grouping.
    bool in_fig1 = true;        ///< Member of the 27-app Figure 1 pool.
    bool in_compression = true; ///< Member of the Section 6 study pool.

    // occupancy (Figure 2)
    int regs_per_thread = 32;
    int threads_per_block = 256;

    // per-iteration instruction mix
    int loads = 2;
    int stores = 1;
    int alu = 4;
    int sfu = 0;
    int shmem = 0;

    // access behaviour
    AccessPattern pattern = AccessPattern::Streaming;
    int stride_bytes = 4;           ///< Per-lane element stride.
    double irregular_frac = 0.0;    ///< Fraction of load streams irregular.
    std::uint64_t footprint = 8ull << 20;

    int iterations = 96;            ///< Loop trips per warp (scaled down).

    // data-value structure
    DataMix data{};

    /** Input-redundancy level for the memoization study (Section 7.1). */
    double memo_hit_rate = 0.0;
};

/** The full application pool (27 Figure 1 apps + KM, TRA, nw). */
const std::vector<AppDescriptor> &allApps();

/** Lookup by name; panics when absent. */
const AppDescriptor &findApp(const std::string &name);

/** The Figure 1 pool, memory-bound first (paper ordering). */
std::vector<AppDescriptor> fig1Apps();

/** The Section 6 compression-study pool. */
std::vector<AppDescriptor> compressionApps();

} // namespace caba

#endif // CABA_WORKLOADS_APP_H
