#include "workloads/app.h"

#include "common/log.h"

namespace caba {

namespace {

using DP = DataProfile;
using AP = AccessPattern;

/**
 * The application pool. Bounds and suites follow Figure 1 / Section 5;
 * mixes, footprints and data profiles are calibrated stand-ins for the
 * real benchmarks (see DESIGN.md substitution table).
 */
std::vector<AppDescriptor>
buildApps()
{
    std::vector<AppDescriptor> v;

    auto add = [&](AppDescriptor d) { v.push_back(std::move(d)); };

    // ---- Memory-bound, Figure 1 + compression pool ----

    add({.name = "BFS", .suite = "CUDA", .memory_bound = true,
         .regs_per_thread = 16, .threads_per_block = 512,
         .loads = 3, .stores = 1, .alu = 3, .sfu = 0, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 4,
         .irregular_frac = 0.7, .footprint = 24ull << 20, .iterations = 13,
         .data = {DP::Index, DP::Sparse, 0.35, 0.1}});

    add({.name = "CONS", .suite = "CUDA", .memory_bound = true,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 5, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 16ull << 20, .iterations = 16,
         .data = {DP::SmallInt, DP::Fp32, 0.25, 0.15}});

    add({.name = "JPEG", .suite = "CUDA", .memory_bound = true,
         .regs_per_thread = 28, .threads_per_block = 256,
         .loads = 2, .stores = 1, .alu = 6, .sfu = 0, .shmem = 2,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 12ull << 20, .iterations = 16,
         .data = {DP::Text, DP::SmallInt, 0.4, 0.15}});

    add({.name = "LPS", .suite = "CUDA", .memory_bound = true,
         .regs_per_thread = 20, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 4, .sfu = 0, .shmem = 1,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 16ull << 20, .iterations = 16,
         .data = {DP::SmallInt, DP::Fp32, 0.2, 0.2}});

    add({.name = "MUM", .suite = "CUDA", .memory_bound = true,
         .regs_per_thread = 20, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 3, .sfu = 0, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 4,
         .irregular_frac = 0.4, .footprint = 24ull << 20, .iterations = 13,
         .data = {DP::Text, DP::Random, 0.2, 0.1}});

    add({.name = "RAY", .suite = "CUDA", .memory_bound = true,
         .regs_per_thread = 40, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 6, .sfu = 1, .shmem = 0,
         .pattern = AP::Strided, .stride_bytes = 16,
         .irregular_frac = 0.2, .footprint = 640ull << 10, .iterations = 13,
         .data = {DP::Fp32, DP::Pointer, 0.2, 0.05}});

    add({.name = "SCP", .suite = "CUDA", .memory_bound = true,
         .in_compression = false,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 4, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 16ull << 20, .iterations = 16,
         .data = {DP::Random, DP::Random, 0.0, 0.02}});

    add({.name = "MM", .suite = "Mars", .memory_bound = true,
         .regs_per_thread = 21, .threads_per_block = 192,
         .loads = 3, .stores = 1, .alu = 5, .sfu = 0, .shmem = 1,
         .pattern = AP::Strided, .stride_bytes = 8,
         .irregular_frac = 0.0, .footprint = 16ull << 20, .iterations = 16,
         .data = {DP::Pointer, DP::SmallInt, 0.3, 0.1}});

    add({.name = "PVC", .suite = "Mars", .memory_bound = true,
         .regs_per_thread = 18, .threads_per_block = 256,
         .loads = 4, .stores = 2, .alu = 4, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 8,
         .irregular_frac = 0.1, .footprint = 24ull << 20, .iterations = 16,
         .data = {DP::Pointer, DP::SmallInt, 0.15, 0.1}});

    add({.name = "PVR", .suite = "Mars", .memory_bound = true,
         .regs_per_thread = 18, .threads_per_block = 256,
         .loads = 4, .stores = 2, .alu = 4, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 8,
         .irregular_frac = 0.2, .footprint = 24ull << 20, .iterations = 16,
         .data = {DP::Pointer, DP::Sparse, 0.25, 0.1}});

    add({.name = "SS", .suite = "Mars", .memory_bound = true,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 4, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.2, .footprint = 16ull << 20, .iterations = 16,
         .data = {DP::Text, DP::Pointer, 0.35, 0.15}});

    add({.name = "sc", .suite = "CUDA", .memory_bound = true,
         .in_compression = false,
         .regs_per_thread = 28, .threads_per_block = 256,
         .loads = 2, .stores = 2, .alu = 4, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.1, .footprint = 16ull << 20, .iterations = 16,
         .data = {DP::Random, DP::Random, 0.0, 0.01}});

    add({.name = "bfs", .suite = "Lonestar", .memory_bound = true,
         .regs_per_thread = 16, .threads_per_block = 256,
         .loads = 3, .stores = 1, .alu = 3, .sfu = 0, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 4,
         .irregular_frac = 0.8, .footprint = 320ull << 10, .iterations = 13,
         .data = {DP::Index, DP::Sparse, 0.3, 0.15}});

    add({.name = "bh", .suite = "Lonestar", .memory_bound = true,
         .regs_per_thread = 36, .threads_per_block = 256,
         .loads = 4, .stores = 1, .alu = 6, .sfu = 1, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 8,
         .irregular_frac = 0.6, .footprint = 12ull << 20, .iterations = 11,
         .data = {DP::Pointer, DP::Fp32, 0.35, 0.1}});

    add({.name = "mst", .suite = "Lonestar", .memory_bound = true,
         .regs_per_thread = 20, .threads_per_block = 128,
         .loads = 4, .stores = 1, .alu = 3, .sfu = 0, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 4,
         .irregular_frac = 0.6, .footprint = 20ull << 20, .iterations = 12,
         .data = {DP::Index, DP::Pointer, 0.3, 0.15}});

    add({.name = "sp", .suite = "Lonestar", .memory_bound = true,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 4, .sfu = 0, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 4,
         .irregular_frac = 0.5, .footprint = 16ull << 20, .iterations = 13,
         .data = {DP::Index, DP::Sparse, 0.35, 0.1}});

    add({.name = "sssp", .suite = "Lonestar", .memory_bound = true,
         .regs_per_thread = 18, .threads_per_block = 256,
         .loads = 3, .stores = 1, .alu = 3, .sfu = 0, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 4,
         .irregular_frac = 0.7, .footprint = 448ull << 10, .iterations = 13,
         .data = {DP::Index, DP::Sparse, 0.3, 0.15}});

    // ---- Compute-bound, Figure 1 pool ----

    add({.name = "bp", .suite = "Rodinia", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 1, .stores = 1, .alu = 14, .sfu = 0, .shmem = 2,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 4ull << 20, .iterations = 16,
         .data = {DP::Fp32, DP::SmallInt, 0.2, 0.05}});

    add({.name = "hs", .suite = "Rodinia", .memory_bound = false,
         .regs_per_thread = 28, .threads_per_block = 256,
         .loads = 1, .stores = 1, .alu = 12, .sfu = 0, .shmem = 3,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 4ull << 20, .iterations = 16,
         .data = {DP::Fp32, DP::SmallInt, 0.35, 0.1}});

    add({.name = "dmr", .suite = "Lonestar", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 40, .threads_per_block = 128,
         .loads = 1, .stores = 1, .alu = 6, .sfu = 4, .shmem = 0,
         .pattern = AP::Irregular, .stride_bytes = 8,
         .irregular_frac = 0.4, .footprint = 4ull << 20, .iterations = 11,
         .data = {DP::Fp32, DP::Pointer, 0.3, 0.05},
         .memo_hit_rate = 0.4});

    add({.name = "NQU", .suite = "CUDA", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 20, .threads_per_block = 96,
         .loads = 1, .stores = 0, .alu = 16, .sfu = 0, .shmem = 2,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 1ull << 20, .iterations = 16,
         .data = {DP::SmallInt, DP::Zeros, 0.3, 0.2}});

    add({.name = "SLA", .suite = "CUDA", .memory_bound = false,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 2, .stores = 1, .alu = 10, .sfu = 0, .shmem = 1,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 8ull << 20, .iterations = 16,
         .data = {DP::SmallInt, DP::Fp32, 0.3, 0.15}});

    add({.name = "pt", .suite = "Lonestar", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 32, .threads_per_block = 96,
         .loads = 1, .stores = 1, .alu = 13, .sfu = 1, .shmem = 1,
         .pattern = AP::Strided, .stride_bytes = 8,
         .irregular_frac = 0.1, .footprint = 4ull << 20, .iterations = 13,
         .data = {DP::Fp32, DP::Random, 0.2, 0.05}});

    add({.name = "lc", .suite = "CUDA", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 28, .threads_per_block = 96,
         .loads = 1, .stores = 1, .alu = 15, .sfu = 0, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 4ull << 20, .iterations = 16,
         .data = {DP::SmallInt, DP::Fp32, 0.3, 0.05}});

    add({.name = "STO", .suite = "CUDA", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 1, .stores = 1, .alu = 8, .sfu = 0, .shmem = 6,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 2ull << 20, .iterations = 16,
         .data = {DP::Text, DP::SmallInt, 0.3, 0.05}});

    add({.name = "NN", .suite = "CUDA", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 24, .threads_per_block = 128,
         .loads = 1, .stores = 1, .alu = 8, .sfu = 3, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 4ull << 20, .iterations = 13,
         .data = {DP::Fp32, DP::SmallInt, 0.2, 0.05},
         .memo_hit_rate = 0.5});

    add({.name = "mc", .suite = "CUDA", .memory_bound = false,
         .in_compression = false,
         .regs_per_thread = 32, .threads_per_block = 96,
         .loads = 1, .stores = 1, .alu = 6, .sfu = 5, .shmem = 0,
         .pattern = AP::Streaming, .stride_bytes = 4,
         .irregular_frac = 0.0, .footprint = 2ull << 20, .iterations = 13,
         .data = {DP::Fp32, DP::Random, 0.3, 0.02},
         .memo_hit_rate = 0.35});

    // ---- Compression-pool apps outside Figure 1 ----

    add({.name = "TRA", .suite = "CUDA", .memory_bound = true,
         .in_fig1 = false,
         .regs_per_thread = 16, .threads_per_block = 256,
         .loads = 2, .stores = 2, .alu = 3, .sfu = 0, .shmem = 2,
         .pattern = AP::Strided, .stride_bytes = 32,
         .irregular_frac = 0.0, .footprint = 1536ull << 10, .iterations = 13,
         .data = {DP::SmallInt, DP::Fp32, 0.25, 0.2}});

    add({.name = "nw", .suite = "Rodinia", .memory_bound = true,
         .in_fig1 = false,
         .regs_per_thread = 20, .threads_per_block = 128,
         .loads = 3, .stores = 1, .alu = 5, .sfu = 0, .shmem = 2,
         .pattern = AP::Strided, .stride_bytes = 8,
         .irregular_frac = 0.0, .footprint = 8ull << 20, .iterations = 16,
         .data = {DP::Text, DP::SmallInt, 0.45, 0.2}});

    add({.name = "KM", .suite = "Mars", .memory_bound = true,
         .in_fig1 = false,
         .regs_per_thread = 18, .threads_per_block = 256,
         .loads = 3, .stores = 1, .alu = 6, .sfu = 0, .shmem = 0,
         .pattern = AP::Strided, .stride_bytes = 16,
         .irregular_frac = 0.1, .footprint = 1280ull << 10, .iterations = 16,
         .data = {DP::Pointer, DP::SmallInt, 0.4, 0.1}});

    return v;
}

} // namespace

const std::vector<AppDescriptor> &
allApps()
{
    static const std::vector<AppDescriptor> apps = buildApps();
    return apps;
}

const AppDescriptor &
findApp(const std::string &name)
{
    for (const AppDescriptor &app : allApps())
        if (app.name == name)
            return app;
    CABA_PANIC("unknown application name");
}

std::vector<AppDescriptor>
fig1Apps()
{
    std::vector<AppDescriptor> out;
    for (const AppDescriptor &app : allApps())
        if (app.in_fig1 && app.memory_bound)
            out.push_back(app);
    for (const AppDescriptor &app : allApps())
        if (app.in_fig1 && !app.memory_bound)
            out.push_back(app);
    return out;
}

std::vector<AppDescriptor>
compressionApps()
{
    std::vector<AppDescriptor> out;
    for (const AppDescriptor &app : allApps())
        if (app.in_compression)
            out.push_back(app);
    return out;
}

} // namespace caba
