/**
 * @file
 * Binds an AppDescriptor to everything a simulation needs: the kernel
 * program (KernelInfo), the coalesced address streams, the functional
 * data generator, and the occupancy numbers that decide how many warps
 * run per SM.
 */
#ifndef CABA_WORKLOADS_WORKLOAD_H
#define CABA_WORKLOADS_WORKLOAD_H

#include <cstdint>

#include "mem/backing_store.h"
#include "workloads/kernel.h"
#include "workloads/app.h"
#include "workloads/occupancy.h"

namespace caba {

/** A runnable instance of one application. */
class Workload : public KernelInfo
{
  public:
    /**
     * @param app   descriptor (see allApps())
     * @param scale multiplies per-warp loop trips (1.0 = bench default)
     * @param seed  selects the data universe / irregular streams
     */
    explicit Workload(AppDescriptor app, double scale = 1.0,
                      std::uint64_t seed = 0x5EEDull);

    // KernelInfo
    const Program &program() const override { return program_; }
    int iterations(int warp_global) const override;
    void genLines(int stream, int warp_global, int iter,
                  MemAccess *out) const override;
    void outputLine(Addr line, std::uint8_t *out) const override;

    /** Generator for the pristine memory image (feeds BackingStore). */
    LineGenerator lineGenerator() const;

    /** Occupancy with @p assist_regs extra per-thread registers. */
    OccupancyResult occupancy(int assist_regs = 0) const;

    /** Warps launched per SM (occupancy-limited, capped at 48). */
    int warpsPerSm(int assist_regs = 0, int max_warps = 48) const;

    /**
     * Binds the total grid size so streaming accesses use grid-stride
     * indexing (element = iter * total_warps * 32 + warp * 32 + lane),
     * the standard CUDA idiom: concurrent warps touch adjacent lines.
     */
    void bindGrid(int total_warps) { total_warps_ = total_warps; }

    const AppDescriptor &app() const { return app_; }

  private:
    struct StreamDesc
    {
        AccessPattern pattern = AccessPattern::Streaming;
        Addr base = 0;
        std::uint64_t footprint = 0;
        int stride = 4;
        bool is_store = false;
    };

    void buildProgram();

    AppDescriptor app_;
    int iterations_;
    int total_warps_ = 720;     ///< 15 SMs x 48 warps until bound.
    std::uint64_t seed_;
    Program program_;
    std::vector<StreamDesc> streams_;
};

} // namespace caba

#endif // CABA_WORKLOADS_WORKLOAD_H
