/**
 * @file
 * Deterministic cache-line data synthesizers. Each profile reproduces
 * the byte-level value structure of a class of real GPGPU data (the
 * paper compresses real benchmark data; we cannot ship it, so these
 * generators stand in — see DESIGN.md, substitution table). The profile
 * mix per application is calibrated so per-algorithm compression ratios
 * land near Figure 11.
 */
#ifndef CABA_WORKLOADS_DATA_PROFILE_H
#define CABA_WORKLOADS_DATA_PROFILE_H

#include <cstdint>

#include "common/types.h"

namespace caba {

/** Families of value structure observed in GPGPU data. */
enum class DataProfile : int {
    Zeros,      ///< Untouched output buffers, padding.
    Pointer,    ///< 8B addresses sharing a region base (PVC-style, Fig 5).
    SmallInt,   ///< Narrow integers in 4B slots (counters, indices).
    Fp32,       ///< FP32 fields with shared exponents, noisy mantissas.
    Text,       ///< Byte runs / repeated characters (keys, sequences).
    Sparse,     ///< Mostly-zero words with occasional small values.
    Index,      ///< 4B node/element indices clustered around a local
                ///  base (graph CSR neighbor lists, locality-renumbered).
    Random,     ///< Incompressible (hashed, encrypted, random init).
};

/** Printable profile name. */
const char *dataProfileName(DataProfile p);

/**
 * Fills @p out (64 bytes) for @p line under @p profile; @p seed selects
 * the per-application universe. Deterministic in all arguments.
 */
void generateProfileLine(DataProfile profile, std::uint64_t seed, Addr line,
                         std::uint8_t *out);

/** Two-profile mixture with a whole-line-zero floor. */
struct DataMix
{
    DataProfile primary = DataProfile::SmallInt;
    DataProfile secondary = DataProfile::Random;

    /** Probability a line draws from @c secondary. */
    double secondary_frac = 0.0;

    /** Probability a line is entirely zero (common in real footprints). */
    double zero_frac = 0.0;
};

/** Fills @p out for @p line under the mixture @p mix. */
void generateMixLine(const DataMix &mix, std::uint64_t seed, Addr line,
                     std::uint8_t *out);

} // namespace caba

#endif // CABA_WORKLOADS_DATA_PROFILE_H
