/**
 * @file
 * The contract between a workload and the SIMT core: the static program,
 * per-warp trip counts, and the coalesced line addresses of each dynamic
 * global-memory access. Workloads implement this; the core stays
 * agnostic of how benchmarks are synthesized.
 */
#ifndef CABA_WORKLOADS_KERNEL_H
#define CABA_WORKLOADS_KERNEL_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace caba {

/** Result of coalescing one warp-wide global access (Section 4.2). */
struct MemAccess
{
    /** Deduplicated line addresses touched by the 32 lanes. */
    std::vector<Addr> lines;

    /** Stores: true when every touched line is fully overwritten. */
    bool full_line = true;
};

/** Workload-facing interface consumed by SmCore. */
class KernelInfo
{
  public:
    virtual ~KernelInfo() = default;

    /** The static instruction sequence every warp executes. */
    virtual const Program &program() const = 0;

    /** Loop trip count for global warp @p warp_global. */
    virtual int iterations(int warp_global) const = 0;

    /**
     * Coalesces the access of @p stream by @p warp_global at iteration
     * @p iter into distinct lines.
     */
    virtual void genLines(int stream, int warp_global, int iter,
                          MemAccess *out) const = 0;

    /**
     * Bytes a store writes to @p line (deterministic, so output data has
     * a realistic compressibility profile rather than random noise).
     */
    virtual void outputLine(Addr line, std::uint8_t *out) const = 0;
};

} // namespace caba

#endif // CABA_WORKLOADS_KERNEL_H
