/**
 * @file
 * The unit of traffic between SMs, the interconnect, L2 slices and the
 * DRAM channels. Payload bytes determine flit/burst counts, which is how
 * compression turns into bandwidth savings in every design.
 */
#ifndef CABA_MEM_REQUEST_H
#define CABA_MEM_REQUEST_H

#include <cstdint>

#include "common/types.h"

namespace caba {

/** Request/reply packet. */
struct MemRequest
{
    std::uint64_t id = 0;       ///< Unique id (assigned by the SM).
    Addr line = 0;              ///< Line-aligned address.
    bool is_write = false;
    bool full_line = true;      ///< Stores: does the write cover 64 bytes?
    int src_sm = 0;             ///< Requesting SM (for reply routing).
    int warp = kInvalidWarp;    ///< Parent warp (for fill completion).
    Cycle created = 0;

    /**
     * Payload size on the wire in bytes. Read requests carry a header
     * only; write requests and read replies carry (possibly compressed)
     * line data.
     */
    int payload_bytes = 0;

    /** True when payload_bytes is a compressed image of the line. */
    bool compressed = false;

    /** Codec-specific encoding id of the payload (AWS index source). */
    int encoding = 0;

    /** Interconnect flits needed for this packet (32B flits, min 1). */
    int
    flits() const
    {
        const int b = payload_bytes > 0 ? payload_bytes : 1;
        return static_cast<int>(divCeil(static_cast<std::uint64_t>(b),
                                        kBurstSize));
    }
};

} // namespace caba

#endif // CABA_MEM_REQUEST_H
