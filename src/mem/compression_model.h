/**
 * @file
 * Shared functional view of compressed main memory: for any line it
 * yields the compressed image of the line's *current* contents, memoized
 * by (line, version). This models the paper's setup where data lives in
 * DRAM in compressed form (initially prepared on the host, Section 4.3.1,
 * and kept compressed by store-side assist warps thereafter).
 */
#ifndef CABA_MEM_COMPRESSION_MODEL_H
#define CABA_MEM_COMPRESSION_MODEL_H

#include <cstdint>
#include <unordered_map>

#include "common/stats.h"
#include "compress/codec.h"
#include "compress/registry.h"
#include "mem/backing_store.h"

namespace caba {

/** Compressed-size/encoding oracle with round-trip verification. */
class CompressionModel
{
  public:
    /**
     * @param store  functional memory the compressed images mirror
     * @param algo   algorithm used for lines in memory (None = disabled)
     * @param verify when true, every lookup round-trips the codec and
     *               panics on mismatch (on by default; cheap)
     */
    CompressionModel(const BackingStore &store, Algorithm algo,
                     bool verify = true);

    /** Compressed image of @p line's current contents. */
    const CompressedLine &lookup(Addr line);

    /** Compressed size in bytes of the line's current contents. */
    int compressedSize(Addr line);

    /** DRAM bursts for the line's current contents. */
    int bursts(Addr line);

    Algorithm algorithm() const { return algo_; }
    bool enabled() const { return algo_ != Algorithm::None; }

    /** Aggregate compressibility counters (lines, bytes, bursts). */
    const StatSet &stats() const { return stats_; }

  private:
    struct Entry
    {
        std::uint64_t version = ~std::uint64_t{0};
        CompressedLine cl;
    };

    const BackingStore &store_;
    Algorithm algo_;
    const Codec *codec_ = nullptr;
    bool verify_;
    std::unordered_map<Addr, Entry> memo_;
    StatSet stats_;
};

} // namespace caba

#endif // CABA_MEM_COMPRESSION_MODEL_H
