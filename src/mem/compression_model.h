/**
 * @file
 * Shared functional view of compressed main memory: for any line it
 * yields the compressed image of the line's *current* contents, memoized
 * by (line, version). This models the paper's setup where data lives in
 * DRAM in compressed form (initially prepared on the host, Section 4.3.1,
 * and kept compressed by store-side assist warps thereafter).
 */
#ifndef CABA_MEM_COMPRESSION_MODEL_H
#define CABA_MEM_COMPRESSION_MODEL_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.h"
#include "compress/codec.h"
#include "compress/registry.h"
#include "mem/backing_store.h"

namespace caba {

class Audit;

/** Compressed-size/encoding oracle with round-trip verification. */
class CompressionModel
{
  public:
    /** Default memo capacity in entries (LRU-evicted beyond this). */
    static constexpr std::size_t kDefaultMemoCapacity = 32768;

    /**
     * @param store    functional memory the compressed images mirror
     * @param algo     algorithm used for lines in memory (None = disabled)
     * @param verify   when true, every lookup round-trips the codec and
     *                 panics on mismatch (on by default; cheap)
     * @param memo_cap memoization capacity in lines; the memo is a pure
     *                 cache over (line, version), so eviction never
     *                 changes results, only recompression work
     */
    CompressionModel(const BackingStore &store, Algorithm algo,
                     bool verify = true,
                     std::size_t memo_cap = kDefaultMemoCapacity);

    /**
     * Compressed image of @p line's current contents. The reference is
     * valid only until the next lookup (an LRU eviction may reclaim it).
     */
    const CompressedLine &lookup(Addr line);

    /** Compressed size in bytes of the line's current contents. */
    int compressedSize(Addr line);

    /** DRAM bursts for the line's current contents. */
    int bursts(Addr line);

    Algorithm algorithm() const { return algo_; }
    bool enabled() const { return algo_ != Algorithm::None; }

    /** Aggregate compressibility counters (lines, bytes, bursts) plus
     *  memo_peak_entries / memo_peak_bytes / memo_evictions. */
    const StatSet &stats() const { return stats_; }

    std::size_t memoEntries() const { return memo_.size(); }
    std::size_t memoCapacity() const { return memo_cap_; }

    /** Byte / burst conservation and memo-bound invariant checks. */
    void audit(Audit &a) const;

  private:
    struct Entry
    {
        std::uint64_t version = ~std::uint64_t{0};
        CompressedLine cl;
        std::list<Addr>::iterator lru_it;
        std::size_t bytes = 0;  ///< Heap footprint charged to the memo.
    };

    void evictLru();

    const BackingStore &store_;
    Algorithm algo_;
    const Codec *codec_ = nullptr;
    bool verify_;
    std::size_t memo_cap_;
    std::unordered_map<Addr, Entry> memo_;
    std::list<Addr> lru_;           ///< Front = most recently used.
    std::size_t memo_bytes_ = 0;
    std::size_t peak_memo_bytes_ = 0;
    std::size_t peak_memo_entries_ = 0;
    StatSet stats_;
};

} // namespace caba

#endif // CABA_MEM_COMPRESSION_MODEL_H
