#include "mem/xbar.h"

#include <algorithm>

#include "common/log.h"
#include "common/trace.h"

namespace caba {

XbarDirection::XbarDirection(int inputs, int outputs, const XbarConfig &cfg,
                             int trace_tid_base)
    : cfg_(cfg), inputs_(inputs), outputs_(outputs),
      trace_tid_base_(trace_tid_base),
      in_q_(inputs), port_busy_until_(outputs, 0), rr_(outputs, 0),
      out_q_(outputs), flying_per_out_(outputs, 0),
      in_ports_(static_cast<std::size_t>(inputs)),
      out_ports_(static_cast<std::size_t>(outputs))
{
    CABA_CHECK(inputs > 0 && outputs > 0, "bad crossbar geometry");
    for (int i = 0; i < inputs; ++i) {
        in_ports_[static_cast<std::size_t>(i)].x_ = this;
        in_ports_[static_cast<std::size_t>(i)].in_ = i;
    }
    for (int o = 0; o < outputs; ++o) {
        out_ports_[static_cast<std::size_t>(o)].x_ = this;
        out_ports_[static_cast<std::size_t>(o)].out_ = o;
    }
}

void
XbarDirection::setRouter(std::function<int(const MemRequest &)> router)
{
    router_ = std::move(router);
}

Sink<MemRequest> &
XbarDirection::input(int in)
{
    CABA_CHECK(router_ != nullptr, "crossbar input used without a router");
    return in_ports_[static_cast<std::size_t>(in)];
}

Source<MemRequest> &
XbarDirection::output(int out)
{
    return out_ports_[static_cast<std::size_t>(out)];
}

bool
XbarDirection::canPush(int in) const
{
    return static_cast<int>(in_q_[in].size()) < cfg_.input_queue;
}

void
XbarDirection::push(int in, int out, const MemRequest &req)
{
    CABA_CHECK(canPush(in), "crossbar input overflow");
    CABA_CHECK(out >= 0 && out < outputs_, "bad crossbar output");
    ++pushed_;
    if (audit_)
        audit_->onStage(req, stage_);
    if (fault_drop_next_store_ && req.is_write) {
        // Seeded fault: the packet vanishes after being counted in, the
        // way a real lost-update bug would. The audit must notice.
        fault_drop_next_store_ = false;
        return;
    }
    in_q_[in].emplace_back(out, req);
    ++queued_packets_;
}

void
XbarDirection::cycle(Cycle now)
{
    if (flying_.empty() && queued_packets_ == 0)
        return;
    // Deliver in-flight packets whose latency elapsed.
    for (std::size_t i = 0; i < flying_.size();) {
        if (flying_[i].deliver_at <= now) {
            const int out = flying_[i].out;
            out_q_[out].push_back({flying_[i].req, flying_[i].deliver_at});
            --flying_per_out_[out];
            flying_[i] = flying_.back();
            flying_.pop_back();
        } else {
            ++i;
        }
    }

    // Per-output round-robin packet arbitration. The output port is
    // reserved for the packet's flit count; a fresh packet starts only
    // when the port is free and the destination queue has room.
    for (int out = 0; out < outputs_; ++out) {
        if (port_busy_until_[out] > now)
            continue;
        if (static_cast<int>(out_q_[out].size()) + flying_per_out_[out] >=
                cfg_.output_queue) {
            continue;
        }
        for (int k = 0; k < inputs_; ++k) {
            const int in = (rr_[out] + k) % inputs_;
            auto &q = in_q_[in];
            if (q.empty() || q.front().first != out)
                continue;
            const MemRequest req = q.front().second;
            q.pop_front();
            --queued_packets_;
            const int flits = req.flits();
            port_busy_until_[out] = now + flits;
            flying_.push_back({req, out, now + flits + cfg_.latency});
            ++flying_per_out_[out];
            ++arbitrated_;
            stats_.add("packets");
            stats_.add("flits", static_cast<std::uint64_t>(flits));
            if (trace::on(trace::kXbar)) {
                // Span = output-port occupancy of this packet.
                trace::complete(trace::kXbar, trace::kPidXbar,
                                trace_tid_base_ + out, "packet", now,
                                static_cast<Cycle>(flits), "flits",
                                static_cast<std::uint64_t>(flits));
            }
            rr_[out] = (in + 1) % inputs_;
            break;
        }
    }
}

bool
XbarDirection::hasDelivery(int out, Cycle now) const
{
    return !out_q_[out].empty() && out_q_[out].front().at <= now;
}

MemRequest
XbarDirection::popDelivery(int out)
{
    CABA_CHECK(!out_q_[out].empty(), "no delivery to pop");
    MemRequest req = out_q_[out].front().req;
    out_q_[out].pop_front();
    ++popped_;
    return req;
}

int
XbarDirection::outputDepth(int out) const
{
    return static_cast<int>(out_q_[out].size());
}

Cycle
XbarDirection::nextWork(Cycle now) const
{
    // Delivered packets waiting in an output queue pin the clock: the
    // consumer-side Wire drains them the very next moveTraffic(), and
    // even under backpressure the consumer's unblock cycle is cheaper
    // to over-approximate here than to predict.
    for (const auto &q : out_q_)
        if (!q.empty())
            return now;
    Cycle e = kNoWork;
    for (const InFlight &f : flying_)
        e = std::min(e, f.deliver_at > now ? f.deliver_at : now);
    for (const auto &q : in_q_) {
        if (q.empty())
            continue;
        const int out = q.front().first;
        // A full destination (queued + flying >= capacity) unblocks via
        // the flying_ term above or the ready-delivery case; otherwise
        // the head packet can start once the port frees up.
        if (static_cast<int>(out_q_[static_cast<std::size_t>(out)].size()) +
                flying_per_out_[static_cast<std::size_t>(out)] >=
            cfg_.output_queue) {
            continue;
        }
        const Cycle free_at =
            port_busy_until_[static_cast<std::size_t>(out)];
        e = std::min(e, free_at > now ? free_at : now);
    }
    return e;
}

void
XbarDirection::audit(Audit &a, const char *name, bool at_drain) const
{
    std::uint64_t delivered_waiting = 0;
    for (const auto &q : out_q_)
        delivered_waiting += q.size();
    a.checkEq(name, "pushed == arbitrated + input-queued", pushed_,
              arbitrated_ + static_cast<std::uint64_t>(queued_packets_));
    a.checkEq(name, "arbitrated == popped + flying + output-queued",
              arbitrated_,
              popped_ + static_cast<std::uint64_t>(flying_.size()) +
                  delivered_waiting);
    if (at_drain) {
        a.checkEq(name, "all packets popped at drain", pushed_, popped_);
        a.checkTrue(name, "queues empty at drain", !busy());
    }
}

bool
XbarDirection::busy() const
{
    if (!flying_.empty())
        return true;
    for (const auto &q : in_q_)
        if (!q.empty())
            return true;
    for (const auto &q : out_q_)
        if (!q.empty())
            return true;
    return false;
}

} // namespace caba
