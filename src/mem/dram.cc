#include "mem/dram.h"

#include <algorithm>

#include "common/audit.h"
#include "common/log.h"
#include "common/trace.h"

namespace caba {

namespace {

/** 256B chunks striped across channels; this is the chunk's index in
 *  the channel's local address space. */
constexpr Addr kChunkBytes = 256;

} // namespace

DramChannel::DramChannel(const DramConfig &cfg, int id)
    : cfg_(cfg), id_(id), banks_(cfg.banks)
{
    CABA_CHECK(cfg_.banks > 0, "channel needs banks");
    CABA_CHECK(cfg_.burst_quarters > 0, "bad burst time");
    CABA_CHECK(cfg_.write_drain_low < cfg_.write_drain_high &&
               cfg_.write_drain_high <= cfg_.write_queue_capacity,
               "bad write-drain marks");
    CABA_CHECK(cfg_.sched_window >= cfg_.queue_capacity &&
               cfg_.sched_window >= cfg_.write_queue_capacity,
               "scheduler window must cover the whole queue");
}

int
DramChannel::bankOf(Addr line) const
{
    // Channel-local layout [row | bank | column]: each bank owns
    // row_bytes of contiguous channel addresses per row, so a sweeping
    // stream keeps one open row per bank while striping across banks.
    const Addr chunk = line / kChunkBytes /
                       static_cast<Addr>(cfg_.channels);
    const Addr chunks_per_col =
        static_cast<Addr>(cfg_.row_bytes) / kChunkBytes;
    return static_cast<int>((chunk / chunks_per_col) % cfg_.banks);
}

std::int64_t
DramChannel::rowOf(Addr line) const
{
    const Addr chunk = line / kChunkBytes /
                       static_cast<Addr>(cfg_.channels);
    const Addr chunks_per_col =
        static_cast<Addr>(cfg_.row_bytes) / kChunkBytes;
    return static_cast<std::int64_t>(chunk / chunks_per_col / cfg_.banks);
}

bool
DramChannel::canAccept(bool is_write) const
{
    if (is_write)
        return static_cast<int>(write_q_.size()) <
               cfg_.write_queue_capacity;
    return static_cast<int>(read_q_.size()) < cfg_.queue_capacity;
}

void
DramChannel::enqueue(DramCmd cmd)
{
    CABA_CHECK(canAccept(cmd.is_write), "DRAM queue overflow");
    cmd.bank = bankOf(cmd.line);
    cmd.row = rowOf(cmd.line);
    Bank &b = banks_[static_cast<std::size_t>(cmd.bank)];
    if (b.open_row == cmd.row)
        ++b.open_matches;
    if (cmd.is_write) {
        write_q_.push_back(cmd);
        ++writes_enqueued_;
    } else {
        read_q_.push_back(cmd);
        ++reads_enqueued_;
        read_queue_depth_.record(read_q_.size());
    }
}

void
DramChannel::recountOpenMatches(int bank)
{
    Bank &b = banks_[static_cast<std::size_t>(bank)];
    b.open_matches = 0;
    for (const DramCmd &c : read_q_) {
        if (c.bank == bank && b.open_row == c.row)
            ++b.open_matches;
    }
    for (const DramCmd &c : write_q_) {
        if (c.bank == bank && b.open_row == c.row)
            ++b.open_matches;
    }
}

int
DramChannel::pickCas(const std::deque<DramCmd> &q, Cycle now) const
{
    const int limit =
        std::min<int>(static_cast<int>(q.size()), cfg_.sched_window);
    for (int i = 0; i < limit; ++i) {
        const DramCmd &c = q[static_cast<std::size_t>(i)];
        const Bank &b = banks_[static_cast<std::size_t>(c.bank)];
        const Cycle turnaround = c.is_write ? 0 : b.wtr_ready;
        if (b.open_row == c.row && b.col_ready <= now &&
            b.act_done <= now && turnaround <= now) {
            return i;
        }
    }
    return -1;
}

int
DramChannel::pickAct(const std::deque<DramCmd> &q) const
{
    // Never close a row that still has queued hits: eager re-activation
    // would turn those hits into misses and thrash the row buffer.
    const int limit =
        std::min<int>(static_cast<int>(q.size()), cfg_.sched_window);
    for (int i = 0; i < limit; ++i) {
        const DramCmd &c = q[static_cast<std::size_t>(i)];
        const Bank &b = banks_[static_cast<std::size_t>(c.bank)];
        if (b.open_row != c.row && b.pending_row < 0 &&
            b.open_matches == 0) {
            return i;
        }
    }
    return -1;
}

std::deque<DramCmd> &
DramChannel::activeQueue()
{
    // Write-drain hysteresis (row-thrash control): writes batch in the
    // write buffer and drain together, instead of closing the rows the
    // read stream is hitting.
    if (draining_writes_) {
        if (static_cast<int>(write_q_.size()) <= cfg_.write_drain_low ||
            write_q_.empty()) {
            draining_writes_ = false;
        }
    } else {
        if (static_cast<int>(write_q_.size()) >= cfg_.write_drain_high ||
            read_q_.empty()) {
            draining_writes_ = true;
        }
    }
    if (draining_writes_ && !write_q_.empty())
        return write_q_;
    draining_writes_ = false;
    return read_q_;
}

void
DramChannel::issue(std::deque<DramCmd> &q, int idx, Cycle now)
{
    const int bank_idx = q[static_cast<std::size_t>(idx)].bank;
    Bank &bank = banks_[static_cast<std::size_t>(bank_idx)];
    const std::int64_t row = q[static_cast<std::size_t>(idx)].row;

    if (bank.open_row != row) {
        // Activation phase: precharge + activate bookkeeping only. The
        // command stays queued; its CAS issues once the row is open, so
        // the data bus is never reserved across the activation latency.
        const Cycle pre =
            std::max({now, bank.data_end, bank.write_recover});
        const Cycle act = std::max({pre + cfg_.tRP,
                                    bank.last_activate + cfg_.tRC,
                                    last_activate_any_ + cfg_.tRRD});
        bank.last_activate = act;
        last_activate_any_ = act;
        bank.open_row = row;
        bank.act_done = act + cfg_.tRCD;
        bank.col_ready = bank.act_done;
        bank.pending_row = row;
        q[idx].activated = true;
        ++row_misses_;
        recountOpenMatches(bank_idx);
        // Keep the claiming command inside the scheduler's search
        // window so its CAS always issues and releases the claim.
        if (idx > 0) {
            DramCmd moved = q[idx];
            q.erase(q.begin() + idx);
            q.push_front(moved);
        }
        return;
    }

    DramCmd cmd = q[idx];
    q.erase(q.begin() + idx);
    if (bank.open_matches > 0)
        --bank.open_matches;
    if (bank.pending_row == row)
        bank.pending_row = -1;
    if (!cmd.activated)
        ++row_hits_;

    // Column command: pipelines at tCCDL spacing; the CAS latency
    // overlaps with earlier transfers. tWTR gates only read-after-write.
    Cycle col = std::max({now, bank.col_ready, bank.act_done});
    if (!cmd.is_write)
        col = std::max(col, bank.wtr_ready);
    bank.col_ready = col + cfg_.tCCDL;
    Cycle data_ready = col + cfg_.tCL;

    data_ready += cmd.extra_latency;

    const int bursts = cmd.bursts + cmd.extra_bursts;
    const std::uint64_t start_q =
        std::max(bus_free_q_, static_cast<std::uint64_t>(data_ready) * 4);
    const std::uint64_t busy_q =
        static_cast<std::uint64_t>(bursts) * cfg_.burst_quarters;
    bus_free_q_ = start_q + busy_q;
    bus_busy_q_ += busy_q;

    const Cycle finish = (bus_free_q_ + 3) / 4;
    bank.data_end = finish;
    if (cmd.is_write) {
        bank.write_recover = finish + cfg_.tWR;
        bank.wtr_ready = finish + cfg_.tWTR;
    }

    (cmd.is_write ? writes_ : reads_) += 1;
    bursts_ += static_cast<std::uint64_t>(bursts);
    data_bursts_ += static_cast<std::uint64_t>(cmd.bursts);
    overhead_bursts_ += static_cast<std::uint64_t>(cmd.extra_bursts);
    queue_wait_cycles_ += now - cmd.enqueued;

    if (trace::on(trace::kDram)) {
        // One span per access covering its data-bus occupancy, on the
        // bank's own timeline row (quarter-cycles rounded to cycles).
        const Cycle bus_start = start_q / 4;
        const Cycle bus_dur = std::max<std::uint64_t>(1, busy_q / 4);
        trace::complete(trace::kDram, trace::kPidDram,
                        id_ * 100 + bank_idx,
                        cmd.is_write ? "write" : "read", bus_start, bus_dur,
                        "line", cmd.line);
    }

    completed_.push_back({cmd.id, cmd.is_write, finish});
}

void
DramChannel::advanceBusWindows(Cycle now)
{
    // Lazy boundary advance: closes every window that ended by `now`.
    // Busy quarters are frozen during quiescent stretches, so skipped
    // windows record the same (usually zero) delta a ticked loop would.
    while (bus_window_start_ + kBusWindowCycles <= now) {
        bus_window_busy_.record(bus_busy_q_ - bus_window_base_);
        bus_window_base_ = bus_busy_q_;
        bus_window_start_ += kBusWindowCycles;
    }
}

void
DramChannel::cycle(Cycle now)
{
    advanceBusWindows(now);
    if (read_q_.empty() && write_q_.empty())
        return;
    if (static_cast<int>(completed_.size()) >= cfg_.banks + 8) {
        ++sched_blocked_cap_;
        return;
    }
    std::deque<DramCmd> &q = activeQueue();

    // One activation and one CAS may issue per cycle (command/address
    // bandwidth is not the bottleneck this model studies).
    const int act_idx = pickAct(q);
    if (act_idx >= 0)
        issue(q, act_idx, now);

    const int cas_idx = pickCas(q, now);
    if (cas_idx >= 0) {
        issue(q, cas_idx, now);
        return;
    }
    // Opportunistic CAS from the inactive queue: open-row hits there
    // cost almost nothing, and claims/hits left stranded across
    // drain-mode switches would otherwise wedge their banks (row
    // re-activation is blocked while same-row work is queued).
    std::deque<DramCmd> &other = (&q == &read_q_) ? write_q_ : read_q_;
    const int other_idx = pickCas(other, now);
    if (other_idx >= 0) {
        issue(other, other_idx, now);
        return;
    }
    if (act_idx < 0)
        ++sched_no_eligible_;
}

Cycle
DramChannel::nextWork(Cycle now) const
{
    Cycle e = kNoWork;
    // Queued completions become partition work at their finish time.
    for (const DramCompletion &c : completed_)
        e = std::min(e, c.finish > now ? c.finish : now);
    if (read_q_.empty() && write_q_.empty())
        return e;
    if (static_cast<int>(completed_.size()) >= cfg_.banks + 8)
        return e;   // scheduler blocked until a completion drains
    // Replicate activeQueue()'s hysteresis without mutating it. With
    // static queues the drain flag reaches a fixpoint after one update;
    // if a second update disagrees it oscillates cycle-to-cycle (empty
    // read queue, small write backlog) and no cycle is skippable.
    auto drain_step = [this](bool d) {
        if (d) {
            if (static_cast<int>(write_q_.size()) <= cfg_.write_drain_low ||
                write_q_.empty()) {
                d = false;
            }
        } else {
            if (static_cast<int>(write_q_.size()) >= cfg_.write_drain_high ||
                read_q_.empty()) {
                d = true;
            }
        }
        return d;
    };
    const bool d1 = drain_step(draining_writes_);
    if (drain_step(d1) != d1)
        return now;
    const std::deque<DramCmd> &q =
        (d1 && !write_q_.empty()) ? write_q_ : read_q_;
    if (pickAct(q) >= 0)
        return now;     // activation eligibility is time-independent
    // No activation possible: the next issue is the earliest CAS whose
    // bank timing gates clear. pickCas scans both queues (active +
    // opportunistic), so so does the bound.
    auto earliest_cas = [this, now](const std::deque<DramCmd> &cq,
                                    Cycle bound) {
        for (const DramCmd &c : cq) {
            const Bank &b = banks_[static_cast<std::size_t>(c.bank)];
            if (b.open_row != c.row)
                continue;
            Cycle t = std::max(b.col_ready, b.act_done);
            if (!c.is_write)
                t = std::max(t, b.wtr_ready);
            bound = std::min(bound, t > now ? t : now);
        }
        return bound;
    };
    e = earliest_cas(read_q_, e);
    e = earliest_cas(write_q_, e);
    return e;
}

void
DramChannel::skipIdle(Cycle from, Cycle to)
{
    // Matches what cycle() would have counted on each skipped cycle:
    // nothing when fully idle, the in-flight-cap stall when completions
    // back up, the no-eligible-command stall otherwise. The write-drain
    // flag is left alone: nextWork() only permits a skip when it is at
    // its fixpoint for the current queue state.
    //
    // Window boundaries must match the ticked loop exactly: cycle(t)
    // runs for t in [from, to) there, so the last advance a skip may
    // replicate is to-1 — advancing to `to` would close a window one
    // call early and break byte-identicality across loop modes.
    advanceBusWindows(to - 1);
    if (read_q_.empty() && write_q_.empty())
        return;
    const std::uint64_t k = to - from;
    if (static_cast<int>(completed_.size()) >= cfg_.banks + 8)
        sched_blocked_cap_ += k;
    else
        sched_no_eligible_ += k;
}

void
DramChannel::drainCompleted(Cycle now, std::vector<DramCompletion> *out)
{
    for (std::size_t i = 0; i < completed_.size();) {
        if (completed_[i].finish <= now) {
            out->push_back(completed_[i]);
            completed_[i] = completed_.back();
            completed_.pop_back();
        } else {
            ++i;
        }
    }
}

double
DramChannel::busUtilization(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(bus_busy_q_) /
           (static_cast<double>(elapsed) * 4.0);
}

StatSet
DramChannel::stats() const
{
    StatSet s;
    s.setCounter("row_hits", row_hits_);
    s.setCounter("row_misses", row_misses_);
    s.setCounter("activates", row_misses_);
    s.setCounter("reads", reads_);
    s.setCounter("writes", writes_);
    s.setCounter("bursts", bursts_);
    s.setCounter("data_bursts", data_bursts_);
    s.setCounter("overhead_bursts", overhead_bursts_);
    s.setCounter("queue_wait_cycles", queue_wait_cycles_);
    s.setCounter("reads_enqueued", reads_enqueued_);
    s.setCounter("writes_enqueued", writes_enqueued_);
    s.setCounter("sched_no_eligible", sched_no_eligible_);
    s.setCounter("sched_blocked_inflight_cap", sched_blocked_cap_);
    s.dist("read_queue_depth").merge(read_queue_depth_);
    s.dist("bus_window_busy_quarters").merge(bus_window_busy_);
    return s;
}

void
DramChannel::audit(Audit &a, bool at_drain) const
{
    a.checkEq("dram", "bursts == data_bursts + overhead_bursts", bursts_,
              data_bursts_ + overhead_bursts_);
    a.checkLe("dram", "reads issued <= reads enqueued", reads_,
              reads_enqueued_);
    a.checkLe("dram", "writes issued <= writes enqueued", writes_,
              writes_enqueued_);
    if (at_drain) {
        a.checkEq("dram", "every enqueued read issued at drain",
                  reads_enqueued_, reads_);
        a.checkEq("dram", "every enqueued write issued at drain",
                  writes_enqueued_, writes_);
        a.checkTrue("dram", "queues empty at drain", !busy());
    }
}

} // namespace caba
