/**
 * @file
 * Functional image of simulated global memory. Lines are synthesized on
 * first touch by the workload's data generator (so a multi-GB footprint
 * costs nothing), and an overlay map holds lines mutated by stores. Each
 * line carries a version so compressed images can be memoized safely.
 */
#ifndef CABA_MEM_BACKING_STORE_H
#define CABA_MEM_BACKING_STORE_H

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.h"

namespace caba {

/** Fills @c out with the pristine 64 bytes at line-aligned address. */
using LineGenerator = std::function<void(Addr, std::uint8_t *)>;

/** Copy-on-write functional memory backed by a deterministic generator. */
class BackingStore
{
  public:
    explicit BackingStore(LineGenerator gen);

    /** Reads the current 64 bytes of @p line into @p out. */
    void read(Addr line, std::uint8_t *out) const;

    /** Overwrites the full line with @p data and bumps its version. */
    void write(Addr line, const std::uint8_t *data);

    /**
     * Mutates part of the line: the workload model for partial stores.
     * @p offset/@p size select the bytes; data is a deterministic
     * function of (line, version) so runs stay repeatable.
     */
    void writePartial(Addr line, int offset, int size);

    /** Version counter of @p line (0 = pristine). */
    std::uint64_t version(Addr line) const;

    /** Number of lines touched by stores. */
    std::size_t dirtyLines() const { return overlay_.size(); }

  private:
    struct LineState
    {
        std::array<std::uint8_t, kLineSize> data;
        std::uint64_t version = 0;
    };

    LineState &materialize(Addr line);

    LineGenerator gen_;
    std::unordered_map<Addr, LineState> overlay_;
};

} // namespace caba

#endif // CABA_MEM_BACKING_STORE_H
