/**
 * @file
 * Crossbar interconnect between SMs and memory partitions (Table 1: one
 * crossbar per direction, 15x6, core clock). Each output port moves one
 * 32-byte flit per cycle, so compressed packets (fewer flits) free port
 * time — the effect that separates HW-BDI from HW-BDI-Mem in Figure 7.
 */
#ifndef CABA_MEM_XBAR_H
#define CABA_MEM_XBAR_H

#include <deque>
#include <functional>
#include <vector>

#include "common/audit.h"
#include "common/component.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/request.h"

namespace caba {

/** Crossbar geometry. */
struct XbarConfig
{
    int latency = 8;            ///< Port-to-port latency in cycles.
    int input_queue = 16;       ///< Packets buffered per input port.
    int output_queue = 16;      ///< Packets buffered at each destination.
};

/**
 * One direction of the crossbar: @p inputs input ports, @p outputs
 * output ports, per-output round-robin arbitration at packet
 * granularity, output-port occupancy proportional to flit count.
 */
class XbarDirection : public Clocked
{
  public:
    /** @p trace_tid_base offsets output-port tids in trace output so
     *  the request and reply directions land on distinct rows. */
    XbarDirection(int inputs, int outputs, const XbarConfig &cfg,
                  int trace_tid_base = 0);

    /** True when input port @p in can take another packet. */
    bool canPush(int in) const;

    /** Enqueues @p req at input @p in, destined to output @p out. */
    void push(int in, int out, const MemRequest &req);

    /** Advances one cycle: arbitration + transfers. */
    void cycle(Cycle now) override;

    /** True when output @p out has a delivered packet ready. */
    bool hasDelivery(int out, Cycle now) const;

    /** Pops the next delivered packet at output @p out. */
    MemRequest popDelivery(int out);

    /** Number of packets queued at output @p out (for backpressure). */
    int outputDepth(int out) const;

    bool busy() const override;

    /**
     * Earliest cycle a delivery becomes ready, an in-flight packet
     * lands, or a queued packet can win its output port.
     */
    Cycle nextWork(Cycle now) const override;

    const StatSet &stats() const { return stats_; }

    /** Registers the lifecycle audit; packets entering this direction
     *  are tagged with @p stage (request vs reply side). */
    void
    attachAudit(Audit *audit, ReqStage stage)
    {
        audit_ = audit;
        stage_ = stage;
    }

    /** Mutation self-test hook: silently lose the next write packet
     *  pushed into any input (simulates a buggy switch). */
    void faultDropNextStore() { fault_drop_next_store_ = true; }

    /** Packet conservation: pushed == arbitrated + input-queued,
     *  arbitrated == popped + in-flight + output-queued; empty at drain. */
    void audit(Audit &a, const char *name, bool at_drain) const;

    /** Destination output port for a packet entering any input (set
     *  once at wiring time: partition interleave / reply routing). */
    void setRouter(std::function<int(const MemRequest &)> router);

    /** Sink view of input port @p in: accept() routes via the router. */
    Sink<MemRequest> &input(int in);

    /** Source view of output port @p out's ready deliveries. */
    Source<MemRequest> &output(int out);

  private:
    class InPort : public Sink<MemRequest>
    {
      public:
        bool canAccept() const override { return x_->canPush(in_); }

        void
        accept(const MemRequest &pkt, Cycle) override
        {
            x_->push(in_, x_->router_(pkt), pkt);
        }

      private:
        friend class XbarDirection;
        XbarDirection *x_ = nullptr;
        int in_ = 0;
    };

    class OutPort : public Source<MemRequest>
    {
      public:
        bool
        hasData(Cycle now) const override
        {
            return x_->hasDelivery(out_, now);
        }

        MemRequest take() override { return x_->popDelivery(out_); }

      private:
        friend class XbarDirection;
        XbarDirection *x_ = nullptr;
        int out_ = 0;
    };

    struct InFlight
    {
        MemRequest req;
        int out = 0;
        Cycle deliver_at = 0;
    };

    struct Delivered
    {
        MemRequest req;
        Cycle at = 0;
    };

    XbarConfig cfg_;
    int inputs_;
    int outputs_;
    int trace_tid_base_;
    std::vector<std::deque<std::pair<int, MemRequest>>> in_q_;
    std::vector<Cycle> port_busy_until_;
    std::vector<int> rr_;
    std::vector<std::deque<Delivered>> out_q_;
    std::vector<InFlight> flying_;
    std::vector<int> flying_per_out_;
    int queued_packets_ = 0;
    StatSet stats_;
    Audit *audit_ = nullptr;
    ReqStage stage_ = ReqStage::XbarReq;
    bool fault_drop_next_store_ = false;

    // audit-only conservation counters (not exported in stats_)
    std::uint64_t pushed_ = 0;
    std::uint64_t arbitrated_ = 0;
    std::uint64_t popped_ = 0;
    std::function<int(const MemRequest &)> router_;
    std::vector<InPort> in_ports_;
    std::vector<OutPort> out_ports_;
};

} // namespace caba

#endif // CABA_MEM_XBAR_H
