/**
 * @file
 * Crossbar interconnect between SMs and memory partitions (Table 1: one
 * crossbar per direction, 15x6, core clock). Each output port moves one
 * 32-byte flit per cycle, so compressed packets (fewer flits) free port
 * time — the effect that separates HW-BDI from HW-BDI-Mem in Figure 7.
 */
#ifndef CABA_MEM_XBAR_H
#define CABA_MEM_XBAR_H

#include <deque>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/request.h"

namespace caba {

/** Crossbar geometry. */
struct XbarConfig
{
    int latency = 8;            ///< Port-to-port latency in cycles.
    int input_queue = 16;       ///< Packets buffered per input port.
    int output_queue = 16;      ///< Packets buffered at each destination.
};

/**
 * One direction of the crossbar: @p inputs input ports, @p outputs
 * output ports, per-output round-robin arbitration at packet
 * granularity, output-port occupancy proportional to flit count.
 */
class XbarDirection
{
  public:
    /** @p trace_tid_base offsets output-port tids in trace output so
     *  the request and reply directions land on distinct rows. */
    XbarDirection(int inputs, int outputs, const XbarConfig &cfg,
                  int trace_tid_base = 0);

    /** True when input port @p in can take another packet. */
    bool canPush(int in) const;

    /** Enqueues @p req at input @p in, destined to output @p out. */
    void push(int in, int out, const MemRequest &req);

    /** Advances one cycle: arbitration + transfers. */
    void cycle(Cycle now);

    /** True when output @p out has a delivered packet ready. */
    bool hasDelivery(int out, Cycle now) const;

    /** Pops the next delivered packet at output @p out. */
    MemRequest popDelivery(int out);

    /** Number of packets queued at output @p out (for backpressure). */
    int outputDepth(int out) const;

    bool busy() const;

    const StatSet &stats() const { return stats_; }

  private:
    struct InFlight
    {
        MemRequest req;
        int out = 0;
        Cycle deliver_at = 0;
    };

    struct Delivered
    {
        MemRequest req;
        Cycle at = 0;
    };

    XbarConfig cfg_;
    int inputs_;
    int outputs_;
    int trace_tid_base_;
    std::vector<std::deque<std::pair<int, MemRequest>>> in_q_;
    std::vector<Cycle> port_busy_until_;
    std::vector<int> rr_;
    std::vector<std::deque<Delivered>> out_q_;
    std::vector<InFlight> flying_;
    std::vector<int> flying_per_out_;
    int queued_packets_ = 0;
    StatSet stats_;
};

} // namespace caba

#endif // CABA_MEM_XBAR_H
