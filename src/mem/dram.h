/**
 * @file
 * GDDR5 channel model: 16 banks with row-buffer state, FR-FCFS
 * scheduling with read priority, and a data bus whose occupancy is
 * counted in 32-byte bursts — the unit in which compression saves
 * bandwidth (Table 1 and Section 4.3.2).
 *
 * Timing abstraction: tCL/tRP/tRCD/tRC/tRRD/tWR from Table 1 gate when a
 * bank can deliver; the data bus is tracked in quarter-core-cycles so the
 * 1x-bandwidth burst time of 1.5 core cycles (177.4 GB/s over 6 channels
 * at a 1.4 GHz core) is exact. Refresh and bank-group tCCDL are folded
 * into the burst gap.
 */
#ifndef CABA_MEM_DRAM_H
#define CABA_MEM_DRAM_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/component.h"
#include "common/stats.h"
#include "common/types.h"

namespace caba {

class Audit;

/** Channel geometry and timing (core-clock cycles). */
struct DramConfig
{
    int banks = 16;
    int row_bytes = 2048;

    /**
     * Number of channels in the system, used only for address
     * decomposition: channel bits sit at 256B granularity, bank bits
     * directly above them, so consecutive chunks on one channel stripe
     * across banks (avoiding bank camping by lock-step streams).
     */
    int channels = 6;
    int tCL = 12;
    int tRP = 12;
    int tRCD = 12;
    int tRC = 40;
    int tRRD = 6;
    int tWR = 12;
    int tCCDL = 5;  ///< Column-to-column spacing (Table 1 "tCLDR").
    int tWTR = 5;   ///< Write-to-read turnaround within a bank.

    /**
     * Quarter-core-cycles of data-bus time per 32B burst. 6 (=1.5
     * cycles) reproduces the paper's 177.4 GB/s baseline; 12 and 3 give
     * the 1/2x and 2x bandwidth points of Figures 1 and 12.
     */
    int burst_quarters = 6;

    int queue_capacity = 64;        ///< Read queue entries.

    /** FR-FCFS associative search window. Must cover the whole queue:
     *  the row-preserving activation rule tracks open-row work across
     *  the full queue, and work outside the window could never drain. */
    int sched_window = 256;
    int write_queue_capacity = 64;  ///< Write buffer entries.

    /** Write-drain hysteresis: start draining when the write buffer
     *  reaches the high mark, stop at the low mark (row-thrash control:
     *  writes batch instead of interleaving with the read stream). */
    int write_drain_high = 48;
    int write_drain_low = 8;
};

/** One scheduled DRAM access. */
struct DramCmd
{
    std::uint64_t id = 0;
    Addr line = 0;
    bool is_write = false;
    int bursts = kBurstsPerLine;

    /** Extra latency charged before data (MD-cache miss, Section 4.3.2). */
    int extra_latency = 0;

    /** Extra bus bursts charged (page walk and/or metadata fetch). */
    int extra_bursts = 0;

    Cycle enqueued = 0;

    /** Set when this command triggered the bank's activation. */
    bool activated = false;

    /** Channel-local bank/row, memoized by enqueue() — pure functions
     *  of @c line, but the FR-FCFS scans read them per queue entry per
     *  cycle and the div/mod chain dominates otherwise. */
    int bank = 0;
    std::int64_t row = 0;
};

/** A finished access, reported back to the memory partition. */
struct DramCompletion
{
    std::uint64_t id = 0;
    bool is_write = false;
    Cycle finish = 0;
};

/** One GDDR5 channel. */
class DramChannel : public Clocked
{
  public:
    /** @p id names the channel in trace output (partition index). */
    explicit DramChannel(const DramConfig &cfg, int id = 0);

    /** True when the relevant queue (read or write) has room. */
    bool canAccept(bool is_write) const;

    /** Queues a command; canAccept() must be true. */
    void enqueue(DramCmd cmd);

    /** Advances one core cycle; issues at most one command. */
    void cycle(Cycle now) override;

    /**
     * Earliest cycle the scheduler could issue a command or a queued
     * completion becomes drainable (kNoWork when fully drained).
     */
    Cycle nextWork(Cycle now) const override;

    /** Charges the scheduler-stall counters for skipped cycles. */
    void skipIdle(Cycle from, Cycle to) override;

    /** Moves completions whose finish time has passed into @p out. */
    void drainCompleted(Cycle now, std::vector<DramCompletion> *out);

    bool
    busy() const override
    {
        return !read_q_.empty() || !write_q_.empty() || !completed_.empty();
    }

    /** Fraction of elapsed time the data bus moved data. */
    double busUtilization(Cycle elapsed) const;

    /** Current read-queue occupancy (counter trace track). */
    int readQueueDepth() const { return static_cast<int>(read_q_.size()); }

    /** Assembles the counter snapshot (reads, writes, bursts, rows...). */
    StatSet stats() const;

    std::uint64_t totalBursts() const { return bursts_; }

    /** Data-payload bursts only (the partition's transfer ledger must
     *  equal this at drain). */
    std::uint64_t dataBursts() const { return data_bursts_; }

    /** Burst-ledger and enqueue/completion conservation checks. */
    void audit(Audit &a, bool at_drain) const;

  private:
    struct Bank
    {
        std::int64_t open_row = -1;
        Cycle col_ready = 0;     ///< Earliest next column command (tCCDL).
        Cycle act_done = 0;      ///< Activation complete (tRCD elapsed).
        Cycle last_activate = 0; ///< For tRC spacing.
        Cycle data_end = 0;      ///< Last data beat out of this bank.
        Cycle write_recover = 0; ///< tWR: gates precharge after a write.
        Cycle wtr_ready = 0;     ///< tWTR: gates reads after a write.

        /** Row activated on behalf of a still-queued command; blocks
         *  competing activations until that command's CAS issues. */
        std::int64_t pending_row = -1;

        /** Queued commands (either queue) matching the open row; a
         *  bank with open-row work is never re-activated (row-thrash
         *  control). Maintained incrementally. */
        int open_matches = 0;
    };

    int bankOf(Addr line) const;
    std::int64_t rowOf(Addr line) const;

    /** FR-FCFS pick within @p q: delivery-ready CAS first, else -1. */
    int pickCas(const std::deque<DramCmd> &q, Cycle now) const;

    /** Oldest command in @p q needing an unclaimed activation, or -1. */
    int pickAct(const std::deque<DramCmd> &q) const;

    void issue(std::deque<DramCmd> &q, int idx, Cycle now);

    /** The queue the scheduler serves this cycle (write drain mode). */
    std::deque<DramCmd> &activeQueue();

    DramConfig cfg_;
    int id_;
    std::vector<Bank> banks_;
    std::deque<DramCmd> read_q_;
    std::deque<DramCmd> write_q_;
    bool draining_writes_ = false;
    std::vector<DramCompletion> completed_;

    /** Recounts @c open_matches for @p bank after its row changed. */
    void recountOpenMatches(int bank);

    /** Data-bus reservation head, in quarter-cycles. */
    std::uint64_t bus_free_q_ = 0;

    /** Total quarter-cycles of bus occupancy (utilization numerator). */
    std::uint64_t bus_busy_q_ = 0;

    Cycle last_activate_any_ = 0;   ///< For tRRD spacing.

    // counters (hot path: plain members, assembled by stats())
    std::uint64_t row_hits_ = 0;
    std::uint64_t row_misses_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bursts_ = 0;
    std::uint64_t data_bursts_ = 0;
    std::uint64_t overhead_bursts_ = 0;
    std::uint64_t queue_wait_cycles_ = 0;
    std::uint64_t reads_enqueued_ = 0;
    std::uint64_t writes_enqueued_ = 0;
    std::uint64_t sched_no_eligible_ = 0;
    std::uint64_t sched_blocked_cap_ = 0;

    /** Read-queue depth sampled at every enqueue. */
    Distribution read_queue_depth_;

    /** Bus-utilization windows: busy quarter-cycles are attributed to
     *  the fixed window in which their CAS issued, giving a burstiness
     *  histogram on top of the scalar utilization. A window can exceed
     *  its 4 * kBusWindowCycles quarter capacity when reservations
     *  stack into later windows — this is attribution, not occupancy. */
    static constexpr Cycle kBusWindowCycles = 1024;

    /** Records every window ending at or before @p now. Must run
     *  before the queue-empty early returns in cycle()/skipIdle() so
     *  both loops close windows at identical boundaries. */
    void advanceBusWindows(Cycle now);

    Cycle bus_window_start_ = 0;
    std::uint64_t bus_window_base_ = 0;
    Distribution bus_window_busy_;
};

} // namespace caba

#endif // CABA_MEM_DRAM_H
