#include "mem/cache.h"

#include <algorithm>

#include "common/log.h"

namespace caba {

Cache::Cache(const CacheConfig &cfg)
    : num_sets_(cfg.size_bytes / (kLineSize * cfg.assoc)),
      tags_per_set_(cfg.assoc * cfg.tag_factor),
      set_budget_(cfg.assoc * kLineSize)
{
    CABA_CHECK(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0,
               "cache sets must be a nonzero power of two");
    CABA_CHECK(cfg.tag_factor >= 1, "tag_factor must be >= 1");
    entries_.resize(static_cast<std::size_t>(num_sets_) * tags_per_set_);
}

int
Cache::setIndex(Addr line) const
{
    return static_cast<int>((line / kLineSize) & (num_sets_ - 1));
}

bool
Cache::access(Addr line)
{
    ++accesses_;
    const int s = setIndex(line);
    for (int w = 0; w < tags_per_set_; ++w) {
        Entry &e = entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
        if (e.valid && e.line == line) {
            e.lru = ++lru_clock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
Cache::contains(Addr line) const
{
    const int s = setIndex(line);
    for (int w = 0; w < tags_per_set_; ++w) {
        const Entry &e =
            entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
        if (e.valid && e.line == line)
            return true;
    }
    return false;
}

int
Cache::usedBytes(int set) const
{
    int used = 0;
    for (int w = 0; w < tags_per_set_; ++w) {
        const Entry &e =
            entries_[static_cast<std::size_t>(set) * tags_per_set_ + w];
        if (e.valid)
            used += e.bytes;
    }
    return used;
}

void
Cache::insert(Addr line, int bytes, bool dirty, std::vector<Eviction> *out)
{
    CABA_CHECK(bytes > 0 && bytes <= kLineSize, "bad line size");
    // A conventional cache (tag_factor == 1) spends a full slot per line;
    // the compressed variant charges the compressed size (Section 6.5).
    const bool conventional = tags_per_set_ * kLineSize == set_budget_;
    const int occ = conventional ? kLineSize : bytes;

    const int s = setIndex(line);
    Entry *slot = nullptr;

    // Already resident: update in place (size may have changed).
    for (int w = 0; w < tags_per_set_; ++w) {
        Entry &e = entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
        if (e.valid && e.line == line) {
            e.bytes = occ;
            e.dirty = e.dirty || dirty;
            e.lru = ++lru_clock_;
            return;
        }
    }

    // Evict until both a tag and enough bytes are free.
    auto evict_lru = [&]() {
        Entry *victim = nullptr;
        for (int w = 0; w < tags_per_set_; ++w) {
            Entry &e =
                entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
            if (e.valid && (!victim || e.lru < victim->lru))
                victim = &e;
        }
        CABA_CHECK(victim, "no victim in a full set");
        ++evictions_;
        if (victim->dirty)
            ++dirty_evictions_;
        if (out)
            out->push_back({victim->line, victim->dirty, victim->bytes});
        victim->valid = false;
    };

    for (;;) {
        slot = nullptr;
        for (int w = 0; w < tags_per_set_; ++w) {
            Entry &e =
                entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
            if (!e.valid) {
                slot = &e;
                break;
            }
        }
        if (slot && usedBytes(s) + occ <= set_budget_)
            break;
        evict_lru();
    }

    slot->line = line;
    slot->valid = true;
    slot->dirty = dirty;
    slot->bytes = occ;
    slot->lru = ++lru_clock_;
}

bool
Cache::setDirty(Addr line)
{
    const int s = setIndex(line);
    for (int w = 0; w < tags_per_set_; ++w) {
        Entry &e = entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
        if (e.valid && e.line == line) {
            e.dirty = true;
            return true;
        }
    }
    return false;
}

bool
Cache::invalidate(Addr line, Eviction *out)
{
    const int s = setIndex(line);
    for (int w = 0; w < tags_per_set_; ++w) {
        Entry &e = entries_[static_cast<std::size_t>(s) * tags_per_set_ + w];
        if (e.valid && e.line == line) {
            if (out)
                *out = {e.line, e.dirty, e.bytes};
            e.valid = false;
            return true;
        }
    }
    return false;
}

int
Cache::occupiedBytes() const
{
    int total = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            total += e.bytes;
    return total;
}

int
Cache::residentLines() const
{
    int total = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            ++total;
    return total;
}

} // namespace caba
