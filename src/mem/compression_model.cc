#include "mem/compression_model.h"

#include <cstring>

#include "common/log.h"

namespace caba {

CompressionModel::CompressionModel(const BackingStore &store, Algorithm algo,
                                   bool verify)
    : store_(store), algo_(algo), verify_(verify)
{
    if (algo_ != Algorithm::None)
        codec_ = &getCodec(algo_);
}

const CompressedLine &
CompressionModel::lookup(Addr line)
{
    CABA_CHECK(enabled(), "lookup on disabled compression model");
    Entry &e = memo_[line];
    const std::uint64_t v = store_.version(line);
    if (e.version != v) {
        std::uint8_t buf[kLineSize];
        store_.read(line, buf);
        e.cl = codec_->compress(buf);
        e.version = v;
        stats_.add("lines_compressed");
        stats_.add("uncompressed_bytes", kLineSize);
        stats_.add("compressed_bytes",
                   static_cast<std::uint64_t>(e.cl.size()));
        stats_.add("uncompressed_bursts", kBurstsPerLine);
        stats_.add("compressed_bursts",
                   static_cast<std::uint64_t>(e.cl.bursts()));
        stats_.dist("compressed_line_bytes")
            .record(static_cast<std::uint64_t>(e.cl.size()));
        if (verify_) {
            std::uint8_t out[kLineSize];
            codec_->decompress(e.cl, out);
            CABA_CHECK(std::memcmp(buf, out, kLineSize) == 0,
                       "codec round-trip mismatch in memory image");
        }
    }
    return e.cl;
}

int
CompressionModel::compressedSize(Addr line)
{
    return enabled() ? lookup(line).size() : kLineSize;
}

int
CompressionModel::bursts(Addr line)
{
    return enabled() ? lookup(line).bursts() : kBurstsPerLine;
}

} // namespace caba
