#include "mem/compression_model.h"

#include <algorithm>
#include <cstring>

#include "common/audit.h"
#include "common/log.h"

namespace caba {

CompressionModel::CompressionModel(const BackingStore &store, Algorithm algo,
                                   bool verify, std::size_t memo_cap)
    : store_(store), algo_(algo), verify_(verify), memo_cap_(memo_cap)
{
    CABA_CHECK(memo_cap_ > 0, "memo capacity must be positive");
    if (algo_ != Algorithm::None)
        codec_ = &getCodec(algo_);
}

void
CompressionModel::evictLru()
{
    const Addr victim = lru_.back();
    auto it = memo_.find(victim);
    CABA_CHECK(it != memo_.end(), "memo LRU list out of sync");
    memo_bytes_ -= it->second.bytes;
    memo_.erase(it);
    lru_.pop_back();
    stats_.add("memo_evictions");
}

const CompressedLine &
CompressionModel::lookup(Addr line)
{
    CABA_CHECK(enabled(), "lookup on disabled compression model");
    auto it = memo_.find(line);
    if (it == memo_.end()) {
        if (memo_.size() >= memo_cap_)
            evictLru();
        lru_.push_front(line);
        it = memo_.emplace(line, Entry{}).first;
        it->second.lru_it = lru_.begin();
        peak_memo_entries_ = std::max(peak_memo_entries_, memo_.size());
        stats_.set("memo_peak_entries",
                   static_cast<std::uint64_t>(peak_memo_entries_));
    } else {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
    Entry &e = it->second;
    const std::uint64_t v = store_.version(line);
    if (e.version != v) {
        std::uint8_t buf[kLineSize];
        store_.read(line, buf);
        e.cl = codec_->compress(buf);
        e.version = v;
        const std::size_t foot = sizeof(Entry) + e.cl.bytes.capacity();
        memo_bytes_ += foot - e.bytes;
        e.bytes = foot;
        if (memo_bytes_ > peak_memo_bytes_) {
            peak_memo_bytes_ = memo_bytes_;
            stats_.set("memo_peak_bytes",
                       static_cast<std::uint64_t>(peak_memo_bytes_));
        }
        stats_.add("lines_compressed");
        stats_.add("uncompressed_bytes", kLineSize);
        stats_.add("compressed_bytes",
                   static_cast<std::uint64_t>(e.cl.size()));
        stats_.add("uncompressed_bursts", kBurstsPerLine);
        stats_.add("compressed_bursts",
                   static_cast<std::uint64_t>(e.cl.bursts()));
        stats_.dist("compressed_line_bytes")
            .record(static_cast<std::uint64_t>(e.cl.size()));
        if (verify_) {
            std::uint8_t out[kLineSize];
            codec_->decompress(e.cl, out);
            CABA_CHECK(std::memcmp(buf, out, kLineSize) == 0,
                       "codec round-trip mismatch in memory image");
        }
    }
    return e.cl;
}

int
CompressionModel::compressedSize(Addr line)
{
    return enabled() ? lookup(line).size() : kLineSize;
}

int
CompressionModel::bursts(Addr line)
{
    return enabled() ? lookup(line).bursts() : kBurstsPerLine;
}

void
CompressionModel::audit(Audit &a) const
{
    a.checkLe("model", "compressed_bytes <= uncompressed_bytes",
              stats_.get("compressed_bytes"),
              stats_.get("uncompressed_bytes"));
    a.checkLe("model", "compressed_bursts <= uncompressed_bursts",
              stats_.get("compressed_bursts"),
              stats_.get("uncompressed_bursts"));
    // Every compression emits in [1, kLineSize] bytes, so totals bracket.
    a.checkLe("model", "compressed_bytes >= lines_compressed",
              stats_.get("lines_compressed"),
              stats_.get("compressed_bytes"));
    a.checkEq("model", "uncompressed_bytes == lines * kLineSize",
              stats_.get("uncompressed_bytes"),
              stats_.get("lines_compressed") * kLineSize);
    a.checkLe("model", "memo entries <= capacity",
              static_cast<std::uint64_t>(memo_.size()),
              static_cast<std::uint64_t>(memo_cap_));
    a.checkEq("model", "memo map and LRU list agree",
              static_cast<std::uint64_t>(memo_.size()),
              static_cast<std::uint64_t>(lru_.size()));
}

} // namespace caba
