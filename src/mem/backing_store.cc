#include "mem/backing_store.h"

#include <cstring>

#include "common/log.h"
#include "common/rng.h"

namespace caba {

BackingStore::BackingStore(LineGenerator gen)
    : gen_(std::move(gen))
{
    CABA_CHECK(static_cast<bool>(gen_), "backing store needs a generator");
}

void
BackingStore::read(Addr line, std::uint8_t *out) const
{
    CABA_CHECK(line % kLineSize == 0, "unaligned line read");
    auto it = overlay_.find(line);
    if (it != overlay_.end()) {
        std::memcpy(out, it->second.data.data(), kLineSize);
        return;
    }
    gen_(line, out);
}

BackingStore::LineState &
BackingStore::materialize(Addr line)
{
    auto [it, inserted] = overlay_.try_emplace(line);
    if (inserted)
        gen_(line, it->second.data.data());
    return it->second;
}

void
BackingStore::write(Addr line, const std::uint8_t *data)
{
    CABA_CHECK(line % kLineSize == 0, "unaligned line write");
    LineState &st = materialize(line);
    std::memcpy(st.data.data(), data, kLineSize);
    ++st.version;
}

void
BackingStore::writePartial(Addr line, int offset, int size)
{
    CABA_CHECK(line % kLineSize == 0, "unaligned line write");
    CABA_CHECK(offset >= 0 && size > 0 && offset + size <= kLineSize,
               "partial write out of range");
    LineState &st = materialize(line);
    // Deterministic mutation: mix the line address and version so repeated
    // stores produce new-but-reproducible values with similar magnitude to
    // the surrounding data (keeps compressibility realistic).
    const std::uint64_t h = mixHash(line ^ (st.version + 1) * 0x9E37u);
    for (int i = 0; i < size; ++i)
        st.data[offset + i] ^= static_cast<std::uint8_t>(h >> ((i % 8) * 8));
    ++st.version;
}

std::uint64_t
BackingStore::version(Addr line) const
{
    auto it = overlay_.find(line);
    return it == overlay_.end() ? 0 : it->second.version;
}

} // namespace caba
