#include "mem/partition.h"

#include <algorithm>

#include "common/log.h"
#include "common/trace.h"

namespace caba {

MemoryPartition::MemoryPartition(int id, const PartitionConfig &cfg,
                                 const DesignConfig &design,
                                 CompressionModel *model)
    : id_(id), cfg_(cfg), design_(design), model_(model),
      l2_({cfg.l2.size_bytes, cfg.l2.assoc, design.l2_tag_factor}),
      dram_(cfg.dram, id), md_(cfg.md_size_bytes, cfg.md_assoc),
      tlb_(cfg.tlb_size_bytes, 4, cfg.tlb_page_lines)
{
    if (design_.usesCompression())
        CABA_CHECK(model_, "compressed design needs a compression model");
}

bool
MemoryPartition::canAccept() const
{
    return static_cast<int>(l2_pipe_.size()) < 32;
}

void
MemoryPartition::accept(const MemRequest &req, Cycle now)
{
    CABA_CHECK(canAccept(), "partition ingress overflow");
    if (audit_)
        audit_->onStage(req, ReqStage::AtPartition);
    l2_pipe_.emplace_back(now + cfg_.l2_latency, req);
    (req.is_write ? n_.stores_in : n_.loads_in) += 1;
    if (!req.is_write)
        n_.ingress_latency_total += now - req.created;
}

int
MemoryPartition::payloadBytes(Addr line)
{
    if (design_.l2_tag_factor > 1)
        return model_->compressedSize(line);
    return kLineSize;
}

std::pair<int, int>
MemoryPartition::metadataCost(Addr line, Cycle now, bool is_write)
{
    // Page walk: a TLB miss costs one page-table burst in EVERY design
    // (paper footnote 4).
    int bursts = 0;
    bool tlb_missed = false;
    if (cfg_.model_tlb && !tlb_.access(line)) {
        tlb_missed = true;
        ++n_.tlb_misses;
        bursts += 1;
    }
    if (!design_.mem_compressed || !design_.md_overhead)
        return {0, bursts};
    ++n_.md_lookups;
    // A write changes the line's burst count, so the MD line is updated
    // (dirtied); a dirty MD victim is a metadata writeback that costs a
    // real access to reserved DRAM.
    bool md_writeback = false;
    if (!md_.access(line, is_write, &md_writeback)) {
        ++n_.md_misses;
        if (trace::on(trace::kCache)) {
            trace::instant(trace::kCache, trace::kPidCache, 200 + id_,
                           "md_miss", now, "line", line);
        }
        if (tlb_missed) {
            // The metadata fetch rides along with the page-table walk
            // (both live in reserved DRAM near the page structures).
            ++n_.md_piggybacked;
        } else {
            bursts += cfg_.md_miss_bursts;
        }
    }
    if (md_writeback) {
        ++n_.md_writebacks;
        bursts += cfg_.md_miss_bursts;
    }
    return {cfg_.md_miss_latency, bursts};
}

void
MemoryPartition::issueDramRead(const MemRequest &req, Cycle now)
{
    if (audit_)
        audit_->onStage(req, ReqStage::DramWait);
    // Merge onto an outstanding read of the same line if one exists.
    auto lit = line_read_.find(req.line);
    if (lit != line_read_.end()) {
        dram_reads_[lit->second].push_back(req);
        ++n_.dram_read_merges;
        return;
    }
    if (!dram_.canAccept(false)) {
        dram_stalled_.push_back(req);
        ++n_.dram_stall_events;
        return;
    }
    const auto [extra_lat, extra_bursts] =
        metadataCost(req.line, now, false);
    DramCmd cmd;
    cmd.id = next_dram_id_++;
    cmd.line = req.line;
    cmd.is_write = false;
    cmd.bursts = design_.mem_compressed ? model_->bursts(req.line)
                                        : kBurstsPerLine;
    cmd.extra_latency = extra_lat;
    cmd.extra_bursts = extra_bursts;
    cmd.enqueued = now;
    dram_.enqueue(cmd);
    n_.transfer_bursts += static_cast<std::uint64_t>(cmd.bursts);
    if (fault_double_count_burst_) {
        // Seeded fault: the ledger charges this read twice, the way a
        // retry path that recounts would. The audit must notice.
        n_.transfer_bursts += static_cast<std::uint64_t>(cmd.bursts);
        fault_double_count_burst_ = false;
    }
    n_.transfer_bursts_uncompressed += kBurstsPerLine;
    line_read_[req.line] = cmd.id;
    dram_reads_[cmd.id] = {req};
}

void
MemoryPartition::issueDramWrite(Addr line, Cycle now, bool partial_uncached)
{
    if (!dram_.canAccept(true)) {
        // Partial-ness is dropped for stalled writebacks; they are rare
        // and the difference is one burst.
        writeback_stalled_.push_back(line);
        return;
    }
    const auto [extra_lat, extra_bursts] = metadataCost(line, now, true);
    DramCmd cmd;
    cmd.id = next_dram_id_++;
    cmd.line = line;
    cmd.is_write = true;
    if (partial_uncached) {
        cmd.bursts = 1;
    } else {
        cmd.bursts = design_.mem_compressed ? model_->bursts(line)
                                            : kBurstsPerLine;
    }
    cmd.extra_latency = extra_lat;
    cmd.extra_bursts = extra_bursts;
    cmd.enqueued = now;
    dram_.enqueue(cmd);
    n_.transfer_bursts += static_cast<std::uint64_t>(cmd.bursts);
    n_.transfer_bursts_uncompressed += partial_uncached ? 1 : kBurstsPerLine;
    ++n_.dram_writes_issued;
    if (design_.decompress == DecompressSite::MemCtrl && !partial_uncached)
        ++n_.mc_compressions;
}

void
MemoryPartition::makeReply(const MemRequest &req, Cycle now, bool from_dram)
{
    MemRequest reply = req;
    reply.is_write = false;
    if (design_.xbar_compressed && design_.usesCompression()) {
        const CompressedLine &cl = model_->lookup(req.line);
        reply.payload_bytes = cl.size();
        reply.compressed = !cl.isUncompressed();
        reply.encoding = cl.encoding;
    } else {
        reply.payload_bytes = kLineSize;
        reply.compressed = false;
        reply.encoding = 0;
    }
    Cycle ready = now;
    if (design_.decompress == DecompressSite::MemCtrl && from_dram) {
        // HW-<algo>-Mem: dedicated logic expands the line at the MC
        // before it crosses the interconnect.
        ready += getCodec(design_.algo).hwDecompressLatency();
        ++n_.mc_decompressions;
    }
    if (audit_)
        audit_->onStage(reply, ReqStage::Replied);
    reply_wait_.emplace_back(ready, reply);
    ++n_.replies;
    n_.service_latency_total += now - req.created;
}

void
MemoryPartition::handleL2Ready(const MemRequest &req, Cycle now)
{
    if (!req.is_write) {
        if (l2_.access(req.line)) {
            if (trace::on(trace::kCache)) {
                trace::instant(trace::kCache, trace::kPidCache, 100 + id_,
                               "l2_hit", now, "line", req.line);
            }
            makeReply(req, now, false);
        } else {
            if (trace::on(trace::kCache)) {
                trace::instant(trace::kCache, trace::kPidCache, 100 + id_,
                               "l2_miss", now, "line", req.line);
            }
            issueDramRead(req, now);
        }
        return;
    }

    // Store path (write-back, write-allocate L2).
    ++n_.l2_store_accesses;
    if (req.full_line || l2_.contains(req.line)) {
        std::vector<Eviction> evicted;
        l2_.insert(req.line, payloadBytes(req.line), true, &evicted);
        for (const Eviction &ev : evicted) {
            if (ev.dirty)
                issueDramWrite(ev.line, now, false);
        }
        if (audit_)
            audit_->onRetire(req);  // absorbed by the L2 slice
        return;
    }

    // Partial store to a line absent from L2 (paper Section 4.2.2).
    if (design_.mem_compressed) {
        // Worst case: the destination is compressed in memory, so the
        // line must be fetched (and decompressed) before merging.
        ++n_.partial_store_fills;
        issueDramRead(req, now);
    } else {
        // Uncompressed memory: write through the dirty bytes directly.
        ++n_.partial_store_writethrough;
        issueDramWrite(req.line, now, true);
        if (audit_)
            audit_->onRetire(req);
    }
}

void
MemoryPartition::handleDramCompletion(const DramCompletion &done, Cycle now)
{
    if (done.is_write) {
        ++n_.dram_writes_done;
        return;
    }
    auto it = dram_reads_.find(done.id);
    CABA_CHECK(it != dram_reads_.end(), "unknown DRAM read completion");
    std::vector<MemRequest> waiters = std::move(it->second);
    dram_reads_.erase(it);
    CABA_CHECK(!waiters.empty(), "DRAM read with no waiters");
    const Addr line = waiters.front().line;
    line_read_.erase(line);

    std::vector<Eviction> evicted;
    bool dirty = false;
    for (const MemRequest &w : waiters)
        dirty = dirty || w.is_write;
    l2_.insert(line, payloadBytes(line), dirty, &evicted);
    for (const Eviction &ev : evicted) {
        if (ev.dirty)
            issueDramWrite(ev.line, now, false);
    }
    for (const MemRequest &w : waiters) {
        if (!w.is_write)
            makeReply(w, now, true);
        else if (audit_)
            audit_->onRetire(w);    // partial-store fill merged
    }
}

void
MemoryPartition::cycle(Cycle now)
{
    dram_.cycle(now);

    std::vector<DramCompletion> done;
    dram_.drainCompleted(now, &done);
    for (const DramCompletion &d : done)
        handleDramCompletion(d, now);

    // Retry stalled writebacks and misses now that DRAM may have room.
    while (!writeback_stalled_.empty() && dram_.canAccept(true)) {
        const Addr line = writeback_stalled_.front();
        writeback_stalled_.pop_front();
        issueDramWrite(line, now, false);
    }
    while (!dram_stalled_.empty() && dram_.canAccept(false)) {
        const MemRequest req = dram_stalled_.front();
        dram_stalled_.pop_front();
        issueDramRead(req, now);
    }

    // One L2 port: a single request leaves the lookup pipe per cycle.
    if (!l2_pipe_.empty() && l2_pipe_.front().first <= now) {
        const MemRequest req = l2_pipe_.front().second;
        l2_pipe_.pop_front();
        handleL2Ready(req, now);
    }

    // Release replies whose MC-side latency elapsed.
    while (!reply_wait_.empty() && reply_wait_.front().first <= now) {
        replies_.push(reply_wait_.front().second);
        reply_wait_.pop_front();
    }
}

Cycle
MemoryPartition::nextWork(Cycle now) const
{
    if (!replies_.empty())
        return now;     // ready for the reply crossbar
    if ((!writeback_stalled_.empty() && dram_.canAccept(true)) ||
        (!dram_stalled_.empty() && dram_.canAccept(false))) {
        return now;     // a stalled command can retry
    }
    Cycle e = dram_.nextWork(now);
    // Both pipes release their heads in order, so only the fronts gate.
    if (!l2_pipe_.empty()) {
        const Cycle t = l2_pipe_.front().first;
        e = std::min(e, t > now ? t : now);
    }
    if (!reply_wait_.empty()) {
        const Cycle t = reply_wait_.front().first;
        e = std::min(e, t > now ? t : now);
    }
    return e;
}

void
MemoryPartition::skipIdle(Cycle from, Cycle to)
{
    // During a skip no completion drains, no retry fires, and no pipe
    // head releases (nextWork() bounds all of them), so the per-cycle
    // path would have touched nothing but the DRAM scheduler counters.
    dram_.skipIdle(from, to);
}

StatSet
MemoryPartition::stats() const
{
    StatSet s;
    s.setCounter("loads_in", n_.loads_in);
    s.setCounter("stores_in", n_.stores_in);
    s.setCounter("ingress_latency_total", n_.ingress_latency_total);
    s.setCounter("service_latency_total", n_.service_latency_total);
    s.setCounter("replies", n_.replies);
    s.setCounter("transfer_bursts", n_.transfer_bursts);
    s.setCounter("transfer_bursts_uncompressed",
                 n_.transfer_bursts_uncompressed);
    s.setCounter("md_lookups", n_.md_lookups);
    s.setCounter("md_misses", n_.md_misses);
    s.setCounter("md_piggybacked", n_.md_piggybacked);
    s.setCounter("md_writebacks", n_.md_writebacks);
    s.setCounter("tlb_misses", n_.tlb_misses);
    s.setCounter("dram_read_merges", n_.dram_read_merges);
    s.setCounter("dram_stall_events", n_.dram_stall_events);
    s.setCounter("dram_writes_issued", n_.dram_writes_issued);
    s.setCounter("dram_writes_done", n_.dram_writes_done);
    s.setCounter("mc_compressions", n_.mc_compressions);
    s.setCounter("mc_decompressions", n_.mc_decompressions);
    s.setCounter("l2_store_accesses", n_.l2_store_accesses);
    s.setCounter("partial_store_fills", n_.partial_store_fills);
    s.setCounter("partial_store_writethrough",
                 n_.partial_store_writethrough);
    s.set("md_capacity_bytes",
          static_cast<std::uint64_t>(cfg_.md_size_bytes));
    return s;
}

bool
MemoryPartition::busy() const
{
    return !l2_pipe_.empty() || !dram_stalled_.empty() ||
           !writeback_stalled_.empty() || !dram_reads_.empty() ||
           !replies_.empty() || !reply_wait_.empty() || dram_.busy();
}

void
MemoryPartition::audit(Audit &a, bool at_drain) const
{
    a.checkEq("l2", "hits + misses == accesses", l2_.hits() + l2_.misses(),
              l2_.accesses());
    a.checkEq("md", "hits + misses == accesses", md_.hits() + md_.misses(),
              md_.accesses());
    a.checkEq("tlb", "hits + misses == accesses",
              tlb_.hits() + tlb_.misses(), tlb_.accesses());
    a.checkEq("part", "md_lookups == MD cache accesses", n_.md_lookups,
              md_.accesses());
    a.checkLe("part", "dram writes done <= issued", n_.dram_writes_done,
              n_.dram_writes_issued);
    a.checkLe("part", "replies <= loads_in", n_.replies, n_.loads_in);
    // The transfer ledger counts bursts at enqueue; the channel's data
    // ledger counts them at issue, so enqueue leads issue until drain.
    a.checkLe("part", "dram data bursts <= transfer bursts",
              dram_.dataBursts(), n_.transfer_bursts);
    dram_.audit(a, at_drain);
    if (!at_drain)
        return;
    a.checkEq("part", "transfer bursts == dram data bursts at drain",
              n_.transfer_bursts, dram_.dataBursts());
    a.checkEq("part", "every load replied at drain", n_.loads_in,
              n_.replies);
    a.checkEq("part", "every DRAM write completed at drain",
              n_.dram_writes_issued, n_.dram_writes_done);
    a.checkTrue("part", "L2 pipe empty at drain", l2_pipe_.empty());
    a.checkTrue("part", "no stalled DRAM reads at drain",
                dram_stalled_.empty());
    a.checkTrue("part", "no stalled writebacks at drain",
                writeback_stalled_.empty());
    a.checkTrue("part", "no outstanding DRAM reads at drain",
                dram_reads_.empty() && line_read_.empty());
    a.checkTrue("part", "reply queues empty at drain",
                reply_wait_.empty() && replies_.empty());
}

double
MemoryPartition::dramBusUtilization(Cycle elapsed) const
{
    return dram_.busUtilization(elapsed);
}

} // namespace caba
