/**
 * @file
 * One memory partition: an L2 slice plus its GDDR5 channel plus the
 * compression machinery that lives at the memory controller (burst-count
 * metadata + MD cache, Section 4.3.2; dedicated codec latency for the
 * HW-<algo>-Mem design). Requests arrive from the crossbar; replies are
 * queued for the reply crossbar.
 */
#ifndef CABA_MEM_PARTITION_H
#define CABA_MEM_PARTITION_H

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/audit.h"
#include "common/component.h"
#include "common/stats.h"
#include "compress/design.h"
#include "mem/cache.h"
#include "mem/compression_model.h"
#include "mem/dram.h"
#include "mem/md_cache.h"
#include "mem/request.h"

namespace caba {

/** Partition-level knobs. */
struct PartitionConfig
{
    CacheConfig l2{128 * 1024, 16, 1};  ///< Per-partition slice (768KB/6).
    int l2_latency = 20;
    DramConfig dram{};
    int md_size_bytes = 8 * 1024;
    int md_assoc = 4;

    /**
     * Cost of an MD-cache miss. The metadata fetch is a real DRAM
     * access (one burst of bandwidth), but its latency overlaps with
     * the data access's row activation and the TLB walk (paper
     * Section 4.3.2, footnote 4), so the default adds no serial latency.
     */
    int md_miss_latency = 0;
    int md_miss_bursts = 1;

    /**
     * Address-translation model (paper footnote 4): accesses that miss
     * the TLB pay a page-table access in EVERY design, and a
     * same-access MD-cache miss piggybacks on that walk instead of
     * costing its own burst. TLB reach = entries x 4KB pages.
     */
    bool model_tlb = true;
    int tlb_size_bytes = 16 * 1024;
    int tlb_page_lines = 4096 / kLineSize;

    int reply_queue = 32;
};

/** L2 slice + memory controller + DRAM channel. Its Sink face is the
 *  ingress the request crossbar's output port is wired to. */
class MemoryPartition : public Clocked, public Sink<MemRequest>
{
  public:
    MemoryPartition(int id, const PartitionConfig &cfg,
                    const DesignConfig &design, CompressionModel *model);

    /** True when a request delivered by the crossbar can be taken. */
    bool canAccept() const override;

    /** Hands over one request (read or store). */
    void accept(const MemRequest &req, Cycle now) override;

    /** Advances one core cycle. */
    void cycle(Cycle now) override;

    /** Read replies ready for the reply crossbar (drained by GpuSystem). */
    Channel<MemRequest> &replies() { return replies_; }

    /** True while any request, DRAM command or reply is in flight. */
    bool busy() const override;

    /** Earliest cycle any pipe releases, retry unblocks, or the DRAM
     *  channel can act. */
    Cycle nextWork(Cycle now) const override;

    /** Forwards skipped-cycle accounting to the DRAM scheduler (the
     *  only partition piece that counts idle cycles). */
    void skipIdle(Cycle from, Cycle to) override;

    double dramBusUtilization(Cycle elapsed) const;

    const Cache &l2() const { return l2_; }
    const DramChannel &dram() const { return dram_; }
    const MdCache &mdCache() const { return md_; }

    /** Snapshot of every partition counter. */
    StatSet stats() const;

    /** Registers the request-lifecycle / invariant audit. */
    void attachAudit(Audit *audit) { audit_ = audit; }

    /** Mutation self-test hook: count the next DRAM read's data bursts
     *  twice in the transfer ledger (simulates a double-count bug). */
    void faultDoubleCountNextBurst() { fault_double_count_burst_ = true; }

    /** Stat identities and queue-drain checks for the whole partition
     *  (L2, MD cache, TLB, DRAM channel, transfer-burst ledger). */
    void audit(Audit &a, bool at_drain) const;

  private:
    /** Payload size of line data at this level for the current design. */
    int payloadBytes(Addr line);

    /** Issues a DRAM read for @p req (metadata overhead applied). */
    void issueDramRead(const MemRequest &req, Cycle now);

    /** Issues a DRAM write for @p line (eviction or write-through). */
    void issueDramWrite(Addr line, Cycle now, bool partial_uncached);

    /** Queues the reply for @p req (L2 data now present). */
    void makeReply(const MemRequest &req, Cycle now, bool from_dram);

    void handleL2Ready(const MemRequest &req, Cycle now);
    void handleDramCompletion(const DramCompletion &done, Cycle now);

    /**
     * Applies TLB + MD-cache costs for one DRAM access; returns
     * {extra_lat, extra_bursts} covering the page walk (all designs)
     * and the metadata fetch (compressed designs, unless it piggybacks
     * on a concurrent page walk).
     */
    std::pair<int, int> metadataCost(Addr line, Cycle now, bool is_write);

    int id_;
    PartitionConfig cfg_;
    DesignConfig design_;
    CompressionModel *model_;

    Cache l2_;
    DramChannel dram_;
    MdCache md_;
    MdCache tlb_;   ///< Page-translation reach, modeled like the MD cache.

    /** Requests inside the L2 lookup pipeline: (ready_at, request). */
    std::deque<std::pair<Cycle, MemRequest>> l2_pipe_;

    /** Requests that missed L2 but could not enter DRAM yet. */
    std::deque<MemRequest> dram_stalled_;

    /** Dirty evictions waiting for DRAM queue space. */
    std::deque<Addr> writeback_stalled_;

    /** Outstanding DRAM reads: id -> requests merged onto that read. */
    std::unordered_map<std::uint64_t, std::vector<MemRequest>> dram_reads_;

    /** Line-level merge of concurrent misses: line -> DRAM read id. */
    std::unordered_map<Addr, std::uint64_t> line_read_;

    /** Replies delayed by MC-side codec latency: (ready_at, reply). */
    std::deque<std::pair<Cycle, MemRequest>> reply_wait_;

    Channel<MemRequest> replies_;
    std::uint64_t next_dram_id_ = 1;

    /** Hot-path counters (assembled into a StatSet by stats()). */
    struct Counters
    {
        std::uint64_t loads_in = 0;
        std::uint64_t stores_in = 0;
        std::uint64_t ingress_latency_total = 0;
        std::uint64_t service_latency_total = 0;
        std::uint64_t replies = 0;
        std::uint64_t transfer_bursts = 0;
        std::uint64_t transfer_bursts_uncompressed = 0;
        std::uint64_t md_lookups = 0;
        std::uint64_t md_misses = 0;
        std::uint64_t md_piggybacked = 0;
        std::uint64_t md_writebacks = 0;
        std::uint64_t tlb_misses = 0;
        std::uint64_t dram_read_merges = 0;
        std::uint64_t dram_stall_events = 0;
        std::uint64_t dram_writes_issued = 0;
        std::uint64_t dram_writes_done = 0;
        std::uint64_t mc_compressions = 0;
        std::uint64_t mc_decompressions = 0;
        std::uint64_t l2_store_accesses = 0;
        std::uint64_t partial_store_fills = 0;
        std::uint64_t partial_store_writethrough = 0;
    };
    Counters n_;
    Audit *audit_ = nullptr;
    bool fault_double_count_burst_ = false;
};

} // namespace caba

#endif // CABA_MEM_PARTITION_H
