/**
 * @file
 * Metadata cache near the memory controller (Section 4.3.2): caches the
 * per-line burst-count metadata stored in reserved DRAM (8MB in the
 * paper). A burst count of 1-4 needs 2 bits, so one 64-byte MD line
 * covers 256 data lines (a 16KB region); an 8KB 4-way instance then
 * reaches the paper's ~85-99% hit rates. A miss costs an extra DRAM
 * metadata access on the same channel.
 */
#ifndef CABA_MEM_MD_CACHE_H
#define CABA_MEM_MD_CACHE_H

#include "mem/cache.h"

namespace caba {

/** Burst-count metadata cache. */
class MdCache
{
  public:
    /**
     * @param size_bytes capacity (paper: 8KB); @param assoc ways (4);
     * @param coverage_lines data lines described by one MD line (256
     * at 2 bits of burst count per line).
     */
    explicit MdCache(int size_bytes = 8 * 1024, int assoc = 4,
                     int coverage_lines = 256)
        : cache_({size_bytes, assoc, 1}), coverage_(coverage_lines)
    {}

    /**
     * Looks up the metadata covering data line @p line; fills on miss.
     * @return true on hit (no extra DRAM access needed).
     */
    bool access(Addr line) { return access(line, false, nullptr); }

    /**
     * Lookup with store-path semantics: when @p update is set the burst
     * count of @p line changes, so the MD line is made dirty (inserted
     * dirty on a miss). A dirty MD line pushed out by the fill is a real
     * metadata writeback to reserved DRAM; it is reported through
     * @p writeback so the partition can charge the DRAM access instead
     * of silently dropping the dirtiness.
     */
    bool
    access(Addr line, bool update, bool *writeback)
    {
        const Addr md_line =
            (line / kLineSize) / static_cast<Addr>(coverage_) * kLineSize;
        if (cache_.access(md_line)) {
            if (update)
                cache_.setDirty(md_line);
            return true;
        }
        std::vector<Eviction> ev;
        cache_.insert(md_line, kLineSize, update, &ev);
        if (writeback) {
            for (const Eviction &e : ev)
                *writeback = *writeback || e.dirty;
        }
        return false;
    }

    double
    hitRate() const
    {
        const double total =
            static_cast<double>(cache_.hits() + cache_.misses());
        return total == 0.0 ? 0.0
                            : static_cast<double>(cache_.hits()) / total;
    }

    std::uint64_t hits() const { return cache_.hits(); }
    std::uint64_t misses() const { return cache_.misses(); }
    std::uint64_t accesses() const { return cache_.accesses(); }
    StatSet stats() const { return cache_.stats(); }

  private:
    Cache cache_;
    int coverage_;
};

} // namespace caba

#endif // CABA_MEM_MD_CACHE_H
