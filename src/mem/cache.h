/**
 * @file
 * Set-associative write-back cache model with LRU replacement (Table 1:
 * L1 16KB/4-way, L2 768KB/16-way). Data values never live here — the
 * functional image is the BackingStore — so entries carry only the
 * metadata the timing and bandwidth models need (compressed size, dirty).
 *
 * A tag_factor > 1 turns the cache into the compressed cache of
 * Section 6.5: tags multiply while the per-set data budget stays at
 * assoc * 64 bytes, so more lines fit when they compress well.
 */
#ifndef CABA_MEM_CACHE_H
#define CABA_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace caba {

/** Geometry and behaviour of one cache instance. */
struct CacheConfig
{
    int size_bytes = 16 * 1024;
    int assoc = 4;

    /**
     * Tag multiplier for the compressed-cache variant (Section 6.5).
     * 1 = conventional cache: a line always occupies a full 64B slot.
     */
    int tag_factor = 1;
};

/** Outcome of an insertion: lines pushed out of the set. */
struct Eviction
{
    Addr line = 0;
    bool dirty = false;
    int bytes = kLineSize;  ///< Compressed size the victim occupied.
};

/** Tag/metadata array of one cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Looks up @p line; on hit updates LRU and returns true.
     * Counts a hit or miss in stats().
     */
    bool access(Addr line);

    /** Non-counting, non-LRU-touching presence probe. */
    bool contains(Addr line) const;

    /**
     * Inserts @p line occupying @p bytes (compressed size; clamped to a
     * full slot when tag_factor == 1). Evicts as many LRU victims as
     * needed; evictions are appended to @p out.
     */
    void insert(Addr line, int bytes, bool dirty,
                std::vector<Eviction> *out);

    /** Marks @p line dirty if present; returns presence. */
    bool setDirty(Addr line);

    /** Drops @p line if present; returns the entry via @p out if given. */
    bool invalidate(Addr line, Eviction *out = nullptr);

    int numSets() const { return num_sets_; }
    int tagsPerSet() const { return tags_per_set_; }
    int setBudgetBytes() const { return set_budget_; }

    /** hits / misses / evictions / dirty_evictions counters. */
    StatSet
    stats() const
    {
        StatSet s;
        s.setCounter("hits", hits_);
        s.setCounter("misses", misses_);
        s.setCounter("evictions", evictions_);
        s.setCounter("dirty_evictions", dirty_evictions_);
        return s;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Lookups through access() (audit: hits + misses == accesses). */
    std::uint64_t accesses() const { return accesses_; }

    /** Sum of occupied bytes across all sets (for utilization tests). */
    int occupiedBytes() const;

    /** Number of valid lines currently resident. */
    int residentLines() const;

  private:
    struct Entry
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        int bytes = kLineSize;
        std::uint64_t lru = 0;
    };

    int setIndex(Addr line) const;
    int usedBytes(int set) const;

    int num_sets_;
    int tags_per_set_;
    int set_budget_;
    std::uint64_t lru_clock_ = 0;
    std::vector<Entry> entries_;    // num_sets_ * tags_per_set_
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t accesses_ = 0;    // audit-only; not exported in stats()
    std::uint64_t evictions_ = 0;
    std::uint64_t dirty_evictions_ = 0;
};

} // namespace caba

#endif // CABA_MEM_CACHE_H
