#include "compress/registry.h"

#include "common/log.h"
#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/fpc.h"

namespace caba {

namespace {

const BdiCodec kBdi;
const FpcCodec kFpc;
const CpackCodec kCpack;
const BestOfAllCodec kBest;

/** The three concrete algorithms BestOfAll arbitrates between. */
constexpr Algorithm kConcrete[] = {Algorithm::Bdi, Algorithm::Fpc,
                                   Algorithm::CPack};

} // namespace

const char *
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::None: return "None";
      case Algorithm::Bdi: return "BDI";
      case Algorithm::Fpc: return "FPC";
      case Algorithm::CPack: return "C-Pack";
      case Algorithm::BestOfAll: return "BestOfAll";
    }
    return "?";
}

const Codec &
getCodec(Algorithm algo)
{
    switch (algo) {
      case Algorithm::Bdi: return kBdi;
      case Algorithm::Fpc: return kFpc;
      case Algorithm::CPack: return kCpack;
      case Algorithm::BestOfAll: return kBest;
      case Algorithm::None: break;
    }
    CABA_PANIC("no codec for Algorithm::None");
}

Algorithm
BestOfAllCodec::innerAlgorithm(int folded_encoding)
{
    return static_cast<Algorithm>(folded_encoding / 256);
}

int
BestOfAllCodec::innerEncoding(int folded_encoding)
{
    return folded_encoding % 256;
}

CompressedLine
BestOfAllCodec::compress(const std::uint8_t *line) const
{
    CompressedLine best;
    Algorithm best_algo = Algorithm::Bdi;
    for (Algorithm algo : kConcrete) {
        CompressedLine cand = getCodec(algo).compress(line);
        if (best.bytes.empty() || cand.size() < best.size()) {
            best = std::move(cand);
            best_algo = algo;
        }
    }
    best.encoding = static_cast<int>(best_algo) * 256 + best.encoding;
    return best;
}

void
BestOfAllCodec::decompress(const CompressedLine &cl, std::uint8_t *out) const
{
    CompressedLine inner;
    inner.bytes = cl.bytes;
    inner.encoding = innerEncoding(cl.encoding);
    getCodec(innerAlgorithm(cl.encoding)).decompress(inner, out);
}

int
BestOfAllCodec::hwDecompressLatency() const
{
    return kCpack.hwDecompressLatency();    // conservative: worst of three
}

int
BestOfAllCodec::hwCompressLatency() const
{
    return kCpack.hwCompressLatency();
}

SubroutineCost
BestOfAllCodec::decompressCost(const CompressedLine &cl) const
{
    CompressedLine inner;
    inner.bytes = cl.bytes;
    inner.encoding = innerEncoding(cl.encoding);
    return getCodec(innerAlgorithm(cl.encoding)).decompressCost(inner);
}

SubroutineCost
BestOfAllCodec::compressCost() const
{
    // Testing all three algorithms on a store costs the sum of the parts.
    SubroutineCost total;
    for (Algorithm algo : kConcrete) {
        const SubroutineCost c = getCodec(algo).compressCost();
        total.alu_ops += c.alu_ops;
        total.mem_ops += c.mem_ops;
    }
    return total;
}

} // namespace caba
