/**
 * @file
 * C-Pack cache compression (Chen et al., IEEE TVLSI 2010), the third
 * algorithm the paper maps onto CABA (Section 4.1.3). Words are matched
 * against a small FIFO dictionary; full and partial matches get short
 * codes. Per the paper, we place the dictionary-independent metadata at
 * the head of the compressed line.
 */
#ifndef CABA_COMPRESS_CPACK_H
#define CABA_COMPRESS_CPACK_H

#include "compress/codec.h"

namespace caba {

/** C-Pack word codes. */
enum class CpackCode : int {
    Zzzz = 0,   ///< 00      all-zero word (2 bits)
    Xxxx = 1,   ///< 01      unmatched word, pushed to dictionary (2+32)
    Mmmm = 2,   ///< 10      full dictionary match (2+4)
    Mmxx = 3,   ///< 1100    upper-halfword match (4+4+16)
    Zzzx = 4,   ///< 1101    three zero bytes + one literal byte (4+8)
    Mmmx = 5,   ///< 1110    upper-3-byte match (4+4+8)
};

/**
 * C-Pack codec with a 16-entry FIFO dictionary rebuilt identically by the
 * decompressor (xxxx words are pushed in decode order, so no dictionary
 * needs to be stored).
 */
class CpackCodec final : public Codec
{
  public:
    std::string name() const override { return "C-Pack"; }
    CompressedLine compress(const std::uint8_t *line) const override;
    void decompress(const CompressedLine &cl,
                    std::uint8_t *out) const override;

    int hwDecompressLatency() const override { return 9; }
    int hwCompressLatency() const override { return 16; }

    SubroutineCost decompressCost(const CompressedLine &cl) const override;
    SubroutineCost compressCost() const override;

    /** Dictionary entries (words). */
    static constexpr int kDictEntries = 16;
};

} // namespace caba

#endif // CABA_COMPRESS_CPACK_H
