/**
 * @file
 * Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012), the
 * algorithm the paper maps to CABA in Section 4.1. A line is encoded as
 * one explicit base plus an implicit zero base and an array of narrow
 * deltas; a per-element mask selects the base (paper Figure 5).
 */
#ifndef CABA_COMPRESS_BDI_H
#define CABA_COMPRESS_BDI_H

#include "compress/codec.h"

namespace caba {

/** BDI encodings, ordered roughly by compressed size. */
enum class BdiEncoding : int {
    Zeros = 0,      ///< Line is all zero bytes.
    Repeat = 1,     ///< One 8-byte value repeated across the line.
    B8D1 = 2,       ///< 8-byte words, 1-byte deltas.
    B8D2 = 3,       ///< 8-byte words, 2-byte deltas.
    B8D4 = 4,       ///< 8-byte words, 4-byte deltas.
    B4D1 = 5,       ///< 4-byte words, 1-byte deltas.
    B4D2 = 6,       ///< 4-byte words, 2-byte deltas.
    B2D1 = 7,       ///< 2-byte words, 1-byte deltas.
    Uncompressed = 8,
    NumEncodings = 9,
};

/** Word size in bytes for a base-delta encoding. */
int bdiWordSize(BdiEncoding enc);

/** Delta size in bytes for a base-delta encoding. */
int bdiDeltaSize(BdiEncoding enc);

/**
 * BDI codec.
 *
 * Layout of the compressed bytes:
 *   [0]            metadata: encoding id
 *   [1..maskB]     base-select bitmask (1 bit/element; only B*D* forms)
 *   [..+wordB]     the explicit base (first non-zero element)
 *   [..]           one delta per element (vs. base or vs. zero per mask)
 *
 * Decompression is a masked vector add of deltas to the selected base,
 * exactly the operation the CABA subroutine performs on the SIMD pipeline.
 */
class BdiCodec final : public Codec
{
  public:
    std::string name() const override { return "BDI"; }
    CompressedLine compress(const std::uint8_t *line) const override;
    void decompress(const CompressedLine &cl,
                    std::uint8_t *out) const override;

    /** Paper Section 5: 1-cycle HW decompression, 5-cycle compression. */
    int hwDecompressLatency() const override { return 1; }
    int hwCompressLatency() const override { return 5; }

    SubroutineCost decompressCost(const CompressedLine &cl) const override;
    SubroutineCost compressCost() const override;

    /**
     * Restricts compression to one base-delta encoding plus Zeros/Repeat,
     * modelling the paper's single-encoding fast path for homogeneous
     * data (Section 4.1.2). Pass BdiEncoding::Uncompressed to disable.
     */
    void setPreferredEncoding(BdiEncoding enc) { preferred_ = enc; }

    /** Attempts exactly one base-delta encoding; internal + test hook. */
    bool tryEncode(const std::uint8_t *line, BdiEncoding enc,
                   CompressedLine *out) const;

  private:
    BdiEncoding preferred_ = BdiEncoding::Uncompressed;
};

} // namespace caba

#endif // CABA_COMPRESS_BDI_H
