/**
 * @file
 * Abstract interface for cache-line compression algorithms (paper
 * Section 4.1). A codec is a pure function pair over 64-byte lines plus a
 * cost model: hardware latencies (for the HW-BDI baselines) and an
 * assist-warp instruction budget (for the CABA designs, Section 4.1.2).
 */
#ifndef CABA_COMPRESS_CODEC_H
#define CABA_COMPRESS_CODEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace caba {

/**
 * A compressed image of one 64-byte cache line. @c bytes holds the full
 * self-describing representation (encoding metadata at the head of the
 * line, per paper Section 4.1.3), so decompress() needs no side channel.
 */
struct CompressedLine
{
    /** Compressed bytes, metadata first. Size in [1, kLineSize]. */
    std::vector<std::uint8_t> bytes;

    /** Algorithm-specific encoding id (drives AWS subroutine selection). */
    int encoding = 0;

    /** Compressed size in bytes. */
    int size() const { return static_cast<int>(bytes.size()); }

    /** True when the codec stored the line verbatim. */
    bool isUncompressed() const { return size() >= kLineSize; }

    /** DRAM bursts needed to move this line (paper Section 4.3.2). */
    int bursts() const
    {
        return static_cast<int>(divCeil(static_cast<std::uint64_t>(size()),
                                        kBurstSize));
    }
};

/**
 * Instruction budget of one assist-warp subroutine invocation; used by the
 * CABA timing model to synthesize the subroutine issued into the pipeline.
 */
struct SubroutineCost
{
    int alu_ops = 0;    ///< SIMD ALU instructions (full-warp issue slots).
    int mem_ops = 0;    ///< LD/ST pipeline instructions (L1-local).
};

/** Interface implemented by BDI, FPC and C-Pack. */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Human-readable algorithm name ("BDI", "FPC", "C-Pack"). */
    virtual std::string name() const = 0;

    /**
     * Compresses a 64-byte line. Falls back to a verbatim copy when no
     * encoding shrinks the line (result.isUncompressed() == true).
     */
    virtual CompressedLine compress(const std::uint8_t *line) const = 0;

    /** Expands @p cl into the 64-byte buffer @p out. */
    virtual void decompress(const CompressedLine &cl,
                            std::uint8_t *out) const = 0;

    /** Dedicated-hardware decompression latency in core cycles. */
    virtual int hwDecompressLatency() const = 0;

    /** Dedicated-hardware compression latency in core cycles. */
    virtual int hwCompressLatency() const = 0;

    /** Assist-warp instruction budget to decompress @p cl. */
    virtual SubroutineCost decompressCost(const CompressedLine &cl) const = 0;

    /** Assist-warp instruction budget to compress one line. */
    virtual SubroutineCost compressCost() const = 0;
};

} // namespace caba

#endif // CABA_COMPRESS_CODEC_H
