/**
 * @file
 * MSB-first bit packing helpers for the variable-length codecs (FPC and
 * C-Pack), whose compressed words are not byte aligned.
 */
#ifndef CABA_COMPRESS_BITSTREAM_H
#define CABA_COMPRESS_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "common/log.h"

namespace caba {

/** Appends fields of up to 32 bits to a growing byte vector. */
class BitWriter
{
  public:
    /** Appends the low @p bits bits of @p value, MSB first. */
    void
    put(std::uint32_t value, int bits)
    {
        CABA_CHECK(bits >= 0 && bits <= 32, "bad field width");
        // Byte-at-a-time: peel off the highest-order chunk that fits in
        // the current partially-filled byte, then whole bytes.
        while (bits > 0) {
            const int off = bit_count_ & 7;
            if (off == 0)
                bytes_.push_back(0);
            const int take = bits < 8 - off ? bits : 8 - off;
            const std::uint32_t chunk =
                (value >> (bits - take)) & ((1u << take) - 1u);
            bytes_.back() |= static_cast<std::uint8_t>(
                chunk << (8 - off - take));
            bit_count_ += take;
            bits -= take;
        }
    }

    /** Total bits written so far. */
    int bitCount() const { return bit_count_; }

    /** The packed bytes (last byte zero-padded). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    int bit_count_ = 0;
};

/** Reads MSB-first fields from a byte buffer. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, int size_bytes)
        : data_(data), size_bits_(size_bytes * 8)
    {}

    /** Reads the next @p bits bits as an unsigned value. */
    std::uint32_t
    get(int bits)
    {
        CABA_CHECK(bits >= 0 && bits <= 32, "bad field width");
        CABA_CHECK(pos_ + bits <= size_bits_, "bitstream overrun");
        // Byte-at-a-time mirror of BitWriter::put.
        std::uint32_t v = 0;
        int left = bits;
        while (left > 0) {
            const int off = pos_ & 7;
            const int take = left < 8 - off ? left : 8 - off;
            const std::uint32_t chunk =
                (static_cast<std::uint32_t>(data_[pos_ >> 3]) >>
                 (8 - off - take)) &
                ((1u << take) - 1u);
            v = (v << take) | chunk;
            pos_ += take;
            left -= take;
        }
        return v;
    }

    int position() const { return pos_; }

  private:
    const std::uint8_t *data_;
    int size_bits_;
    int pos_ = 0;
};

} // namespace caba

#endif // CABA_COMPRESS_BITSTREAM_H
