/**
 * @file
 * MSB-first bit packing helpers for the variable-length codecs (FPC and
 * C-Pack), whose compressed words are not byte aligned.
 */
#ifndef CABA_COMPRESS_BITSTREAM_H
#define CABA_COMPRESS_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "common/log.h"

namespace caba {

/** Appends fields of up to 32 bits to a growing byte vector. */
class BitWriter
{
  public:
    /** Appends the low @p bits bits of @p value, MSB first. */
    void
    put(std::uint32_t value, int bits)
    {
        CABA_CHECK(bits >= 0 && bits <= 32, "bad field width");
        for (int i = bits - 1; i >= 0; --i)
            putBit((value >> i) & 1);
    }

    /** Total bits written so far. */
    int bitCount() const { return bit_count_; }

    /** The packed bytes (last byte zero-padded). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    void
    putBit(std::uint32_t b)
    {
        const int off = bit_count_ & 7;
        if (off == 0)
            bytes_.push_back(0);
        bytes_.back() |= static_cast<std::uint8_t>(b << (7 - off));
        ++bit_count_;
    }

    std::vector<std::uint8_t> bytes_;
    int bit_count_ = 0;
};

/** Reads MSB-first fields from a byte buffer. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, int size_bytes)
        : data_(data), size_bits_(size_bytes * 8)
    {}

    /** Reads the next @p bits bits as an unsigned value. */
    std::uint32_t
    get(int bits)
    {
        CABA_CHECK(bits >= 0 && bits <= 32, "bad field width");
        CABA_CHECK(pos_ + bits <= size_bits_, "bitstream overrun");
        std::uint32_t v = 0;
        for (int i = 0; i < bits; ++i) {
            const int p = pos_ + i;
            v = (v << 1) | ((data_[p >> 3] >> (7 - (p & 7))) & 1);
        }
        pos_ += bits;
        return v;
    }

    int position() const { return pos_; }

  private:
    const std::uint8_t *data_;
    int size_bits_;
    int pos_ = 0;
};

} // namespace caba

#endif // CABA_COMPRESS_BITSTREAM_H
