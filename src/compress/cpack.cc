#include "compress/cpack.h"

#include <array>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"
#include "compress/bitstream.h"

namespace caba {

namespace {

constexpr int kWordsPerLine = kLineSize / 4;
constexpr std::uint8_t kMetaRaw = 0;
constexpr std::uint8_t kMetaCpack = 1;

/** FIFO dictionary shared (by construction order) by both directions. */
class Dict
{
  public:
    int
    size() const
    {
        return count_;
    }

    std::uint32_t at(int i) const { return entries_[i]; }

    void
    push(std::uint32_t w)
    {
        entries_[head_] = w;
        head_ = (head_ + 1) % CpackCodec::kDictEntries;
        if (count_ < CpackCodec::kDictEntries)
            ++count_;
    }

    /** Index of a full match, or -1. */
    int
    findFull(std::uint32_t w) const
    {
        for (int i = 0; i < count_; ++i)
            if (entries_[i] == w)
                return i;
        return -1;
    }

    /** Index whose upper @p bytes bytes match @p w's, or -1. */
    int
    findPartial(std::uint32_t w, int bytes) const
    {
        const std::uint32_t mask = bytes == 3 ? 0xFFFFFF00u : 0xFFFF0000u;
        for (int i = 0; i < count_; ++i)
            if ((entries_[i] & mask) == (w & mask))
                return i;
        return -1;
    }

  private:
    std::array<std::uint32_t, CpackCodec::kDictEntries> entries_{};
    int head_ = 0;
    int count_ = 0;
};

} // namespace

CompressedLine
CpackCodec::compress(const std::uint8_t *line) const
{
    BitWriter bw;
    Dict dict;
    for (int i = 0; i < kWordsPerLine; ++i) {
        const auto w = static_cast<std::uint32_t>(loadLe(line + i * 4, 4));
        if (w == 0) {
            bw.put(0b00, 2);
            continue;
        }
        if ((w & 0xFFFFFF00u) == 0) {
            bw.put(0b1101, 4);
            bw.put(w & 0xFF, 8);
            continue;
        }
        int idx = dict.findFull(w);
        if (idx >= 0) {
            bw.put(0b10, 2);
            bw.put(static_cast<std::uint32_t>(idx), 4);
            continue;
        }
        idx = dict.findPartial(w, 3);
        if (idx >= 0) {
            bw.put(0b1110, 4);
            bw.put(static_cast<std::uint32_t>(idx), 4);
            bw.put(w & 0xFF, 8);
            continue;
        }
        idx = dict.findPartial(w, 2);
        if (idx >= 0) {
            bw.put(0b1100, 4);
            bw.put(static_cast<std::uint32_t>(idx), 4);
            bw.put(w & 0xFFFF, 16);
            continue;
        }
        bw.put(0b01, 2);
        bw.put(w, 32);
        dict.push(w);
    }

    CompressedLine cl;
    const int packed = 1 + static_cast<int>(bw.bytes().size());
    if (packed >= kLineSize) {
        cl.encoding = kMetaRaw;
        cl.bytes.assign(kLineSize, 0);
        std::memcpy(cl.bytes.data(), line, kLineSize);
        return cl;
    }
    cl.encoding = kMetaCpack;
    cl.bytes.reserve(packed);
    cl.bytes.push_back(kMetaCpack);
    cl.bytes.insert(cl.bytes.end(), bw.bytes().begin(), bw.bytes().end());
    return cl;
}

void
CpackCodec::decompress(const CompressedLine &cl, std::uint8_t *out) const
{
    if (cl.encoding == kMetaRaw) {
        CABA_CHECK(cl.size() == kLineSize, "bad raw C-Pack line");
        std::memcpy(out, cl.bytes.data(), kLineSize);
        return;
    }
    BitReader br(cl.bytes.data() + 1, cl.size() - 1);
    Dict dict;
    for (int i = 0; i < kWordsPerLine; ++i) {
        std::uint32_t w = 0;
        if (br.get(1) == 0) {                   // 0x
            if (br.get(1) == 0) {               // 00 zzzz
                w = 0;
            } else {                            // 01 xxxx
                w = br.get(32);
                dict.push(w);
            }
        } else if (br.get(1) == 0) {            // 10 mmmm
            const int idx = static_cast<int>(br.get(4));
            CABA_CHECK(idx < dict.size(), "C-Pack dict index out of range");
            w = dict.at(idx);
        } else {                                // 11xx
            const std::uint32_t sub = br.get(2);
            if (sub == 0b00) {                  // 1100 mmxx
                const int idx = static_cast<int>(br.get(4));
                CABA_CHECK(idx < dict.size(), "C-Pack dict index");
                w = (dict.at(idx) & 0xFFFF0000u) | br.get(16);
            } else if (sub == 0b01) {           // 1101 zzzx
                w = br.get(8);
            } else if (sub == 0b10) {           // 1110 mmmx
                const int idx = static_cast<int>(br.get(4));
                CABA_CHECK(idx < dict.size(), "C-Pack dict index");
                w = (dict.at(idx) & 0xFFFFFF00u) | br.get(8);
            } else {
                CABA_PANIC("reserved C-Pack code 1111");
            }
        }
        storeLe(out + i * 4, 4, w);
    }
}

SubroutineCost
CpackCodec::decompressCost(const CompressedLine &cl) const
{
    // Dictionary reconstruction serializes decode; costliest of the three
    // algorithms per invocation (paper Section 4.1.3).
    if (cl.encoding == kMetaRaw)
        return {0, 0};
    return {8, 2};
}

SubroutineCost
CpackCodec::compressCost() const
{
    return {10, 2};
}

} // namespace caba
