#include "compress/bdi.h"

#include <array>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"

namespace caba {

namespace {

/** Base-delta encodings tried in order of decreasing savings. */
constexpr std::array<BdiEncoding, 6> kBaseDeltaOrder = {
    BdiEncoding::B8D1, BdiEncoding::B4D1, BdiEncoding::B8D2,
    BdiEncoding::B2D1, BdiEncoding::B4D2, BdiEncoding::B8D4,
};

bool
lineIsZero(const std::uint8_t *line)
{
    std::uint64_t acc = 0;
    for (int i = 0; i < kLineSize; i += 8)
        acc |= loadLe(line + i, 8);
    return acc == 0;
}

bool
lineIsRepeated8(const std::uint8_t *line)
{
    // Byte-periodic with period 8 == every aligned 8-byte word equals
    // the first one (kLineSize is a multiple of 8).
    const std::uint64_t first = loadLe(line, 8);
    std::uint64_t diff = 0;
    for (int i = 8; i < kLineSize; i += 8)
        diff |= loadLe(line + i, 8) ^ first;
    return diff == 0;
}

} // namespace

int
bdiWordSize(BdiEncoding enc)
{
    switch (enc) {
      case BdiEncoding::B8D1:
      case BdiEncoding::B8D2:
      case BdiEncoding::B8D4:
        return 8;
      case BdiEncoding::B4D1:
      case BdiEncoding::B4D2:
        return 4;
      case BdiEncoding::B2D1:
        return 2;
      default:
        CABA_PANIC("word size queried for non base-delta encoding");
    }
}

int
bdiDeltaSize(BdiEncoding enc)
{
    switch (enc) {
      case BdiEncoding::B8D1:
      case BdiEncoding::B4D1:
      case BdiEncoding::B2D1:
        return 1;
      case BdiEncoding::B8D2:
      case BdiEncoding::B4D2:
        return 2;
      case BdiEncoding::B8D4:
        return 4;
      default:
        CABA_PANIC("delta size queried for non base-delta encoding");
    }
}

bool
BdiCodec::tryEncode(const std::uint8_t *line, BdiEncoding enc,
                    CompressedLine *out) const
{
    const int word_b = bdiWordSize(enc);
    const int delta_b = bdiDeltaSize(enc);
    const int n = kLineSize / word_b;
    const int mask_b = n / 8;

    // Pick the first non-zero element as the explicit base; an implicit
    // zero base covers small immediates (paper Section 4.1.1).
    std::uint64_t base = 0;
    bool have_base = false;
    std::array<std::uint64_t, 64> vals{};
    for (int i = 0; i < n; ++i) {
        vals[i] = loadLe(line + i * word_b, word_b);
        if (!have_base && vals[i] != 0) {
            base = vals[i];
            have_base = true;
        }
    }

    // Deltas are word-width modular differences (the adder that
    // reconstructs values truncates to the word size, so a delta that
    // wraps the signed boundary is still exact).
    const std::uint64_t word_mask =
        word_b == 8 ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << (8 * word_b)) - 1);
    // Fixed-trip, branch-free accumulation (SIMD-friendly: a misfit
    // element clears `ok` instead of early-exiting the loop).
    std::array<std::int64_t, 64> delta{};
    std::uint64_t use_base_mask = 0;
    bool ok = true;
    for (int i = 0; i < n; ++i) {
        const std::int64_t d_base =
            signExtend((vals[i] - base) & word_mask, word_b);
        const std::int64_t d_zero = signExtend(vals[i], word_b);
        const bool base_fits = have_base && fitsSigned(d_base, delta_b);
        const bool zero_fits = fitsSigned(d_zero, delta_b);
        delta[i] = base_fits ? d_base : d_zero;
        use_base_mask |= base_fits ? std::uint64_t{1} << i : 0;
        ok = ok && (base_fits || zero_fits);
    }
    if (!ok)
        return false;

    const int total = 1 + mask_b + word_b + n * delta_b;
    if (total >= kLineSize)
        return false;

    out->encoding = static_cast<int>(enc);
    out->bytes.assign(static_cast<std::size_t>(total), 0);
    std::uint8_t *p = out->bytes.data();
    p[0] = static_cast<std::uint8_t>(enc);
    storeLe(p + 1, mask_b, use_base_mask);
    storeLe(p + 1 + mask_b, word_b, base);
    for (int i = 0; i < n; ++i) {
        storeLe(p + 1 + mask_b + word_b + i * delta_b, delta_b,
                static_cast<std::uint64_t>(delta[i]));
    }
    return true;
}

CompressedLine
BdiCodec::compress(const std::uint8_t *line) const
{
    CompressedLine cl;
    if (lineIsZero(line)) {
        cl.encoding = static_cast<int>(BdiEncoding::Zeros);
        cl.bytes = {static_cast<std::uint8_t>(BdiEncoding::Zeros)};
        return cl;
    }
    if (lineIsRepeated8(line)) {
        cl.encoding = static_cast<int>(BdiEncoding::Repeat);
        cl.bytes.assign(9, 0);
        cl.bytes[0] = static_cast<std::uint8_t>(BdiEncoding::Repeat);
        std::memcpy(cl.bytes.data() + 1, line, 8);
        return cl;
    }

    if (preferred_ != BdiEncoding::Uncompressed) {
        if (tryEncode(line, preferred_, &cl))
            return cl;
    } else {
        CompressedLine best;
        for (BdiEncoding enc : kBaseDeltaOrder) {
            CompressedLine cand;
            if (tryEncode(line, enc, &cand) &&
                (best.bytes.empty() || cand.size() < best.size())) {
                best = std::move(cand);
            }
        }
        if (!best.bytes.empty())
            return best;
    }

    cl.encoding = static_cast<int>(BdiEncoding::Uncompressed);
    cl.bytes.assign(kLineSize, 0);
    std::memcpy(cl.bytes.data(), line, kLineSize);
    return cl;
}

void
BdiCodec::decompress(const CompressedLine &cl, std::uint8_t *out) const
{
    const auto enc = static_cast<BdiEncoding>(cl.encoding);
    const std::uint8_t *p = cl.bytes.data();
    switch (enc) {
      case BdiEncoding::Zeros:
        std::memset(out, 0, kLineSize);
        return;
      case BdiEncoding::Repeat:
        for (int i = 0; i < kLineSize; i += 8)
            std::memcpy(out + i, p + 1, 8);
        return;
      case BdiEncoding::Uncompressed:
        CABA_CHECK(cl.size() == kLineSize, "bad uncompressed BDI line");
        std::memcpy(out, p, kLineSize);
        return;
      default:
        break;
    }

    const int word_b = bdiWordSize(enc);
    const int delta_b = bdiDeltaSize(enc);
    const int n = kLineSize / word_b;
    const int mask_b = n / 8;
    CABA_CHECK(cl.size() == 1 + mask_b + word_b + n * delta_b,
               "BDI compressed size mismatch");

    const std::uint64_t use_base_mask = loadLe(p + 1, mask_b);
    const std::int64_t base = signExtend(loadLe(p + 1 + mask_b, word_b),
                                         word_b);
    for (int i = 0; i < n; ++i) {
        const std::int64_t d = signExtend(
            loadLe(p + 1 + mask_b + word_b + i * delta_b, delta_b), delta_b);
        const std::int64_t v = (use_base_mask >> i & 1) ? base + d : d;
        storeLe(out + i * word_b, word_b, static_cast<std::uint64_t>(v));
    }
}

SubroutineCost
BdiCodec::decompressCost(const CompressedLine &cl) const
{
    // Paper Section 4.1.2: load compressed words into assist-warp
    // registers, masked vector add of deltas to bases, store the expanded
    // line back to the cache. One 32-wide ALU op covers 32 deltas; 8-byte
    // words need only 8 lanes but still one issue slot.
    const auto enc = static_cast<BdiEncoding>(cl.encoding);
    switch (enc) {
      case BdiEncoding::Zeros:
        return {1, 1};          // splat zero + store line
      case BdiEncoding::Repeat:
        return {1, 2};          // load value, splat + store
      case BdiEncoding::Uncompressed:
        return {0, 0};          // never deployed
      default: {
        const int n = kLineSize / bdiWordSize(enc);
        const int add_ops = divCeil(n, kWarpSize);
        // load compressed line (1), unpack deltas (1), masked add(s),
        // store uncompressed line (1 wide store).
        return {1 + add_ops, 2};
      }
    }
}

SubroutineCost
BdiCodec::compressCost() const
{
    // Test one encoding in the common case (Section 4.1.2): load line,
    // compute deltas, per-lane fit predicate + global AND reduction, pack,
    // store. Charged whether or not the encoding succeeds.
    return {4, 2};
}

} // namespace caba
