#include "compress/design.h"

#include <string>

namespace caba {

DesignConfig
DesignConfig::base()
{
    return DesignConfig{};
}

DesignConfig
DesignConfig::hwMem(Algorithm algo)
{
    DesignConfig d;
    d.name = "HW-" + std::string(algorithmName(algo)) + "-Mem";
    d.algo = algo;
    d.mem_compressed = true;
    d.decompress = DecompressSite::MemCtrl;
    d.md_overhead = true;
    return d;
}

DesignConfig
DesignConfig::hw(Algorithm algo)
{
    DesignConfig d;
    d.name = "HW-" + std::string(algorithmName(algo));
    d.algo = algo;
    d.mem_compressed = true;
    d.xbar_compressed = true;
    d.decompress = DecompressSite::L1Hw;
    d.md_overhead = true;
    return d;
}

DesignConfig
DesignConfig::caba(Algorithm algo)
{
    DesignConfig d;
    d.name = "CABA-" + std::string(algorithmName(algo));
    d.algo = algo;
    d.mem_compressed = true;
    d.xbar_compressed = true;
    d.decompress = DecompressSite::L1Caba;
    d.caba_compress_stores = true;
    d.md_overhead = true;
    return d;
}

DesignConfig
DesignConfig::ideal(Algorithm algo)
{
    DesignConfig d;
    d.name = "Ideal-" + std::string(algorithmName(algo));
    d.algo = algo;
    d.mem_compressed = true;
    d.xbar_compressed = true;
    d.decompress = DecompressSite::Free;
    d.md_overhead = false;
    return d;
}

DesignConfig
DesignConfig::cabaCompressedCache(int l1_factor, int l2_factor)
{
    DesignConfig d = caba(Algorithm::Bdi);
    d.l1_tag_factor = l1_factor;
    d.l2_tag_factor = l2_factor;
    if (l1_factor > 1)
        d.name = "CABA-L1-" + std::to_string(l1_factor) + "x";
    if (l2_factor > 1)
        d.name = "CABA-L2-" + std::to_string(l2_factor) + "x";
    return d;
}

} // namespace caba
