#include "compress/fpc.h"

#include <cstring>

#include "common/bitops.h"
#include "common/log.h"
#include "compress/bitstream.h"

namespace caba {

namespace {

constexpr int kWordsPerLine = kLineSize / 4;
constexpr std::uint8_t kMetaRaw = 0;
constexpr std::uint8_t kMetaFpc = 1;

/** Classifies one word; returns its pattern and payload. */
FpcPattern
classify(std::uint32_t w, std::uint32_t *payload, int *payload_bits)
{
    const auto s = static_cast<std::int32_t>(w);
    if (s >= -8 && s < 8) {                         // covers zero too
        *payload = w & 0xF;
        *payload_bits = 4;
        return FpcPattern::Se4;
    }
    if (s >= -128 && s < 128) {
        *payload = w & 0xFF;
        *payload_bits = 8;
        return FpcPattern::Se8;
    }
    if (s >= -32768 && s < 32768) {
        *payload = w & 0xFFFF;
        *payload_bits = 16;
        return FpcPattern::Se16;
    }
    if ((w & 0xFFFF) == 0) {
        *payload = w >> 16;
        *payload_bits = 16;
        return FpcPattern::ZeroPadHalf;
    }
    const auto lo = static_cast<std::int16_t>(w & 0xFFFF);
    const auto hi = static_cast<std::int16_t>(w >> 16);
    if (lo >= -128 && lo < 128 && hi >= -128 && hi < 128) {
        *payload = ((w >> 8) & 0xFF00) | (w & 0xFF);
        *payload_bits = 16;
        return FpcPattern::TwoSeBytes;
    }
    const std::uint32_t b = w & 0xFF;
    if (w == (b * 0x01010101u)) {
        *payload = b;
        *payload_bits = 8;
        return FpcPattern::RepBytes;
    }
    *payload = w;
    *payload_bits = 32;
    return FpcPattern::Raw;
}

} // namespace

CompressedLine
FpcCodec::compress(const std::uint8_t *line) const
{
    BitWriter bw;
    int i = 0;
    while (i < kWordsPerLine) {
        const auto w = static_cast<std::uint32_t>(loadLe(line + i * 4, 4));
        if (w == 0) {
            int run = 1;
            while (i + run < kWordsPerLine && run < 8 &&
                   loadLe(line + (i + run) * 4, 4) == 0) {
                ++run;
            }
            bw.put(static_cast<std::uint32_t>(FpcPattern::ZeroRun), 3);
            bw.put(static_cast<std::uint32_t>(run - 1), 3);
            i += run;
            continue;
        }
        std::uint32_t payload = 0;
        int bits = 0;
        const FpcPattern pat = classify(w, &payload, &bits);
        bw.put(static_cast<std::uint32_t>(pat), 3);
        bw.put(payload, bits);
        ++i;
    }

    CompressedLine cl;
    const int packed = 1 + static_cast<int>(bw.bytes().size());
    if (packed >= kLineSize) {
        cl.encoding = kMetaRaw;
        cl.bytes.assign(kLineSize, 0);
        std::memcpy(cl.bytes.data(), line, kLineSize);
        return cl;
    }
    cl.encoding = kMetaFpc;
    cl.bytes.reserve(packed);
    cl.bytes.push_back(kMetaFpc);
    cl.bytes.insert(cl.bytes.end(), bw.bytes().begin(), bw.bytes().end());
    return cl;
}

void
FpcCodec::decompress(const CompressedLine &cl, std::uint8_t *out) const
{
    if (cl.encoding == kMetaRaw) {
        CABA_CHECK(cl.size() == kLineSize, "bad raw FPC line");
        std::memcpy(out, cl.bytes.data(), kLineSize);
        return;
    }
    BitReader br(cl.bytes.data() + 1, cl.size() - 1);
    int i = 0;
    while (i < kWordsPerLine) {
        const auto pat = static_cast<FpcPattern>(br.get(3));
        std::uint32_t w = 0;
        switch (pat) {
          case FpcPattern::ZeroRun: {
            const int run = static_cast<int>(br.get(3)) + 1;
            for (int k = 0; k < run; ++k)
                storeLe(out + (i + k) * 4, 4, 0);
            i += run;
            continue;
          }
          case FpcPattern::Se4: {
            const std::uint32_t p = br.get(4);
            w = (p & 0x8) ? (p | 0xFFFFFFF0u) : p;
            break;
          }
          case FpcPattern::Se8:
            w = static_cast<std::uint32_t>(signExtend(br.get(8), 1));
            break;
          case FpcPattern::Se16:
            w = static_cast<std::uint32_t>(signExtend(br.get(16), 2));
            break;
          case FpcPattern::ZeroPadHalf:
            w = br.get(16) << 16;
            break;
          case FpcPattern::TwoSeBytes: {
            const std::uint32_t p = br.get(16);
            const auto hi = static_cast<std::uint32_t>(
                signExtend(p >> 8, 1)) & 0xFFFFu;
            const auto lo = static_cast<std::uint32_t>(
                signExtend(p & 0xFF, 1)) & 0xFFFFu;
            w = (hi << 16) | lo;
            break;
          }
          case FpcPattern::RepBytes:
            w = br.get(8) * 0x01010101u;
            break;
          case FpcPattern::Raw:
            w = br.get(32);
            break;
        }
        storeLe(out + i * 4, 4, w);
        ++i;
    }
}

SubroutineCost
FpcCodec::decompressCost(const CompressedLine &cl) const
{
    // Variable-length words serialize the unpack: the assist warp walks
    // prefix groups with the coalescing/address-generation logic (paper
    // Section 4.1.3), costing more issue slots than BDI's masked add.
    if (cl.encoding == kMetaRaw)
        return {0, 0};
    return {6, 2};
}

SubroutineCost
FpcCodec::compressCost() const
{
    return {8, 2};
}

} // namespace caba
