/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood, UW-Madison TR 2004),
 * the second algorithm the paper maps onto CABA (Section 4.1.3). Each
 * 32-bit word gets a 3-bit prefix naming one of eight frequent patterns,
 * followed by the pattern's payload; runs of zero words collapse.
 */
#ifndef CABA_COMPRESS_FPC_H
#define CABA_COMPRESS_FPC_H

#include "compress/codec.h"

namespace caba {

/** FPC word patterns (3-bit prefixes, in the TR's order). */
enum class FpcPattern : int {
    ZeroRun = 0,        ///< 1-8 consecutive zero words (3-bit length).
    Se4 = 1,            ///< 4-bit sign-extended word.
    Se8 = 2,            ///< 8-bit sign-extended word.
    Se16 = 3,           ///< 16-bit sign-extended word.
    ZeroPadHalf = 4,    ///< Significant upper halfword, zero lower half.
    TwoSeBytes = 5,     ///< Two halfwords, each a sign-extended byte.
    RepBytes = 6,       ///< Word with all four bytes identical.
    Raw = 7,            ///< Uncompressed 32-bit word.
};

/**
 * FPC codec. Compressed layout: one metadata byte (1 = FPC bitstream,
 * 0 = verbatim line) followed by the MSB-first bitstream.
 */
class FpcCodec final : public Codec
{
  public:
    std::string name() const override { return "FPC"; }
    CompressedLine compress(const std::uint8_t *line) const override;
    void decompress(const CompressedLine &cl,
                    std::uint8_t *out) const override;

    /** Five-stage decompression pipeline in the FPC TR. */
    int hwDecompressLatency() const override { return 5; }
    int hwCompressLatency() const override { return 8; }

    SubroutineCost decompressCost(const CompressedLine &cl) const override;
    SubroutineCost compressCost() const override;
};

} // namespace caba

#endif // CABA_COMPRESS_FPC_H
