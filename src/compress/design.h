/**
 * @file
 * The five evaluated designs of Section 6 (plus the Figure 13 cache-
 * compression variants) expressed as one configuration struct: where
 * data is compressed (DRAM / interconnect / caches), where it is
 * decompressed (dedicated MC logic, dedicated L1-fill logic, CABA assist
 * warps, or for free), and which overheads apply.
 */
#ifndef CABA_COMPRESS_DESIGN_H
#define CABA_COMPRESS_DESIGN_H

#include <string>

#include "compress/registry.h"

namespace caba {

/** Who expands compressed fills, and at what cost. */
enum class DecompressSite : int {
    None = 0,   ///< No compression anywhere (Base).
    MemCtrl,    ///< Dedicated logic at the MC (HW-<algo>-Mem).
    L1Hw,       ///< Dedicated logic at L1 fill (HW-<algo>).
    L1Caba,     ///< Assist warps at the core (CABA-<algo>).
    Free,       ///< Zero-cost (Ideal-<algo>).
};

/** One evaluated design point. */
struct DesignConfig
{
    std::string name = "Base";
    Algorithm algo = Algorithm::None;

    /** DRAM transfers move compressed bursts. */
    bool mem_compressed = false;

    /** Interconnect packets and L2 payloads are compressed. */
    bool xbar_compressed = false;

    DecompressSite decompress = DecompressSite::None;

    /** Stores are compressed before leaving the SM by assist warps. */
    bool caba_compress_stores = false;

    /** MD-cache misses cost an extra DRAM metadata access. */
    bool md_overhead = false;

    /** Compressed-cache tag multipliers (Section 6.5); 1 = conventional. */
    int l1_tag_factor = 1;
    int l2_tag_factor = 1;

    bool usesCompression() const { return algo != Algorithm::None; }
    bool usesCaba() const { return decompress == DecompressSite::L1Caba; }

    // ---- Named design points from the paper ----

    /** (i) Baseline with no compression. */
    static DesignConfig base();

    /** (ii) HW memory-bandwidth-only compression (prior work [66,72]). */
    static DesignConfig hwMem(Algorithm algo = Algorithm::Bdi);

    /** (iii) HW interconnect + memory compression. */
    static DesignConfig hw(Algorithm algo = Algorithm::Bdi);

    /** (iv) CABA with all assist-warp overheads. */
    static DesignConfig caba(Algorithm algo = Algorithm::Bdi);

    /** (v) Ideal compression with no overheads. */
    static DesignConfig ideal(Algorithm algo = Algorithm::Bdi);

    /** Figure 13: CABA with a compressed L1 or L2 (2x/4x tags). */
    static DesignConfig cabaCompressedCache(int l1_factor, int l2_factor);
};

} // namespace caba

#endif // CABA_COMPRESS_DESIGN_H
