/**
 * @file
 * Algorithm enumeration, singleton codec registry, and the idealized
 * BestOfAll selector from Section 6.3 (per line, pick whichever of BDI /
 * FPC / C-Pack compresses best, with no selection overhead).
 */
#ifndef CABA_COMPRESS_REGISTRY_H
#define CABA_COMPRESS_REGISTRY_H

#include "compress/codec.h"

namespace caba {

/** Compression algorithm selector used throughout configs and benches. */
enum class Algorithm : int {
    None = 0,
    Bdi = 1,
    Fpc = 2,
    CPack = 3,
    BestOfAll = 4,
};

/** Printable name of @p algo. */
const char *algorithmName(Algorithm algo);

/**
 * Returns the process-wide codec instance for @p algo. @p algo must not
 * be Algorithm::None. Instances are stateless and shareable.
 */
const Codec &getCodec(Algorithm algo);

/**
 * Per-line best-of {BDI, FPC, C-Pack}. The winning algorithm's id is
 * folded into CompressedLine::encoding (algo*256 + inner encoding), which
 * models the paper's idealized no-overhead selection: the choice lives in
 * the per-line metadata, not in the transferred bytes.
 */
class BestOfAllCodec final : public Codec
{
  public:
    std::string name() const override { return "BestOfAll"; }
    CompressedLine compress(const std::uint8_t *line) const override;
    void decompress(const CompressedLine &cl,
                    std::uint8_t *out) const override;
    int hwDecompressLatency() const override;
    int hwCompressLatency() const override;
    SubroutineCost decompressCost(const CompressedLine &cl) const override;
    SubroutineCost compressCost() const override;

    /** Splits a folded encoding back into (algorithm, inner encoding). */
    static Algorithm innerAlgorithm(int folded_encoding);
    static int innerEncoding(int folded_encoding);
};

} // namespace caba

#endif // CABA_COMPRESS_REGISTRY_H
