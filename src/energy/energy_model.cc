#include "energy/energy_model.h"

namespace caba {

double
EnergyBreakdown::watts(Cycle cycles, double core_ghz) const
{
    if (cycles == 0)
        return 0.0;
    const double seconds = static_cast<double>(cycles) / (core_ghz * 1e9);
    return total * 1e-3 / seconds;
}

EnergyBreakdown
computeEnergy(const StatSet &s, Cycle cycles, const EnergyParams &p)
{
    auto n = [&](const char *name) {
        return static_cast<double>(s.get(name));
    };

    EnergyBreakdown e;

    const double issued = n("sm_issued_alu") + n("sm_issued_sfu") +
                          n("sm_issued_shmem") + n("sm_issued_branches") +
                          n("sm_issued_global_loads") +
                          n("sm_issued_global_stores") +
                          n("sm_assist_instructions");
    e.core = p.alu_op * (n("sm_issued_alu") + n("sm_assist_alu_issued")) +
             p.sfu_op * n("sm_issued_sfu") +
             p.shmem_op * (n("sm_issued_shmem") +
                           n("sm_assist_mem_issued")) +
             p.rf_access * issued;

    e.l1 = p.l1_access * (n("l1_hits") + n("l1_misses"));
    e.l2 = p.l2_access * (n("l2_hits") + n("l2_misses"));
    e.xbar = p.xbar_flit * (n("xbar_req_flits") + n("xbar_reply_flits"));
    e.dram = p.dram_burst * n("dram_bursts") +
             p.dram_activate * n("dram_activates") +
             p.dram_static * static_cast<double>(cycles);

    e.compression =
        p.md_cache_access * n("part_md_lookups") +
        p.hw_codec_line * (n("part_mc_decompressions") +
                           n("part_mc_compressions") +
                           n("sm_hw_l1_decompressions") +
                           n("sm_hw_store_compressions")) +
        p.aws_fetch * n("sm_assist_instructions");

    e.static_energy = p.chip_static * static_cast<double>(cycles);

    e.total = e.core + e.l1 + e.l2 + e.xbar + e.dram + e.compression +
              e.static_energy;

    // report in millijoules
    const double to_mj = 1e-9;
    e.core *= to_mj;
    e.l1 *= to_mj;
    e.l2 *= to_mj;
    e.xbar *= to_mj;
    e.dram *= to_mj;
    e.compression *= to_mj;
    e.static_energy *= to_mj;
    e.total *= to_mj;
    return e;
}

} // namespace caba
