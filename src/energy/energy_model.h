/**
 * @file
 * Event-count energy model in the spirit of GPUWattch (paper Section 5):
 * dynamic energy = per-event constants x counts gathered by the
 * simulator; static energy = per-cycle constants x runtime. Constants
 * are in picojoules, in the published ballpark for a 32nm-class GPU, and
 * the figures only use ratios between designs.
 */
#ifndef CABA_ENERGY_ENERGY_MODEL_H
#define CABA_ENERGY_ENERGY_MODEL_H

#include "common/stats.h"
#include "common/types.h"

namespace caba {

/** Per-event and per-cycle energy constants (picojoules). */
struct EnergyParams
{
    // core dynamic, per warp instruction
    double alu_op = 150.0;
    double sfu_op = 500.0;
    double shmem_op = 150.0;
    double rf_access = 100.0;       ///< Charged per issued instruction.

    // memory hierarchy, per access
    double l1_access = 300.0;
    double l2_access = 600.0;
    double xbar_flit = 500.0;
    double dram_burst = 3500.0;
    double dram_activate = 2000.0;

    // compression machinery
    double md_cache_access = 30.0;
    double hw_codec_line = 150.0;   ///< Dedicated BDI logic per line.
    double aws_fetch = 20.0;        ///< AWS read per assist instruction.

    // static, per core cycle (whole chip / DRAM background)
    double chip_static = 22000.0;
    double dram_static = 8000.0;
};

/** Per-component dynamic+static totals, in millijoules. */
struct EnergyBreakdown
{
    double core = 0.0;      ///< ALU/SFU/shmem/RF dynamic.
    double l1 = 0.0;
    double l2 = 0.0;
    double xbar = 0.0;
    double dram = 0.0;
    double compression = 0.0;   ///< MD cache + codecs + AWS overheads.
    double static_energy = 0.0;
    double total = 0.0;

    /** Average power in watts at @p core_ghz for @p cycles. */
    double watts(Cycle cycles, double core_ghz = 1.4) const;
};

/**
 * Evaluates the model over the merged run statistics. Expected counter
 * names are the ones GpuSystem::run() produces (sm_*, l1_*, part_*,
 * dram_*, xbar_*).
 */
EnergyBreakdown computeEnergy(const StatSet &stats, Cycle cycles,
                              const EnergyParams &params = {});

} // namespace caba

#endif // CABA_ENERGY_ENERGY_MODEL_H
