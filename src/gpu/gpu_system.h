/**
 * @file
 * Top-level simulated GPU (Table 1): SMs, the two crossbar directions,
 * memory partitions (L2 slice + GDDR5 channel each), the shared
 * compression model, and the run loop that advances everything one core
 * cycle at a time and aggregates the statistics every figure needs.
 *
 * The components are plumbed together as typed port bindings: each
 * SM out-queue, crossbar port and partition reply queue exposes a
 * Source/Sink face, and GpuSystem just pumps a fixed list of wires per
 * cycle. Because everything is Clocked, the run loop is event-driven by
 * default: each component sleeps until its nextWork() hint or until a
 * wire pushes traffic into it, and globally quiescent stretches (all
 * warps blocked on memory, nothing movable anywhere) fast-forward in
 * one jump — with bit-identical results either way. Set
 * CABA_EVENT_DRIVEN=0 (or GpuConfig::event_driven = false) to force the
 * legacy cycle-everything loop, and CABA_NO_FASTFORWARD=1 (or
 * GpuConfig::fast_forward = false) to disable the quiescence jump.
 */
#ifndef CABA_GPU_GPU_SYSTEM_H
#define CABA_GPU_GPU_SYSTEM_H

#include <memory>
#include <vector>

#include "caba/aws.h"
#include "common/audit.h"
#include "common/component.h"
#include "common/event_queue.h"
#include "common/prof.h"
#include "common/stats.h"
#include "energy/energy_model.h"
#include "compress/design.h"
#include "mem/backing_store.h"
#include "mem/compression_model.h"
#include "mem/partition.h"
#include "mem/xbar.h"
#include "sim/sm_core.h"

namespace caba {

/** Whole-GPU configuration (defaults = Table 1). */
struct GpuConfig
{
    int num_sms = 15;
    int num_partitions = 6;

    SmConfig sm{};
    PartitionConfig partition{};
    XbarConfig xbar{};
    CabaConfig caba{};
    ExtrasConfig extras{};

    /**
     * Off-chip bandwidth scale: 1.0 = the paper's 177.4 GB/s, 0.5 and
     * 2.0 are the Figure 1 / Figure 12 sensitivity points.
     */
    double bw_scale = 1.0;

    /** Round-trip-verify every compressed line (tests on, benches off). */
    bool verify_data = true;

    /**
     * Skip ahead over cycles in which no component can make progress
     * (guaranteed bit-identical results; the CABA_NO_FASTFORWARD
     * environment variable also disables it for A/B checks).
     */
    bool fast_forward = true;

    /**
     * Event-driven run loop: each component sleeps until its own
     * nextWork() hint or until traffic is pushed into it, instead of
     * being cycled every clock (DESIGN.md section 10). Bit-identical to
     * the walk-everything loop; CABA_EVENT_DRIVEN=0 forces the legacy
     * loop for A/B checks.
     */
    bool event_driven = true;

    /** Safety valve against a wedged simulation. */
    Cycle max_cycles = 20'000'000;

    /** Cycles between timeline samples in RunResult (0 = no timeline). */
    Cycle sample_interval = 8192;

    /** Self-consistency audits (CABA_AUDIT overrides level/period).
     *  Audits read state but never touch timing or statistics, so
     *  RunResult is bit-identical at any level. */
    AuditConfig audit{};
};

/** One point of the progress-over-time series sampled during run(). */
struct TimeSample
{
    Cycle cycle = 0;
    std::uint64_t instructions = 0; ///< Cumulative, all SMs.
    std::uint64_t dram_bursts = 0;  ///< Cumulative, all channels.
};

/** Everything the benches and tests read out of one simulation. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    double bw_utilization = 0.0;        ///< Mean DRAM data-bus busy frac.
    double compression_ratio = 1.0;     ///< Uncompressed/compressed bursts.
    double md_hit_rate = 0.0;
    CycleBreakdown breakdown;
    EnergyBreakdown energy;
    StatSet stats;                      ///< Merged, prefixed counters.
    std::vector<TimeSample> timeline;   ///< Sampled progress series.
};

/** The simulated GPU. */
class GpuSystem
{
  public:
    /**
     * @param cfg     hardware configuration
     * @param design  one of the Section 6 design points
     * @param gen     workload data generator (pristine memory image)
     */
    GpuSystem(const GpuConfig &cfg, const DesignConfig &design,
              LineGenerator gen);

    /** Launches @p warps_per_sm warps of @p kernel on every SM. */
    void launch(const KernelInfo *kernel, int warps_per_sm);

    /** Runs to completion (all warps retired, all queues drained). */
    RunResult run();

    /** Single-cycle step (exposed for tests). */
    void step();
    Cycle now() const { return now_; }
    bool done() const;

    /**
     * Seeds one deliberate bookkeeping fault (mutation self-test for
     * the audit layer; tests/test_audit.cc). Faults fire on the next
     * matching event in SM 0 / partition 0 / the request crossbar.
     */
    void injectFault(AuditFault fault);

    /**
     * Evaluates every audit invariant now. Called automatically by
     * run() (periodically at AuditLevel::Periodic, always at drain);
     * exposed so tests can audit mid-flight. Panics on failure unless
     * AuditConfig::fatal is cleared.
     */
    void runAudit(bool at_drain);

    /** Failures collected by non-fatal audits. */
    const std::vector<std::string> &auditFailures() const
    {
        return audit_.failures();
    }

    const Audit &audit() const { return audit_; }

    SmCore &sm(int i) { return *sms_[static_cast<std::size_t>(i)]; }
    MemoryPartition &partition(int i)
    {
        return *partitions_[static_cast<std::size_t>(i)];
    }
    BackingStore &backing() { return backing_; }
    CompressionModel *model() { return model_.get(); }

  private:
    int partitionOf(Addr line) const;
    void moveTraffic();

    /**
     * Jumps now_ to the earliest cycle any component reports work,
     * charging the skipped span to each component's idle accounting
     * (and emitting any timeline samples that fall inside it). A no-op
     * when some component has work this cycle.
     */
    void fastForward();

    // -- event-driven loop (see DESIGN.md section 10) --

    /** Resets per-component wake/accounting state to now_. */
    void initEventState();

    /** One cycle of the event-driven loop: cycles only due components
     *  (same phase order as step()), pumps wires with wake hooks. */
    void stepEvent();

    /** Wire phase of stepEvent(): greedy drain plus wake hooks. */
    void pumpWiresEvent();

    /** step() with per-phase wall-clock attribution (CABA_PROF). */
    void stepProfiled();

    /** Profiler component class of clocked_ index @p i. */
    prof::Comp compClassOf(std::size_t i) const;

    /** Quiescence jump over [now_, min wake): like fastForward() but
     *  reads the cached wake times instead of re-polling nextWork(),
     *  and leaves the skip accounting to the lazy catch-up. */
    void eventJump();

    /** Charges component @p i's deferred skipIdle() span up to @p to.
     *  Must run before any external push mutates a sleeping component:
     *  the span's accounting depends on its frozen pre-push state. */
    void catchUp(std::size_t i, Cycle to);

    /** Wakes wire-endpoint owner @p i for traffic moved at now_. SMs
     *  cycle before the wire phase, so they react at now_ + 1; the
     *  crossbars and partitions cycle after it and react at now_. */
    void wakeForTraffic(std::size_t i);

    /** Advances now_ by @p wake - now_ quiescent cycles, replaying the
     *  timeline-sample cadence and collapsing periodic audits (shared
     *  by fastForward() and eventJump()). */
    void advanceQuiescent(Cycle wake);

    RunResult collect() const;
    TimeSample sampleNow() const;

    GpuConfig cfg_;
    DesignConfig design_;
    Audit audit_;
    BackingStore backing_;
    std::unique_ptr<CompressionModel> model_;
    AssistWarpStore aws_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    XbarDirection req_net_;
    XbarDirection reply_net_;

    /** Port bindings pumped by moveTraffic(), in drain order: SM out ->
     *  request crossbar, crossbar -> partition, partition replies ->
     *  reply crossbar, reply crossbar -> SM. */
    std::vector<Wire<MemRequest>> wires_;

    /** Every clocked component (for done() and fast-forward), in phase
     *  order: SMs, request crossbar, reply crossbar, partitions. */
    std::vector<Clocked *> clocked_;

    /** Per-wire endpoint owners as indices into clocked_ (the component
     *  whose state a pump mutates on the take/accept side). */
    std::vector<int> wire_src_owner_;
    std::vector<int> wire_dst_owner_;

    /** Per-component wake times (event-driven loop only). */
    EventQueue eq_;

    /** First cycle not yet charged to component i's idle accounting:
     *  skipIdle() for a sleeping component is deferred until it wakes,
     *  so acct_[i] trails now_ while i sleeps. */
    std::vector<Cycle> acct_;

    Cycle now_ = 0;
    Cycle until_sample_ = 0;    ///< run()'s sampling countdown.
    Cycle until_audit_ = 0;     ///< run()'s periodic-audit countdown.
    std::vector<TimeSample> timeline_;

    /** CABA_PROF sampled at construction (common/prof.h). The profiler
     *  reads host clocks only — never simulation state — so results
     *  are bit-identical with it on or off. */
    bool prof_on_ = false;
    prof::Recorder prof_;
};

} // namespace caba

#endif // CABA_GPU_GPU_SYSTEM_H
