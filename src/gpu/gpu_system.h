/**
 * @file
 * Top-level simulated GPU (Table 1): SMs, the two crossbar directions,
 * memory partitions (L2 slice + GDDR5 channel each), the shared
 * compression model, and the run loop that advances everything one core
 * cycle at a time and aggregates the statistics every figure needs.
 *
 * The components are plumbed together as typed port bindings: each
 * SM out-queue, crossbar port and partition reply queue exposes a
 * Source/Sink face, and GpuSystem just pumps a fixed list of wires per
 * cycle. Because everything is Clocked, the run loop can also
 * fast-forward through quiescent stretches (all warps blocked on
 * memory, nothing movable anywhere) — with bit-identical results; set
 * CABA_NO_FASTFORWARD=1 (or GpuConfig::fast_forward = false) to force
 * cycle-by-cycle execution.
 */
#ifndef CABA_GPU_GPU_SYSTEM_H
#define CABA_GPU_GPU_SYSTEM_H

#include <memory>
#include <vector>

#include "caba/aws.h"
#include "common/audit.h"
#include "common/component.h"
#include "common/stats.h"
#include "energy/energy_model.h"
#include "gpu/design.h"
#include "mem/backing_store.h"
#include "mem/compression_model.h"
#include "mem/partition.h"
#include "mem/xbar.h"
#include "sim/sm_core.h"

namespace caba {

/** Whole-GPU configuration (defaults = Table 1). */
struct GpuConfig
{
    int num_sms = 15;
    int num_partitions = 6;

    SmConfig sm{};
    PartitionConfig partition{};
    XbarConfig xbar{};
    CabaConfig caba{};
    ExtrasConfig extras{};

    /**
     * Off-chip bandwidth scale: 1.0 = the paper's 177.4 GB/s, 0.5 and
     * 2.0 are the Figure 1 / Figure 12 sensitivity points.
     */
    double bw_scale = 1.0;

    /** Round-trip-verify every compressed line (tests on, benches off). */
    bool verify_data = true;

    /**
     * Skip ahead over cycles in which no component can make progress
     * (guaranteed bit-identical results; the CABA_NO_FASTFORWARD
     * environment variable also disables it for A/B checks).
     */
    bool fast_forward = true;

    /** Safety valve against a wedged simulation. */
    Cycle max_cycles = 20'000'000;

    /** Cycles between timeline samples in RunResult (0 = no timeline). */
    Cycle sample_interval = 8192;

    /** Self-consistency audits (CABA_AUDIT overrides level/period).
     *  Audits read state but never touch timing or statistics, so
     *  RunResult is bit-identical at any level. */
    AuditConfig audit{};
};

/** One point of the progress-over-time series sampled during run(). */
struct TimeSample
{
    Cycle cycle = 0;
    std::uint64_t instructions = 0; ///< Cumulative, all SMs.
    std::uint64_t dram_bursts = 0;  ///< Cumulative, all channels.
};

/** Everything the benches and tests read out of one simulation. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    double bw_utilization = 0.0;        ///< Mean DRAM data-bus busy frac.
    double compression_ratio = 1.0;     ///< Uncompressed/compressed bursts.
    double md_hit_rate = 0.0;
    CycleBreakdown breakdown;
    EnergyBreakdown energy;
    StatSet stats;                      ///< Merged, prefixed counters.
    std::vector<TimeSample> timeline;   ///< Sampled progress series.
};

/** The simulated GPU. */
class GpuSystem
{
  public:
    /**
     * @param cfg     hardware configuration
     * @param design  one of the Section 6 design points
     * @param gen     workload data generator (pristine memory image)
     */
    GpuSystem(const GpuConfig &cfg, const DesignConfig &design,
              LineGenerator gen);

    /** Launches @p warps_per_sm warps of @p kernel on every SM. */
    void launch(const KernelInfo *kernel, int warps_per_sm);

    /** Runs to completion (all warps retired, all queues drained). */
    RunResult run();

    /** Single-cycle step (exposed for tests). */
    void step();
    Cycle now() const { return now_; }
    bool done() const;

    /**
     * Seeds one deliberate bookkeeping fault (mutation self-test for
     * the audit layer; tests/test_audit.cc). Faults fire on the next
     * matching event in SM 0 / partition 0 / the request crossbar.
     */
    void injectFault(AuditFault fault);

    /**
     * Evaluates every audit invariant now. Called automatically by
     * run() (periodically at AuditLevel::Periodic, always at drain);
     * exposed so tests can audit mid-flight. Panics on failure unless
     * AuditConfig::fatal is cleared.
     */
    void runAudit(bool at_drain);

    /** Failures collected by non-fatal audits. */
    const std::vector<std::string> &auditFailures() const
    {
        return audit_.failures();
    }

    const Audit &audit() const { return audit_; }

    SmCore &sm(int i) { return *sms_[static_cast<std::size_t>(i)]; }
    MemoryPartition &partition(int i)
    {
        return *partitions_[static_cast<std::size_t>(i)];
    }
    BackingStore &backing() { return backing_; }
    CompressionModel *model() { return model_.get(); }

  private:
    int partitionOf(Addr line) const;
    void moveTraffic();

    /**
     * Jumps now_ to the earliest cycle any component reports work,
     * charging the skipped span to each component's idle accounting
     * (and emitting any timeline samples that fall inside it). A no-op
     * when some component has work this cycle.
     */
    void fastForward();

    RunResult collect() const;
    TimeSample sampleNow() const;

    GpuConfig cfg_;
    DesignConfig design_;
    Audit audit_;
    BackingStore backing_;
    std::unique_ptr<CompressionModel> model_;
    AssistWarpStore aws_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    XbarDirection req_net_;
    XbarDirection reply_net_;

    /** Port bindings pumped by moveTraffic(), in drain order: SM out ->
     *  request crossbar, crossbar -> partition, partition replies ->
     *  reply crossbar, reply crossbar -> SM. */
    std::vector<Wire<MemRequest>> wires_;

    /** Every clocked component (for done() and fast-forward). */
    std::vector<Clocked *> clocked_;

    Cycle now_ = 0;
    Cycle until_sample_ = 0;    ///< run()'s sampling countdown.
    Cycle until_audit_ = 0;     ///< run()'s periodic-audit countdown.
    std::vector<TimeSample> timeline_;
};

} // namespace caba

#endif // CABA_GPU_GPU_SYSTEM_H
