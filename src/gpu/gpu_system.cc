#include "gpu/gpu_system.h"

#include <algorithm>
#include <cmath>

#include "common/env.h"
#include "common/log.h"
#include "common/trace.h"

namespace caba {

namespace {

/** Applies the bandwidth scale to the per-burst bus time. */
DramConfig
scaledDram(DramConfig dram, double bw_scale)
{
    CABA_CHECK(bw_scale > 0.0, "bandwidth scale must be positive");
    const double q = static_cast<double>(dram.burst_quarters) / bw_scale;
    dram.burst_quarters = std::max(1, static_cast<int>(std::lround(q)));
    return dram;
}

/** CABA_NO_FASTFORWARD=<anything> forces cycle-by-cycle execution (the
 *  CI determinism smoke test diffs both modes). Read once. */
bool
noFastForwardEnv()
{
    static const bool set = env::flagSet("CABA_NO_FASTFORWARD");
    return set;
}

/** CABA_EVENT_DRIVEN=0 forces the legacy walk-everything loop (the CI
 *  determinism smoke test diffs both loops). Read once: run() executes
 *  on sweep worker threads where getenv is not reliably safe. */
bool
eventDrivenEnvOn()
{
    static const bool on = env::intOr("CABA_EVENT_DRIVEN", 1) != 0;
    return on;
}

} // namespace

GpuSystem::GpuSystem(const GpuConfig &cfg, const DesignConfig &design,
                     LineGenerator gen)
    : cfg_(cfg), design_(design), audit_(AuditConfig::resolve(cfg.audit)),
      backing_(std::move(gen)),
      aws_({cfg.sm.alu_latency, cfg.sm.l1_latency}),
      req_net_(cfg.num_sms, cfg.num_partitions, cfg.xbar, 0),
      reply_net_(cfg.num_partitions, cfg.num_sms, cfg.xbar, 100)
{
    // Sampled per construction (not once per process) so tests can flip
    // CABA_PROF between runs; sweeps never mutate env mid-run.
    prof_on_ = prof::enabledEnv();
    if (design_.usesCompression()) {
        model_ = std::make_unique<CompressionModel>(backing_, design_.algo,
                                                    cfg_.verify_data);
    }

    PartitionConfig pcfg = cfg_.partition;
    pcfg.dram = scaledDram(pcfg.dram, cfg_.bw_scale);
    pcfg.dram.channels = cfg_.num_partitions;

    for (int i = 0; i < cfg_.num_sms; ++i) {
        sms_.push_back(std::make_unique<SmCore>(
            i, cfg_.sm, design_, cfg_.caba, cfg_.extras, &aws_,
            model_.get(), &backing_));
    }
    for (int i = 0; i < cfg_.num_partitions; ++i) {
        partitions_.push_back(std::make_unique<MemoryPartition>(
            i, pcfg, design_, model_.get()));
    }

    // 256-byte partition interleave on the request side; replies return
    // to their originating SM.
    req_net_.setRouter(
        [this](const MemRequest &r) { return partitionOf(r.line); });
    reply_net_.setRouter([](const MemRequest &r) { return r.src_sm; });

    // Wire order IS the drain order of the former moveTraffic() loops:
    // SM out-queues feed the request crossbar; each partition drains its
    // crossbar output, then pushes replies; the reply crossbar fans back
    // out to the SMs. Each endpoint is tagged with its owning component
    // (as a clocked_ index: SM i -> i, request crossbar -> num_sms,
    // reply crossbar -> num_sms + 1, partition p -> num_sms + 2 + p) so
    // the event-driven loop can wake whatever a pump touches.
    const int req_owner = cfg_.num_sms;
    const int reply_owner = cfg_.num_sms + 1;
    auto add_wire = [this](Source<MemRequest> *src, Sink<MemRequest> *dst,
                           int src_owner, int dst_owner) {
        wires_.push_back({src, dst});
        wire_src_owner_.push_back(src_owner);
        wire_dst_owner_.push_back(dst_owner);
    };
    for (int s = 0; s < cfg_.num_sms; ++s) {
        SmCore &sm = *sms_[static_cast<std::size_t>(s)];
        add_wire(&sm.out(), &req_net_.input(s), s, req_owner);
    }
    for (int p = 0; p < cfg_.num_partitions; ++p) {
        MemoryPartition &part = *partitions_[static_cast<std::size_t>(p)];
        add_wire(&req_net_.output(p), &part, req_owner, reply_owner + 1 + p);
        add_wire(&part.replies(), &reply_net_.input(p), reply_owner + 1 + p,
                 reply_owner);
    }
    for (int s = 0; s < cfg_.num_sms; ++s) {
        SmCore &sm = *sms_[static_cast<std::size_t>(s)];
        add_wire(&reply_net_.output(s), &sm, reply_owner, s);
    }

    for (auto &sm : sms_)
        clocked_.push_back(sm.get());
    clocked_.push_back(&req_net_);
    clocked_.push_back(&reply_net_);
    for (auto &part : partitions_)
        clocked_.push_back(part.get());

    if (audit_.enabled()) {
        for (auto &sm : sms_)
            sm->attachAudit(&audit_);
        req_net_.attachAudit(&audit_, ReqStage::XbarReq);
        reply_net_.attachAudit(&audit_, ReqStage::XbarReply);
        for (auto &part : partitions_)
            part->attachAudit(&audit_);
    }
}

void
GpuSystem::injectFault(AuditFault fault)
{
    switch (fault) {
      case AuditFault::DropStorePacket:
        req_net_.faultDropNextStore();
        break;
      case AuditFault::DoubleCountBurst:
        partitions_.front()->faultDoubleCountNextBurst();
        break;
      case AuditFault::LeakLoadSlot:
        sms_.front()->faultLeakNextLoadSlot();
        break;
    }
}

void
GpuSystem::runAudit(bool at_drain)
{
    if (!audit_.enabled())
        return;
    for (const auto &sm : sms_)
        sm->audit(audit_, at_drain);
    req_net_.audit(audit_, "xbar_req", at_drain);
    reply_net_.audit(audit_, "xbar_reply", at_drain);
    for (const auto &part : partitions_)
        part->audit(audit_, at_drain);
    if (model_)
        model_->audit(audit_);
    audit_.checkLifecycle(now_, at_drain);
    if (!audit_.failures().empty() && audit_.config().fatal) {
        for (const std::string &msg : audit_.failures())
            std::fprintf(stderr, "CABA_AUDIT failure: %s\n", msg.c_str());
        CABA_PANIC("CABA_AUDIT invariant violation (see stderr)");
    }
}

void
GpuSystem::launch(const KernelInfo *kernel, int warps_per_sm)
{
    // Blocks/warps distribute round-robin across SMs (hardware block
    // scheduler behaviour): SM i runs global warps i, i+N, i+2N, ...
    for (int i = 0; i < cfg_.num_sms; ++i) {
        sms_[static_cast<std::size_t>(i)]->launch(kernel, warps_per_sm, i,
                                                  cfg_.num_sms);
    }
}

int
GpuSystem::partitionOf(Addr line) const
{
    // 256-byte interleave across partitions, GPGPU-Sim style.
    return static_cast<int>((line >> 8) % cfg_.num_partitions);
}

void
GpuSystem::moveTraffic()
{
    for (Wire<MemRequest> &w : wires_)
        w.pump(now_);
}

void
GpuSystem::step()
{
    if (prof_on_) {
        stepProfiled();
        return;
    }
    for (auto &sm : sms_)
        sm->cycle(now_);
    moveTraffic();
    req_net_.cycle(now_);
    reply_net_.cycle(now_);
    for (auto &part : partitions_)
        part->cycle(now_);
    ++now_;
}

void
GpuSystem::stepProfiled()
{
    // Walk-mode attribution is per phase group, not per component: the
    // clock reads bracket whole loops so the overhead stays far below
    // the measured work.
    std::int64_t t0 = prof::nowNs();
    for (auto &sm : sms_)
        sm->cycle(now_);
    std::int64_t t1 = prof::nowNs();
    prof_.add(prof::Comp::Sm, prof::Phase::Cycle, t1 - t0);
    moveTraffic();
    t0 = prof::nowNs();
    prof_.add(prof::Comp::Wire, prof::Phase::Cycle, t0 - t1);
    req_net_.cycle(now_);
    t1 = prof::nowNs();
    prof_.add(prof::Comp::XbarReq, prof::Phase::Cycle, t1 - t0);
    reply_net_.cycle(now_);
    t0 = prof::nowNs();
    prof_.add(prof::Comp::XbarReply, prof::Phase::Cycle, t0 - t1);
    for (auto &part : partitions_)
        part->cycle(now_);
    prof_.add(prof::Comp::Partition, prof::Phase::Cycle,
              prof::nowNs() - t0);
    ++now_;
}

prof::Comp
GpuSystem::compClassOf(std::size_t i) const
{
    const std::size_t n_sms = sms_.size();
    if (i < n_sms)
        return prof::Comp::Sm;
    if (i == n_sms)
        return prof::Comp::XbarReq;
    if (i == n_sms + 1)
        return prof::Comp::XbarReply;
    return prof::Comp::Partition;
}

bool
GpuSystem::done() const
{
    for (const Clocked *c : clocked_)
        if (c->busy())
            return false;
    return true;
}

void
GpuSystem::fastForward()
{
    // The skip is sound because nextWork() is conservative: any
    // component that could change state (or merely bump a counter) at
    // now_ reports now_, and moveTraffic() is provably a no-op while
    // every queue either is empty or cannot drain.
    Cycle wake = cfg_.max_cycles;
    for (const Clocked *c : clocked_) {
        const Cycle w = c->nextWork(now_);
        if (w <= now_)
            return;
        wake = std::min(wake, w);
    }
    if (wake <= now_)
        return;
    // Even with every component quiescent, a wire that can move a
    // packet makes the next moveTraffic() a state change.
    for (const Wire<MemRequest> &w : wires_)
        if (w.canPump(now_))
            return;
    for (Clocked *c : clocked_)
        c->skipIdle(now_, wake);
    advanceQuiescent(wake);
}

void
GpuSystem::advanceQuiescent(Cycle wake)
{
    // Emit the timeline samples the skipped cycles would have produced
    // (counters are frozen across the span, so sampling mid-skip reads
    // the same values a ticked run would).
    Cycle k = wake - now_;
    const Cycle skipped = k;
    if (cfg_.sample_interval > 0) {
        while (until_sample_ <= k) {
            now_ += until_sample_;
            k -= until_sample_;
            until_sample_ = cfg_.sample_interval;
            timeline_.push_back(sampleNow());
        }
        until_sample_ -= k;
    }
    now_ += k;
    // Periodic audits inside the skip collapse to one: the span is
    // quiescent, so every boundary would audit identical frozen state.
    if (audit_.periodic() && until_audit_ > 0) {
        const Cycle period = audit_.config().period;
        if (skipped >= until_audit_) {
            runAudit(false);
            until_audit_ = period - (skipped - until_audit_) % period;
        } else {
            until_audit_ -= skipped;
        }
    }
    // Same wedge detection, same boundary, as the ticked loop.
    CABA_CHECK(now_ < cfg_.max_cycles, "simulation exceeded max_cycles");
}

// ------------------------------------------------------- event-driven loop

void
GpuSystem::initEventState()
{
    eq_.reset(static_cast<int>(clocked_.size()));
    for (std::size_t i = 0; i < clocked_.size(); ++i)
        eq_.schedule(static_cast<int>(i), now_);
    acct_.assign(clocked_.size(), now_);
}

void
GpuSystem::catchUp(std::size_t i, Cycle to)
{
    if (acct_[i] < to) {
        // The span [acct_[i], to) had no cycle() call and no incoming
        // traffic, so the component's state is exactly what it was at
        // acct_[i]; one deferred skipIdle() charges the same accounting
        // the per-cycle path would have accumulated.
        clocked_[i]->skipIdle(acct_[i], to);
        acct_[i] = to;
    }
}

void
GpuSystem::wakeForTraffic(std::size_t i)
{
    // SMs (clocked_ indices below num_sms) cycle before the wire phase:
    // traffic landing at now_ is seen by their cycle(now_ + 1). The
    // crossbars and partitions cycle after the wire phase and must run
    // this very cycle, exactly as they would in the walk-everything
    // loop. Catch-up must precede the push (see catchUp()).
    const Cycle at = i < sms_.size() ? now_ + 1 : now_;
    catchUp(i, at);
    if (eq_.when(static_cast<int>(i)) > at)
        eq_.schedule(static_cast<int>(i), at);
}

void
GpuSystem::pumpWiresEvent()
{
    // Wire phase: same order and greedy drain as moveTraffic(), plus
    // wake hooks. Taking from a source can unblock its owner (a full
    // crossbar output gates arbitration) just as accepting gives the
    // destination work, so a moved packet wakes both endpoints.
    for (std::size_t wi = 0; wi < wires_.size(); ++wi) {
        const Wire<MemRequest> &w = wires_[wi];
        if (!w.src->hasData(now_) || !w.dst->canAccept())
            continue;
        wakeForTraffic(static_cast<std::size_t>(wire_src_owner_[wi]));
        wakeForTraffic(static_cast<std::size_t>(wire_dst_owner_[wi]));
        do {
            w.dst->accept(w.src->take(), now_);
        } while (w.src->hasData(now_) && w.dst->canAccept());
    }
}

void
GpuSystem::stepEvent()
{
    const std::size_t n_sms = sms_.size();
    auto run_component = [this](std::size_t i) {
        if (!eq_.due(static_cast<int>(i), now_))
            return;
        Clocked *c = clocked_[i];
        if (prof_on_) {
            // The wire-phase wake catch-ups are charged to Wire; the
            // ones below cover components woken by their own schedule.
            const prof::Comp cls = compClassOf(i);
            if (acct_[i] < now_) {
                const std::int64_t t0 = prof::nowNs();
                catchUp(i, now_);
                prof_.add(cls, prof::Phase::CatchUp, prof::nowNs() - t0);
            }
            const std::int64_t t1 = prof::nowNs();
            c->cycle(now_);
            prof_.add(cls, prof::Phase::Cycle, prof::nowNs() - t1);
        } else {
            catchUp(i, now_);
            c->cycle(now_);
        }
        acct_[i] = now_ + 1;
        eq_.schedule(static_cast<int>(i), c->nextWork(now_ + 1));
    };
    for (std::size_t i = 0; i < n_sms; ++i)
        run_component(i);
    if (prof_on_) {
        const std::int64_t t0 = prof::nowNs();
        pumpWiresEvent();
        prof_.add(prof::Comp::Wire, prof::Phase::Cycle,
                  prof::nowNs() - t0);
    } else {
        pumpWiresEvent();
    }
    for (std::size_t i = n_sms; i < clocked_.size(); ++i)
        run_component(i);
    ++now_;
}

void
GpuSystem::eventJump()
{
    // Like fastForward(), but the wake times are already cached: every
    // component published its next event when it went to sleep, and
    // pushes always re-arm the destination, so min-wake > now_ is the
    // same global-quiescence condition the polling loop recomputes.
    Cycle wake = eq_.minTime();
    if (wake <= now_)
        return;
    wake = std::min(wake, cfg_.max_cycles);
    if (wake <= now_)
        return;
    // In practice no wire can be pumpable here (data waiting in any
    // endpoint pins its owner awake via nextWork), but the veto is kept
    // as cheap insurance against a source that sleeps on queued data.
    for (const Wire<MemRequest> &w : wires_)
        if (w.canPump(now_))
            return;
    // No skipIdle here: sleeping components are charged lazily when
    // they wake (catchUp), which accumulates the identical spans.
    advanceQuiescent(wake);
}

RunResult
GpuSystem::run()
{
    const bool ff = cfg_.fast_forward && !noFastForwardEnv();
    const bool ed = cfg_.event_driven && eventDrivenEnvOn();
    // loop/cycle is inclusive wall time for the whole run: the gap to
    // the sum of the component buckets is the loop's own overhead.
    const std::int64_t run_t0 = prof_on_ ? prof::nowNs() : 0;
    auto timed_jump = [this](auto &&fn) {
        if (!prof_on_) {
            fn();
            return;
        }
        const std::int64_t t0 = prof::nowNs();
        fn();
        prof_.add(prof::Comp::Loop, prof::Phase::Jump, prof::nowNs() - t0);
    };
    // Timeline sampling (counter-based rather than now_ % interval so a
    // mid-run caller of step() cannot desynchronize the cadence).
    until_sample_ = cfg_.sample_interval;
    until_audit_ = audit_.config().period;
    if (ed)
        initEventState();
    while (!done()) {
        if (ed) {
            if (ff)
                timed_jump([this] { eventJump(); });
            stepEvent();
        } else {
            if (ff)
                timed_jump([this] { fastForward(); });
            step();
        }
        CABA_CHECK(now_ < cfg_.max_cycles, "simulation exceeded max_cycles");
        if (cfg_.sample_interval > 0 && --until_sample_ == 0) {
            until_sample_ = cfg_.sample_interval;
            timeline_.push_back(sampleNow());
        }
        if (audit_.periodic() && --until_audit_ == 0) {
            until_audit_ = audit_.config().period;
            runAudit(false);
        }
    }
    if (ed) {
        // Settle the deferred idle accounting of anything still asleep
        // (e.g. retired SMs accumulating throttle-window history).
        for (std::size_t i = 0; i < clocked_.size(); ++i) {
            if (prof_on_ && acct_[i] < now_) {
                const std::int64_t t0 = prof::nowNs();
                catchUp(i, now_);
                prof_.add(compClassOf(i), prof::Phase::CatchUp,
                          prof::nowNs() - t0);
            } else {
                catchUp(i, now_);
            }
        }
    }
    if (cfg_.sample_interval > 0)
        timeline_.push_back(sampleNow());   // final state
    runAudit(true);
    if (prof_on_) {
        prof_.add(prof::Comp::Loop, prof::Phase::Cycle,
                  prof::nowNs() - run_t0);
        prof_.flush();
    }
    return collect();
}

TimeSample
GpuSystem::sampleNow() const
{
    // Counter tracks ride the timeline cadence: advanceQuiescent()
    // replays mid-skip samples from frozen state, so the track is
    // identical across run-loop modes except the event-queue depth
    // (which measures the event loop itself and reads 0 in walk mode).
    if (trace::on(trace::kCounter)) {
        trace::counter(trace::kCounter, trace::kPidCounter, 0,
                       "event_queue_depth", now_,
                       static_cast<std::uint64_t>(eq_.heapEntries()));
        for (std::size_t i = 0; i < sms_.size(); ++i) {
            trace::counter(trace::kCounter, trace::kPidCounter,
                           static_cast<int>(i), "issuable_warps", now_,
                           static_cast<std::uint64_t>(
                               sms_[i]->issuableWarps()));
        }
        for (std::size_t p = 0; p < partitions_.size(); ++p) {
            trace::counter(trace::kCounter, trace::kPidCounter,
                           static_cast<int>(p), "dram_read_queue", now_,
                           static_cast<std::uint64_t>(
                               partitions_[p]->dram().readQueueDepth()));
        }
    }
    TimeSample t;
    t.cycle = now_;
    for (const auto &sm : sms_)
        t.instructions += sm->instructionsIssued();
    for (const auto &part : partitions_)
        t.dram_bursts += part->dram().totalBursts();
    return t;
}

RunResult
GpuSystem::collect() const
{
    RunResult r;
    r.cycles = now_;
    r.timeline = timeline_;

    auto merge_prefixed = [&](const StatSet &src, const std::string &prefix) {
        r.stats.mergePrefixed(src, prefix);
    };

    for (const auto &sm : sms_) {
        r.instructions += sm->instructionsIssued();
        const CycleBreakdown &b = sm->breakdown();
        r.breakdown.active += b.active;
        r.breakdown.mem_stall += b.mem_stall;
        r.breakdown.comp_stall += b.comp_stall;
        r.breakdown.data_stall += b.data_stall;
        r.breakdown.idle += b.idle;
        merge_prefixed(sm->stats(), "sm_");
        merge_prefixed(sm->l1().stats(), "l1_");
        merge_prefixed(sm->awc().stats(), "awc_");
    }

    double bw = 0.0;
    for (const auto &part : partitions_) {
        bw += part->dramBusUtilization(r.cycles);
        merge_prefixed(part->stats(), "part_");
        merge_prefixed(part->l2().stats(), "l2_");
        merge_prefixed(part->dram().stats(), "dram_");
        merge_prefixed(part->mdCache().stats(), "md_");
    }
    r.bw_utilization = bw / static_cast<double>(cfg_.num_partitions);

    const double md_hits = static_cast<double>(r.stats.get("md_hits"));
    const double md_total =
        md_hits + static_cast<double>(r.stats.get("md_misses"));
    r.md_hit_rate = md_total > 0.0 ? md_hits / md_total : 0.0;

    merge_prefixed(req_net_.stats(), "xbar_req_");
    merge_prefixed(reply_net_.stats(), "xbar_reply_");

    if (model_)
        merge_prefixed(model_->stats(), "model_");

    const double comp = static_cast<double>(
        r.stats.get("part_transfer_bursts"));
    const double uncomp = static_cast<double>(
        r.stats.get("part_transfer_bursts_uncompressed"));
    r.compression_ratio = comp > 0.0 ? uncomp / comp : 1.0;

    r.ipc = r.cycles > 0
        ? static_cast<double>(r.instructions) / static_cast<double>(r.cycles)
        : 0.0;
    r.energy = computeEnergy(r.stats, r.cycles);
    return r;
}

} // namespace caba
