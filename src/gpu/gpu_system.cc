#include "gpu/gpu_system.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace caba {

namespace {

/** Applies the bandwidth scale to the per-burst bus time. */
DramConfig
scaledDram(DramConfig dram, double bw_scale)
{
    CABA_CHECK(bw_scale > 0.0, "bandwidth scale must be positive");
    const double q = static_cast<double>(dram.burst_quarters) / bw_scale;
    dram.burst_quarters = std::max(1, static_cast<int>(std::lround(q)));
    return dram;
}

} // namespace

GpuSystem::GpuSystem(const GpuConfig &cfg, const DesignConfig &design,
                     LineGenerator gen)
    : cfg_(cfg), design_(design), backing_(std::move(gen)),
      aws_({cfg.sm.alu_latency, cfg.sm.l1_latency}),
      req_net_(cfg.num_sms, cfg.num_partitions, cfg.xbar, 0),
      reply_net_(cfg.num_partitions, cfg.num_sms, cfg.xbar, 100)
{
    if (design_.usesCompression()) {
        model_ = std::make_unique<CompressionModel>(backing_, design_.algo,
                                                    cfg_.verify_data);
    }

    PartitionConfig pcfg = cfg_.partition;
    pcfg.dram = scaledDram(pcfg.dram, cfg_.bw_scale);
    pcfg.dram.channels = cfg_.num_partitions;

    for (int i = 0; i < cfg_.num_sms; ++i) {
        sms_.push_back(std::make_unique<SmCore>(
            i, cfg_.sm, design_, cfg_.caba, cfg_.extras, &aws_,
            model_.get(), &backing_));
    }
    for (int i = 0; i < cfg_.num_partitions; ++i) {
        partitions_.push_back(std::make_unique<MemoryPartition>(
            i, pcfg, design_, model_.get()));
    }
}

void
GpuSystem::launch(const KernelInfo *kernel, int warps_per_sm)
{
    // Blocks/warps distribute round-robin across SMs (hardware block
    // scheduler behaviour): SM i runs global warps i, i+N, i+2N, ...
    for (int i = 0; i < cfg_.num_sms; ++i) {
        sms_[static_cast<std::size_t>(i)]->launch(kernel, warps_per_sm, i,
                                                  cfg_.num_sms);
    }
}

int
GpuSystem::partitionOf(Addr line) const
{
    // 256-byte interleave across partitions, GPGPU-Sim style.
    return static_cast<int>((line >> 8) % cfg_.num_partitions);
}

void
GpuSystem::moveTraffic()
{
    // SM request queues -> request crossbar.
    for (int s = 0; s < cfg_.num_sms; ++s) {
        SmCore &sm = *sms_[static_cast<std::size_t>(s)];
        while (sm.hasOutgoing() && req_net_.canPush(s)) {
            const int dest = partitionOf(sm.peekOutgoing().line);
            req_net_.push(s, dest, sm.popOutgoing());
        }
    }
    // Request crossbar deliveries -> partitions (with backpressure).
    for (int p = 0; p < cfg_.num_partitions; ++p) {
        MemoryPartition &part = *partitions_[static_cast<std::size_t>(p)];
        while (req_net_.hasDelivery(p, now_) && part.canAccept())
            part.accept(req_net_.popDelivery(p), now_);
        // Partition replies -> reply crossbar.
        while (!part.replies().empty() && reply_net_.canPush(p)) {
            const MemRequest reply = part.replies().front();
            part.replies().pop_front();
            reply_net_.push(p, reply.src_sm, reply);
        }
    }
    // Reply crossbar deliveries -> SM fills.
    for (int s = 0; s < cfg_.num_sms; ++s) {
        while (reply_net_.hasDelivery(s, now_))
            sms_[static_cast<std::size_t>(s)]->deliver(
                reply_net_.popDelivery(s), now_);
    }
}

void
GpuSystem::step()
{
    for (auto &sm : sms_)
        sm->cycle(now_);
    moveTraffic();
    req_net_.cycle(now_);
    reply_net_.cycle(now_);
    for (auto &part : partitions_)
        part->cycle(now_);
    ++now_;
}

bool
GpuSystem::done() const
{
    for (const auto &sm : sms_)
        if (!sm->done())
            return false;
    if (req_net_.busy() || reply_net_.busy())
        return false;
    for (const auto &part : partitions_)
        if (part->busy())
            return false;
    return true;
}

RunResult
GpuSystem::run()
{
    // Timeline sampling (counter-based rather than now_ % interval so a
    // mid-run caller of step() cannot desynchronize the cadence).
    Cycle until_sample = cfg_.sample_interval;
    while (!done()) {
        step();
        CABA_CHECK(now_ < cfg_.max_cycles, "simulation exceeded max_cycles");
        if (cfg_.sample_interval > 0 && --until_sample == 0) {
            until_sample = cfg_.sample_interval;
            timeline_.push_back(sampleNow());
        }
    }
    if (cfg_.sample_interval > 0)
        timeline_.push_back(sampleNow());   // final state
    return collect();
}

TimeSample
GpuSystem::sampleNow() const
{
    TimeSample t;
    t.cycle = now_;
    for (const auto &sm : sms_)
        t.instructions += sm->instructionsIssued();
    for (const auto &part : partitions_)
        t.dram_bursts += part->dram().totalBursts();
    return t;
}

RunResult
GpuSystem::collect() const
{
    RunResult r;
    r.cycles = now_;
    r.timeline = timeline_;

    auto merge_prefixed = [&](const StatSet &src, const std::string &prefix) {
        r.stats.mergePrefixed(src, prefix);
    };

    for (const auto &sm : sms_) {
        r.instructions += sm->instructionsIssued();
        const CycleBreakdown &b = sm->breakdown();
        r.breakdown.active += b.active;
        r.breakdown.mem_stall += b.mem_stall;
        r.breakdown.comp_stall += b.comp_stall;
        r.breakdown.data_stall += b.data_stall;
        r.breakdown.idle += b.idle;
        merge_prefixed(sm->stats(), "sm_");
        merge_prefixed(sm->l1().stats(), "l1_");
        merge_prefixed(sm->awc().stats(), "awc_");
    }

    double bw = 0.0;
    double md_hits = 0.0, md_total = 0.0;
    for (const auto &part : partitions_) {
        bw += part->dramBusUtilization(r.cycles);
        merge_prefixed(part->stats(), "part_");
        merge_prefixed(part->l2().stats(), "l2_");
        merge_prefixed(part->dram().stats(), "dram_");
        md_hits += static_cast<double>(part->mdCache().stats().get("hits"));
        md_total +=
            static_cast<double>(part->mdCache().stats().get("hits") +
                                part->mdCache().stats().get("misses"));
    }
    r.bw_utilization = bw / static_cast<double>(cfg_.num_partitions);
    r.md_hit_rate = md_total > 0.0 ? md_hits / md_total : 0.0;

    merge_prefixed(req_net_.stats(), "xbar_");
    merge_prefixed(reply_net_.stats(), "xbar_");

    if (model_)
        merge_prefixed(model_->stats(), "model_");

    const double comp = static_cast<double>(
        r.stats.get("part_transfer_bursts"));
    const double uncomp = static_cast<double>(
        r.stats.get("part_transfer_bursts_uncompressed"));
    r.compression_ratio = comp > 0.0 ? uncomp / comp : 1.0;

    r.ipc = r.cycles > 0
        ? static_cast<double>(r.instructions) / static_cast<double>(r.cycles)
        : 0.0;
    r.energy = computeEnergy(r.stats, r.cycles);
    return r;
}

} // namespace caba
