#include "caba/awc.h"

#include <algorithm>

#include "common/log.h"

namespace caba {

AssistWarpController::AssistWarpController(const CabaConfig &cfg)
    : cfg_(cfg), window_(static_cast<std::size_t>(cfg.throttle_window), 1)
{
    CABA_CHECK(cfg_.awt_entries > 0, "AWT needs entries");
    CABA_CHECK(cfg_.throttle_window > 0, "throttle window must be > 0");
}

bool
AssistWarpController::hasRoom() const
{
    return static_cast<int>(table_.size()) < cfg_.awt_entries;
}

bool
AssistWarpController::trigger(AssistWarp aw)
{
    if (!hasRoom()) {
        ++rejections_;
        return false;
    }
    aw.id = next_id_++;
    CABA_CHECK(aw.code && !aw.code->empty(), "assist warp without code");
    ++triggers_;
    if (aw.priority == AssistPriority::High)
        ++triggers_high_;
    table_.push_back(std::move(aw));
    return true;
}

bool
AssistWarpController::eligible(const AssistWarp &aw) const
{
    if (aw.priority == AssistPriority::High)
        return true;
    // AWB staging: only the first awb_low_slots low-priority entries are
    // in the instruction buffer partition.
    int slot = 0;
    for (const AssistWarp &other : table_) {
        if (other.priority != AssistPriority::Low)
            continue;
        if (other.id == aw.id)
            break;
        ++slot;
    }
    if (slot >= cfg_.awb_low_slots)
        return false;
    if (cfg_.throttle && idleFraction() < cfg_.throttle_idle_floor)
        return false;
    return true;
}

void
AssistWarpController::reapFinished(Cycle now, std::vector<AssistWarp> *out)
{
    for (std::size_t i = 0; i < table_.size();) {
        AssistWarp &aw = table_[i];
        if (aw.finishedIssuing() && aw.ready_at <= now) {
            ++completions_;
            latency_.record(now >= aw.spawned ? now - aw.spawned : 0);
            out->push_back(std::move(aw));
            table_.erase(table_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

int
AssistWarpController::killByToken(std::uint64_t token, AssistPurpose purpose)
{
    int killed = 0;
    for (std::size_t i = 0; i < table_.size();) {
        if (table_[i].token == token && table_[i].purpose == purpose) {
            table_.erase(table_.begin() + static_cast<std::ptrdiff_t>(i));
            ++killed;
        } else {
            ++i;
        }
    }
    kills_ += static_cast<std::uint64_t>(killed);
    return killed;
}

void
AssistWarpController::noteIssueSlot(bool used)
{
    const std::uint8_t old = window_[static_cast<std::size_t>(window_pos_)];
    const std::uint8_t neu = used ? 1 : 0;
    window_idle_ += (old ? 0 : -1) + (neu ? 0 : 1);
    window_[static_cast<std::size_t>(window_pos_)] = neu;
    window_pos_ = (window_pos_ + 1) % cfg_.throttle_window;
    window_filled_ = std::min(window_filled_ + 1, cfg_.throttle_window);
}

void
AssistWarpController::skipIdleSlots(std::uint64_t slots)
{
    const int w = cfg_.throttle_window;
    if (slots >= static_cast<std::uint64_t>(w)) {
        // The whole window is overwritten with idle entries; only the
        // write position depends on the exact count.
        std::fill(window_.begin(), window_.end(), 0);
        window_idle_ = w;
        window_filled_ = w;
        window_pos_ = static_cast<int>(
            (static_cast<std::uint64_t>(window_pos_) + slots) %
            static_cast<std::uint64_t>(w));
        return;
    }
    for (std::uint64_t i = 0; i < slots; ++i)
        noteIssueSlot(false);
}

double
AssistWarpController::idleFraction() const
{
    if (window_filled_ == 0)
        return 1.0;
    return static_cast<double>(window_idle_) /
           static_cast<double>(cfg_.throttle_window);
}

} // namespace caba
