#include "caba/awc.h"

#include <algorithm>

#include "common/audit.h"
#include "common/log.h"

namespace caba {

AssistWarpController::AssistWarpController(const CabaConfig &cfg)
    : cfg_(cfg), window_(static_cast<std::size_t>(cfg.throttle_window), 1)
{
    CABA_CHECK(cfg_.awt_entries > 0, "AWT needs entries");
    CABA_CHECK(cfg_.throttle_window > 0, "throttle window must be > 0");
}

bool
AssistWarpController::hasRoom() const
{
    return static_cast<int>(table_.size()) < cfg_.awt_entries;
}

bool
AssistWarpController::trigger(AssistWarp aw)
{
    if (!hasRoom()) {
        ++rejections_;
        return false;
    }
    aw.id = next_id_++;
    CABA_CHECK(aw.code && !aw.code->empty(), "assist warp without code");
    ++triggers_;
    if (aw.priority == AssistPriority::High)
        ++triggers_high_;
    else
        low_ids_.push_back(aw.id);
    table_.push_back(std::move(aw));
    return true;
}

bool
AssistWarpController::eligible(const AssistWarp &aw) const
{
    if (aw.priority == AssistPriority::High)
        return true;
    // AWB staging: only the first awb_low_slots low-priority entries are
    // in the instruction buffer partition. low_ids_ is the table's
    // low-priority subsequence by construction, so holding a staging
    // slot is equivalent to aw.id being among its first awb_low_slots
    // entries -- an O(1) bound check instead of the old AWT scan.
    if (cfg_.awb_low_slots <= 0)
        return false;
    const auto slots = static_cast<std::size_t>(cfg_.awb_low_slots);
    if (low_ids_.size() > slots && aw.id > low_ids_[slots - 1])
        return false;
    if (cfg_.throttle && idleFraction() < cfg_.throttle_idle_floor)
        return false;
    return true;
}

void
AssistWarpController::removeLowId(std::uint64_t id)
{
    auto it = std::lower_bound(low_ids_.begin(), low_ids_.end(), id);
    CABA_CHECK(it != low_ids_.end() && *it == id,
               "low-priority staging order lost an id");
    low_ids_.erase(it);
}

void
AssistWarpController::reapFinished(Cycle now, std::vector<AssistWarp> *out)
{
    for (std::size_t i = 0; i < table_.size();) {
        AssistWarp &aw = table_[i];
        if (aw.finishedIssuing() && aw.ready_at <= now) {
            ++completions_;
            CABA_CHECK(now >= aw.spawned,
                       "assist warp completed before its spawn cycle");
            latency_.record(now - aw.spawned);
            if (aw.priority == AssistPriority::Low)
                removeLowId(aw.id);
            out->push_back(std::move(aw));
            table_.erase(table_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

int
AssistWarpController::killByToken(std::uint64_t token, AssistPurpose purpose)
{
    int killed = 0;
    for (std::size_t i = 0; i < table_.size();) {
        if (table_[i].token == token && table_[i].purpose == purpose) {
            if (table_[i].priority == AssistPriority::Low)
                removeLowId(table_[i].id);
            table_.erase(table_.begin() + static_cast<std::ptrdiff_t>(i));
            ++killed;
        } else {
            ++i;
        }
    }
    kills_ += static_cast<std::uint64_t>(killed);
    return killed;
}

void
AssistWarpController::noteIssueSlot(bool used)
{
    const std::uint8_t old = window_[static_cast<std::size_t>(window_pos_)];
    const std::uint8_t neu = used ? 1 : 0;
    window_idle_ += (old ? 0 : -1) + (neu ? 0 : 1);
    window_[static_cast<std::size_t>(window_pos_)] = neu;
    window_pos_ = (window_pos_ + 1) % cfg_.throttle_window;
    window_filled_ = std::min(window_filled_ + 1, cfg_.throttle_window);
}

void
AssistWarpController::skipIdleSlots(std::uint64_t slots)
{
    const int w = cfg_.throttle_window;
    if (slots >= static_cast<std::uint64_t>(w)) {
        // The whole window is overwritten with idle entries; only the
        // write position depends on the exact count.
        std::fill(window_.begin(), window_.end(), 0);
        window_idle_ = w;
        window_filled_ = w;
        window_pos_ = static_cast<int>(
            (static_cast<std::uint64_t>(window_pos_) + slots) %
            static_cast<std::uint64_t>(w));
        return;
    }
    for (std::uint64_t i = 0; i < slots; ++i)
        noteIssueSlot(false);
}

void
AssistWarpController::audit(Audit &a) const
{
    a.checkEq("awc", "triggers == completions + kills + live", triggers_,
              completions_ + kills_ +
                  static_cast<std::uint64_t>(table_.size()));
    a.checkLe("awc", "triggers_high <= triggers", triggers_high_, triggers_);
    // The incremental staging order must equal the table's low-priority
    // subsequence (cold path: recompute it and compare).
    std::size_t k = 0;
    bool match = true;
    for (const AssistWarp &aw : table_) {
        if (aw.priority != AssistPriority::Low)
            continue;
        match = match && k < low_ids_.size() && low_ids_[k] == aw.id;
        ++k;
    }
    match = match && k == low_ids_.size();
    a.checkTrue("awc", "staging order matches AWT low subsequence", match);
}

double
AssistWarpController::idleFraction() const
{
    if (window_filled_ == 0)
        return 1.0;
    return static_cast<double>(window_idle_) /
           static_cast<double>(cfg_.throttle_window);
}

} // namespace caba
