#include "caba/aws.h"

namespace caba {

AssistWarpStore::AssistWarpStore(const AwsTiming &timing)
    : timing_(timing)
{}

std::vector<AssistInstr>
AssistWarpStore::synthesize(const SubroutineCost &cost) const
{
    // Shape (Section 4.1.2): MOVE of live-in registers from the parent
    // warp, loads of the compressed words, the SIMD arithmetic, and one
    // store of the result line. mem_ops is split as (mem_ops-1) loads +
    // 1 store. An instruction's latency field is the delay before the
    // *next* instruction in the subroutine may issue: true dependences
    // (load -> arithmetic -> store) pay full latency; the arithmetic
    // ops themselves are independent encoding/lane work and pipeline
    // back to back, with only the last one joining before the store.
    std::vector<AssistInstr> code;
    code.push_back({false, 1});                         // live-in MOVE
    const int loads = cost.mem_ops > 0 ? cost.mem_ops - 1 : 0;
    for (int i = 0; i < loads; ++i)
        code.push_back({true, timing_.mem_latency});
    for (int i = 0; i < cost.alu_ops; ++i) {
        const bool last = i + 1 == cost.alu_ops;
        code.push_back({false, last ? timing_.alu_latency : 1});
    }
    if (cost.mem_ops > 0)
        code.push_back({true, timing_.mem_latency});    // result store
    return code;
}

const std::vector<AssistInstr> &
AssistWarpStore::decompressRoutine(const Codec &codec,
                                   const CompressedLine &cl)
{
    const auto key = std::make_pair("dec:" + codec.name(), cl.encoding);
    auto it = store_.find(key);
    if (it == store_.end())
        it = store_.emplace(key, synthesize(codec.decompressCost(cl))).first;
    return it->second;
}

const std::vector<AssistInstr> &
AssistWarpStore::compressRoutine(const Codec &codec)
{
    const auto key = std::make_pair("cmp:" + codec.name(), 0);
    auto it = store_.find(key);
    if (it == store_.end())
        it = store_.emplace(key, synthesize(codec.compressCost())).first;
    return it->second;
}

const std::vector<AssistInstr> &
AssistWarpStore::memoizeRoutine()
{
    const auto key = std::make_pair(std::string("memoize"), 0);
    auto it = store_.find(key);
    if (it == store_.end()) {
        // Hash live-ins (2 ALU) + shared-memory LUT probe (1 mem).
        it = store_.emplace(key, synthesize({2, 1})).first;
    }
    return it->second;
}

const std::vector<AssistInstr> &
AssistWarpStore::prefetchRoutine()
{
    const auto key = std::make_pair(std::string("prefetch"), 0);
    auto it = store_.find(key);
    if (it == store_.end()) {
        // Stride compute (2 ALU) + prefetch issue (1 mem).
        it = store_.emplace(key, synthesize({2, 1})).first;
    }
    return it->second;
}

const std::vector<AssistInstr> &
AssistWarpStore::profileRoutine()
{
    const auto key = std::make_pair(std::string("profile"), 0);
    auto it = store_.find(key);
    if (it == store_.end()) {
        // Read scheduler stall vectors (2 ALU) + store the sample to
        // the shared-memory ring (1 mem).
        it = store_.emplace(key, synthesize({2, 1})).first;
    }
    return it->second;
}

int
AssistWarpStore::storedInstructions() const
{
    int total = 0;
    for (const auto &[key, code] : store_)
        total += static_cast<int>(code.size());
    return total;
}

} // namespace caba
