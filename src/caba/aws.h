/**
 * @file
 * Assist Warp Store (Section 3.3): the on-chip buffer preloaded with the
 * assist-warp subroutines, indexed by subroutine id (SR.ID) and
 * instruction id (Inst.ID). Subroutines are synthesized once per
 * (purpose, algorithm, encoding) from the codec's instruction budget:
 * live-in MOVEs, loads of the compressed words, the arithmetic, and the
 * store of the result — mirroring the BDI mapping of Section 4.1.2.
 */
#ifndef CABA_CABA_AWS_H
#define CABA_CABA_AWS_H

#include <map>
#include <vector>

#include "caba/assist_warp.h"
#include "compress/codec.h"

namespace caba {

/** Pipeline latencies the AWS needs to materialize subroutines. */
struct AwsTiming
{
    int alu_latency = 6;
    int mem_latency = 20;   ///< Assist loads/stores are L1-local.
};

/** The subroutine store shared by all SMs (read-only after warm-up). */
class AssistWarpStore
{
  public:
    explicit AssistWarpStore(const AwsTiming &timing);

    /**
     * Subroutine that decompresses a line with @p cl's encoding using
     * @p codec. Cached per (codec, encoding); stable address.
     */
    const std::vector<AssistInstr> &decompressRoutine(
        const Codec &codec, const CompressedLine &cl);

    /** Subroutine that tests/perform compression of one line. */
    const std::vector<AssistInstr> &compressRoutine(const Codec &codec);

    /** Fixed-shape routine for memoization probes (Section 7.1). */
    const std::vector<AssistInstr> &memoizeRoutine();

    /** Fixed-shape routine that computes+issues a prefetch (Section 7.2). */
    const std::vector<AssistInstr> &prefetchRoutine();

    /** Fixed-shape routine that samples resident warps' stall vectors
     *  (the profiling generalization of the CABA framework paper). */
    const std::vector<AssistInstr> &profileRoutine();

    /** Total instructions resident in the store (hardware sizing stat). */
    int storedInstructions() const;

    /** Number of distinct subroutines (SR.IDs in use). */
    int numSubroutines() const { return static_cast<int>(store_.size()); }

  private:
    /** Synthesizes the body for a given instruction budget. */
    std::vector<AssistInstr> synthesize(const SubroutineCost &cost) const;

    AwsTiming timing_;

    /** SR.ID key: (purpose tag, algorithm name hash, encoding). */
    std::map<std::pair<std::string, int>, std::vector<AssistInstr>> store_;
};

} // namespace caba

#endif // CABA_CABA_AWS_H
