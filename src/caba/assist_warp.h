/**
 * @file
 * Assist-warp state (Section 3): the dynamic instance tracked by one
 * Assist Warp Table entry. An assist warp shares its parent warp's
 * context; what the timing model needs is its remaining instruction
 * sequence, its priority class, and what to do when it finishes.
 */
#ifndef CABA_CABA_ASSIST_WARP_H
#define CABA_CABA_ASSIST_WARP_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace caba {

/** Scheduling class (Section 3.2.3). */
enum class AssistPriority : std::uint8_t {
    High,   ///< Required for correctness; precedes parent warps.
    Low,    ///< Opportunistic; idle issue slots only, may be throttled.
};

/** Why the assist warp was triggered (selects the completion action). */
enum class AssistPurpose : std::uint8_t {
    DecompressFill, ///< Expand a compressed fill before use (Section 4.2.1).
    DecompressHit,  ///< Expand a compressed L1 line on a hit (Section 6.5).
    Compress,       ///< Compress a buffered store (Section 4.2.2).
    Memoize,        ///< LUT insert/lookup (Section 7.1).
    Prefetch,       ///< Opportunistic prefetch issue (Section 7.2).
    Profile,        ///< Stall-vector sampling (framework paper, Sec. 5).
};

/** One instruction of an assist-warp subroutine, as the AWS stores it. */
struct AssistInstr
{
    bool is_mem = false;    ///< LDST pipeline op (vs. ALU pipeline op).
    int latency = 0;        ///< Result latency in cycles.
};

/** A deployed assist warp: one AWT entry (Figure 4). */
struct AssistWarp
{
    std::uint64_t id = 0;
    int parent_warp = kInvalidWarp;
    AssistPriority priority = AssistPriority::High;
    AssistPurpose purpose = AssistPurpose::DecompressFill;

    /** Subroutine body (borrowed from the AWS; non-owning). */
    const std::vector<AssistInstr> *code = nullptr;

    /** Inst.ID: next instruction to issue. */
    int next = 0;

    /** Earliest cycle the next instruction may issue (serial chain). */
    Cycle ready_at = 0;

    /** Line this warp operates on (live-in communicated via the AWT). */
    Addr line = 0;

    /** Opaque completion token interpreted by the purpose handler. */
    std::uint64_t token = 0;

    /** Cycle the trigger fired (latency accounting and tracing). */
    Cycle spawned = 0;

    bool finishedIssuing() const
    {
        return next >= static_cast<int>(code->size());
    }
};

} // namespace caba

#endif // CABA_CABA_ASSIST_WARP_H
