/**
 * @file
 * Assist Warp Controller (Section 3.3): triggers, tracks and manages
 * assist warps via the Assist Warp Table (AWT), stages low-priority
 * warps through the two dedicated AWB entries, and throttles deployment
 * based on pipeline utilization (Section 3.4, "Dynamic Feedback and
 * Throttling").
 */
#ifndef CABA_CABA_AWC_H
#define CABA_CABA_AWC_H

#include <cstdint>
#include <deque>
#include <vector>

#include "caba/assist_warp.h"
#include "common/stats.h"

namespace caba {

class Audit;

/** CABA framework knobs (one instance per SM). */
struct CabaConfig
{
    int awt_entries = 48;       ///< Max tracked assist warps (1/warp slot).
    int awb_low_slots = 2;      ///< IB partition for low-priority warps.

    /** Utilization throttle: low-priority warps deploy only when the
     *  fraction of idle issue slots over the window exceeds the floor. */
    bool throttle = true;
    int throttle_window = 128;
    double throttle_idle_floor = 0.05;

    /** Pending-store buffer entries per SM (Section 4.2.2: a few
     *  dedicated L1 sets or shared memory hold buffered stores). */
    int store_buffer = 16;

    /** Priority assignment (Section 3.4): decompression blocks its
     *  parent and defaults to high priority; compression is off the
     *  critical path and defaults to low. The ablation bench flips
     *  these to show why the paper's assignment is the right one. */
    bool decompress_high_priority = true;
    bool compress_low_priority = true;
};

/** Per-SM assist-warp controller. */
class AssistWarpController
{
  public:
    explicit AssistWarpController(const CabaConfig &cfg);

    /**
     * Deploys a new assist warp into the AWT.
     * @return false when the AWT is full (caller falls back: a store
     *         goes out uncompressed; a decompression is queued).
     */
    bool trigger(AssistWarp aw);

    /** True when trigger() would succeed. */
    bool hasRoom() const;

    /** Live AWT entries (scheduler iterates these). */
    std::vector<AssistWarp> &table() { return table_; }
    const std::vector<AssistWarp> &table() const { return table_; }

    /**
     * True when @p aw may issue this cycle under the AWB staging and
     * throttling rules. High priority always may; low priority needs an
     * AWB slot (first awb_low_slots low-priority entries) and an idle
     * pipeline history.
     */
    bool eligible(const AssistWarp &aw) const;

    /** Removes finished entries, reporting them via @p out. */
    void reapFinished(Cycle now, std::vector<AssistWarp> *out);

    /** Kills entries of @p purpose matching @p token (Section 3.4). */
    int killByToken(std::uint64_t token, AssistPurpose purpose);

    /** Feeds the utilization monitor: was this issue slot used? */
    void noteIssueSlot(bool used);

    /**
     * Equivalent to @p slots consecutive noteIssueSlot(false) calls.
     * Used by quiescence fast-forward: skipped cycles still age the
     * throttle window exactly as ticked idle cycles would, so the
     * idle-fraction gate sees the same history either way.
     */
    void skipIdleSlots(std::uint64_t slots);

    /** Fraction of idle issue slots over the sampling window. */
    double idleFraction() const;

    /** Snapshot of trigger/completion counters. */
    StatSet
    stats() const
    {
        StatSet s;
        s.setCounter("triggers", triggers_);
        s.setCounter("triggers_high", triggers_high_);
        s.setCounter("triggers_low", triggers_ - triggers_high_);
        s.setCounter("completions", completions_);
        s.setCounter("kills", kills_);
        s.setCounter("awt_full_rejections", rejections_);
        s.set("awt_capacity", static_cast<std::uint64_t>(cfg_.awt_entries));
        s.dist("latency").merge(latency_);
        return s;
    }

    const CabaConfig &config() const { return cfg_; }

    /** Trigger identity and staging-order consistency checks. */
    void audit(Audit &a) const;

  private:
    /** Drops @p id from the low-priority staging order. */
    void removeLowId(std::uint64_t id);

    CabaConfig cfg_;
    std::vector<AssistWarp> table_;
    std::uint64_t next_id_ = 1;

    /**
     * Ids of live low-priority entries, ascending (ids are assigned from
     * a monotonic sequence and table_ erases preserve order, so this is
     * exactly the table's low-priority subsequence). The first
     * awb_low_slots of these hold the AWB staging slots, which makes
     * eligible() O(1) instead of a scan over the whole AWT.
     */
    std::deque<std::uint64_t> low_ids_;

    /** Sliding-window issue-slot history (ring of 0/1). */
    std::vector<std::uint8_t> window_;
    int window_pos_ = 0;
    int window_idle_ = 0;
    int window_filled_ = 0;

    std::uint64_t triggers_ = 0;
    std::uint64_t triggers_high_ = 0;
    std::uint64_t completions_ = 0;
    std::uint64_t kills_ = 0;
    std::uint64_t rejections_ = 0;

    /** Spawn-to-completion cycles of every reaped assist warp. */
    Distribution latency_;
};

} // namespace caba

#endif // CABA_CABA_AWC_H
