/**
 * @file
 * Sweep-as-a-service core (DESIGN.md §13): the library behind the
 * caba_sweepd daemon and the caba_sweep client. The ROADMAP's
 * "heavy traffic" shape — repeated, overlapping app x design sweeps —
 * becomes a long-running server answering `caba-sweep-req-v1` requests
 * over a Unix-domain (or TCP) socket with the exact `caba-bench-v1`
 * documents caba_bench writes, byte for byte.
 *
 * Protocol (framing in common/socket.h):
 *   client -> server: one kFrameRequest frame carrying the request JSON
 *   server -> client: one kFrameResponseHeader frame
 *                     (`caba-sweep-resp-v1` JSON: status + per-request
 *                     stats, or a structured error), then — on success
 *                     only — one kFrameResponsePayload frame with the
 *                     raw caba-bench-v1 bytes.
 *
 * Request JSON (`caba-sweep-req-v1`): exactly one of
 *   {"schema":"caba-sweep-req-v1","experiment":"fig07_performance",...}
 *   {"schema":"caba-sweep-req-v1","apps":[...],"designs":[...],...}
 * plus optional {"options":{"scale":X,"jobs":N,"warps":N}} and
 * "timeout_ms". Validation reuses the CLI's strict numeric rules
 * (common/parse.h), so "nan" scales and LONG_MAX jobs are rejected at
 * the door with a structured error — a malformed request never reaches
 * the executor and never kills the daemon.
 *
 * Execution model: one acceptor thread validates and admits requests
 * into a bounded queue (admission control / backpressure: over-limit
 * requests get an immediate `queue_full` error); one executor thread
 * drains the queue serially, and each sweep fans its cells across the
 * existing ThreadPool — the worker pool shards cells, not requests, so
 * per-request cache accounting stays exact. Every cell goes through
 * runApp and therefore the CellCache (the service enables the
 * in-process layer; CABA_CACHE_DIR adds the disk layer), so repeated
 * figure regenerations simulate zero cells. beginShutdown() (SIGTERM in
 * the daemon) stops admission and drains everything already admitted
 * before the threads exit.
 */
#ifndef CABA_HARNESS_SWEEP_SERVICE_H
#define CABA_HARNESS_SWEEP_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/stats.h"
#include "harness/runner.h"

namespace caba {

/** Frame types of the caba-sweep protocol (see file comment). */
enum SweepFrameType : std::uint32_t {
    kFrameRequest = 1,
    kFrameResponseHeader = 2,
    kFrameResponsePayload = 3,
};

/** Schema identifiers, spelled once. */
extern const char *const kSweepRequestSchema;   ///< "caba-sweep-req-v1"
extern const char *const kSweepResponseSchema;  ///< "caba-sweep-resp-v1"

/** Service knobs; the daemon fills them from CABA_SWEEPD_* env vars. */
struct SweepServiceConfig
{
    /** Listen address: UDS path, or "tcp:HOST:PORT". */
    std::string address = "caba_sweepd.sock";

    /** Bounded admission queue: requests waiting behind the executor.
     *  Over-limit submissions are rejected with `queue_full`; 0 rejects
     *  every request (useful to test the backpressure path). */
    int max_queue = 64;

    /** Default per-request deadline in ms (0 = none). A request's own
     *  "timeout_ms" overrides. Expired requests are answered with
     *  `deadline_exceeded`; a sweep already running is not killed
     *  mid-cell (cells are memoized, so the work is not wasted). */
    std::int64_t default_timeout_ms = 0;

    /** Largest accepted request frame. */
    std::uint64_t max_request_bytes = 1 << 20;

    /** Per-syscall send/recv guard against stalled peers (acceptor
     *  side only; clients may wait arbitrarily long for results). */
    int io_timeout_ms = 10000;

    /** Test-only: sleep this long before executing each request, so
     *  deadline and drain tests are deterministic. */
    int test_dequeue_delay_ms = 0;
};

/** One validated request. Exactly one of experiment / (apps+designs). */
struct SweepRequest
{
    std::string experiment;             ///< Registered experiment name.
    std::vector<std::string> apps;      ///< Cell-list form: app names.
    std::vector<std::string> designs;   ///< Cell-list form: design names.
    ExperimentOptions opts;             ///< scale / jobs / warps.
    std::int64_t timeout_ms = -1;       ///< -1 = service default.
};

/**
 * Parses and validates @p text as a caba-sweep-req-v1 document.
 * @return false with a structured error: @p *code is one of
 * "bad_request", "unknown_experiment", "unknown_app", "unknown_design"
 * and @p *message names the offending field/value.
 */
bool parseSweepRequest(const std::string &text, SweepRequest *out,
                       std::string *code, std::string *message);

/** The design points a cell-list request may name (Base, HW-*-Mem,
 *  HW-*, CABA-*, Ideal-* over all algorithms, plus the Figure 13
 *  compressed-cache variants), unique by name. */
const std::vector<DesignConfig> &servableDesigns();

// ---------------------------------------------------------------------------
// Client side (used by the caba_sweep binary and the tests)

/** Convenience builder for the common request shapes. */
struct SweepRequestSpec
{
    std::string experiment;
    std::vector<std::string> apps;
    std::vector<std::string> designs;
    double scale = 1.0;
    int jobs = 0;
    int warps = 0;
    std::int64_t timeout_ms = -1;
};

/** Renders @p spec as caba-sweep-req-v1 JSON. */
std::string buildSweepRequestJson(const SweepRequestSpec &spec);

/** A server's answer to one request. */
struct SweepReply
{
    bool ok = false;
    std::string code;          ///< Error code when !ok.
    std::string message;       ///< Error message when !ok.
    std::string header_json;   ///< Raw caba-sweep-resp-v1 header.
    std::uint64_t queue_depth = 0;   ///< Requests ahead at admission.
    std::uint64_t simulations = 0;   ///< Cells actually simulated.
    std::uint64_t cache_served = 0;  ///< Cells served by the caches.
    std::uint64_t wall_ms = 0;       ///< Executor wall time.
    std::string payload;       ///< caba-bench-v1 bytes when ok.
};

/**
 * Submits @p request_json (any bytes — the server rejects malformed
 * text with a structured error, which lands in @p *reply) to the
 * daemon at @p address and blocks for the reply. @return false with
 * @p *error set only on transport failures (cannot connect, peer died
 * mid-reply); a server-side error is a successful round-trip with
 * reply->ok == false.
 */
bool submitSweepRequest(const std::string &address,
                        const std::string &request_json, SweepReply *reply,
                        std::string *error);

// ---------------------------------------------------------------------------
// Server side

/** The daemon core: acceptor + bounded queue + draining executor. */
class SweepService
{
  public:
    explicit SweepService(SweepServiceConfig cfg);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Binds the socket and starts the acceptor and executor threads.
     *  @return false with @p *error set when the address is bad or the
     *  bind fails. */
    bool start(std::string *error);

    /** Stops accepting new requests and lets the executor drain every
     *  already-admitted request; returns immediately. Idempotent. */
    void beginShutdown();

    /** beginShutdown() + joins both threads (blocks until drained). */
    void shutdown();

    /** True between a successful start() and shutdown(). */
    bool running();

    /** Aggregate counters (snake_case, via the stats machinery):
     *  requests_{accepted,admitted,completed,bad,queue_full,deadline,
     *  shutdown_rejected}, cells_{simulated,cache_served}, io_errors. */
    StatSet stats();

    /** Requests currently admitted but not yet finished. */
    int queueDepth();

  private:
    struct Pending
    {
        int fd = -1;
        SweepRequest req;
        std::int64_t admit_ns = 0;   ///< steady-clock admission stamp.
        int depth_at_admit = 0;      ///< Requests ahead in the queue.
        std::uint64_t id = 0;
    };

    void acceptorLoop();
    void executorLoop();
    void handleConnection(int fd);
    void execute(Pending p);
    void replyError(int fd, const std::string &code,
                    const std::string &message);
    void bump(const char *counter, std::uint64_t delta = 1);

    SweepServiceConfig cfg_;
    net::Address addr_;
    int listen_fd_ = -1;

    std::mutex mu_;
    std::condition_variable exec_cv_;
    std::deque<Pending> queue_;
    bool stop_ = false;           ///< Admission closed.
    bool acceptor_done_ = false;
    bool started_ = false;
    std::uint64_t next_id_ = 1;
    StatSet stats_;

    std::thread acceptor_;
    std::thread executor_;
};

} // namespace caba

#endif // CABA_HARNESS_SWEEP_SERVICE_H
