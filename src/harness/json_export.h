/**
 * @file
 * Machine-readable bench output. Every figure bench accepts `--json
 * [path]` (default bench_results/<bench>.json) and writes a stable
 * "caba-bench-v1" document next to its human-readable table:
 *
 *   {
 *     "schema": "caba-bench-v1",
 *     "bench":  "<bench name>",
 *     "cells":  [ { app, design, cycles, ..., stats, gauges,
 *                   distributions, timeline }, ... ],
 *     "rows":   [ { <free-form columns> }, ... ]
 *   }
 *
 * "cells" carries full simulation results (one per app x design run);
 * "rows" carries tabular output for benches whose result is not a
 * RunResult (e.g. the Figure 2 occupancy study). Both arrays are always
 * present. Output is deterministic: identical results produce
 * byte-identical files regardless of sweep worker count.
 */
#ifndef CABA_HARNESS_JSON_EXPORT_H
#define CABA_HARNESS_JSON_EXPORT_H

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/sweep.h"

namespace caba {

/**
 * Parses `--json` or `--json=<path>` out of @p argv. @return the
 * output path ("" when the flag is absent); the bare flag defaults to
 * bench_results/<bench>.json and never consumes the next token.
 */
std::string jsonOutPath(const std::string &bench, int argc, char **argv);

/** Serializes one RunResult as a JSON object into @p w. */
void writeRunResultJson(JsonWriter &w, const RunResult &r);

/** Accumulates cells/rows for one bench and writes the document. */
class BenchJson
{
  public:
    /** @p path empty = disabled: every method becomes a no-op. */
    BenchJson(std::string bench, std::string path);

    /** A path-less collector: document() renders the same bytes write()
     *  would put in a file. The sweep service serves these over the
     *  socket, so a served sweep is byte-identical to a --json file. */
    static BenchJson capturing(std::string bench);

    bool enabled() const { return capture_ || !path_.empty(); }

    /** Appends one simulation cell. */
    void addCell(const std::string &app, const std::string &design,
                 const RunResult &r);

    /** Appends every cell of @p sweep in app-major order. */
    void addSweep(const Sweep &sweep);

    // Free-form rows: beginRow, field... , endRow.
    void beginRow();
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, int value);
    void endRow();

    /** The full caba-bench-v1 document (exactly the bytes write()
     *  stores, trailing newline included). */
    std::string document() const;

    /** Writes the document (creates parent directories). No-op when
     *  disabled or capturing. Reports the path on stderr. */
    void write() const;

  private:
    std::string bench_;
    std::string path_;
    bool capture_ = false;
    std::vector<std::string> cells_;
    std::vector<std::string> rows_;
    std::unique_ptr<JsonWriter> row_;
};

} // namespace caba

#endif // CABA_HARNESS_JSON_EXPORT_H
