/**
 * @file
 * Registry-driven experiments (DESIGN.md §12). Each former bench binary
 * is now a registration unit: a translation unit in the
 * caba_experiments library that defines one Experiment and registers it
 * under a stable name. The caba_bench CLI looks experiments up here,
 * runs any subset, and emits the same per-experiment caba-bench-v1
 * documents the standalone binaries produced, byte for byte.
 *
 * Two shapes:
 *  - sweep-shaped: the experiment declares apps(), designs(), an
 *    optional per-design tweak and an emit() that renders tables and
 *    summaries from the finished Sweep. The driver supplies the shared
 *    boilerplate (system-config header, title, Sweep construction,
 *    JSON cell export) in exactly the order the old main()s used.
 *  - body-shaped: experiments whose output is not one Sweep (the
 *    occupancy study, the per-cell figure 1 loop, the ablations, the
 *    codec microbench) implement body() and drive the BenchJson
 *    themselves.
 *
 * Registration happens from static initializers, so the experiment
 * library must be linked whole (an OBJECT library in CMake): see
 * bench/CMakeLists.txt.
 */
#ifndef CABA_HARNESS_EXPERIMENT_H
#define CABA_HARNESS_EXPERIMENT_H

#include <functional>
#include <string>
#include <vector>

#include "harness/json_export.h"
#include "harness/sweep.h"

namespace caba {

/** One named experiment. Exactly one of emit (sweep-shaped) or body
 *  (body-shaped) must be set. */
struct Experiment
{
    /** Registry key, CLI selector and JSON "bench" field. Snake_case;
     *  uniqueness is enforced at registration (and by caba-lint). */
    std::string name;

    /** One line for `caba_bench --list`. */
    std::string description;

    // ---- sweep-shaped ----

    /** Headline printed after the system config, before the sweep. */
    std::string title;

    std::function<std::vector<AppDescriptor>()> apps;
    std::function<std::vector<DesignConfig>()> designs;

    /** Optional per-design option adjustment (Figure 12 bakes the
     *  bandwidth point into the design identity). */
    std::function<ExperimentOptions(const DesignConfig &,
                                    const ExperimentOptions &)>
        tweak;

    /** Renders tables/summaries from the finished sweep. The driver
     *  appends the sweep's cells to @p json afterwards. */
    std::function<void(const Sweep &, BenchJson &)> emit;

    // ---- body-shaped ----

    /** Free-form experiment: everything the old main() printed and
     *  exported, minus flag parsing and BenchJson construction. */
    std::function<void(const ExperimentOptions &, BenchJson &)> body;
};

/** All registered experiments, addressable by name. */
class ExperimentRegistry
{
  public:
    static ExperimentRegistry &instance();

    /** Registers @p e; panics on a duplicate name or a shapeless
     *  experiment (neither emit nor body). */
    void add(Experiment e);

    /** The experiment registered as @p name, or null. */
    const Experiment *find(const std::string &name) const;

    /** Every experiment, sorted by name (deterministic CLI order). */
    std::vector<const Experiment *> all() const;

  private:
    ExperimentRegistry() = default;
    std::map<std::string, Experiment> by_name_;
};

/**
 * Runs one experiment with @p opts, writing its caba-bench-v1 document
 * to @p json_path ("" = no JSON). Replicates the old binaries' order of
 * operations exactly, so output is byte-identical.
 */
void runExperiment(const Experiment &e, const ExperimentOptions &opts,
                   const std::string &json_path);

/**
 * Runs one experiment and returns its caba-bench-v1 document as a
 * string instead of a file — byte-identical to what runExperiment
 * writes for the same inputs (the sweep service serves this over the
 * socket). Human-readable tables still go to stdout.
 */
std::string runExperimentCaptured(const Experiment &e,
                                  const ExperimentOptions &opts);

namespace detail {

/** Static-initializer hook used by CABA_REGISTER_EXPERIMENT. */
struct ExperimentRegistrar
{
    ExperimentRegistrar(const char *name, void (*define)(Experiment &));
};

} // namespace detail

/**
 * Defines and registers one experiment. Usage:
 *
 *   CABA_REGISTER_EXPERIMENT(fig07_performance)
 *   {
 *       exp.description = "...";
 *       exp.title = "...";
 *       ...
 *   }
 *
 * The identifier doubles as the registry name, so names are valid
 * snake_case identifiers by construction; cross-file uniqueness is
 * checked at registration and statically by caba-lint.
 */
#define CABA_REGISTER_EXPERIMENT(ident)                                     \
    static void caba_define_experiment_##ident(::caba::Experiment &);       \
    static const ::caba::detail::ExperimentRegistrar                        \
        caba_experiment_registrar_##ident{                                  \
            #ident, caba_define_experiment_##ident};                        \
    static void caba_define_experiment_##ident(                             \
        [[maybe_unused]] ::caba::Experiment &exp)

} // namespace caba

#endif // CABA_HARNESS_EXPERIMENT_H
