#include "harness/sweep_service.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/json.h"
#include "common/json_parse.h"
#include "common/log.h"
#include "harness/cell_cache.h"
#include "harness/experiment.h"
#include "workloads/app.h"

namespace caba {

const char *const kSweepRequestSchema = "caba-sweep-req-v1";
const char *const kSweepResponseSchema = "caba-sweep-resp-v1";

namespace {

/** Steady-clock nanoseconds: deadlines and per-request wall time only —
 *  never simulation state (this file is whitelisted in caba-lint's
 *  determinism rule for exactly this use). */
std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Largest timeout we accept: ~11 days, plenty and overflow-safe. */
constexpr double kMaxTimeoutMs = 1e9;

bool
findServableDesign(const std::string &name, DesignConfig *out)
{
    for (const DesignConfig &d : servableDesigns()) {
        if (d.name == name) {
            *out = d;
            return true;
        }
    }
    return false;
}

bool
appExists(const std::string &name)
{
    for (const AppDescriptor &app : allApps())
        if (app.name == name)
            return true;
    return false;
}

/** Integral-valued JSON number in [0, @p max]; false otherwise. */
bool
jsonNonNegativeInt(const json::Value &v, double max, std::int64_t *out)
{
    if (!v.isNumber() || !std::isfinite(v.number))
        return false;
    if (v.number < 0.0 || v.number > max ||
        v.number != std::floor(v.number))
        return false;
    *out = static_cast<std::int64_t>(v.number);
    return true;
}

std::string
errorHeaderJson(const std::string &code, const std::string &message)
{
    JsonWriter w;
    w.beginObject()
        .kv("schema", kSweepResponseSchema)
        .kv("status", "error");
    w.key("error")
        .beginObject()
        .kv("code", code)
        .kv("message", message)
        .endObject()
        .endObject();
    return w.str();
}

std::uint64_t
statsFieldU64(const json::Value &header, const char *field)
{
    const json::Value *stats = header.find("stats");
    if (stats == nullptr)
        return 0;
    const json::Value *v = stats->find(field);
    return v != nullptr && v->isNumber() && v->number >= 0.0
               ? static_cast<std::uint64_t>(v->number)
               : 0;
}

} // namespace

const std::vector<DesignConfig> &
servableDesigns()
{
    static const std::vector<DesignConfig> designs = [] {
        std::vector<DesignConfig> v;
        v.push_back(DesignConfig::base());
        for (const Algorithm algo :
             {Algorithm::Bdi, Algorithm::Fpc, Algorithm::CPack,
              Algorithm::BestOfAll}) {
            v.push_back(DesignConfig::hwMem(algo));
            v.push_back(DesignConfig::hw(algo));
            v.push_back(DesignConfig::caba(algo));
            v.push_back(DesignConfig::ideal(algo));
        }
        // Figure 13 compressed-cache variants.
        v.push_back(DesignConfig::cabaCompressedCache(2, 1));
        v.push_back(DesignConfig::cabaCompressedCache(4, 1));
        v.push_back(DesignConfig::cabaCompressedCache(1, 2));
        v.push_back(DesignConfig::cabaCompressedCache(1, 4));
        return v;
    }();
    return designs;
}

bool
parseSweepRequest(const std::string &text, SweepRequest *out,
                  std::string *code, std::string *message)
{
    *code = "bad_request";
    const auto failed = [&](const std::string &why) {
        *message = why;
        return false;
    };

    json::Value root;
    std::string jerr;
    if (!json::parse(text, &root, &jerr))
        return failed("request is not valid JSON: " + jerr);
    if (!root.isObject())
        return failed("request must be a JSON object");

    for (const auto &[key, value] : root.object) {
        (void)value;
        if (key != "schema" && key != "experiment" && key != "apps" &&
            key != "designs" && key != "options" && key != "timeout_ms")
            return failed("unknown request field \"" + key + "\"");
    }

    const json::Value *schema = root.find("schema");
    if (schema == nullptr || !schema->isString())
        return failed("missing \"schema\" field");
    if (schema->string != kSweepRequestSchema)
        return failed("unsupported schema \"" + schema->string +
                      "\" (this server speaks " +
                      std::string(kSweepRequestSchema) + ")");

    const json::Value *exp = root.find("experiment");
    const json::Value *apps = root.find("apps");
    const json::Value *designs = root.find("designs");
    if (exp != nullptr && (apps != nullptr || designs != nullptr))
        return failed("\"experiment\" and \"apps\"/\"designs\" are "
                      "mutually exclusive");
    if (exp == nullptr && (apps == nullptr || designs == nullptr))
        return failed("request needs either \"experiment\" or both "
                      "\"apps\" and \"designs\"");

    SweepRequest r;
    if (exp != nullptr) {
        if (!exp->isString() || exp->string.empty())
            return failed("\"experiment\" must be a non-empty string");
        if (ExperimentRegistry::instance().find(exp->string) == nullptr) {
            *code = "unknown_experiment";
            return failed("unknown experiment \"" + exp->string +
                          "\" (caba_bench --list names them)");
        }
        r.experiment = exp->string;
    } else {
        const auto takeNames = [&](const json::Value *arr,
                                   const char *what,
                                   std::vector<std::string> *into) {
            if (!arr->isArray() || arr->array.empty())
                return failed(std::string("\"") + what +
                              "\" must be a non-empty array of strings");
            for (const json::Value &v : arr->array) {
                if (!v.isString() || v.string.empty())
                    return failed(std::string("\"") + what +
                                  "\" must contain non-empty strings");
                into->push_back(v.string);
            }
            return true;
        };
        if (!takeNames(apps, "apps", &r.apps) ||
            !takeNames(designs, "designs", &r.designs))
            return false;
        for (const std::string &name : r.apps) {
            if (!appExists(name)) {
                *code = "unknown_app";
                return failed("unknown app \"" + name + "\"");
            }
        }
        DesignConfig scratch;
        for (const std::string &name : r.designs) {
            if (!findServableDesign(name, &scratch)) {
                *code = "unknown_design";
                return failed("unknown design \"" + name + "\"");
            }
        }
    }

    if (const json::Value *options = root.find("options")) {
        if (!options->isObject())
            return failed("\"options\" must be an object");
        for (const auto &[key, v] : options->object) {
            if (key == "scale") {
                // The same rule the CLI enforces (common/parse.h): a
                // finite, strictly positive multiplier.
                if (!v.isNumber() || !std::isfinite(v.number) ||
                    v.number <= 0.0)
                    return failed("options.scale must be a finite "
                                  "positive number");
                r.opts.scale = v.number;
            } else if (key == "jobs" || key == "warps") {
                std::int64_t n = 0;
                if (!jsonNonNegativeInt(v, 2147483647.0, &n))
                    return failed("options." + key +
                                  " must be a non-negative integer in "
                                  "int range");
                (key == "jobs" ? r.opts.jobs : r.opts.max_warps) =
                    static_cast<int>(n);
            } else {
                return failed("unknown option \"" + key + "\"");
            }
        }
    }

    if (const json::Value *timeout = root.find("timeout_ms")) {
        std::int64_t ms = 0;
        if (!jsonNonNegativeInt(*timeout, kMaxTimeoutMs, &ms))
            return failed("timeout_ms must be a non-negative integer "
                          "number of milliseconds");
        r.timeout_ms = ms;
    }

    *out = std::move(r);
    return true;
}

std::string
buildSweepRequestJson(const SweepRequestSpec &spec)
{
    JsonWriter w;
    w.beginObject().kv("schema", kSweepRequestSchema);
    if (!spec.experiment.empty()) {
        w.kv("experiment", spec.experiment);
    } else {
        w.key("apps").beginArray();
        for (const std::string &a : spec.apps)
            w.value(a);
        w.endArray();
        w.key("designs").beginArray();
        for (const std::string &d : spec.designs)
            w.value(d);
        w.endArray();
    }
    w.key("options")
        .beginObject()
        .kv("scale", spec.scale)
        .kv("jobs", spec.jobs)
        .kv("warps", spec.warps)
        .endObject();
    if (spec.timeout_ms >= 0)
        w.kv("timeout_ms", static_cast<std::int64_t>(spec.timeout_ms));
    w.endObject();
    return w.str();
}

bool
submitSweepRequest(const std::string &address,
                   const std::string &request_json, SweepReply *reply,
                   std::string *error)
{
    net::Address addr;
    if (!net::parseAddress(address, &addr, error))
        return false;
    const int fd = net::connectTo(addr, error);
    if (fd < 0)
        return false;

    const auto transportFail = [&](const std::string &why) {
        *error = why;
        net::closeFd(fd);
        return false;
    };

    if (!net::writeFrame(fd, kFrameRequest, request_json))
        return transportFail("failed to send request to " + addr.str());

    std::uint32_t type = 0;
    std::string header;
    std::string ferr;
    if (!net::readFrame(fd, &type, &header, 1u << 20, &ferr))
        return transportFail("no response header: " + ferr);
    if (type != kFrameResponseHeader)
        return transportFail("unexpected frame type " +
                             std::to_string(type) + " (wanted header)");

    json::Value parsed;
    if (!json::parse(header, &parsed, &ferr))
        return transportFail("unparseable response header: " + ferr);

    SweepReply r;
    r.header_json = header;
    const json::Value *status = parsed.find("status");
    r.ok = status != nullptr && status->isString() &&
           status->string == "ok";
    if (r.ok) {
        r.queue_depth = statsFieldU64(parsed, "queue_depth");
        r.simulations = statsFieldU64(parsed, "simulations");
        r.cache_served = statsFieldU64(parsed, "cache_served");
        r.wall_ms = statsFieldU64(parsed, "wall_ms");
        if (!net::readFrame(fd, &type, &r.payload,
                            std::uint64_t(1) << 32, &ferr))
            return transportFail("no response payload: " + ferr);
        if (type != kFrameResponsePayload)
            return transportFail("unexpected frame type " +
                                 std::to_string(type) +
                                 " (wanted payload)");
    } else {
        if (const json::Value *e = parsed.find("error")) {
            if (const json::Value *c = e->find("code"))
                r.code = c->string;
            if (const json::Value *m = e->find("message"))
                r.message = m->string;
        }
        if (r.code.empty())
            r.code = "internal";
    }
    net::closeFd(fd);
    *reply = std::move(r);
    return true;
}

// ---------------------------------------------------------------------------

SweepService::SweepService(SweepServiceConfig cfg) : cfg_(std::move(cfg)) {}

SweepService::~SweepService()
{
    shutdown();
}

bool
SweepService::start(std::string *error)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (started_) {
            *error = "service already started";
            return false;
        }
    }
    if (!net::parseAddress(cfg_.address, &addr_, error))
        return false;
    listen_fd_ = net::listenOn(addr_, error);
    if (listen_fd_ < 0)
        return false;

    // Warm requests must simulate nothing: every cell flows through
    // runApp and therefore this cache (plus the CABA_CACHE_DIR disk
    // layer when configured).
    CellCache::instance().enableInProcess();

    {
        std::lock_guard<std::mutex> lk(mu_);
        started_ = true;
        stop_ = false;
        acceptor_done_ = false;
    }
    acceptor_ = std::thread(&SweepService::acceptorLoop, this);
    executor_ = std::thread(&SweepService::executorLoop, this);
    return true;
}

void
SweepService::beginShutdown()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!started_ || stop_)
            return;
        stop_ = true;
    }
    exec_cv_.notify_all();
}

void
SweepService::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!started_)
            return;
    }
    beginShutdown();
    if (acceptor_.joinable())
        acceptor_.join();
    if (executor_.joinable())
        executor_.join();
    std::lock_guard<std::mutex> lk(mu_);
    started_ = false;
}

bool
SweepService::running()
{
    std::lock_guard<std::mutex> lk(mu_);
    return started_;
}

StatSet
SweepService::stats()
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

int
SweepService::queueDepth()
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int>(queue_.size());
}

// lint: stat-producer every service counter is registered through here
void
SweepService::bump(const char *counter, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lk(mu_);
    stats_.add(counter, delta);
}

void
SweepService::replyError(int fd, const std::string &code,
                         const std::string &message)
{
    if (!net::writeFrame(fd, kFrameResponseHeader,
                         errorHeaderJson(code, message)))
        bump("io_errors");
}

void
SweepService::acceptorLoop()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stop_)
                break;
        }
        // Short poll so beginShutdown() is noticed promptly.
        const int cfd = net::acceptClient(listen_fd_, 200);
        if (cfd == -2)
            break;
        if (cfd < 0)
            continue;
        bump("requests_accepted");
        handleConnection(cfd);
    }
    net::closeFd(listen_fd_);
    listen_fd_ = -1;
    net::unlinkIfUds(addr_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        acceptor_done_ = true;
    }
    exec_cv_.notify_all();
}

void
SweepService::handleConnection(int fd)
{
    // A stalled peer may hold the acceptor for at most io_timeout_ms.
    net::setIoTimeout(fd, cfg_.io_timeout_ms);

    std::uint32_t type = 0;
    std::string payload;
    std::string err;
    if (!net::readFrame(fd, &type, &payload, cfg_.max_request_bytes,
                        &err)) {
        bump("requests_bad");
        replyError(fd, "bad_request", err);
        net::closeFd(fd);
        return;
    }
    if (type != kFrameRequest) {
        bump("requests_bad");
        replyError(fd, "bad_request",
                   "unexpected frame type " + std::to_string(type) +
                       " (wanted request)");
        net::closeFd(fd);
        return;
    }

    Pending p;
    std::string code;
    std::string msg;
    if (!parseSweepRequest(payload, &p.req, &code, &msg)) {
        bump("requests_bad");
        replyError(fd, code, msg);
        net::closeFd(fd);
        return;
    }

    p.fd = fd;
    p.admit_ns = nowNs();
    const char *reject = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_) {
            reject = "shutting_down";
            stats_.add("requests_shutdown_rejected");
        } else if (static_cast<int>(queue_.size()) >= cfg_.max_queue) {
            reject = "queue_full";
            stats_.add("requests_queue_full");
        } else {
            p.depth_at_admit = static_cast<int>(queue_.size());
            p.id = next_id_++;
            stats_.add("requests_admitted");
            queue_.push_back(std::move(p));
        }
    }
    if (reject != nullptr) {
        replyError(fd,
                   reject,
                   std::string(reject) == "queue_full"
                       ? "admission queue is full (" +
                             std::to_string(cfg_.max_queue) +
                             " requests); retry later"
                       : "server is draining for shutdown");
        net::closeFd(fd);
        return;
    }
    exec_cv_.notify_one();
}

void
SweepService::executorLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lk(mu_);
            exec_cv_.wait(lk, [&] {
                return !queue_.empty() || (stop_ && acceptor_done_);
            });
            if (queue_.empty())
                break; // Admission closed and everything drained.
            p = std::move(queue_.front());
            queue_.pop_front();
        }
        execute(std::move(p));
    }
}

void
SweepService::execute(Pending p)
{
    if (cfg_.test_dequeue_delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.test_dequeue_delay_ms));

    const char *kind = p.req.experiment.empty() ? "cells" : "experiment";
    const std::string name =
        p.req.experiment.empty()
            ? std::to_string(p.req.apps.size()) + "x" +
                  std::to_string(p.req.designs.size())
            : p.req.experiment;
    const auto logLine = [&](const char *status, std::uint64_t sims,
                             std::uint64_t served, std::int64_t wall_ms) {
        std::fprintf(stderr,
                     "[sweepd] req=%llu kind=%s name=%s status=%s "
                     "queue_depth=%d simulations=%llu cache_served=%llu "
                     "wall_ms=%lld\n",
                     static_cast<unsigned long long>(p.id), kind,
                     name.c_str(), status, p.depth_at_admit,
                     static_cast<unsigned long long>(sims),
                     static_cast<unsigned long long>(served),
                     static_cast<long long>(wall_ms));
    };

    const std::int64_t timeout_ms =
        p.req.timeout_ms >= 0 ? p.req.timeout_ms : cfg_.default_timeout_ms;
    const std::int64_t queued_ms = (nowNs() - p.admit_ns) / 1000000;
    if (timeout_ms > 0 && queued_ms > timeout_ms) {
        bump("requests_deadline");
        replyError(p.fd, "deadline_exceeded",
                   "request spent " + std::to_string(queued_ms) +
                       " ms queued, past its " +
                       std::to_string(timeout_ms) + " ms deadline");
        net::closeFd(p.fd);
        logLine("deadline_exceeded", 0, 0, 0);
        return;
    }

    const CellCacheStats before = CellCache::instance().stats();
    const std::int64_t t0 = nowNs();
    std::string doc;
    std::string fail;
    try {
        if (!p.req.experiment.empty()) {
            const Experiment *e =
                ExperimentRegistry::instance().find(p.req.experiment);
            CABA_CHECK(e != nullptr,
                       "sweepd: experiment vanished after validation");
            doc = runExperimentCaptured(*e, p.req.opts);
        } else {
            std::vector<AppDescriptor> apps;
            for (const std::string &a : p.req.apps)
                apps.push_back(findApp(a));
            std::vector<DesignConfig> designs;
            for (const std::string &d : p.req.designs) {
                DesignConfig cfg;
                CABA_CHECK(findServableDesign(d, &cfg),
                           "sweepd: design vanished after validation");
                designs.push_back(cfg);
            }
            BenchJson json = BenchJson::capturing("custom_cells");
            const Sweep sweep(apps, designs, p.req.opts);
            json.addSweep(sweep);
            doc = json.document();
        }
    } catch (const std::exception &ex) {
        fail = ex.what();
    } catch (...) {
        fail = "unknown exception while running the sweep";
    }
    const std::int64_t wall_ms = (nowNs() - t0) / 1000000;
    const CellCacheStats after = CellCache::instance().stats();
    const std::uint64_t sims = after.simulations - before.simulations;
    const std::uint64_t served =
        (after.inproc_hits - before.inproc_hits) +
        (after.disk_hits - before.disk_hits);
    {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.add("cells_simulated", sims);
        stats_.add("cells_cache_served", served);
    }

    if (!fail.empty()) {
        bump("requests_internal_error");
        replyError(p.fd, "internal", fail);
        net::closeFd(p.fd);
        logLine("internal", sims, served, wall_ms);
        return;
    }
    const std::int64_t total_ms = (nowNs() - p.admit_ns) / 1000000;
    if (timeout_ms > 0 && total_ms > timeout_ms) {
        // The sweep finished, but past its deadline. The cells are
        // memoized, so an immediate retry is answered from cache.
        bump("requests_deadline");
        replyError(p.fd, "deadline_exceeded",
                   "sweep completed in " + std::to_string(total_ms) +
                       " ms, past its " + std::to_string(timeout_ms) +
                       " ms deadline (cells are cached; retry is "
                       "near-free)");
        net::closeFd(p.fd);
        logLine("deadline_exceeded", sims, served, wall_ms);
        return;
    }

    JsonWriter w;
    w.beginObject()
        .kv("schema", kSweepResponseSchema)
        .kv("status", "ok");
    w.key("stats")
        .beginObject()
        .kv("queue_depth", static_cast<std::uint64_t>(p.depth_at_admit))
        .kv("simulations", sims)
        .kv("cache_served", served)
        .kv("wall_ms", static_cast<std::uint64_t>(wall_ms))
        .kv("payload_bytes", static_cast<std::uint64_t>(doc.size()))
        .endObject()
        .endObject();
    if (!net::writeFrame(p.fd, kFrameResponseHeader, w.str()) ||
        !net::writeFrame(p.fd, kFrameResponsePayload, doc)) {
        bump("io_errors");
    } else {
        bump("requests_completed");
    }
    net::closeFd(p.fd);
    logLine("ok", sims, served, wall_ms);
}

} // namespace caba
