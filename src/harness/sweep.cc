#include "harness/sweep.h"

#include <cstdio>

#include "common/log.h"

namespace caba {

Sweep::Sweep(const std::vector<AppDescriptor> &apps,
             const std::vector<DesignConfig> &designs,
             const ExperimentOptions &opts,
             const std::function<ExperimentOptions(
                 const DesignConfig &, const ExperimentOptions &)> &tweak)
{
    for (const DesignConfig &d : designs)
        design_names_.push_back(d.name);
    for (const AppDescriptor &app : apps) {
        app_names_.push_back(app.name);
        for (const DesignConfig &d : designs) {
            const ExperimentOptions o = tweak ? tweak(d, opts) : opts;
            std::fprintf(stderr, "  [sweep] %-6s x %-14s ...\r",
                         app.name.c_str(), d.name.c_str());
            std::fflush(stderr);
            cells_.emplace(std::make_pair(app.name, d.name),
                           runApp(app, d, o));
        }
    }
    std::fprintf(stderr, "%48s\r", "");
}

const RunResult &
Sweep::at(const std::string &app, const std::string &design) const
{
    auto it = cells_.find({app, design});
    CABA_CHECK(it != cells_.end(), "sweep cell missing");
    return it->second;
}

double
Sweep::speedup(const std::string &app, const std::string &design,
               const std::string &base_design) const
{
    return static_cast<double>(at(app, base_design).cycles) /
           static_cast<double>(at(app, design).cycles);
}

} // namespace caba
