#include "harness/sweep.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/env.h"
#include "common/log.h"
#include "common/self_profile.h"
#include "common/thread_pool.h"

namespace caba {

int
sweepJobsFromEnv(int fallback)
{
    return env::positiveIntOr("CABA_JOBS", fallback);
}

Sweep::Sweep(const std::vector<AppDescriptor> &apps,
             const std::vector<DesignConfig> &designs,
             const ExperimentOptions &opts,
             const std::function<ExperimentOptions(
                 const DesignConfig &, const ExperimentOptions &)> &tweak)
{
    for (const DesignConfig &d : designs)
        design_names_.push_back(d.name);
    for (const AppDescriptor &app : apps)
        app_names_.push_back(app.name);

    // Materialize the cell list up front, applying the (caller-supplied,
    // not necessarily thread-safe) tweak hook serially on this thread.
    // Each cell is then a pure function of its own inputs: runApp builds
    // a private Workload + GpuSystem, so cells can run in any order on
    // any thread and still produce bit-identical results.
    struct Cell
    {
        const AppDescriptor *app;
        const DesignConfig *design;
        ExperimentOptions opts;
    };
    std::vector<Cell> cells;
    cells.reserve(apps.size() * designs.size());
    for (const AppDescriptor &app : apps)
        for (const DesignConfig &d : designs)
            cells.push_back({&app, &d, tweak ? tweak(d, opts) : opts});

    const int jobs = opts.jobs > 0
                         ? opts.jobs
                         : sweepJobsFromEnv(ThreadPool::defaultWorkers());

    std::vector<RunResult> results(cells.size());
    const auto self_before = SelfProfile::snapshot();
    {
        ProgressReporter progress("sweep", static_cast<int>(cells.size()));
        parallelFor(static_cast<int>(cells.size()), jobs, [&](int i) {
            const Cell &c = cells[static_cast<std::size_t>(i)];
            results[static_cast<std::size_t>(i)] =
                runApp(*c.app, *c.design, c.opts);
            progress.tick(c.app->name + " x " + c.design->name);
        });
    }
    // Wall-clock self-profile of this sweep (aggregated across workers;
    // stderr only so the deterministic JSON exports stay byte-stable).
    for (const auto &[name, ns] : SelfProfile::snapshot()) {
        auto it = self_before.find(name);
        const std::int64_t delta =
            ns - (it == self_before.end() ? 0 : it->second);
        if (delta > 0) {
            std::fprintf(stderr, "  sweep self: %-8s %8.3fs\n", name.c_str(),
                         static_cast<double>(delta) * 1e-9);
        }
    }

    // Insert in the original serial (app-major) order so the resulting
    // map is built identically regardless of worker count.
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells_.emplace(std::make_pair(cells[i].app->name,
                                      cells[i].design->name),
                       std::move(results[i]));
}

Sweep::Sweep(std::vector<NamedCell> cells)
{
    for (NamedCell &c : cells) {
        if (std::find(app_names_.begin(), app_names_.end(), c.app) ==
            app_names_.end())
            app_names_.push_back(c.app);
        if (std::find(design_names_.begin(), design_names_.end(),
                      c.design) == design_names_.end())
            design_names_.push_back(c.design);
        const bool inserted =
            cells_.emplace(std::make_pair(c.app, c.design),
                           std::move(c.result))
                .second;
        CABA_CHECK(inserted, "sweep: duplicate (app, design) cell");
    }
}

const RunResult &
Sweep::at(const std::string &app, const std::string &design) const
{
    auto it = cells_.find({app, design});
    CABA_CHECK(it != cells_.end(), "sweep cell missing");
    return it->second;
}

double
Sweep::speedup(const std::string &app, const std::string &design,
               const std::string &base_design) const
{
    const RunResult &base = at(app, base_design);
    if (base.cycles == 0) {
        const std::string msg =
            "sweep: speedup base cell retired zero cycles (app=" + app +
            ", base design=" + base_design + ")";
        CABA_PANIC(msg.c_str());
    }
    return static_cast<double>(base.cycles) /
           static_cast<double>(at(app, design).cycles);
}

} // namespace caba
