#include "harness/bench_cli.h"

#include <algorithm>
#include <set>

#include "common/parse.h"

namespace caba {

bool
globMatch(const char *pat, const char *s)
{
    const char *star = nullptr;
    const char *star_s = nullptr;
    while (*s != '\0') {
        if (*pat == '?' || *pat == *s) {
            ++pat;
            ++s;
        } else if (*pat == '*') {
            star = pat++;
            star_s = s;
        } else if (star != nullptr) {
            pat = star + 1;
            s = ++star_s;
        } else {
            return false;
        }
    }
    while (*pat == '*')
        ++pat;
    return *pat == '\0';
}

bool
parseBenchCli(const std::vector<std::string> &args, BenchCli *cli,
              std::string *error)
{
    BenchCli out;
    const auto failed = [&](const std::string &msg) {
        *error = msg;
        return false;
    };

    // Flags with a value accept both "--flag value" and "--flag=value";
    // --json is the exception (value only via '=', see the header).
    std::size_t i = 0;
    const auto valueOf = [&](const std::string &flag, const char *inline_val,
                             std::string *v) {
        if (inline_val != nullptr) {
            *v = inline_val;
            return true;
        }
        if (i + 1 >= args.size())
            return false;
        *v = args[++i];
        return true;
    };

    for (i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "-h" || arg == "--help") {
            out.action = BenchCli::Action::Help;
            *cli = out;
            return true;
        }
        if (arg == "--help-env") {
            out.action = BenchCli::Action::HelpEnv;
            *cli = out;
            return true;
        }
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            const std::string flag = arg.substr(0, eq);
            const char *inline_val =
                eq == std::string::npos ? nullptr : arg.c_str() + eq + 1;
            std::string v;
            if (flag == "--list" || flag == "--all") {
                if (inline_val != nullptr)
                    return failed("flag " + flag + " takes no value");
                (flag == "--list" ? out.list : out.run_all) = true;
            } else if (flag == "--filter") {
                if (!valueOf(flag, inline_val, &v))
                    return failed("flag --filter needs a value");
                out.filters.push_back(v);
            } else if (flag == "--json") {
                // Bare --json keeps per-experiment default paths and
                // must not consume the next token (it used to eat the
                // experiment name); an explicit path is --json=PATH.
                out.json_enabled = true;
                if (inline_val != nullptr) {
                    if (*inline_val == '\0')
                        return failed("--json= needs a non-empty path");
                    out.json_path = inline_val;
                }
            } else if (flag == "--scale") {
                if (!valueOf(flag, inline_val, &v))
                    return failed("flag --scale needs a value");
                if (!parse::finitePositiveReal(v, &out.opts.scale))
                    return failed("--scale needs a finite positive "
                                  "number, got '" + v + "'");
            } else if (flag == "--jobs" || flag == "--warps") {
                if (!valueOf(flag, inline_val, &v))
                    return failed("flag " + flag + " needs a value");
                int n = 0;
                if (!parse::intInRange(v, 0, &n))
                    return failed(flag + " needs a non-negative integer "
                                  "in int range, got '" + v + "'");
                (flag == "--jobs" ? out.opts.jobs : out.opts.max_warps) = n;
            } else {
                return failed("unknown flag '" + arg + "'");
            }
        } else if (!arg.empty() && arg[0] == '-' && arg.size() > 1) {
            return failed("unknown flag '" + arg + "'");
        } else {
            out.names.push_back(arg);
        }
    }
    *cli = out;
    return true;
}

bool
resolveSelection(const BenchCli &cli,
                 const std::vector<std::string> &available,
                 std::vector<std::string> *selected, std::string *error)
{
    std::set<std::string> picked;
    for (const std::string &name : cli.names) {
        if (std::find(available.begin(), available.end(), name) ==
            available.end()) {
            *error = "unknown experiment '" + name + "' (see --list)";
            return false;
        }
        picked.insert(name);
    }
    for (const std::string &glob : cli.filters) {
        bool any = false;
        for (const std::string &name : available) {
            if (globMatch(glob.c_str(), name.c_str())) {
                picked.insert(name);
                any = true;
            }
        }
        if (!any) {
            *error = "--filter '" + glob +
                     "' matches no experiment (see --list)";
            return false;
        }
    }
    if (cli.run_all)
        picked.insert(available.begin(), available.end());
    if (picked.empty()) {
        *error = "no experiments selected (name one, or use --all, "
                 "--filter, --list)";
        return false;
    }
    if (!cli.json_path.empty() && picked.size() > 1) {
        *error = "an explicit --json path needs exactly one selected "
                 "experiment (" + std::to_string(picked.size()) +
                 " selected)";
        return false;
    }
    selected->assign(picked.begin(), picked.end());
    return true;
}

} // namespace caba
