#include "harness/cell_cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/audit.h"
#include "common/env.h"
#include "common/log.h"

namespace caba {

/* Bump this string whenever a change can alter any RunResult (timing,
 * stats, codecs, energy, workload generation ...). The audited
 * hit-vs-recompute self-check exists to catch a forgotten bump, but the
 * bump is the contract. */
const char *const kCellCacheCodeVersion = "caba-cells-1";

namespace {

/* Every struct rendered into the key must be rendered completely: a
 * field the key misses is a stale-result bug. These sizes (x86-64
 * System V ABI, the only ABI CI builds) trip the build when a field is
 * added, pointing here to extend the key text. */
#if defined(__x86_64__)
static_assert(sizeof(AppDescriptor) == 160,
              "AppDescriptor changed: update cellKeyText and bump "
              "kCellCacheCodeVersion");
static_assert(sizeof(DataMix) == 24,
              "DataMix changed: update cellKeyText and bump "
              "kCellCacheCodeVersion");
static_assert(sizeof(DesignConfig) == 56,
              "DesignConfig changed: update cellKeyText and bump "
              "kCellCacheCodeVersion");
static_assert(sizeof(ExtrasConfig) == 32,
              "ExtrasConfig changed: update cellKeyText and bump "
              "kCellCacheCodeVersion");
static_assert(sizeof(CabaConfig) == 32,
              "CabaConfig changed: update cellKeyText and bump "
              "kCellCacheCodeVersion");
#endif

/** %.17g renders the shortest round-trippable decimal form, the same
 *  convention as the JSON export. */
void
kvReal(std::ostringstream &os, const char *k, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << k << '=' << buf << '\n';
}

void
kvInt(std::ostringstream &os, const char *k, long long v)
{
    os << k << '=' << v << '\n';
}

void
kvStr(std::ostringstream &os, const char *k, const std::string &v)
{
    os << k << '=' << v << '\n';
}

constexpr char kMagic[8] = {'C', 'A', 'B', 'A', 'C', 'E', 'L', '1'};

std::uint64_t
fnv1a(const char *p, std::size_t n, std::uint64_t h)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(p[i]);
        h *= 1099511628211ull;
    }
    return h;
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>(v >> (8 * i));
    out.append(b, 8);
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

void
putStr(std::string &out, const std::string &s)
{
    putU64(out, s.size());
    out.append(s);
}

/** Bounds-checked little-endian reader over a serialized cell. */
struct Reader
{
    const std::string &in;
    std::size_t pos = 0;
    bool ok = true;

    std::uint64_t
    u64()
    {
        if (pos + 8 > in.size()) {
            ok = false;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(in[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!ok || pos + n > in.size()) {
            ok = false;
            return std::string();
        }
        std::string s = in.substr(pos, n);
        pos += n;
        return s;
    }
};

bool
readFileBytes(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

} // namespace

std::string
cellKeyText(const AppDescriptor &app, const DesignConfig &design,
            const ExperimentOptions &resolved,
            const std::string &code_version)
{
    std::ostringstream os;
    kvStr(os, "code_version", code_version);

    kvStr(os, "app.name", app.name);
    kvStr(os, "app.suite", app.suite);
    kvInt(os, "app.memory_bound", app.memory_bound);
    kvInt(os, "app.in_fig1", app.in_fig1);
    kvInt(os, "app.in_compression", app.in_compression);
    kvInt(os, "app.regs_per_thread", app.regs_per_thread);
    kvInt(os, "app.threads_per_block", app.threads_per_block);
    kvInt(os, "app.loads", app.loads);
    kvInt(os, "app.stores", app.stores);
    kvInt(os, "app.alu", app.alu);
    kvInt(os, "app.sfu", app.sfu);
    kvInt(os, "app.shmem", app.shmem);
    kvInt(os, "app.pattern", static_cast<int>(app.pattern));
    kvInt(os, "app.stride_bytes", app.stride_bytes);
    kvReal(os, "app.irregular_frac", app.irregular_frac);
    kvInt(os, "app.footprint", static_cast<long long>(app.footprint));
    kvInt(os, "app.iterations", app.iterations);
    kvInt(os, "app.data.primary", static_cast<int>(app.data.primary));
    kvInt(os, "app.data.secondary", static_cast<int>(app.data.secondary));
    kvReal(os, "app.data.secondary_frac", app.data.secondary_frac);
    kvReal(os, "app.data.zero_frac", app.data.zero_frac);
    kvReal(os, "app.memo_hit_rate", app.memo_hit_rate);

    kvStr(os, "design.name", design.name);
    kvInt(os, "design.algo", static_cast<int>(design.algo));
    kvInt(os, "design.mem_compressed", design.mem_compressed);
    kvInt(os, "design.xbar_compressed", design.xbar_compressed);
    kvInt(os, "design.decompress", static_cast<int>(design.decompress));
    kvInt(os, "design.caba_compress_stores", design.caba_compress_stores);
    kvInt(os, "design.md_overhead", design.md_overhead);
    kvInt(os, "design.l1_tag_factor", design.l1_tag_factor);
    kvInt(os, "design.l2_tag_factor", design.l2_tag_factor);

    kvReal(os, "opts.scale", resolved.scale);
    kvReal(os, "opts.bw_scale", resolved.bw_scale);
    kvInt(os, "opts.assist_regs", resolved.assist_regs);
    kvInt(os, "opts.verify", resolved.verify);
    kvInt(os, "opts.extras.memoize", resolved.extras.memoize);
    kvReal(os, "opts.extras.memo_hit_rate", resolved.extras.memo_hit_rate);
    kvInt(os, "opts.extras.prefetch", resolved.extras.prefetch);
    kvInt(os, "opts.extras.prefetch_lookahead",
          resolved.extras.prefetch_lookahead);
    kvInt(os, "opts.extras.profile", resolved.extras.profile);
    kvInt(os, "opts.extras.profile_interval",
          resolved.extras.profile_interval);
    kvInt(os, "opts.caba.awt_entries", resolved.caba.awt_entries);
    kvInt(os, "opts.caba.awb_low_slots", resolved.caba.awb_low_slots);
    kvInt(os, "opts.caba.throttle", resolved.caba.throttle);
    kvInt(os, "opts.caba.throttle_window", resolved.caba.throttle_window);
    kvReal(os, "opts.caba.throttle_idle_floor",
           resolved.caba.throttle_idle_floor);
    kvInt(os, "opts.caba.store_buffer", resolved.caba.store_buffer);
    kvInt(os, "opts.caba.decompress_high_priority",
          resolved.caba.decompress_high_priority);
    kvInt(os, "opts.caba.compress_low_priority",
          resolved.caba.compress_low_priority);
    kvInt(os, "opts.md_cache_kb", resolved.md_cache_kb);
    kvInt(os, "opts.max_warps", resolved.max_warps);
    return os.str();
}

std::string
cellKeyHash(const std::string &key_text)
{
    // Two independent FNV-1a 64 streams give a 128-bit content address;
    // the embedded key text in every entry catches the residual
    // collision case on load.
    const std::uint64_t a =
        fnv1a(key_text.data(), key_text.size(), 14695981039346656037ull);
    const std::uint64_t b =
        fnv1a(key_text.data(), key_text.size(), 1099511628211ull * 31 + 7);
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
}

std::string
serializeCell(const std::string &key_text, const RunResult &r)
{
    std::string out(kMagic, sizeof kMagic);
    putStr(out, key_text);

    putU64(out, r.cycles);
    putU64(out, r.instructions);
    putF64(out, r.ipc);
    putF64(out, r.bw_utilization);
    putF64(out, r.compression_ratio);
    putF64(out, r.md_hit_rate);

    putU64(out, r.breakdown.active);
    putU64(out, r.breakdown.mem_stall);
    putU64(out, r.breakdown.comp_stall);
    putU64(out, r.breakdown.data_stall);
    putU64(out, r.breakdown.idle);

    putF64(out, r.energy.core);
    putF64(out, r.energy.l1);
    putF64(out, r.energy.l2);
    putF64(out, r.energy.xbar);
    putF64(out, r.energy.dram);
    putF64(out, r.energy.compression);
    putF64(out, r.energy.static_energy);
    putF64(out, r.energy.total);

    putU64(out, r.stats.all().size());
    for (const auto &[k, v] : r.stats.all()) {
        putStr(out, k);
        putU64(out, v);
        putU64(out, r.stats.isGauge(k) ? 1 : 0);
    }
    putU64(out, r.stats.allDists().size());
    for (const auto &[k, d] : r.stats.allDists()) {
        putStr(out, k);
        putU64(out, d.count());
        putU64(out, d.sum());
        putU64(out, d.min());
        putU64(out, d.max());
        for (const std::uint64_t b : d.buckets())
            putU64(out, b);
    }
    putU64(out, r.timeline.size());
    for (const TimeSample &t : r.timeline) {
        putU64(out, t.cycle);
        putU64(out, t.instructions);
        putU64(out, t.dram_bursts);
    }
    putU64(out, fnv1a(out.data(), out.size(), 14695981039346656037ull));
    return out;
}

bool
deserializeCell(const std::string &blob, const std::string &expect_key,
                RunResult *out, std::string *error)
{
    if (blob.size() < sizeof kMagic + 8 ||
        std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
        *error = "bad magic";
        return false;
    }
    const std::size_t body = blob.size() - 8;
    Reader tail{blob, body};
    if (tail.u64() !=
        fnv1a(blob.data(), body, 14695981039346656037ull)) {
        *error = "checksum mismatch";
        return false;
    }

    Reader rd{blob, sizeof kMagic};
    if (rd.str() != expect_key) {
        *error = "key text mismatch (collision or stale entry)";
        return false;
    }
    RunResult r;
    r.cycles = rd.u64();
    r.instructions = rd.u64();
    r.ipc = rd.f64();
    r.bw_utilization = rd.f64();
    r.compression_ratio = rd.f64();
    r.md_hit_rate = rd.f64();
    r.breakdown.active = rd.u64();
    r.breakdown.mem_stall = rd.u64();
    r.breakdown.comp_stall = rd.u64();
    r.breakdown.data_stall = rd.u64();
    r.breakdown.idle = rd.u64();
    r.energy.core = rd.f64();
    r.energy.l1 = rd.f64();
    r.energy.l2 = rd.f64();
    r.energy.xbar = rd.f64();
    r.energy.dram = rd.f64();
    r.energy.compression = rd.f64();
    r.energy.static_energy = rd.f64();
    r.energy.total = rd.f64();

    const std::uint64_t n_stats = rd.u64();
    for (std::uint64_t i = 0; rd.ok && i < n_stats; ++i) {
        const std::string name = rd.str();
        const std::uint64_t value = rd.u64();
        const bool gauge = rd.u64() != 0;
        if (!rd.ok)
            break;
        if (gauge)
            r.stats.set(name, value);
        else
            r.stats.setCounter(name, value);
    }
    const std::uint64_t n_dists = rd.u64();
    for (std::uint64_t i = 0; rd.ok && i < n_dists; ++i) {
        const std::string name = rd.str();
        const std::uint64_t count = rd.u64();
        const std::uint64_t sum = rd.u64();
        const std::uint64_t min = rd.u64();
        const std::uint64_t max = rd.u64();
        std::array<std::uint64_t, Distribution::kBuckets> buckets{};
        for (int b = 0; b < Distribution::kBuckets; ++b)
            buckets[static_cast<std::size_t>(b)] = rd.u64();
        if (!rd.ok)
            break;
        r.stats.dist(name) =
            Distribution::restore(count, sum, min, max, buckets);
    }
    const std::uint64_t n_timeline = rd.u64();
    for (std::uint64_t i = 0; rd.ok && i < n_timeline; ++i) {
        TimeSample t;
        t.cycle = rd.u64();
        t.instructions = rd.u64();
        t.dram_bursts = rd.u64();
        r.timeline.push_back(t);
    }
    if (!rd.ok || rd.pos != body) {
        *error = "truncated or trailing bytes";
        return false;
    }
    *out = std::move(r);
    return true;
}

CellCache &
CellCache::instance()
{
    static CellCache cache;
    return cache;
}

void
CellCache::configure(std::string dir, std::string code_version,
                     bool in_process, bool self_check)
{
    std::lock_guard<std::mutex> lock(mu_);
    resolved_ = true;
    dir_ = std::move(dir);
    version_ = std::move(code_version);
    in_process_ = in_process;
    self_check_ = self_check;
    inproc_.clear();
    stats_ = CellCacheStats{};
}

void
CellCache::enableInProcess()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!resolved_)
        resolveFromEnv();
    in_process_ = true;
}

void
CellCache::resolveFromEnv()
{
    // Called under mu_. getenv here is as safe as the rest of the env
    // registry: tests mutate the environment only between sweeps.
    const char *dir = env::raw("CABA_CACHE_DIR");
    dir_ = dir ? dir : "";
    version_ = kCellCacheCodeVersion;
    // Self-check cache hits whenever periodic audits are requested
    // (CABA_AUDIT=full or a numeric period): the same "spend cycles to
    // prove bookkeeping" dial the audit layer uses.
    AuditConfig audit = AuditConfig::applySpec(AuditConfig{},
                                               env::raw("CABA_AUDIT"));
    self_check_ = audit.level == AuditLevel::Periodic;
    resolved_ = true;
}

bool
CellCache::enabled()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!resolved_)
        resolveFromEnv();
    return !dir_.empty() || in_process_;
}

std::string
CellCache::entryPath(const std::string &hash)
{
    std::lock_guard<std::mutex> lock(mu_);
    return dir_ + "/" + hash.substr(0, 2) + "/" + hash + ".cell";
}

CellCacheStats
CellCache::stats()
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
CellCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = CellCacheStats{};
}

void
CellCache::clearInProcess()
{
    std::lock_guard<std::mutex> lock(mu_);
    inproc_.clear();
}

RunResult
CellCache::runCell(const AppDescriptor &app, const DesignConfig &design,
                   const ExperimentOptions &opts,
                   const std::function<RunResult()> &simulate)
{
    ExperimentOptions resolved = opts;
    resolved.scale = opts.scale * scaleFromEnv();
    resolved.jobs = 0;          // worker count cannot affect a result
    resolved.json_out.clear();  // output path is not a semantic input

    std::string dir, version;
    bool in_process, self_check;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!resolved_)
            resolveFromEnv();
        dir = dir_;
        version = version_;
        in_process = in_process_;
        self_check = self_check_;
    }
    const std::string key = cellKeyText(app, design, resolved, version);
    const std::string hash = cellKeyHash(key);

    if (in_process) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inproc_.find(hash);
        if (it != inproc_.end()) {
            ++stats_.inproc_hits;
            return it->second;
        }
    }

    const std::string path =
        dir.empty() ? std::string()
                    : dir + "/" + hash.substr(0, 2) + "/" + hash + ".cell";
    RunResult result;
    bool have = false;
    bool from_disk = false;
    if (!path.empty()) {
        std::string blob;
        if (readFileBytes(path, &blob)) {
            std::string err;
            if (deserializeCell(blob, key, &result, &err)) {
                have = true;
                from_disk = true;
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.disk_hits;
            } else {
                std::fprintf(stderr,
                             "cell-cache: evicting %s (%s); recomputing\n",
                             path.c_str(), err.c_str());
                std::error_code ec;
                std::filesystem::remove(path, ec);
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.evictions;
                ++stats_.disk_misses;
            }
        } else {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.disk_misses;
        }
    }

    if (!have) {
        result = simulate();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.simulations;
        }
        if (!path.empty()) {
            const std::filesystem::path entry(path);
            std::error_code ec;
            std::filesystem::create_directories(entry.parent_path(), ec);
            // Atomic publication: concurrent writers (other processes
            // sharing the directory) each rename a private temp file.
            const std::string tmp =
                path + ".tmp." + std::to_string(::getpid());
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            const std::string blob = serializeCell(key, result);
            out.write(blob.data(),
                      static_cast<std::streamsize>(blob.size()));
            out.close();
            if (out.good()) {
                std::filesystem::rename(tmp, path, ec);
                if (!ec) {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.stores;
                } else {
                    std::filesystem::remove(tmp, ec);
                }
            } else {
                std::fprintf(stderr, "cell-cache: cannot write %s\n",
                             tmp.c_str());
                std::error_code rm;
                std::filesystem::remove(tmp, rm);
            }
        }
    } else if (from_disk && self_check) {
        RunResult fresh = simulate();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.self_checks;
            ++stats_.simulations;
        }
        CABA_CHECK(serializeCell(key, fresh) == serializeCell(key, result),
                   "cell-cache: cached cell differs from recomputation — "
                   "stale entries under CABA_CACHE_DIR (bump "
                   "kCellCacheCodeVersion or clear the cache)");
    }

    if (in_process) {
        std::lock_guard<std::mutex> lock(mu_);
        inproc_.emplace(hash, result);
    }
    return result;
}

} // namespace caba
