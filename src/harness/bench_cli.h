/**
 * @file
 * Argument parsing for the caba_bench CLI, as a library so it is
 * unit-testable (tests/test_cli.cc) and so the sweep service validates
 * request options with exactly the same rules the CLI enforces.
 *
 * Grammar notes that exist because they were once bugs:
 *  - Bare `--json` NEVER consumes the following token. It used to
 *    swallow the next non-dash argument as an output path, so
 *    `caba_bench --json fig07` ate the experiment name and died with
 *    "no experiments selected" (and `--json fig07 fig08` silently wrote
 *    fig08's document to a file named "fig07"). An explicit path is
 *    spelled `--json=PATH` only.
 *  - `--scale` requires a finite positive value: strtod parses
 *    "nan"/"inf" and a NaN defeats the old `<= 0` rejection.
 *  - `--jobs`/`--warps` are range-checked: strtol saturates huge input
 *    to LONG_MAX, which used to truncate silently through an int cast.
 */
#ifndef CABA_HARNESS_BENCH_CLI_H
#define CABA_HARNESS_BENCH_CLI_H

#include <string>
#include <vector>

#include "harness/runner.h"

namespace caba {

/** Everything a caba_bench command line can say. */
struct BenchCli
{
    enum class Action {
        Run,     ///< Run the selected experiments.
        Help,    ///< -h / --help: print usage, exit 0.
        HelpEnv, ///< --help-env: print the env registry, exit 0.
    };

    Action action = Action::Run;
    bool list = false;          ///< --list
    bool run_all = false;       ///< --all
    bool json_enabled = false;  ///< --json seen (bare or with a path)
    std::string json_path;      ///< From --json=PATH only; "" = default.
    std::vector<std::string> filters;  ///< --filter globs, in order.
    std::vector<std::string> names;    ///< Positional experiment names.
    ExperimentOptions opts;     ///< --scale / --jobs / --warps.
};

/**
 * Parses @p args (argv[1..]) into @p *cli. @return false with a
 * one-line reason in @p *error on a malformed command line; never
 * exits, prints, or touches the environment.
 */
bool parseBenchCli(const std::vector<std::string> &args, BenchCli *cli,
                   std::string *error);

/** Shell-style match of @p s against @p pat ('*' and '?'). */
bool globMatch(const char *pat, const char *s);

/**
 * Resolves @p cli's names / --filter globs / --all against the sorted
 * name list @p available into @p *selected (sorted, deduplicated).
 * @return false with @p *error set on an unknown name, a glob matching
 * nothing, or an empty selection.
 */
bool resolveSelection(const BenchCli &cli,
                      const std::vector<std::string> &available,
                      std::vector<std::string> *selected,
                      std::string *error);

} // namespace caba

#endif // CABA_HARNESS_BENCH_CLI_H
