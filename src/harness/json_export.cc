#include "harness/json_export.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/log.h"

namespace caba {

std::string
jsonOutPath(const std::string &bench, int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--json=", 7) == 0)
            return arg + 7;
        // Bare --json takes the default path and never consumes the
        // next token (the greedy form used to eat experiment names;
        // see harness/bench_cli.h).
        if (std::strcmp(arg, "--json") == 0)
            return "bench_results/" + bench + ".json";
    }
    return std::string();
}

namespace {

void
writeDistribution(JsonWriter &w, const Distribution &d)
{
    w.beginObject()
        .kv("count", d.count())
        .kv("sum", d.sum())
        .kv("min", d.min())
        .kv("max", d.max())
        .kv("mean", d.mean());
    w.key("buckets").beginArray();
    // Only non-empty buckets, as [bucket_low, count] pairs.
    for (int b = 0; b < Distribution::kBuckets; ++b) {
        const std::uint64_t count =
            d.buckets()[static_cast<std::size_t>(b)];
        if (count == 0)
            continue;
        w.beginArray()
            .value(Distribution::bucketLow(b))
            .value(count)
            .endArray();
    }
    w.endArray().endObject();
}

} // namespace

void
writeRunResultJson(JsonWriter &w, const RunResult &r)
{
    w.beginObject()
        .kv("cycles", static_cast<std::uint64_t>(r.cycles))
        .kv("instructions", r.instructions)
        .kv("ipc", r.ipc)
        .kv("bw_utilization", r.bw_utilization)
        .kv("compression_ratio", r.compression_ratio)
        .kv("md_hit_rate", r.md_hit_rate);
    w.key("breakdown")
        .beginObject()
        .kv("active", r.breakdown.active)
        .kv("mem_stall", r.breakdown.mem_stall)
        .kv("comp_stall", r.breakdown.comp_stall)
        .kv("data_stall", r.breakdown.data_stall)
        .kv("idle", r.breakdown.idle)
        .endObject();
    w.key("energy")
        .beginObject()
        .kv("core", r.energy.core)
        .kv("l1", r.energy.l1)
        .kv("l2", r.energy.l2)
        .kv("xbar", r.energy.xbar)
        .kv("dram", r.energy.dram)
        .kv("compression", r.energy.compression)
        .kv("static", r.energy.static_energy)
        .kv("total", r.energy.total)
        .endObject();
    // Counters and gauges separately so consumers can aggregate
    // correctly (counters sum across runs, gauges do not).
    w.key("stats").beginObject();
    for (const auto &[k, v] : r.stats.all()) {
        if (!r.stats.isGauge(k))
            w.kv(k, v);
    }
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[k, v] : r.stats.all()) {
        if (r.stats.isGauge(k))
            w.kv(k, v);
    }
    w.endObject();
    w.key("distributions").beginObject();
    for (const auto &[k, d] : r.stats.allDists()) {
        w.key(k);
        writeDistribution(w, d);
    }
    w.endObject();
    w.key("timeline").beginArray();
    for (const TimeSample &t : r.timeline) {
        w.beginArray()
            .value(static_cast<std::uint64_t>(t.cycle))
            .value(t.instructions)
            .value(t.dram_bursts)
            .endArray();
    }
    w.endArray();
    w.endObject();
}

BenchJson::BenchJson(std::string bench, std::string path)
    : bench_(std::move(bench)), path_(std::move(path))
{
}

BenchJson
BenchJson::capturing(std::string bench)
{
    BenchJson j(std::move(bench), std::string());
    j.capture_ = true;
    return j;
}

void
BenchJson::addCell(const std::string &app, const std::string &design,
                   const RunResult &r)
{
    if (!enabled())
        return;
    JsonWriter w;
    w.beginObject().kv("app", app).kv("design", design);
    w.key("result");
    writeRunResultJson(w, r);
    w.endObject();
    cells_.push_back(w.str());
}

void
BenchJson::addSweep(const Sweep &sweep)
{
    if (!enabled())
        return;
    for (const std::string &app : sweep.appNames())
        for (const std::string &design : sweep.designNames())
            addCell(app, design, sweep.at(app, design));
}

void
BenchJson::beginRow()
{
    if (!enabled())
        return;
    CABA_CHECK(!row_, "beginRow with a row already open");
    row_ = std::make_unique<JsonWriter>();
    row_->beginObject();
}

void
BenchJson::field(const std::string &key, const std::string &value)
{
    if (row_)
        row_->kv(key, value);
}

void
BenchJson::field(const std::string &key, const char *value)
{
    if (row_)
        row_->kv(key, value);
}

void
BenchJson::field(const std::string &key, double value)
{
    if (row_)
        row_->kv(key, value);
}

void
BenchJson::field(const std::string &key, std::uint64_t value)
{
    if (row_)
        row_->kv(key, value);
}

void
BenchJson::field(const std::string &key, int value)
{
    if (row_)
        row_->kv(key, value);
}

void
BenchJson::endRow()
{
    if (!enabled())
        return;
    CABA_CHECK(row_ != nullptr, "endRow without beginRow");
    row_->endObject();
    rows_.push_back(row_->str());
    row_.reset();
}

std::string
BenchJson::document() const
{
    CABA_CHECK(!row_, "document with a row still open");
    std::string doc = "{\"schema\":\"caba-bench-v1\",\"bench\":\"" +
                      JsonWriter::escape(bench_) + "\",\"cells\":[";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (i)
            doc += ',';
        doc += cells_[i];
    }
    doc += "],\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (i)
            doc += ',';
        doc += rows_[i];
    }
    doc += "]}\n";
    return doc;
}

void
BenchJson::write() const
{
    if (path_.empty())
        return;
    const std::string doc = document();
    const std::filesystem::path out(path_);
    std::error_code ec;
    if (out.has_parent_path())
        std::filesystem::create_directories(out.parent_path(), ec);
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "json: cannot open %s for writing\n",
                     path_.c_str());
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "json: wrote %s\n", path_.c_str());
}

} // namespace caba
