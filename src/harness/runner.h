/**
 * @file
 * Experiment runner shared by the bench binaries: builds a Workload and
 * a GpuSystem for an (application, design) pair, applies the CABA
 * register accounting to occupancy, runs to completion, and offers the
 * small statistics helpers the figure tables need.
 */
#ifndef CABA_HARNESS_RUNNER_H
#define CABA_HARNESS_RUNNER_H

#include <string>
#include <vector>

#include "gpu/gpu_system.h"
#include "workloads/workload.h"

namespace caba {

/** Knobs common to every experiment. */
struct ExperimentOptions
{
    /** Loop-trip multiplier; CABA_SCALE env overrides (see scaleFromEnv). */
    double scale = 1.0;

    /** Off-chip bandwidth relative to Table 1 (Figures 1 and 12). */
    double bw_scale = 1.0;

    /** Per-thread registers reserved for assist warps (Section 3.2.2).
     *  BDI subroutines are register-light; 2 per thread (64 per warp)
     *  usually fits the unallocated pool of Figure 2. */
    int assist_regs = 2;

    /** Functional round-trip verification of every compressed line. */
    bool verify = false;

    /** Section 7 extras (memoization / prefetching ablations). */
    ExtrasConfig extras{};

    /** CABA framework knobs (AWB slots, throttle, priorities...). */
    CabaConfig caba{};

    /** MD cache capacity in KB (Section 4.3.2 study). */
    int md_cache_kb = 8;

    /** Cap on resident warps per SM; 0 keeps the occupancy-derived
     *  count. Occupancy studies (and quiescence-sensitive runs, where
     *  low occupancy opens fast-forwardable stall windows) lower it. */
    int max_warps = 0;

    /**
     * Sweep worker threads: 0 = auto (CABA_JOBS env var, else
     * hardware_concurrency), 1 = serial, N = exactly N workers.
     */
    int jobs = 0;

    /** Machine-readable output path ("" = off). Benches fill this from
     *  the --json flag (see harness/json_export.h). */
    std::string json_out;
};

/**
 * Reads CABA_SCALE from the environment (default @p fallback). The
 * environment is consulted once per process and cached, keeping getenv
 * out of the per-run hot path and off the sweep worker threads.
 */
double scaleFromEnv(double fallback = 1.0);

/** Builds the Table 1 GpuConfig for @p opts (and @p design). */
GpuConfig makeGpuConfig(const ExperimentOptions &opts);

/** Runs @p app under @p design; returns the collected results. */
RunResult runApp(const AppDescriptor &app, const DesignConfig &design,
                 const ExperimentOptions &opts = {});

/** Geometric mean (ignores non-positive entries). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Prints the Table 1 system summary header once per bench. */
void printSystemConfig(const ExperimentOptions &opts);

} // namespace caba

#endif // CABA_HARNESS_RUNNER_H
