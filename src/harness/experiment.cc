#include "harness/experiment.h"

#include <cstdio>

#include "common/log.h"

namespace caba {

ExperimentRegistry &
ExperimentRegistry::instance()
{
    // Function-local static: registration happens from static
    // initializers in the experiment library, so the registry must not
    // depend on initialization order across translation units.
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(Experiment e)
{
    CABA_CHECK(!e.name.empty(), "experiment: empty name");
    CABA_CHECK(static_cast<bool>(e.emit) != static_cast<bool>(e.body),
               "experiment: exactly one of emit (sweep-shaped) or body "
               "(body-shaped) must be set");
    CABA_CHECK(!e.emit || (e.apps && e.designs),
               "experiment: sweep-shaped experiments need apps and designs");
    const auto [it, inserted] = by_name_.emplace(e.name, std::move(e));
    (void)it;
    CABA_CHECK(inserted, "experiment: duplicate registration (names must "
                         "be unique across bench/)");
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<const Experiment *>
ExperimentRegistry::all() const
{
    std::vector<const Experiment *> out;
    out.reserve(by_name_.size());
    for (const auto &[name, e] : by_name_)
        out.push_back(&e);
    return out;
}

namespace {

void
runExperimentInto(const Experiment &e, const ExperimentOptions &opts,
                  BenchJson &json)
{
    if (e.body) {
        e.body(opts, json);
    } else {
        // The shared prologue/epilogue every sweep-shaped bench used,
        // in the same order: header, title, sweep, tables, JSON cells.
        printSystemConfig(opts);
        std::printf("%s\n\n", e.title.c_str());
        const Sweep sweep(e.apps(), e.designs(), opts, e.tweak);
        e.emit(sweep, json);
        json.addSweep(sweep);
    }
}

} // namespace

void
runExperiment(const Experiment &e, const ExperimentOptions &opts,
              const std::string &json_path)
{
    BenchJson json(e.name, json_path);
    runExperimentInto(e, opts, json);
    json.write();
}

std::string
runExperimentCaptured(const Experiment &e, const ExperimentOptions &opts)
{
    BenchJson json = BenchJson::capturing(e.name);
    runExperimentInto(e, opts, json);
    return json.document();
}

namespace detail {

ExperimentRegistrar::ExperimentRegistrar(const char *name,
                                         void (*define)(Experiment &))
{
    Experiment e;
    e.name = name;
    define(e);
    ExperimentRegistry::instance().add(std::move(e));
}

} // namespace detail

} // namespace caba
