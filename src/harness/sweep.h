/**
 * @file
 * App x design sweep driver shared by the figure benches: runs every
 * combination, keeps the results addressable by (app, design), and
 * provides the normalized-metric helpers the figures print.
 *
 * Cells are independent simulations, so the sweep fans them out across a
 * ThreadPool of hardware_concurrency() workers by default. Worker count
 * is overridable with ExperimentOptions::jobs or the CABA_JOBS env var;
 * jobs == 1 runs cells serially on the calling thread (the old
 * behaviour). Results are bit-identical at any worker count: each cell
 * builds a private Workload + GpuSystem from explicitly seeded RNG state
 * and results are committed in serial order after the fan-out.
 */
#ifndef CABA_HARNESS_SWEEP_H
#define CABA_HARNESS_SWEEP_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace caba {

/**
 * Reads CABA_JOBS from the environment (default @p fallback; values < 1
 * are ignored). Read once per sweep, not per cell.
 */
int sweepJobsFromEnv(int fallback);

/** Results of a full sweep, addressable by (app name, design name). */
class Sweep
{
  public:
    /**
     * Runs every app under every design. @p tweak, when given, can
     * adjust options per design (e.g. bandwidth scale baked into the
     * design identity for Figure 12).
     */
    Sweep(const std::vector<AppDescriptor> &apps,
          const std::vector<DesignConfig> &designs,
          const ExperimentOptions &opts,
          const std::function<ExperimentOptions(
              const DesignConfig &, const ExperimentOptions &)> &tweak = {});

    /** One precomputed cell: (app name, design name, result). */
    struct NamedCell
    {
        std::string app;
        std::string design;
        RunResult result;
    };

    /**
     * Builds a sweep directly from precomputed cells without running
     * anything (tests, and service responses assembled from cached
     * results). App/design name order is first-appearance order;
     * duplicate (app, design) pairs panic.
     */
    explicit Sweep(std::vector<NamedCell> cells);

    const RunResult &at(const std::string &app,
                        const std::string &design) const;

    /** design/app cycles normalized to @p base_design (speedup).
     *  Panics (with the offending names) when the base cell retired
     *  zero cycles — a 0/0 or x/0 ratio would silently poison every
     *  downstream geomean. */
    double speedup(const std::string &app, const std::string &design,
                   const std::string &base_design) const;

    const std::vector<std::string> &appNames() const { return app_names_; }
    const std::vector<std::string> &designNames() const
    {
        return design_names_;
    }

  private:
    std::map<std::pair<std::string, std::string>, RunResult> cells_;
    std::vector<std::string> app_names_;
    std::vector<std::string> design_names_;
};

} // namespace caba

#endif // CABA_HARNESS_SWEEP_H
