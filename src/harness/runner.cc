#include "harness/runner.h"

#include <cmath>
#include <cstdio>
#include <optional>

#include "common/env.h"
#include "common/log.h"
#include "common/self_profile.h"
#include "harness/cell_cache.h"

namespace caba {

double
scaleFromEnv(double fallback)
{
    // Cached on first use (thread-safe magic static): runApp executes on
    // sweep worker threads, and getenv is not guaranteed safe against
    // concurrent environment mutation.
    static const double env_scale = env::positiveRealOr("CABA_SCALE", 0.0);
    return env_scale > 0.0 ? env_scale : fallback;
}

GpuConfig
makeGpuConfig(const ExperimentOptions &opts)
{
    GpuConfig cfg;
    cfg.bw_scale = opts.bw_scale;
    cfg.verify_data = opts.verify;
    cfg.extras = opts.extras;
    cfg.caba = opts.caba;
    cfg.partition.md_size_bytes = opts.md_cache_kb * 1024;
    return cfg;
}

namespace {

/** The uncached simulation proper (runApp body before the cell cache). */
RunResult
simulateApp(const AppDescriptor &app, const DesignConfig &design,
            const ExperimentOptions &opts)
{
    std::optional<GpuSystem> gpu;
    int warps = 0;
    std::optional<Workload> wl;
    {
        SelfProfile::Scope scope("build");
        wl.emplace(app, opts.scale * scaleFromEnv());
        GpuConfig cfg = makeGpuConfig(opts);

        // Section 3.2.2: assist-warp registers are added to the
        // per-block requirement; occupancy may drop if they do not fit
        // the free pool.
        const int assist = design.usesCaba() ? opts.assist_regs : 0;
        warps = wl->warpsPerSm(assist, cfg.sm.max_warps);
        if (opts.max_warps > 0 && warps > opts.max_warps)
            warps = opts.max_warps;
        wl->bindGrid(warps * cfg.num_sms);
        gpu.emplace(cfg, design, wl->lineGenerator());
    }
    SelfProfile::Scope scope("run");
    gpu->launch(&*wl, warps);
    return gpu->run();
}

} // namespace

RunResult
runApp(const AppDescriptor &app, const DesignConfig &design,
       const ExperimentOptions &opts)
{
    CellCache &cache = CellCache::instance();
    if (cache.enabled())
        return cache.runCell(app, design, opts, [&] {
            return simulateApp(app, design, opts);
        });
    return simulateApp(app, design, opts);
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    int n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / n);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

void
printSystemConfig(const ExperimentOptions &opts)
{
    const GpuConfig cfg = makeGpuConfig(opts);
    std::printf(
        "System (Table 1): %d SMs, %d warps/SM, GTO, %d schedulers/SM, "
        "%dKB L1/SM, %dKB L2 total, %d GDDR5 MCs, BW scale %.2fx, "
        "workload scale %.2fx\n\n",
        cfg.num_sms, cfg.sm.max_warps, cfg.sm.schedulers,
        cfg.sm.l1.size_bytes / 1024,
        cfg.partition.l2.size_bytes * cfg.num_partitions / 1024,
        cfg.num_partitions, opts.bw_scale, opts.scale * scaleFromEnv());
}

} // namespace caba
