/**
 * @file
 * Content-addressed result cache for sweep cells (DESIGN.md §12).
 *
 * A cell is one (AppDescriptor, DesignConfig, resolved
 * ExperimentOptions) simulation. Its cache key is a deterministic hash
 * of a canonical text rendering of every semantic input plus a code
 * version string; the value is the full RunResult, serialized exactly
 * (doubles as raw bits), so a cache hit reproduces the caba-bench-v1
 * JSON byte for byte.
 *
 * Two layers:
 *  - disk: enabled by the CABA_CACHE_DIR environment knob. Entries are
 *    written atomically (temp file + rename) under
 *    <dir>/<hh>/<hash>.cell and embed the full key text, so a hash
 *    collision, a truncated write or a stale format is detected on
 *    load and the cell is recomputed with a warning (counted as an
 *    eviction).
 *  - in-process: an explicit opt-in (caba_bench enables it) that
 *    memoizes cells across experiments in one process, so
 *    `caba_bench --all` computes each shared (app, design) cell once.
 *    Tests and library users are unaffected unless they opt in.
 *
 * Invalidation: the key includes kCellCacheCodeVersion, which MUST be
 * bumped whenever simulation semantics change (anything that can alter
 * a RunResult). Run-loop selection knobs (CABA_EVENT_DRIVEN,
 * CABA_NO_FASTFORWARD) and observability knobs (CABA_TRACE, CABA_PROF,
 * CABA_AUDIT) are contractually result-neutral — CI byte-diffs them —
 * and are deliberately NOT part of the key. Under CABA_AUDIT=full (or
 * a numeric period) every disk hit is additionally self-checked: the
 * cell is recomputed and the serialized bytes must match, so a stale
 * cache (unbumped version) is caught by any audited run.
 */
#ifndef CABA_HARNESS_CELL_CACHE_H
#define CABA_HARNESS_CELL_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "harness/runner.h"

namespace caba {

/** Part of every cache key. Bump on any change to simulation
 *  semantics (new stats, timing changes, codec fixes, ...). */
extern const char *const kCellCacheCodeVersion;

/** Monotonic counters describing one process's cache traffic. */
struct CellCacheStats
{
    std::uint64_t disk_hits = 0;    ///< Cells loaded from CABA_CACHE_DIR.
    std::uint64_t disk_misses = 0;  ///< Disk lookups that found nothing.
    std::uint64_t inproc_hits = 0;  ///< Cells served by the in-process map.
    std::uint64_t stores = 0;       ///< Entries written to disk.
    std::uint64_t evictions = 0;    ///< Corrupt/stale entries replaced.
    std::uint64_t self_checks = 0;  ///< Audited hit-vs-recompute compares.
    std::uint64_t simulations = 0;  ///< Cells actually simulated.
};

/**
 * Canonical key text for one cell: every semantic field of the app,
 * the design and the options (scale already resolved against
 * CABA_SCALE; jobs/json_out excluded — they cannot affect results),
 * plus @p code_version. Line-oriented "field=value" text: readable in
 * cache entries and stable across processes and machines.
 */
std::string cellKeyText(const AppDescriptor &app, const DesignConfig &design,
                        const ExperimentOptions &resolved,
                        const std::string &code_version);

/** 32-hex-digit content address of @p key_text (128-bit FNV-1a pair). */
std::string cellKeyHash(const std::string &key_text);

/** Exact binary serialization of @p r (doubles as raw bits) embedding
 *  @p key_text, magic and checksum. Deserializing reproduces a
 *  RunResult whose JSON export is byte-identical. */
std::string serializeCell(const std::string &key_text, const RunResult &r);

/**
 * Parses @p blob back into @p out. Returns false (with a reason in
 * @p error) on bad magic, checksum mismatch, truncation, or when the
 * embedded key text differs from @p expect_key (hash collision or
 * tampering).
 */
bool deserializeCell(const std::string &blob, const std::string &expect_key,
                     RunResult *out, std::string *error);

/** The process-wide cell cache. Disabled until the first runCell
 *  resolves CABA_CACHE_DIR, unless a layer was enabled explicitly. */
class CellCache
{
  public:
    static CellCache &instance();

    /** Test hook: pins directory (empty = disk off), version and
     *  in-process/self-check behaviour, ignoring the environment. */
    void configure(std::string dir, std::string code_version,
                   bool in_process, bool self_check);

    /** Enables the cross-experiment in-process layer (caba_bench). */
    void enableInProcess();

    /** True when any layer (disk or in-process) is active. */
    bool enabled();

    /**
     * Returns the cell for (@p app, @p design, @p opts), consulting the
     * in-process map, then disk, and only then running @p simulate.
     * Safe to call from sweep worker threads.
     */
    RunResult runCell(const AppDescriptor &app, const DesignConfig &design,
                      const ExperimentOptions &opts,
                      const std::function<RunResult()> &simulate);

    CellCacheStats stats();
    void resetStats();

    /** Drops the in-process layer's contents (tests). */
    void clearInProcess();

    /** Entry path for @p hash under the configured directory. */
    std::string entryPath(const std::string &hash);

  private:
    CellCache() = default;
    void resolveFromEnv();

    std::mutex mu_;
    bool resolved_ = false;
    std::string dir_;               ///< Empty = disk layer off.
    std::string version_;
    bool in_process_ = false;
    bool self_check_ = false;       ///< Recompute + compare every hit.
    std::map<std::string, RunResult> inproc_;   ///< hash -> result
    CellCacheStats stats_;
};

} // namespace caba

#endif // CABA_HARNESS_CELL_CACHE_H
