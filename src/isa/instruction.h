/**
 * @file
 * The micro-ISA executed by the simulated SIMT cores. Workload kernels
 * and CABA assist-warp subroutines are both expressed as sequences of
 * these instructions; the core models fetch/issue/execute timing while
 * the semantics relevant to the study (register dependences, memory
 * addresses, loop control) are explicit fields.
 */
#ifndef CABA_ISA_INSTRUCTION_H
#define CABA_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace caba {

/** Operation classes; each maps to one execution pipeline. */
enum class Opcode : std::uint8_t {
    AluInt,     ///< Integer SIMD op (ALU pipeline).
    AluFp,      ///< FP32 SIMD op (ALU pipeline).
    Sfu,        ///< Special-function op: transcendental etc. (SFU pipe).
    Mov,        ///< Register move (ALU pipeline, used for live-in/out).
    LdGlobal,   ///< Global load through L1/L2/DRAM.
    StGlobal,   ///< Global store through L1/L2/DRAM.
    LdShared,   ///< Shared-memory load (on-chip, fixed latency).
    StShared,   ///< Shared-memory store.
    Branch,     ///< Loop back-edge: taken while the warp has trips left.
    Exit,       ///< Terminates the warp.
};

/** True for the two global-memory opcodes. */
constexpr bool
isGlobalMem(Opcode op)
{
    return op == Opcode::LdGlobal || op == Opcode::StGlobal;
}

/** True for opcodes that occupy the LDST pipeline. */
constexpr bool
isMem(Opcode op)
{
    return isGlobalMem(op) || op == Opcode::LdShared ||
           op == Opcode::StShared;
}

/** True for opcodes executed on the ALU pipeline. */
constexpr bool
isAlu(Opcode op)
{
    return op == Opcode::AluInt || op == Opcode::AluFp || op == Opcode::Mov;
}

/** Sentinel meaning "no register operand". */
inline constexpr int kNoReg = -1;

/**
 * One static instruction. Register numbers are virtual per-thread
 * registers; the per-block register footprint is numRegs() of the
 * enclosing program.
 */
struct Instruction
{
    Opcode op = Opcode::AluInt;
    int dst = kNoReg;           ///< Destination register, if any.
    int src0 = kNoReg;          ///< First source register, if any.
    int src1 = kNoReg;          ///< Second source register, if any.

    /**
     * For global memory ops: index of the kernel's address stream that
     * generates the 32 lane addresses for this access. -1 otherwise.
     */
    int stream = -1;

    /** For Branch: index of the loop-head instruction. */
    int branch_target = -1;

    /** Disassembly-style rendering for debugging and tests. */
    std::string toString() const;
};

/**
 * A straight-line program with one optional loop (Branch back-edge),
 * mirroring the steady-state inner loop of a GPU kernel. Per-thread
 * register count is derived from the highest register referenced.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> instrs);

    const std::vector<Instruction> &instructions() const { return instrs_; }
    const Instruction &at(int pc) const { return instrs_[pc]; }
    int size() const { return static_cast<int>(instrs_.size()); }
    bool empty() const { return instrs_.empty(); }

    /** Per-thread architectural register footprint (1 + max reg id). */
    int numRegs() const { return num_regs_; }

    /** Validates branch targets and register ids; panics when broken. */
    void validate() const;

  private:
    std::vector<Instruction> instrs_;
    int num_regs_ = 0;
};

/** Fluent builder used by the workload generator and assist subroutines. */
class ProgramBuilder
{
  public:
    /** Appends an ALU op writing @p dst from @p src0/@p src1. */
    ProgramBuilder &alu(Opcode op, int dst, int src0 = kNoReg,
                        int src1 = kNoReg);
    /** Appends a global load of @p stream into @p dst (address in src0). */
    ProgramBuilder &ldGlobal(int dst, int stream, int addr_reg = kNoReg);
    /** Appends a global store of @p src over @p stream. */
    ProgramBuilder &stGlobal(int src, int stream, int addr_reg = kNoReg);
    ProgramBuilder &ldShared(int dst, int addr_reg = kNoReg);
    ProgramBuilder &stShared(int src, int addr_reg = kNoReg);
    /** Appends the loop back-edge to instruction @p target. */
    ProgramBuilder &branchTo(int target);
    ProgramBuilder &exit();

    /** Current instruction count (next instruction's index). */
    int pc() const { return static_cast<int>(instrs_.size()); }

    Program build();

  private:
    std::vector<Instruction> instrs_;
};

} // namespace caba

#endif // CABA_ISA_INSTRUCTION_H
