#include "isa/instruction.h"

#include <algorithm>

#include "common/log.h"

namespace caba {

namespace {

const char *
opName(Opcode op)
{
    switch (op) {
      case Opcode::AluInt: return "alu.int";
      case Opcode::AluFp: return "alu.fp";
      case Opcode::Sfu: return "sfu";
      case Opcode::Mov: return "mov";
      case Opcode::LdGlobal: return "ld.global";
      case Opcode::StGlobal: return "st.global";
      case Opcode::LdShared: return "ld.shared";
      case Opcode::StShared: return "st.shared";
      case Opcode::Branch: return "bra";
      case Opcode::Exit: return "exit";
    }
    return "?";
}

} // namespace

std::string
Instruction::toString() const
{
    std::string s = opName(op);
    auto reg = [](int r) { return "r" + std::to_string(r); };
    if (dst != kNoReg)
        s += " " + reg(dst);
    if (src0 != kNoReg)
        s += (dst != kNoReg ? ", " : " ") + reg(src0);
    if (src1 != kNoReg)
        s += ", " + reg(src1);
    if (stream >= 0)
        s += " [stream " + std::to_string(stream) + "]";
    if (op == Opcode::Branch)
        s += " -> " + std::to_string(branch_target);
    return s;
}

Program::Program(std::vector<Instruction> instrs)
    : instrs_(std::move(instrs))
{
    for (const Instruction &inst : instrs_) {
        num_regs_ = std::max({num_regs_, inst.dst + 1, inst.src0 + 1,
                              inst.src1 + 1});
    }
    validate();
}

void
Program::validate() const
{
    CABA_CHECK(!instrs_.empty(), "empty program");
    CABA_CHECK(instrs_.back().op == Opcode::Exit ||
               instrs_.back().op == Opcode::Branch,
               "program must end with exit or back-edge");
    for (const Instruction &inst : instrs_) {
        if (inst.op == Opcode::Branch) {
            CABA_CHECK(inst.branch_target >= 0 &&
                       inst.branch_target < size(),
                       "branch target out of range");
        }
        if (isGlobalMem(inst.op))
            CABA_CHECK(inst.stream >= 0, "global access without stream");
    }
}

ProgramBuilder &
ProgramBuilder::alu(Opcode op, int dst, int src0, int src1)
{
    CABA_CHECK(isAlu(op) || op == Opcode::Sfu, "alu() with non-ALU opcode");
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.src0 = src0;
    inst.src1 = src1;
    instrs_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldGlobal(int dst, int stream, int addr_reg)
{
    Instruction inst;
    inst.op = Opcode::LdGlobal;
    inst.dst = dst;
    inst.src0 = addr_reg;
    inst.stream = stream;
    instrs_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::stGlobal(int src, int stream, int addr_reg)
{
    Instruction inst;
    inst.op = Opcode::StGlobal;
    inst.src0 = src;
    inst.src1 = addr_reg;
    inst.stream = stream;
    instrs_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldShared(int dst, int addr_reg)
{
    Instruction inst;
    inst.op = Opcode::LdShared;
    inst.dst = dst;
    inst.src0 = addr_reg;
    instrs_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::stShared(int src, int addr_reg)
{
    Instruction inst;
    inst.op = Opcode::StShared;
    inst.src0 = src;
    inst.src1 = addr_reg;
    instrs_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::branchTo(int target)
{
    Instruction inst;
    inst.op = Opcode::Branch;
    inst.branch_target = target;
    instrs_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::exit()
{
    Instruction inst;
    inst.op = Opcode::Exit;
    instrs_.push_back(inst);
    return *this;
}

Program
ProgramBuilder::build()
{
    return Program(std::move(instrs_));
}

} // namespace caba
