/**
 * @file
 * Section 4.3.2 study: metadata-cache sizing. The paper states an 8KB
 * 4-way MD cache reaches ~85% average hit rate (>99% for many apps) and
 * avoids a second DRAM access in the common case. This bench sweeps the
 * capacity and reports hit rate plus end performance under CABA-BDI.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(md_cache_study)
{
    exp.description =
        "Section 4.3.2: MD-cache capacity sweep under CABA-BDI";
    exp.body = [](const ExperimentOptions &opts, BenchJson &json) {
        printSystemConfig(opts);
        std::printf("MD cache sweep under CABA-BDI (Section 4.3.2)\n\n");

        const int sizes_kb[] = {2, 4, 8, 16, 32};
        const AppDescriptor apps[] = {findApp("PVC"), findApp("MM"),
                                      findApp("LPS"), findApp("bfs"),
                                      findApp("TRA"), findApp("sssp")};

        Table t({"app", "MD KB", "hit rate", "MD misses", "cycles"});
        std::vector<double> hits_at_8kb;
        for (const AppDescriptor &app : apps) {
            for (int kb : sizes_kb) {
                ExperimentOptions o = opts;
                o.md_cache_kb = kb;
                const RunResult r = runApp(app, DesignConfig::caba(), o);
                json.addCell(app.name,
                             "CABA-BDI@" + std::to_string(kb) + "KB", r);
                if (kb == 8)
                    hits_at_8kb.push_back(r.md_hit_rate);
                t.addRow({app.name, std::to_string(kb),
                          Table::pct(r.md_hit_rate),
                          std::to_string(r.stats.get("part_md_misses")),
                          std::to_string(r.cycles)});
            }
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("8KB 4-way average hit rate: %s (paper: ~85%%)\n",
                    Table::pct(mean(hits_at_8kb)).c_str());
    };
}
