/**
 * @file
 * Figure 11: compression ratio of each algorithm over each app's data
 * (uncompressed bursts / compressed bursts at DRAM transfer
 * granularity, matching the paper's definition). No timing simulation
 * needed: the ratio is a pure property of the data and the codecs.
 * Paper findings: MM/PVC/PVR compress best with BDI; LPS/JPEG/MUM/nw
 * favor FPC or C-Pack; sc/SCP are incompressible.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "compress/registry.h"
#include "harness/experiment.h"
#include "workloads/workload.h"

using namespace caba;

namespace {

/** Burst-granular compression ratio over a sample of the app's lines. */
double
ratioFor(const AppDescriptor &app, Algorithm algo, int samples = 4000)
{
    Workload wl(app);
    const LineGenerator gen = wl.lineGenerator();
    const Codec &codec = getCodec(algo);
    std::uint8_t line[kLineSize];
    std::uint64_t total_bursts = 0;
    for (int i = 0; i < samples; ++i) {
        // Sample the footprint the way the app touches it: line i of a
        // linear walk through the first stream's region.
        const Addr addr = (Addr{1} << 33) +
                          static_cast<Addr>(i) * kLineSize;
        gen(addr, line);
        total_bursts += static_cast<std::uint64_t>(
            codec.compress(line).bursts());
    }
    return static_cast<double>(samples) * kBurstsPerLine /
           static_cast<double>(total_bursts);
}

} // namespace

CABA_REGISTER_EXPERIMENT(fig11_compression_ratio)
{
    exp.description =
        "Figure 11: per-algorithm compression ratio of each app's data";
    exp.body = [](const ExperimentOptions &, BenchJson &json) {
        std::printf("Figure 11: compression ratio per algorithm "
                    "(DRAM bursts, uncompressed/compressed)\n\n");

        const Algorithm algos[] = {Algorithm::Bdi, Algorithm::Fpc,
                                   Algorithm::CPack, Algorithm::BestOfAll};
        Table t({"app", "BDI", "FPC", "C-Pack", "BestOfAll"});
        std::vector<std::vector<double>> cols(4);
        const char *algo_keys[] = {"bdi", "fpc", "cpack", "best_of_all"};
        for (const AppDescriptor &app : compressionApps()) {
            std::vector<std::string> row = {app.name};
            json.beginRow();
            json.field("app", app.name);
            for (int a = 0; a < 4; ++a) {
                const double r = ratioFor(app, algos[a]);
                cols[static_cast<std::size_t>(a)].push_back(r);
                row.push_back(Table::num(r));
                json.field(algo_keys[a], r);
            }
            json.endRow();
            t.addRow(row);
        }
        std::vector<std::string> gm = {"GeoMean"};
        for (int a = 0; a < 4; ++a)
            gm.push_back(
                Table::num(geomean(cols[static_cast<std::size_t>(a)])));
        t.addRow(gm);
        std::printf("%s\n", t.render().c_str());
        std::printf("Paper: average BDI bandwidth compression ~2.1x; "
                    "BestOfAll >= max(single algorithms) per line.\n");
    };
}
