/**
 * @file
 * Figure 13: CABA-BDI with compressed caches — 2x/4x tags in L1 or L2
 * (Section 6.5), normalized to plain CABA-BDI. Paper findings:
 * cache-sensitive apps (bfs, sssp from L1; TRA, KM from L2) gain;
 * L1 compression can hurt latency-sensitive apps (hs, LPS) because
 * every L1 hit pays a decompression.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig13_cache_compression)
{
    exp.description =
        "Figure 13: CABA with compressed L1/L2 caches (2x/4x tags)";
    exp.title =
        "Figure 13: compressed caches with CABA (speedup vs CABA-BDI)";
    exp.designs = [] {
        return std::vector<DesignConfig>{
            DesignConfig::caba(),
            DesignConfig::cabaCompressedCache(2, 1),
            DesignConfig::cabaCompressedCache(4, 1),
            DesignConfig::cabaCompressedCache(1, 2),
            DesignConfig::cabaCompressedCache(1, 4)};
    };
    exp.apps = [] {
        // Cache-sensitive apps plus latency-sensitive controls (the apps
        // the paper's Figure 13 discussion names).
        std::vector<AppDescriptor> apps;
        for (const char *n : {"bfs", "sssp", "TRA", "KM", "RAY", "hs",
                              "LPS", "nw", "PVC", "MM"})
            apps.push_back(findApp(n));
        return apps;
    };
    exp.emit = [](const Sweep &sweep, BenchJson &) {
        const std::vector<std::string> &designs = sweep.designNames();
        Table t({"app", "CABA-L1-2x", "CABA-L1-4x", "CABA-L2-2x",
                 "CABA-L2-4x", "L1 hit rate (CABA)"});
        std::vector<std::vector<double>> cols(designs.size());
        for (const std::string &app : sweep.appNames()) {
            std::vector<std::string> row = {app};
            for (std::size_t d = 1; d < designs.size(); ++d) {
                const double s =
                    sweep.speedup(app, designs[d], "CABA-BDI");
                cols[d].push_back(s);
                row.push_back(Table::num(s));
            }
            const RunResult &c = sweep.at(app, "CABA-BDI");
            const double hits = static_cast<double>(c.stats.get("l1_hits"));
            const double misses =
                static_cast<double>(c.stats.get("l1_misses"));
            row.push_back(Table::pct(
                hits + misses > 0 ? hits / (hits + misses) : 0.0));
            t.addRow(row);
        }
        std::vector<std::string> gm = {"GeoMean"};
        for (std::size_t d = 1; d < designs.size(); ++d)
            gm.push_back(Table::num(geomean(cols[d])));
        gm.push_back("");
        t.addRow(gm);
        std::printf("%s\n", t.render().c_str());
        std::printf("Paper: cache-sensitive apps (e.g. bfs, sssp with L1; "
                    "TRA, KM with L2) gain; L1\ncompression can degrade "
                    "hit-latency-sensitive apps since each L1 hit "
                    "decompresses.\n");
    };
}
