/**
 * @file
 * Figure 10: speedup of CABA with different compression algorithms
 * (FPC, BDI, C-Pack) and the idealized per-line BestOfAll selector.
 * Paper findings: +20.7% (FPC), +41.7% (BDI), +35.2% (C-Pack); apps
 * prefer different algorithms, and BestOfAll sometimes beats them all.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig10_algorithms)
{
    exp.description =
        "Figure 10: CABA speedup per compression algorithm";
    exp.title = "Figure 10: speedup with different algorithms (vs Base)";
    exp.apps = [] { return compressionApps(); };
    exp.designs = [] {
        return std::vector<DesignConfig>{
            DesignConfig::base(),
            DesignConfig::caba(Algorithm::Fpc),
            DesignConfig::caba(Algorithm::Bdi),
            DesignConfig::caba(Algorithm::CPack),
            DesignConfig::caba(Algorithm::BestOfAll)};
    };
    exp.emit = [](const Sweep &sweep, BenchJson &) {
        const std::vector<std::string> &designs = sweep.designNames();
        Table t({"app", "CABA-FPC", "CABA-BDI", "CABA-C-Pack",
                 "CABA-BestOfAll"});
        std::vector<std::vector<double>> cols(designs.size());
        for (const std::string &app : sweep.appNames()) {
            std::vector<std::string> row = {app};
            for (std::size_t d = 1; d < designs.size(); ++d) {
                const double s = sweep.speedup(app, designs[d], "Base");
                cols[d].push_back(s);
                row.push_back(Table::num(s));
            }
            t.addRow(row);
        }
        std::vector<std::string> gm = {"GeoMean"};
        for (std::size_t d = 1; d < designs.size(); ++d)
            gm.push_back(Table::num(geomean(cols[d])));
        t.addRow(gm);
        std::printf("%s\n", t.render().c_str());

        std::printf("Average improvement (paper: FPC +20.7%%, BDI +41.7%%, "
                    "C-Pack +35.2%%):\n");
        std::printf("  CABA-FPC    %s\n",
                    Table::pct(geomean(cols[1]) - 1.0).c_str());
        std::printf("  CABA-BDI    %s\n",
                    Table::pct(geomean(cols[2]) - 1.0).c_str());
        std::printf("  CABA-C-Pack %s\n",
                    Table::pct(geomean(cols[3]) - 1.0).c_str());
        std::printf("  BestOfAll   %s\n",
                    Table::pct(geomean(cols[4]) - 1.0).c_str());
    };
}
