/**
 * @file
 * Section 7.2 use case: stride prefetching via assist warps deployed at
 * low priority (idle memory-pipeline slots only), with lookahead into
 * the demand stream. Latency-sensitive streaming apps gain; saturated
 * bandwidth-bound apps should not regress because the throttle defers
 * prefetch warps.
 */
#include <cstdio>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(ablation_prefetch)
{
    exp.description =
        "Section 7.2: low-priority stride-prefetch assist warps";
    exp.body = [](const ExperimentOptions &opts, BenchJson &json) {
        printSystemConfig(opts);
        std::printf("CABA stride prefetching (Section 7.2)\n\n");

        Table t({"app", "bound", "speedup", "prefetches", "dropped",
                 "L1 hit rate delta"});
        for (const char *name : {"hs", "bp", "lc", "CONS", "LPS", "PVC"}) {
            const AppDescriptor &app = findApp(name);
            const RunResult base = runApp(app, DesignConfig::base(), opts);

            ExperimentOptions o = opts;
            o.extras.prefetch = true;
            o.extras.prefetch_lookahead = 4;
            const RunResult pf = runApp(app, DesignConfig::base(), o);
            json.addCell(app.name, "Base", base);
            json.addCell(app.name, "Base+prefetch", pf);

            auto l1_rate = [](const RunResult &r) {
                const double h =
                    static_cast<double>(r.stats.get("l1_hits"));
                const double m =
                    static_cast<double>(r.stats.get("l1_misses"));
                return h + m > 0 ? h / (h + m) : 0.0;
            };
            t.addRow({app.name, app.memory_bound ? "Mem" : "Comp",
                      Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(pf.cycles)),
                      std::to_string(pf.stats.get("sm_prefetches_issued")),
                      std::to_string(pf.stats.get("sm_prefetches_dropped")),
                      Table::pct(l1_rate(pf) - l1_rate(base))});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Prefetch warps use idle slots only (Section 7.2 point "
                    "3), so bandwidth-saturated\napps are protected by the "
                    "utilization throttle.\n");
    };
}
