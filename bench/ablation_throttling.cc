/**
 * @file
 * Ablation of the CABA design choices DESIGN.md calls out (paper
 * Sections 3.4 and 4.2):
 *   1. priority assignment — decompression high / compression low
 *      (flipping either should hurt);
 *   2. AWB low-priority staging slots (the paper dedicates two IB
 *      entries);
 *   3. utilization-driven throttling of low-priority warps;
 *   4. the single-encoding compression fast path of Section 4.1.2
 *      (approximated by the store-buffer capacity a slower compressor
 *      implies).
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(ablation_throttling)
{
    exp.description =
        "Sections 3.4/4.2: priority, AWB, throttle and store-buffer "
        "ablations";
    exp.body = [](const ExperimentOptions &opts, BenchJson &json) {
        printSystemConfig(opts);
        std::printf("CABA design-choice ablations (cycles normalized to "
                    "the paper's configuration; <1.00 = faster)\n\n");

        const AppDescriptor apps[] = {findApp("PVC"), findApp("MM"),
                                      findApp("LPS"), findApp("sssp"),
                                      findApp("CONS")};

        Table t({"app", "paper-config", "dec low-prio", "comp high-prio",
                 "awb=1", "awb=4", "no-throttle", "store-buf=4"});
        for (const AppDescriptor &app : apps) {
            // Each variant becomes one JSON cell named after the knob it
            // flips; the table shows cycles relative to the paper config.
            auto run = [&](const char *variant,
                           const ExperimentOptions &o) {
                const RunResult r = runApp(app, DesignConfig::caba(), o);
                json.addCell(app.name, variant, r);
                return static_cast<double>(r.cycles);
            };
            const double base = run("paper-config", opts);
            std::vector<std::string> row = {app.name, "1.00"};

            ExperimentOptions o = opts;
            o.caba.decompress_high_priority = false;
            row.push_back(Table::num(run("dec-low-prio", o) / base));

            o = opts;
            o.caba.compress_low_priority = false;
            row.push_back(Table::num(run("comp-high-prio", o) / base));

            o = opts;
            o.caba.awb_low_slots = 1;
            row.push_back(Table::num(run("awb-1", o) / base));

            o = opts;
            o.caba.awb_low_slots = 4;
            row.push_back(Table::num(run("awb-4", o) / base));

            o = opts;
            o.caba.throttle = false;
            row.push_back(Table::num(run("no-throttle", o) / base));

            o = opts;
            o.caba.store_buffer = 4;
            row.push_back(Table::num(run("store-buf-4", o) / base));

            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: the paper's priority assignment wins; "
                    "fewer AWB slots or a\nsmaller store buffer leave more "
                    "stores uncompressed; throttling protects\nparent-warp "
                    "slots when pipelines are busy.\n");
    };
}
