/**
 * @file
 * Figure 7: performance of the five designs, normalized to Base, over
 * the bandwidth-sensitive application pool. Paper findings: CABA-BDI
 * +41.7% on average (up to 2.6x); within ~2.8% of Ideal-BDI; ~1.6%
 * below HW-BDI; ~9.9% above HW-BDI-Mem.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig07_performance)
{
    exp.description = "Figure 7: speedup of the five designs over Base";
    exp.title = "Figure 7: normalized performance (speedup over Base)";
    exp.apps = [] { return compressionApps(); };
    exp.designs = [] {
        return std::vector<DesignConfig>{
            DesignConfig::base(), DesignConfig::hwMem(), DesignConfig::hw(),
            DesignConfig::caba(), DesignConfig::ideal()};
    };
    exp.emit = [](const Sweep &sweep, BenchJson &) {
        const std::vector<std::string> &designs = sweep.designNames();
        Table t({"app", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI",
                 "Ideal-BDI"});
        std::vector<std::vector<double>> cols(designs.size());
        for (const std::string &app : sweep.appNames()) {
            std::vector<std::string> row = {app};
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const double s = sweep.speedup(app, designs[d], "Base");
                cols[d].push_back(s);
                row.push_back(Table::num(s));
            }
            t.addRow(row);
        }
        std::vector<std::string> gm = {"GeoMean"};
        for (std::size_t d = 0; d < designs.size(); ++d)
            gm.push_back(Table::num(geomean(cols[d])));
        t.addRow(gm);
        std::printf("%s\n", t.render().c_str());

        const double caba = geomean(cols[3]);
        std::printf("CABA-BDI average improvement: %s (paper: +41.7%%)\n",
                    Table::pct(caba - 1.0).c_str());
        std::printf("CABA-BDI vs Ideal-BDI: %s below (paper: ~2.8%%)\n",
                    Table::pct(1.0 - caba / geomean(cols[4])).c_str());
        std::printf("CABA-BDI vs HW-BDI:    %s below (paper: ~1.6%%)\n",
                    Table::pct(1.0 - caba / geomean(cols[2])).c_str());
        std::printf("CABA-BDI vs HW-BDI-Mem: %s above (paper: ~9.9%%)\n",
                    Table::pct(caba / geomean(cols[1]) - 1.0).c_str());
    };
}
