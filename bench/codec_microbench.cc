/**
 * @file
 * google-benchmark microbenchmarks of the three codecs over each data
 * profile: compression/decompression throughput and achieved ratio
 * (reported as a counter). Supports the Figure 5 discussion and the
 * relative codec costs used in Section 6.3.
 */
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "compress/registry.h"
#include "harness/experiment.h"
#include "workloads/data_profile.h"

namespace {

using namespace caba;

constexpr int kLines = 512;

std::vector<std::uint8_t>
makeCorpus(DataProfile profile)
{
    std::vector<std::uint8_t> corpus(
        static_cast<std::size_t>(kLines) * kLineSize);
    for (int i = 0; i < kLines; ++i) {
        generateProfileLine(profile, 42,
                            static_cast<Addr>(i) * kLineSize,
                            corpus.data() +
                                static_cast<std::size_t>(i) * kLineSize);
    }
    return corpus;
}

void
BM_Compress(benchmark::State &state)
{
    const auto algo = static_cast<Algorithm>(state.range(0));
    const auto profile = static_cast<DataProfile>(state.range(1));
    const Codec &codec = getCodec(algo);
    const auto corpus = makeCorpus(profile);

    std::uint64_t compressed_bytes = 0, lines = 0;
    for (auto _ : state) {
        for (int i = 0; i < kLines; ++i) {
            const CompressedLine cl = codec.compress(
                corpus.data() + static_cast<std::size_t>(i) * kLineSize);
            benchmark::DoNotOptimize(cl.size());
            compressed_bytes += static_cast<std::uint64_t>(cl.size());
            ++lines;
        }
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(lines) * kLineSize);
    state.counters["ratio"] =
        lines ? static_cast<double>(lines * kLineSize) /
                    static_cast<double>(compressed_bytes)
              : 0.0;
    state.SetLabel(codec.name() + std::string("/") +
                   dataProfileName(profile));
}

void
BM_Decompress(benchmark::State &state)
{
    const auto algo = static_cast<Algorithm>(state.range(0));
    const auto profile = static_cast<DataProfile>(state.range(1));
    const Codec &codec = getCodec(algo);
    const auto corpus = makeCorpus(profile);

    std::vector<CompressedLine> compressed;
    for (int i = 0; i < kLines; ++i) {
        compressed.push_back(codec.compress(
            corpus.data() + static_cast<std::size_t>(i) * kLineSize));
    }
    std::uint8_t out[kLineSize];
    for (auto _ : state) {
        for (const CompressedLine &cl : compressed) {
            codec.decompress(cl, out);
            benchmark::DoNotOptimize(out[0]);
        }
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLines * kLineSize);
    state.SetLabel(codec.name() + std::string("/") +
                   dataProfileName(profile));
}

void
CodecArgs(benchmark::internal::Benchmark *b)
{
    for (int algo : {static_cast<int>(Algorithm::Bdi),
                     static_cast<int>(Algorithm::Fpc),
                     static_cast<int>(Algorithm::CPack)}) {
        for (int profile = 0; profile <= 6; ++profile)
            b->Args({algo, profile});
    }
}

BENCHMARK(BM_Compress)->Apply(CodecArgs);
BENCHMARK(BM_Decompress)->Apply(CodecArgs);

} // namespace

CABA_REGISTER_EXPERIMENT(codec_microbench)
{
    exp.description =
        "google-benchmark throughput of the BDI/FPC/C-Pack codecs";
    exp.body = [](const ExperimentOptions &, BenchJson &) {
        // The benchmarks registered above run under google-benchmark's
        // own driver; it needs an argv to initialize from. The codec
        // microbench has no caba-bench-v1 document (it never did as a
        // standalone binary either).
        int argc = 1;
        char arg0[] = "codec_microbench";
        char *argv[] = {arg0, nullptr};
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    };
}
