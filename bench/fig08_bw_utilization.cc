/**
 * @file
 * Figure 8: DRAM memory bandwidth utilization of the five designs.
 * Paper finding: CABA-based compression reduces average utilization
 * from 53.6% to 35.6%, relieving the bottleneck.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig08_bw_utilization)
{
    exp.description =
        "Figure 8: DRAM bandwidth utilization of the five designs";
    exp.title = "Figure 8: DRAM bandwidth utilization per design";
    exp.apps = [] { return compressionApps(); };
    exp.designs = [] {
        return std::vector<DesignConfig>{
            DesignConfig::base(), DesignConfig::hwMem(), DesignConfig::hw(),
            DesignConfig::caba(), DesignConfig::ideal()};
    };
    exp.emit = [](const Sweep &sweep, BenchJson &) {
        const std::vector<std::string> &designs = sweep.designNames();
        Table t({"app", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI",
                 "Ideal-BDI"});
        std::vector<std::vector<double>> cols(designs.size());
        for (const std::string &app : sweep.appNames()) {
            std::vector<std::string> row = {app};
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const double u = sweep.at(app, designs[d]).bw_utilization;
                cols[d].push_back(u);
                row.push_back(Table::pct(u));
            }
            t.addRow(row);
        }
        std::vector<std::string> avg = {"Average"};
        for (std::size_t d = 0; d < designs.size(); ++d)
            avg.push_back(Table::pct(mean(cols[d])));
        t.addRow(avg);
        std::printf("%s\n", t.render().c_str());
        std::printf("Base -> CABA-BDI average utilization: %s -> %s "
                    "(paper: 53.6%% -> 35.6%%)\n",
                    Table::pct(mean(cols[0])).c_str(),
                    Table::pct(mean(cols[3])).c_str());

        std::printf("\nMD cache hit rate under CABA-BDI "
                    "(paper: ~85%% average):\n");
        std::vector<double> md;
        for (const std::string &app : sweep.appNames())
            md.push_back(sweep.at(app, "CABA-BDI").md_hit_rate);
        std::printf("  average %s\n", Table::pct(mean(md)).c_str());
    };
}
