/**
 * @file
 * Section 7.1 use case: memoization via assist warps. SFU-heavy
 * applications with redundant inputs (dmr, NN, mc) cache transcendental
 * results in a shared-memory LUT maintained by low-priority assist
 * warps; hits complete at shared-memory latency instead of occupying
 * the SFU pipeline.
 */
#include <cstdio>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(ablation_memoization)
{
    exp.description =
        "Section 7.1: memoization assist warps on SFU-heavy apps";
    exp.body = [](const ExperimentOptions &opts, BenchJson &json) {
        printSystemConfig(opts);
        std::printf("CABA memoization (Section 7.1) on SFU-heavy apps\n\n");

        Table t({"app", "memo hit rate", "speedup", "SFU issues saved",
                 "assist warps"});
        for (const char *name : {"dmr", "NN", "mc", "bh"}) {
            const AppDescriptor &app = findApp(name);
            const RunResult base =
                runApp(app, DesignConfig::base(), opts);

            ExperimentOptions o = opts;
            o.extras.memoize = true;
            o.extras.memo_hit_rate = app.memo_hit_rate;
            const RunResult memo = runApp(app, DesignConfig::base(), o);
            json.addCell(app.name, "Base", base);
            json.addCell(app.name, "Base+memoize", memo);

            t.addRow({app.name, Table::pct(app.memo_hit_rate),
                      Table::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(memo.cycles)),
                      std::to_string(memo.stats.get("sm_memo_hits")),
                      std::to_string(memo.stats.get("sm_memoize_warps"))});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Compute-bound apps trade SFU pressure for on-chip "
                    "storage (the paper's\n\"convert computation into "
                    "storage\" argument).\n");
    };
}
