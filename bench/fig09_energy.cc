/**
 * @file
 * Figure 9: normalized energy consumption of the five designs (cores,
 * caches, DRAM, buses, plus compression overheads: MD cache, codec
 * logic, AWS fetches). Paper findings: CABA-BDI reduces energy by up to
 * 22.2%, sits ~3.6% above HW-BDI and ~4.0% above Ideal-BDI, and raises
 * power by ~2.9% over Base.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig09_energy)
{
    exp.description = "Figure 9: normalized energy of the five designs";
    exp.title = "Figure 9: normalized energy (lower is better)";
    exp.apps = [] { return compressionApps(); };
    exp.designs = [] {
        return std::vector<DesignConfig>{
            DesignConfig::base(), DesignConfig::hwMem(), DesignConfig::hw(),
            DesignConfig::caba(), DesignConfig::ideal()};
    };
    exp.emit = [](const Sweep &sweep, BenchJson &) {
        const std::vector<std::string> &designs = sweep.designNames();
        Table t({"app", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI",
                 "Ideal-BDI"});
        std::vector<std::vector<double>> cols(designs.size());
        for (const std::string &app : sweep.appNames()) {
            const double base = sweep.at(app, "Base").energy.total;
            std::vector<std::string> row = {app};
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const double e =
                    sweep.at(app, designs[d]).energy.total / base;
                cols[d].push_back(e);
                row.push_back(Table::num(e));
            }
            t.addRow(row);
        }
        std::vector<std::string> gm = {"GeoMean"};
        for (std::size_t d = 0; d < designs.size(); ++d)
            gm.push_back(Table::num(geomean(cols[d])));
        t.addRow(gm);
        std::printf("%s\n", t.render().c_str());

        const double caba = geomean(cols[3]);
        std::printf("CABA-BDI energy vs Base: %s (paper: -22.2%%)\n",
                    Table::pct(caba - 1.0).c_str());
        std::printf("CABA-BDI vs HW-BDI:   +%s (paper: +3.6%%)\n",
                    Table::pct(caba / geomean(cols[2]) - 1.0).c_str());
        std::printf("CABA-BDI vs Ideal-BDI: +%s (paper: +4.0%%)\n",
                    Table::pct(caba / geomean(cols[4]) - 1.0).c_str());

        // Power overhead (Section 6.2): energy / time relative to Base.
        std::vector<double> power_ratio;
        for (const std::string &app : sweep.appNames()) {
            const RunResult &b = sweep.at(app, "Base");
            const RunResult &c = sweep.at(app, "CABA-BDI");
            power_ratio.push_back(c.energy.watts(c.cycles) /
                                  b.energy.watts(b.cycles));
        }
        std::printf("CABA-BDI power vs Base: +%s (paper: +2.9%%)\n",
                    Table::pct(geomean(power_ratio) - 1.0).c_str());

        std::printf("\nDRAM energy share under Base (sanity): ");
        const RunResult &pvc = sweep.at(sweep.appNames().front(), "Base");
        std::printf("%s\n",
                    Table::pct(pvc.energy.dram / pvc.energy.total).c_str());
    };
}
