/**
 * @file
 * Figure 2: fraction of statically unallocated registers per
 * application, for a 128KB register file per SM with 1536-thread /
 * 8-block occupancy limits. Paper finding: on average ~24% of the
 * register file is never allocated — the pool CABA's assist warps live
 * in (Section 3.2.2).
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig02_unallocated_regs)
{
    exp.description =
        "Figure 2: statically unallocated register fraction per app";
    exp.body = [](const ExperimentOptions &, BenchJson &json) {
        std::printf("Figure 2: statically unallocated register fraction\n"
                    "(128KB RF/SM, 1536 threads, 8 blocks max)\n\n");

        Table t({"app", "regs/thread", "threads/block", "blocks/SM",
                 "warps/SM", "unallocated", "assist fits free?"});
        std::vector<double> fracs;
        for (const AppDescriptor &app : allApps()) {
            Workload wl(app);
            const OccupancyResult occ = wl.occupancy(0);
            const OccupancyResult with_assist = wl.occupancy(2);
            fracs.push_back(occ.unallocated_reg_fraction);
            json.beginRow();
            json.field("app", app.name);
            json.field("regs_per_thread", app.regs_per_thread);
            json.field("threads_per_block", app.threads_per_block);
            json.field("blocks_per_sm", occ.blocks_per_sm);
            json.field("warps_per_sm", occ.warps_per_sm);
            json.field("unallocated_reg_fraction",
                       occ.unallocated_reg_fraction);
            json.field("assist_fits_free",
                       with_assist.assist_fits_free ? "yes" : "no");
            json.endRow();
            t.addRow({app.name, std::to_string(app.regs_per_thread),
                      std::to_string(app.threads_per_block),
                      std::to_string(occ.blocks_per_sm),
                      std::to_string(occ.warps_per_sm),
                      Table::pct(occ.unallocated_reg_fraction),
                      with_assist.assist_fits_free ? "yes" : "no"});
        }
        t.addRow({"Average", "", "", "", "", Table::pct(mean(fracs)), ""});
        std::printf("%s\n", t.render().c_str());
        std::printf("Paper: ~24%% of the register file unallocated on "
                    "average.\nMeasured average: %s\n",
                    Table::pct(mean(fracs)).c_str());
    };
}
