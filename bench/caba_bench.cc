/**
 * @file
 * Unified bench CLI: runs any subset of the registered experiments (the
 * former standalone bench binaries) with one flag grammar. Each
 * experiment still emits its own caba-bench-v1 document, byte-identical
 * to the standalone binary's output.
 *
 * Parsing lives in harness/bench_cli.h (shared with the tests and, for
 * option validation, the sweep service); this file is only the glue:
 * usage text, selection against the registry, and the run loop. Unlike
 * the old binaries — which silently ignored unrecognized argv tokens —
 * every unknown flag is a hard error with usage on stderr.
 *
 * The in-process cell cache is always on: experiments sharing (app,
 * design, options) cells (Figures 7/8/9 run the same sweep) simulate
 * each cell once per process. Set CABA_CACHE_DIR to persist cells
 * across runs. caba_sweepd serves the same experiments from a
 * long-running process over a socket (see tools/sweepd/).
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/bench_cli.h"
#include "harness/cell_cache.h"
#include "harness/experiment.h"

namespace {

using namespace caba;

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: caba_bench [options] [experiment...]\n"
        "\n"
        "Runs registered experiments (former standalone bench binaries).\n"
        "Experiments are selected by exact name, --filter glob, or "
        "--all.\n"
        "\n"
        "options:\n"
        "  --list           list experiments (name, description) and "
        "exit\n"
        "  --all            run every registered experiment\n"
        "  --filter GLOB    run experiments whose name matches GLOB "
        "(* and ?)\n"
        "  --json           write caba-bench-v1 JSON to the default "
        "path,\n"
        "                   bench_results/<experiment>.json\n"
        "  --json=PATH      write to PATH instead (requires exactly one\n"
        "                   selected experiment); bare --json never "
        "consumes\n"
        "                   the next argument\n"
        "  --scale X        workload loop-trip multiplier, finite and "
        "positive\n"
        "                   (CABA_SCALE stacks on top)\n"
        "  --jobs N         sweep worker threads (1 = serial)\n"
        "  --warps N        cap resident warps per SM\n"
        "  --help-env       list environment variables and exit\n"
        "  -h, --help       this help\n");
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "caba_bench: %s\n\n", msg.c_str());
    usage(stderr);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli;
    std::string error;
    if (!parseBenchCli(std::vector<std::string>(argv + 1, argv + argc),
                       &cli, &error))
        usageError(error);
    if (cli.action == BenchCli::Action::Help) {
        usage(stdout);
        return 0;
    }
    if (cli.action == BenchCli::Action::HelpEnv) {
        env::printHelp(stdout);
        return 0;
    }

    const ExperimentRegistry &registry = ExperimentRegistry::instance();
    const std::vector<const Experiment *> everything = registry.all();

    if (cli.list) {
        for (const Experiment *e : everything)
            std::printf("%-24s  %s\n", e->name.c_str(),
                        e->description.c_str());
        return 0;
    }

    std::vector<std::string> available;
    for (const Experiment *e : everything)
        available.push_back(e->name);
    std::vector<std::string> selected;
    if (!resolveSelection(cli, available, &selected, &error))
        usageError(error);

    // Cross-experiment memoization: shared (app, design, options) cells
    // simulate once per process (plus the CABA_CACHE_DIR disk layer,
    // resolved inside the cache).
    CellCache::instance().enableInProcess();

    const bool multiple = selected.size() > 1;
    for (const std::string &name : selected) {
        const Experiment *e = registry.find(name);
        if (multiple)
            std::printf("=== %s ===\n", name.c_str());
        std::string path;
        if (cli.json_enabled)
            path = cli.json_path.empty()
                       ? "bench_results/" + name + ".json"
                       : cli.json_path;
        runExperiment(*e, cli.opts, path);
        if (multiple)
            std::printf("\n");
    }

    // One machine-greppable traffic summary (the CI cache-smoke job
    // asserts simulations=0 on a warm cache).
    const CellCacheStats st = CellCache::instance().stats();
    std::fprintf(stderr,
                 "[cell-cache] simulations=%llu inproc_hits=%llu "
                 "disk_hits=%llu disk_misses=%llu stores=%llu "
                 "evictions=%llu self_checks=%llu\n",
                 static_cast<unsigned long long>(st.simulations),
                 static_cast<unsigned long long>(st.inproc_hits),
                 static_cast<unsigned long long>(st.disk_hits),
                 static_cast<unsigned long long>(st.disk_misses),
                 static_cast<unsigned long long>(st.stores),
                 static_cast<unsigned long long>(st.evictions),
                 static_cast<unsigned long long>(st.self_checks));
    return 0;
}
