/**
 * @file
 * Unified bench CLI: runs any subset of the registered experiments (the
 * former standalone bench binaries) with one flag grammar. Each
 * experiment still emits its own caba-bench-v1 document, byte-identical
 * to the standalone binary's output.
 *
 * Unlike the old binaries — which silently ignored unrecognized argv
 * tokens — every unknown flag here is a hard error with usage on
 * stderr.
 *
 * The in-process cell cache is always on: experiments sharing (app,
 * design, options) cells (Figures 7/8/9 run the same sweep) simulate
 * each cell once per process. Set CABA_CACHE_DIR to persist cells
 * across runs.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/cell_cache.h"
#include "harness/experiment.h"

namespace {

using namespace caba;

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: caba_bench [options] [experiment...]\n"
        "\n"
        "Runs registered experiments (former standalone bench binaries).\n"
        "Experiments are selected by exact name, --filter glob, or "
        "--all.\n"
        "\n"
        "options:\n"
        "  --list           list experiments (name, description) and "
        "exit\n"
        "  --all            run every registered experiment\n"
        "  --filter GLOB    run experiments whose name matches GLOB "
        "(* and ?)\n"
        "  --json[=PATH]    write caba-bench-v1 JSON; the default PATH "
        "is\n"
        "                   bench_results/<experiment>.json, an explicit "
        "PATH\n"
        "                   requires exactly one selected experiment\n"
        "  --scale X        workload loop-trip multiplier "
        "(CABA_SCALE stacks on top)\n"
        "  --jobs N         sweep worker threads (1 = serial)\n"
        "  --warps N        cap resident warps per SM\n"
        "  --help-env       list environment variables and exit\n"
        "  -h, --help       this help\n");
}

/** Shell-style match of @p s against @p pat ('*' and '?'). */
bool
globMatch(const char *pat, const char *s)
{
    const char *star = nullptr;
    const char *star_s = nullptr;
    while (*s != '\0') {
        if (*pat == '?' || *pat == *s) {
            ++pat;
            ++s;
        } else if (*pat == '*') {
            star = pat++;
            star_s = s;
        } else if (star != nullptr) {
            pat = star + 1;
            s = ++star_s;
        } else {
            return false;
        }
    }
    while (*pat == '*')
        ++pat;
    return *pat == '\0';
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "caba_bench: %s\n\n", msg.c_str());
    usage(stderr);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    bool list = false;
    bool run_all = false;
    bool json_enabled = false;
    std::string json_explicit;
    std::vector<std::string> filters;
    std::vector<std::string> names;
    ExperimentOptions opts;

    // Flags with a value accept both "--flag value" and "--flag=value".
    const auto valueOf = [&](const std::string &flag, const char *inline_val,
                             int &i) -> std::string {
        if (inline_val != nullptr)
            return inline_val;
        if (i + 1 >= argc)
            usageError("flag " + flag + " needs a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        }
        if (arg == "--help-env") {
            env::printHelp(stdout);
            return 0;
        }
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            const std::string flag = arg.substr(0, eq);
            const char *inline_val =
                eq == std::string::npos ? nullptr : arg.c_str() + eq + 1;
            if (flag == "--list" || flag == "--all") {
                if (inline_val != nullptr)
                    usageError("flag " + flag + " takes no value");
                (flag == "--list" ? list : run_all) = true;
            } else if (flag == "--filter") {
                filters.push_back(valueOf(flag, inline_val, i));
            } else if (flag == "--json") {
                json_enabled = true;
                // Bare --json keeps per-experiment default paths; an
                // attached path may also follow as the next token (the
                // grammar the old binaries' jsonOutPath accepted).
                if (inline_val != nullptr)
                    json_explicit = inline_val;
                else if (i + 1 < argc && argv[i + 1][0] != '-')
                    json_explicit = argv[++i];
                if (json_enabled && inline_val != nullptr &&
                    json_explicit.empty())
                    usageError("--json= needs a non-empty path");
            } else if (flag == "--scale") {
                const std::string v = valueOf(flag, inline_val, i);
                char *end = nullptr;
                opts.scale = std::strtod(v.c_str(), &end);
                if (end == v.c_str() || *end != '\0' || opts.scale <= 0.0)
                    usageError("--scale needs a positive number, got '" +
                               v + "'");
            } else if (flag == "--jobs" || flag == "--warps") {
                const std::string v = valueOf(flag, inline_val, i);
                char *end = nullptr;
                const long n = std::strtol(v.c_str(), &end, 10);
                if (end == v.c_str() || *end != '\0' || n < 0)
                    usageError(flag + " needs a non-negative integer, "
                               "got '" + v + "'");
                (flag == "--jobs" ? opts.jobs : opts.max_warps) =
                    static_cast<int>(n);
            } else {
                usageError("unknown flag '" + arg + "'");
            }
        } else if (arg[0] == '-' && arg.size() > 1) {
            usageError("unknown flag '" + arg + "'");
        } else {
            names.push_back(arg);
        }
    }

    const ExperimentRegistry &registry = ExperimentRegistry::instance();
    const std::vector<const Experiment *> everything = registry.all();

    if (list) {
        for (const Experiment *e : everything)
            std::printf("%-24s  %s\n", e->name.c_str(),
                        e->description.c_str());
        return 0;
    }

    std::set<std::string> selected;
    for (const std::string &name : names) {
        if (registry.find(name) == nullptr)
            usageError("unknown experiment '" + name +
                       "' (see --list)");
        selected.insert(name);
    }
    for (const std::string &glob : filters) {
        bool any = false;
        for (const Experiment *e : everything) {
            if (globMatch(glob.c_str(), e->name.c_str())) {
                selected.insert(e->name);
                any = true;
            }
        }
        if (!any)
            usageError("--filter '" + glob +
                       "' matches no experiment (see --list)");
    }
    if (run_all)
        for (const Experiment *e : everything)
            selected.insert(e->name);
    if (selected.empty())
        usageError("no experiments selected (name one, or use --all, "
                   "--filter, --list)");
    if (!json_explicit.empty() && selected.size() > 1)
        usageError("an explicit --json path needs exactly one selected "
                   "experiment (" + std::to_string(selected.size()) +
                   " selected)");

    // Cross-experiment memoization: shared (app, design, options) cells
    // simulate once per process (plus the CABA_CACHE_DIR disk layer,
    // resolved inside the cache).
    CellCache::instance().enableInProcess();

    const bool multiple = selected.size() > 1;
    for (const std::string &name : selected) {
        const Experiment *e = registry.find(name);
        if (multiple)
            std::printf("=== %s ===\n", name.c_str());
        std::string path;
        if (json_enabled)
            path = json_explicit.empty()
                       ? "bench_results/" + name + ".json"
                       : json_explicit;
        runExperiment(*e, opts, path);
        if (multiple)
            std::printf("\n");
    }

    // One machine-greppable traffic summary (the CI cache-smoke job
    // asserts simulations=0 on a warm cache).
    const CellCacheStats st = CellCache::instance().stats();
    std::fprintf(stderr,
                 "[cell-cache] simulations=%llu inproc_hits=%llu "
                 "disk_hits=%llu disk_misses=%llu stores=%llu "
                 "evictions=%llu self_checks=%llu\n",
                 static_cast<unsigned long long>(st.simulations),
                 static_cast<unsigned long long>(st.inproc_hits),
                 static_cast<unsigned long long>(st.disk_hits),
                 static_cast<unsigned long long>(st.disk_misses),
                 static_cast<unsigned long long>(st.stores),
                 static_cast<unsigned long long>(st.evictions),
                 static_cast<unsigned long long>(st.self_checks));
    return 0;
}
