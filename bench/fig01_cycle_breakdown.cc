/**
 * @file
 * Figure 1: breakdown of total issue cycles (Compute Stalls, Memory
 * Stalls, Data Dependence Stalls, Idle Cycles, Active Cycles) for the
 * 27-application pool on the baseline GPU at 1/2x, 1x and 2x off-chip
 * bandwidth. Paper finding: 17/27 apps are memory-bound, and for them
 * Memory + Data Dependence stalls are ~61% of issue cycles at 1x BW,
 * shrinking at 2x and growing at 1/2x.
 *
 * The shares are exact, not estimated: every issue slot of every
 * accounted cycle is charged to exactly one sm_slot_* category by the
 * scheduler (DESIGN.md section 11), and the audit layer proves the
 * categories sum to cycles x issue slots on every run. The paper's five
 * bars group the nine categories as: Active = issued + AW-issued,
 * Memory = mem-structural + mem-data, Data-Dep = scoreboard (non-mem),
 * Compute = compute-structural, Idle = ibuf-empty + sync + idle.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

namespace {

/** The paper's five Figure 1 bars, as fractions of all issue slots. */
struct SlotShares
{
    double active = 0, memory = 0, data = 0, compute = 0, idle = 0;
};

SlotShares
slotShares(const RunResult &r)
{
    const auto slots = [&](const char *name) {
        return static_cast<double>(
            r.stats.get(std::string("sm_") + name));
    };
    SlotShares s;
    s.active = slots("slot_issued") + slots("slot_aw_issued");
    s.memory = slots("slot_mem_struct") + slots("slot_mem_data");
    s.data = slots("slot_scoreboard");
    s.compute = slots("slot_comp_struct");
    s.idle = slots("slot_ibuf_empty") + slots("slot_sync") +
             slots("slot_idle");
    const double total =
        s.active + s.memory + s.data + s.compute + s.idle;
    if (total > 0) {
        s.active /= total;
        s.memory /= total;
        s.data /= total;
        s.compute /= total;
        s.idle /= total;
    }
    return s;
}

} // namespace

CABA_REGISTER_EXPERIMENT(fig01_cycle_breakdown)
{
    exp.description =
        "Figure 1: issue-cycle breakdown at 0.5x/1x/2x bandwidth";
    exp.body = [](const ExperimentOptions &opts, BenchJson &json) {
        printSystemConfig(opts);
        std::printf(
            "Figure 1: issue-cycle breakdown on the Base design\n\n");

        const double bw_points[] = {0.5, 1.0, 2.0};
        Table t({"app", "bound", "BW", "compute", "memory", "data-dep",
                 "idle", "active"});

        struct Avg { double mem = 0, data = 0; int n = 0; };
        std::vector<Avg> avg_mem_bound(3);

        for (const AppDescriptor &app : fig1Apps()) {
            for (int b = 0; b < 3; ++b) {
                ExperimentOptions o = opts;
                o.bw_scale = bw_points[b];
                const RunResult r = runApp(app, DesignConfig::base(), o);
                // Bake the bandwidth point into the cell's design name so
                // the three runs per app stay distinguishable in the JSON.
                json.addCell(app.name,
                             "Base@" + Table::num(bw_points[b], 1) + "x",
                             r);
                const SlotShares s = slotShares(r);
                t.addRow({app.name, app.memory_bound ? "Mem" : "Comp",
                          Table::num(bw_points[b], 1) + "x",
                          Table::pct(s.compute), Table::pct(s.memory),
                          Table::pct(s.data), Table::pct(s.idle),
                          Table::pct(s.active)});
                if (app.memory_bound) {
                    avg_mem_bound[b].mem += s.memory;
                    avg_mem_bound[b].data += s.data;
                    ++avg_mem_bound[b].n;
                }
            }
        }
        std::printf("%s\n", t.render().c_str());

        std::printf("Memory-bound apps, Memory + Data-Dependence stall "
                    "share (paper: ~61%% at 1x, lower at 2x, higher at "
                    "1/2x):\n");
        for (int b = 0; b < 3; ++b) {
            const Avg &a = avg_mem_bound[b];
            std::printf("  %.1fx BW: %s\n", bw_points[b],
                        Table::pct((a.mem + a.data) / a.n).c_str());
        }
    };
}
