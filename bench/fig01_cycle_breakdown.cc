/**
 * @file
 * Figure 1: breakdown of total issue cycles (Compute Stalls, Memory
 * Stalls, Data Dependence Stalls, Idle Cycles, Active Cycles) for the
 * 27-application pool on the baseline GPU at 1/2x, 1x and 2x off-chip
 * bandwidth. Paper finding: 17/27 apps are memory-bound, and for them
 * Memory + Data Dependence stalls are ~61% of issue cycles at 1x BW,
 * shrinking at 2x and growing at 1/2x.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/json_export.h"
#include "harness/runner.h"

using namespace caba;

int
main(int argc, char **argv)
{
    BenchJson json("fig01_cycle_breakdown",
                   jsonOutPath("fig01_cycle_breakdown", argc, argv));
    ExperimentOptions opts;
    printSystemConfig(opts);
    std::printf("Figure 1: issue-cycle breakdown on the Base design\n\n");

    const double bw_points[] = {0.5, 1.0, 2.0};
    Table t({"app", "bound", "BW", "compute", "memory", "data-dep", "idle",
             "active"});

    struct Avg { double mem = 0, data = 0; int n = 0; };
    std::vector<Avg> avg_mem_bound(3), avg_all(3);

    for (const AppDescriptor &app : fig1Apps()) {
        for (int b = 0; b < 3; ++b) {
            ExperimentOptions o = opts;
            o.bw_scale = bw_points[b];
            const RunResult r = runApp(app, DesignConfig::base(), o);
            // Bake the bandwidth point into the cell's design name so
            // the three runs per app stay distinguishable in the JSON.
            json.addCell(app.name,
                         "Base@" + Table::num(bw_points[b], 1) + "x", r);
            const double total =
                static_cast<double>(r.breakdown.total());
            const double comp = r.breakdown.comp_stall / total;
            const double mem = r.breakdown.mem_stall / total;
            const double data = r.breakdown.data_stall / total;
            const double idle = r.breakdown.idle / total;
            const double act = r.breakdown.active / total;
            t.addRow({app.name, app.memory_bound ? "Mem" : "Comp",
                      Table::num(bw_points[b], 1) + "x", Table::pct(comp),
                      Table::pct(mem), Table::pct(data), Table::pct(idle),
                      Table::pct(act)});
            if (app.memory_bound) {
                avg_mem_bound[b].mem += mem;
                avg_mem_bound[b].data += data;
                ++avg_mem_bound[b].n;
            }
        }
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Memory-bound apps, Memory + Data-Dependence stall share "
                "(paper: ~61%% at 1x, lower at 2x, higher at 1/2x):\n");
    for (int b = 0; b < 3; ++b) {
        const Avg &a = avg_mem_bound[b];
        std::printf("  %.1fx BW: %s\n", bw_points[b],
                    Table::pct((a.mem + a.data) / a.n).c_str());
    }
    json.write();
    return 0;
}
