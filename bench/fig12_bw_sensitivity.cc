/**
 * @file
 * Figure 12: sensitivity to peak off-chip bandwidth — Base and CABA-BDI
 * at 1/2x, 1x and 2x the Table 1 bandwidth. Paper finding: CABA at a
 * given bandwidth often matches the baseline with double the bandwidth.
 */
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

using namespace caba;

CABA_REGISTER_EXPERIMENT(fig12_bw_sensitivity)
{
    exp.description =
        "Figure 12: Base vs CABA at 0.5x/1x/2x off-chip bandwidth";
    exp.title =
        "Figure 12: bandwidth sensitivity (speedup vs 1x-Base)";
    exp.designs = [] {
        // Bake the bandwidth point into the design identity.
        std::vector<DesignConfig> designs;
        const double points[] = {0.5, 1.0, 2.0};
        for (double p : points) {
            DesignConfig b = DesignConfig::base();
            b.name = Table::num(p, 1) + "x-Base";
            designs.push_back(b);
            DesignConfig c = DesignConfig::caba();
            c.name = Table::num(p, 1) + "x-CABA";
            designs.push_back(c);
        }
        return designs;
    };
    exp.tweak = [](const DesignConfig &d, const ExperimentOptions &o) {
        ExperimentOptions out = o;
        out.bw_scale = d.name.substr(0, 3) == "0.5" ? 0.5
                     : d.name.substr(0, 3) == "2.0" ? 2.0 : 1.0;
        return out;
    };
    exp.apps = [] {
        // A representative bandwidth-sensitive subset keeps the 6-point
        // sweep tractable; the shape matches the full pool.
        std::vector<AppDescriptor> apps;
        for (const char *n :
             {"CONS", "JPEG", "LPS", "MM", "PVC", "PVR", "SLA", "sssp"})
            apps.push_back(findApp(n));
        return apps;
    };
    exp.emit = [](const Sweep &sweep, BenchJson &) {
        const std::vector<std::string> &designs = sweep.designNames();
        Table t({"app", "0.5x-Base", "0.5x-CABA", "1x-Base", "1x-CABA",
                 "2x-Base", "2x-CABA"});
        std::vector<std::vector<double>> cols(designs.size());
        for (const std::string &app : sweep.appNames()) {
            std::vector<std::string> row = {app};
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const double s = sweep.speedup(app, designs[d],
                                               "1.0x-Base");
                cols[d].push_back(s);
                row.push_back(Table::num(s));
            }
            t.addRow(row);
        }
        std::vector<std::string> gm = {"GeoMean"};
        for (std::size_t d = 0; d < designs.size(); ++d)
            gm.push_back(Table::num(geomean(cols[d])));
        t.addRow(gm);
        std::printf("%s\n", t.render().c_str());

        std::printf("Key comparisons (paper: CABA ~= doubling the off-chip "
                    "bandwidth):\n");
        std::printf("  1x-CABA  vs 2x-Base: %.2f vs %.2f\n",
                    geomean(cols[3]), geomean(cols[4]));
        std::printf("  0.5x-CABA vs 1x-Base: %.2f vs %.2f\n",
                    geomean(cols[1]), geomean(cols[2]));
    };
}
