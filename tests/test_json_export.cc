/**
 * @file
 * Machine-readable export tests: the JsonWriter building blocks, the
 * --json flag parsing, the caba-bench-v1 document schema (golden
 * structure a downstream plotting script can rely on), and the
 * determinism promise — a parallel sweep writes a byte-identical file
 * to a serial one.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "compress/design.h"
#include "harness/json_export.h"
#include "harness/sweep.h"
#include "mini_json.h"
#include "workloads/app.h"

namespace caba {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(JsonWriterTest, NestingAndSeparators)
{
    JsonWriter w;
    w.beginObject()
        .kv("a", std::uint64_t{1})
        .key("b")
        .beginArray()
        .value(2)
        .value(3)
        .endArray()
        .kv("c", true)
        .endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2,3],\"c\":true}");
}

TEST(JsonWriterTest, EscapesStrings)
{
    JsonWriter w;
    w.beginObject().kv("k", std::string("a\"b\\c\nd\x01")).endObject();
    EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}");
}

TEST(JsonWriterTest, DoublesRoundTripAndStayFinite)
{
    JsonWriter w;
    w.beginArray()
        .value(0.1)
        .value(1.0 / 0.0)
        .value(0.0 / 0.0)
        .endArray();
    minijson::Value v;
    ASSERT_TRUE(minijson::parse(w.str(), &v));
    ASSERT_EQ(v.array.size(), 3u);
    EXPECT_EQ(v.array[0].number, 0.1); // %.17g round-trips exactly
    EXPECT_TRUE(v.array[1].isNull()); // inf clamps to null
    EXPECT_TRUE(v.array[2].isNull()); // nan clamps to null
}

TEST(JsonOutPathTest, FlagForms)
{
    auto path = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "bench");
        return jsonOutPath("mybench", static_cast<int>(argv.size()),
                           const_cast<char **>(argv.data()));
    };
    EXPECT_EQ(path({}), "");
    EXPECT_EQ(path({"--other"}), "");
    EXPECT_EQ(path({"--json"}), "bench_results/mybench.json");
    EXPECT_EQ(path({"--json=custom/a.json"}), "custom/a.json");
    // Regression: bare --json must never eat the following token as a
    // path — neither a flag nor a bare word (an experiment name).
    EXPECT_EQ(path({"--json", "--verbose"}), "bench_results/mybench.json");
    EXPECT_EQ(path({"--json", "fig07"}), "bench_results/mybench.json");
}

TEST(BenchJsonTest, DisabledIsNoOp)
{
    BenchJson json("b", "");
    EXPECT_FALSE(json.enabled());
    json.beginRow();
    json.field("k", 1);
    json.endRow();
    json.write(); // must not create any file or crash
}

TEST(BenchJsonTest, RowsOnlyDocument)
{
    const std::string path = testing::TempDir() + "caba_rows.json";
    BenchJson json("rows_bench", path);
    json.beginRow();
    json.field("app", std::string("MM"));
    json.field("frac", 0.25);
    json.field("warps", 48);
    json.endRow();
    json.write();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    EXPECT_EQ(doc.find("schema")->string, "caba-bench-v1");
    EXPECT_EQ(doc.find("bench")->string, "rows_bench");
    EXPECT_TRUE(doc.find("cells")->array.empty());
    ASSERT_EQ(doc.find("rows")->array.size(), 1u);
    const minijson::Value &row = doc.find("rows")->array[0];
    EXPECT_EQ(row.find("app")->string, "MM");
    EXPECT_EQ(row.find("frac")->number, 0.25);
    EXPECT_EQ(row.find("warps")->number, 48.0);
    std::remove(path.c_str());
}

/** The golden schema: every key a plotting script may depend on. */
TEST(BenchJsonTest, CellSchemaIsStable)
{
    ExperimentOptions opts;
    opts.scale = 0.1;
    const RunResult r = runApp(findApp("PVC"), DesignConfig::caba(), opts);

    const std::string path = testing::TempDir() + "caba_cell.json";
    BenchJson json("schema_bench", path);
    json.addCell("PVC", "CABA-BDI", r);
    json.write();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    EXPECT_EQ(doc.find("schema")->string, "caba-bench-v1");
    ASSERT_EQ(doc.find("cells")->array.size(), 1u);

    const minijson::Value &cell = doc.find("cells")->array[0];
    EXPECT_EQ(cell.find("app")->string, "PVC");
    EXPECT_EQ(cell.find("design")->string, "CABA-BDI");
    const minijson::Value *res = cell.find("result");
    ASSERT_NE(res, nullptr);
    for (const char *k : {"cycles", "instructions", "ipc",
                          "bw_utilization", "compression_ratio",
                          "md_hit_rate"})
        EXPECT_TRUE(res->find(k) != nullptr && res->find(k)->isNumber())
            << "missing scalar " << k;
    for (const char *k : {"active", "mem_stall", "comp_stall",
                          "data_stall", "idle"})
        EXPECT_NE(res->find("breakdown")->find(k), nullptr)
            << "missing breakdown." << k;
    for (const char *k : {"core", "l1", "l2", "xbar", "dram",
                          "compression", "static", "total"})
        EXPECT_NE(res->find("energy")->find(k), nullptr)
            << "missing energy." << k;

    EXPECT_EQ(static_cast<std::uint64_t>(res->find("cycles")->number),
              r.cycles);

    // Stats/gauges partition: every counter in one object, every gauge
    // in the other, values matching the in-memory StatSet.
    const minijson::Value *stats = res->find("stats");
    const minijson::Value *gauges = res->find("gauges");
    ASSERT_NE(stats, nullptr);
    ASSERT_NE(gauges, nullptr);
    for (const auto &[k, v] : r.stats.all()) {
        const minijson::Value *home =
            r.stats.isGauge(k) ? gauges->find(k) : stats->find(k);
        ASSERT_NE(home, nullptr) << k;
        EXPECT_EQ(static_cast<std::uint64_t>(home->number), v) << k;
    }
    EXPECT_NE(gauges->find("awc_awt_capacity"), nullptr);

    // Distributions: objects with count/sum/min/max/mean/buckets, and
    // the assist-warp latency histogram must exist on a CABA run.
    const minijson::Value *dists = res->find("distributions");
    ASSERT_NE(dists, nullptr);
    const minijson::Value *lat = dists->find("awc_latency");
    ASSERT_NE(lat, nullptr) << "assist-warp latency histogram missing";
    EXPECT_GT(lat->find("count")->number, 0.0);
    ASSERT_TRUE(lat->find("buckets")->isArray());
    double bucket_total = 0.0;
    for (const minijson::Value &b : lat->find("buckets")->array) {
        ASSERT_EQ(b.array.size(), 2u); // [bucket_low, count] pairs
        bucket_total += b.array[1].number;
    }
    EXPECT_EQ(bucket_total, lat->find("count")->number);

    // Timeline: [cycle, instructions, dram_bursts] triples ending at
    // the final cycle, cumulative and non-decreasing.
    const minijson::Value *timeline = res->find("timeline");
    ASSERT_NE(timeline, nullptr);
    ASSERT_FALSE(timeline->array.empty());
    double prev_c = 0, prev_i = 0;
    for (const minijson::Value &s : timeline->array) {
        ASSERT_EQ(s.array.size(), 3u);
        EXPECT_GE(s.array[0].number, prev_c);
        EXPECT_GE(s.array[1].number, prev_i);
        prev_c = s.array[0].number;
        prev_i = s.array[1].number;
    }
    EXPECT_EQ(static_cast<std::uint64_t>(
                  timeline->array.back().array[0].number),
              r.cycles);
    std::remove(path.c_str());
}

TEST(BenchJsonTest, ParallelSweepWritesByteIdenticalJson)
{
    const std::vector<AppDescriptor> apps = {findApp("PVC"),
                                             findApp("bfs")};
    const std::vector<DesignConfig> designs = {DesignConfig::base(),
                                               DesignConfig::caba()};
    ExperimentOptions opts;
    opts.scale = 0.1;

    auto writeSweep = [&](int jobs, const std::string &path) {
        ExperimentOptions o = opts;
        o.jobs = jobs;
        const Sweep sweep(apps, designs, o);
        BenchJson json("determinism", path);
        json.addSweep(sweep);
        json.write();
    };

    const std::string serial = testing::TempDir() + "caba_serial.json";
    const std::string parallel = testing::TempDir() + "caba_parallel.json";
    writeSweep(1, serial);
    writeSweep(8, parallel);

    const std::string a = readFile(serial);
    const std::string b = readFile(parallel);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "worker count leaked into the JSON export";

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(a, &doc));
    EXPECT_EQ(doc.find("cells")->array.size(),
              apps.size() * designs.size());
    std::remove(serial.c_str());
    std::remove(parallel.c_str());
}

} // namespace
} // namespace caba
