/**
 * @file
 * Unit tests for the GDDR5 channel model: bus saturation on sequential
 * streams, tRRD-bound scatter, write batching, compression's burst
 * savings, and bandwidth scaling — the physics Figures 7/8/12 rest on.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/dram.h"

namespace caba {
namespace {

struct Feeder
{
    DramChannel ch;
    std::uint64_t id = 1;
    std::uint64_t seq = 0;
    std::uint64_t served_reads = 0;
    std::uint64_t served_writes = 0;
    Rng rng{42};

    explicit Feeder(const DramConfig &cfg) : ch(cfg) {}

    /** Runs @p cycles, keeping queues fed by @p filler. */
    template <typename F>
    void
    run(Cycle cycles, F filler)
    {
        std::vector<DramCompletion> done;
        for (Cycle now = 0; now < cycles; ++now) {
            filler(*this, now);
            ch.cycle(now);
            done.clear();
            ch.drainCompleted(now, &done);
            for (const DramCompletion &d : done)
                (d.is_write ? served_writes : served_reads) += 1;
        }
    }

    void
    feedSeqReads(int bursts)
    {
        while (ch.canAccept(false)) {
            DramCmd c;
            c.id = id++;
            c.line = (seq++) * kLineSize;
            c.bursts = bursts;
            ch.enqueue(c);
        }
    }
};

DramConfig
oneChannel()
{
    DramConfig cfg;
    cfg.channels = 1;
    return cfg;
}

TEST(Dram, SequentialReadsSaturateTheBus)
{
    Feeder f(oneChannel());
    f.run(100000, [](Feeder &s, Cycle) { s.feedSeqReads(kBurstsPerLine); });
    EXPECT_GT(f.ch.busUtilization(100000), 0.95);
    const StatSet s = f.ch.stats();
    const double hit_rate =
        static_cast<double>(s.get("row_hits")) /
        static_cast<double>(s.get("row_hits") + s.get("row_misses"));
    EXPECT_GT(hit_rate, 0.85);
}

TEST(Dram, CompressedLinesDoubleServiceRate)
{
    Feeder full(oneChannel());
    full.run(50000, [](Feeder &s, Cycle) { s.feedSeqReads(4); });
    Feeder half(oneChannel());
    half.run(50000, [](Feeder &s, Cycle) { s.feedSeqReads(2); });
    EXPECT_GT(static_cast<double>(half.served_reads),
              1.7 * static_cast<double>(full.served_reads));
}

TEST(Dram, RandomScatterIsActivateBound)
{
    Feeder f(oneChannel());
    f.run(100000, [](Feeder &s, Cycle) {
        while (s.ch.canAccept(false)) {
            DramCmd c;
            c.id = s.id++;
            c.line = s.rng.below(1 << 22) * kLineSize;
            c.bursts = kBurstsPerLine;
            s.ch.enqueue(c);
        }
    });
    // tRRD=6 caps activations at 1/6 per cycle; one line per activate.
    const double rate = static_cast<double>(f.served_reads) / 100000.0;
    EXPECT_LT(rate, 0.18);
    EXPECT_GT(rate, 0.12);
}

TEST(Dram, BandwidthScalingChangesBurstTime)
{
    DramConfig half = oneChannel();
    half.burst_quarters = 12;   // 0.5x bandwidth
    Feeder fh(half);
    fh.run(50000, [](Feeder &s, Cycle) { s.feedSeqReads(4); });

    Feeder f1(oneChannel());
    f1.run(50000, [](Feeder &s, Cycle) { s.feedSeqReads(4); });

    EXPECT_NEAR(static_cast<double>(f1.served_reads) /
                    static_cast<double>(fh.served_reads),
                2.0, 0.2);
}

TEST(Dram, WritesAreBatchedNotInterleaved)
{
    // Reads stream sequentially; writes hit scattered old rows. With
    // drain-mode batching the read row-hit rate stays high.
    Feeder f(oneChannel());
    f.run(100000, [](Feeder &s, Cycle) {
        s.feedSeqReads(kBurstsPerLine);
        while (s.ch.canAccept(true) && s.rng.chance(0.3)) {
            DramCmd c;
            c.id = s.id++;
            c.is_write = true;
            c.line = s.rng.below(1 << 20) * kLineSize;
            c.bursts = kBurstsPerLine;
            s.ch.enqueue(c);
        }
    });
    EXPECT_GT(f.served_writes, 0u);
    EXPECT_GT(f.ch.busUtilization(100000), 0.8);
}

TEST(Dram, OverheadBurstsAreAccounted)
{
    Feeder f(oneChannel());
    f.run(20000, [](Feeder &s, Cycle) {
        while (s.ch.canAccept(false)) {
            DramCmd c;
            c.id = s.id++;
            c.line = (s.seq++) * kLineSize;
            c.bursts = 2;
            c.extra_bursts = 1;     // MD-cache miss
            s.ch.enqueue(c);
        }
    });
    const StatSet s = f.ch.stats();
    EXPECT_EQ(s.get("overhead_bursts"), s.get("reads"));
    EXPECT_EQ(s.get("bursts"),
              s.get("data_bursts") + s.get("overhead_bursts"));
}

TEST(Dram, DrainsCompletelyWhenStarved)
{
    Feeder f(oneChannel());
    bool fed = false;
    f.run(5000, [&fed](Feeder &s, Cycle now) {
        if (!fed && now == 0) {
            s.feedSeqReads(4);
            fed = true;
        }
    });
    EXPECT_FALSE(f.ch.busy());
    EXPECT_EQ(f.served_reads, f.ch.stats().get("reads_enqueued"));
}

TEST(Dram, QueueCapacityIsHonored)
{
    DramChannel ch(oneChannel());
    int pushed = 0;
    while (ch.canAccept(false)) {
        DramCmd c;
        c.id = static_cast<std::uint64_t>(pushed);
        c.line = static_cast<Addr>(pushed) * kLineSize;
        ch.enqueue(c);
        ++pushed;
    }
    EXPECT_EQ(pushed, oneChannel().queue_capacity);
    EXPECT_TRUE(ch.canAccept(true));    // write queue independent
}

} // namespace
} // namespace caba
