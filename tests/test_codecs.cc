/**
 * @file
 * Codec unit and property tests: exact round-trips for every algorithm
 * over every data profile, encoding-specific behaviour (Figure 5), and
 * the size relations the bandwidth model relies on.
 */
#include <cstring>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/fpc.h"
#include "compress/registry.h"
#include "workloads/data_profile.h"

namespace caba {
namespace {

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<Algorithm, DataProfile>>
{};

TEST_P(CodecRoundTrip, ExactOverProfiles)
{
    const auto [algo, profile] = GetParam();
    const Codec &codec = getCodec(algo);
    std::uint8_t line[kLineSize];
    std::uint8_t out[kLineSize];
    for (int i = 0; i < 500; ++i) {
        generateProfileLine(profile, 99, static_cast<Addr>(i) * kLineSize,
                            line);
        const CompressedLine cl = codec.compress(line);
        ASSERT_GE(cl.size(), 1);
        ASSERT_LE(cl.size(), kLineSize);
        std::memset(out, 0xAB, kLineSize);
        codec.decompress(cl, out);
        ASSERT_EQ(std::memcmp(line, out, kLineSize), 0)
            << codec.name() << " on " << dataProfileName(profile)
            << " line " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllProfiles, CodecRoundTrip,
    ::testing::Combine(
        ::testing::Values(Algorithm::Bdi, Algorithm::Fpc, Algorithm::CPack,
                          Algorithm::BestOfAll),
        ::testing::Values(DataProfile::Zeros, DataProfile::Pointer,
                          DataProfile::SmallInt, DataProfile::Fp32,
                          DataProfile::Text, DataProfile::Sparse,
                          DataProfile::Random)));

TEST(Bdi, ZeroLineIsOneByte)
{
    std::uint8_t line[kLineSize] = {};
    const CompressedLine cl = getCodec(Algorithm::Bdi).compress(line);
    EXPECT_EQ(cl.size(), 1);
    EXPECT_EQ(cl.encoding, static_cast<int>(BdiEncoding::Zeros));
    EXPECT_EQ(cl.bursts(), 1);
}

TEST(Bdi, RepeatedValueIsNineBytes)
{
    std::uint8_t line[kLineSize];
    const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
    for (int i = 0; i < kLineSize / 8; ++i)
        std::memcpy(line + i * 8, &v, 8);
    const CompressedLine cl = getCodec(Algorithm::Bdi).compress(line);
    EXPECT_EQ(cl.size(), 9);
    EXPECT_EQ(cl.encoding, static_cast<int>(BdiEncoding::Repeat));
}

TEST(Bdi, Figure5PvcLineCompressesToOneBurst)
{
    // The paper's Figure 5 example: 8-byte values alternating between
    // zero-based immediates and base 0x80001d000 plus small deltas,
    // extended to our 128-byte line (16 values). Layout: 1B metadata +
    // 2B base-select mask + 8B base + 16 1B deltas = 27 bytes -> a
    // single 32B DRAM burst (the paper's 64B example yields 17B).
    std::uint64_t vals[16];
    for (int i = 0; i < 16; ++i) {
        vals[i] = (i % 2 == 0)
            ? static_cast<std::uint64_t>(i) * 8
            : 0x80001d000ull + static_cast<std::uint64_t>(i) * 4;
    }
    std::uint8_t line[kLineSize];
    std::memcpy(line, vals, kLineSize);
    const CompressedLine cl = getCodec(Algorithm::Bdi).compress(line);
    EXPECT_EQ(cl.encoding, static_cast<int>(BdiEncoding::B8D1));
    EXPECT_EQ(cl.size(), 27);
    EXPECT_EQ(cl.bursts(), 1);
}

TEST(Bdi, IncompressibleFallsBackToRaw)
{
    Rng rng(3);
    std::uint8_t line[kLineSize];
    for (int i = 0; i < kLineSize / 8; ++i) {
        const std::uint64_t v = rng.next();
        std::memcpy(line + i * 8, &v, 8);
    }
    const CompressedLine cl = getCodec(Algorithm::Bdi).compress(line);
    EXPECT_TRUE(cl.isUncompressed());
    EXPECT_EQ(cl.bursts(), kBurstsPerLine);
}

TEST(Bdi, EveryEncodingRoundTripsWhenApplicable)
{
    BdiCodec codec;
    Rng rng(11);
    std::uint8_t line[kLineSize];
    std::uint8_t out[kLineSize];
    const BdiEncoding encs[] = {BdiEncoding::B8D1, BdiEncoding::B8D2,
                                BdiEncoding::B8D4, BdiEncoding::B4D1,
                                BdiEncoding::B4D2, BdiEncoding::B2D1};
    for (BdiEncoding enc : encs) {
        const int word = bdiWordSize(enc);
        const int delta = bdiDeltaSize(enc);
        for (int trial = 0; trial < 100; ++trial) {
            const std::uint64_t base =
                rng.next() &
                (word == 8 ? ~0ull : ((1ull << (8 * word)) - 1));
            for (int i = 0; i < kLineSize / word; ++i) {
                const std::int64_t lim =
                    delta >= 8 ? 0 : (std::int64_t{1} << (8 * delta - 1));
                const std::int64_t d = lim == 0
                    ? 0
                    : static_cast<std::int64_t>(rng.below(
                          static_cast<std::uint64_t>(lim))) - lim / 2;
                storeLe(line + i * word, word,
                        base + static_cast<std::uint64_t>(d));
            }
            CompressedLine cl;
            ASSERT_TRUE(codec.tryEncode(line, enc, &cl));
            codec.decompress(cl, out);
            ASSERT_EQ(std::memcmp(line, out, kLineSize), 0);
        }
    }
}

TEST(Bdi, PreferredEncodingFastPath)
{
    BdiCodec codec;
    codec.setPreferredEncoding(BdiEncoding::B8D1);
    std::uint64_t vals[16];
    for (int i = 0; i < 16; ++i)
        vals[i] = 100 + static_cast<std::uint64_t>(i);
    std::uint8_t line[kLineSize];
    std::memcpy(line, vals, kLineSize);
    const CompressedLine cl = codec.compress(line);
    EXPECT_EQ(cl.encoding, static_cast<int>(BdiEncoding::B8D1));
}

TEST(Fpc, ZeroLineCollapsesToRuns)
{
    std::uint8_t line[kLineSize] = {};
    const CompressedLine cl = getCodec(Algorithm::Fpc).compress(line);
    // 32 zero words = four runs of 8: 4 * 6 bits -> 3 bytes + metadata.
    EXPECT_LE(cl.size(), 4);
}

TEST(Fpc, SmallIntsUseNarrowPatterns)
{
    std::uint8_t line[kLineSize];
    for (int i = 0; i < kLineSize / 4; ++i)
        storeLe(line + i * 4, 4, static_cast<std::uint64_t>(i + 1));
    const CompressedLine cl = getCodec(Algorithm::Fpc).compress(line);
    // 32 words x (3+4 or 3+8 bits) is far below 128 bytes.
    EXPECT_LT(cl.size(), 50);
}

TEST(Fpc, NegativeValuesSignExtend)
{
    std::uint8_t line[kLineSize];
    std::uint8_t out[kLineSize];
    for (int i = 0; i < kLineSize / 4; ++i) {
        storeLe(line + i * 4, 4,
                static_cast<std::uint32_t>(-1 - i * 17));
    }
    const Codec &fpc = getCodec(Algorithm::Fpc);
    const CompressedLine cl = fpc.compress(line);
    fpc.decompress(cl, out);
    EXPECT_EQ(std::memcmp(line, out, kLineSize), 0);
}

TEST(Fpc, RepeatedBytesPattern)
{
    std::uint8_t line[kLineSize];
    std::uint8_t out[kLineSize];
    for (int i = 0; i < kLineSize / 4; ++i)
        storeLe(line + i * 4, 4, 0x41414141u);
    const Codec &fpc = getCodec(Algorithm::Fpc);
    const CompressedLine cl = fpc.compress(line);
    EXPECT_LT(cl.size(), 50);   // 11 bits per word
    fpc.decompress(cl, out);
    EXPECT_EQ(std::memcmp(line, out, kLineSize), 0);
}

TEST(CPack, DictionaryHitsShrinkRepetitions)
{
    std::uint8_t line[kLineSize];
    // Four distinct words repeated four times each: first occurrences go
    // to the dictionary, later ones become 6-bit mmmm codes.
    const std::uint32_t words[4] = {0xDEAD0001u, 0xBEEF0002u, 0xCAFE0003u,
                                    0xF00D0004u};
    for (int i = 0; i < kLineSize / 4; ++i)
        storeLe(line + i * 4, 4, words[i % 4]);
    const CompressedLine cl = getCodec(Algorithm::CPack).compress(line);
    EXPECT_LT(cl.size(), 45);
    std::uint8_t out[kLineSize];
    getCodec(Algorithm::CPack).decompress(cl, out);
    EXPECT_EQ(std::memcmp(line, out, kLineSize), 0);
}

TEST(CPack, PartialMatchesCoverSharedHighBytes)
{
    std::uint8_t line[kLineSize];
    for (int i = 0; i < kLineSize / 4; ++i)
        storeLe(line + i * 4, 4, 0x3F800000u | static_cast<unsigned>(i));
    const CompressedLine cl = getCodec(Algorithm::CPack).compress(line);
    // 1 xxxx + 31 mmmx codes: 34 + 31*16 bits + metadata ~= 67 bytes.
    EXPECT_LT(cl.size(), 75);
}

TEST(BestOfAll, NeverWorseThanAnySingleAlgorithm)
{
    std::uint8_t line[kLineSize];
    for (DataProfile p :
         {DataProfile::Pointer, DataProfile::SmallInt, DataProfile::Text,
          DataProfile::Fp32, DataProfile::Sparse, DataProfile::Random}) {
        for (int i = 0; i < 100; ++i) {
            generateProfileLine(p, 5, static_cast<Addr>(i) * kLineSize,
                                line);
            const int best =
                getCodec(Algorithm::BestOfAll).compress(line).size();
            for (Algorithm a :
                 {Algorithm::Bdi, Algorithm::Fpc, Algorithm::CPack}) {
                EXPECT_LE(best, getCodec(a).compress(line).size());
            }
        }
    }
}

TEST(BestOfAll, EncodingRecordsWinningAlgorithm)
{
    std::uint8_t line[kLineSize] = {};
    const CompressedLine cl =
        getCodec(Algorithm::BestOfAll).compress(line);
    const Algorithm inner = BestOfAllCodec::innerAlgorithm(cl.encoding);
    EXPECT_TRUE(inner == Algorithm::Bdi || inner == Algorithm::Fpc ||
                inner == Algorithm::CPack);
}

TEST(Codecs, HwLatenciesMatchPaper)
{
    // Section 5: BDI decompression/compression = 1/5 cycles.
    EXPECT_EQ(getCodec(Algorithm::Bdi).hwDecompressLatency(), 1);
    EXPECT_EQ(getCodec(Algorithm::Bdi).hwCompressLatency(), 5);
    // FPC and C-Pack are slower (Section 6.3 discussion).
    EXPECT_GT(getCodec(Algorithm::Fpc).hwDecompressLatency(), 1);
    EXPECT_GT(getCodec(Algorithm::CPack).hwDecompressLatency(),
              getCodec(Algorithm::Fpc).hwDecompressLatency() - 1);
}

TEST(Codecs, DecompressCostScalesWithComplexity)
{
    std::uint8_t line[kLineSize];
    generateProfileLine(DataProfile::SmallInt, 9, 0, line);
    const CompressedLine bdi = getCodec(Algorithm::Bdi).compress(line);
    const CompressedLine fpc = getCodec(Algorithm::Fpc).compress(line);
    const CompressedLine cpk = getCodec(Algorithm::CPack).compress(line);
    const int bdi_ops = getCodec(Algorithm::Bdi).decompressCost(bdi).alu_ops;
    const int fpc_ops = getCodec(Algorithm::Fpc).decompressCost(fpc).alu_ops;
    const int cpk_ops =
        getCodec(Algorithm::CPack).decompressCost(cpk).alu_ops;
    EXPECT_LT(bdi_ops, fpc_ops);
    EXPECT_LE(fpc_ops, cpk_ops);
}

TEST(Codecs, BurstsComputation)
{
    // Section 4.3.2: a line moves in 1-4 GDDR5 bursts.
    const struct
    {
        std::size_t size;
        int bursts;
    } cases[] = {{1, 1}, {32, 1}, {33, 2}, {64, 2}, {96, 3}, {128, 4}};
    for (const auto &c : cases) {
        CompressedLine cl;
        cl.bytes.assign(c.size, 0);
        EXPECT_EQ(cl.bursts(), c.bursts) << c.size << " bytes";
    }
}

} // namespace
} // namespace caba
