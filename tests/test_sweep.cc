/**
 * @file
 * Determinism tests for the parallel sweep executor: fanning the
 * app x design grid out across worker threads must produce results
 * bit-identical to a serial run, and CABA_JOBS=1 must degrade to the
 * old strictly-serial behaviour.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "compress/design.h"
#include "harness/sweep.h"
#include "workloads/app.h"

namespace caba {
namespace {

std::vector<AppDescriptor>
testApps()
{
    // Four apps spanning the access patterns (streaming, strided,
    // irregular) so the grid exercises every simulator path.
    return {findApp("PVC"), findApp("bfs"), findApp("KM"), findApp("nw")};
}

std::vector<DesignConfig>
testDesigns()
{
    return {DesignConfig::base(), DesignConfig::hwMem(),
            DesignConfig::caba()};
}

ExperimentOptions
testOpts()
{
    ExperimentOptions opts;
    opts.scale = 0.25; // keep each cell short; grid still has 12 cells
    return opts;
}

/** Serial ground truth: runApp on the calling thread, app-major order. */
std::map<std::pair<std::string, std::string>, RunResult>
serialBaseline(const std::vector<AppDescriptor> &apps,
               const std::vector<DesignConfig> &designs,
               const ExperimentOptions &opts)
{
    std::map<std::pair<std::string, std::string>, RunResult> cells;
    for (const AppDescriptor &app : apps)
        for (const DesignConfig &d : designs)
            cells.emplace(std::make_pair(app.name, d.name),
                          runApp(app, d, opts));
    return cells;
}

/** Bit-exact comparison of every metric a figure bench reads. */
void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &where)
{
    SCOPED_TRACE(where);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.bw_utilization, b.bw_utilization);
    EXPECT_EQ(a.compression_ratio, b.compression_ratio);
    EXPECT_EQ(a.md_hit_rate, b.md_hit_rate);
    EXPECT_EQ(a.breakdown.active, b.breakdown.active);
    EXPECT_EQ(a.breakdown.mem_stall, b.breakdown.mem_stall);
    EXPECT_EQ(a.breakdown.comp_stall, b.breakdown.comp_stall);
    EXPECT_EQ(a.breakdown.data_stall, b.breakdown.data_stall);
    EXPECT_EQ(a.breakdown.idle, b.breakdown.idle);
    EXPECT_EQ(a.energy.core, b.energy.core);
    EXPECT_EQ(a.energy.l1, b.energy.l1);
    EXPECT_EQ(a.energy.l2, b.energy.l2);
    EXPECT_EQ(a.energy.xbar, b.energy.xbar);
    EXPECT_EQ(a.energy.dram, b.energy.dram);
    EXPECT_EQ(a.energy.compression, b.energy.compression);
    EXPECT_EQ(a.energy.static_energy, b.energy.static_energy);
    EXPECT_EQ(a.energy.total, b.energy.total);
    EXPECT_EQ(a.stats.all(), b.stats.all());
}

class SweepTest : public ::testing::Test
{
  protected:
    void SetUp() override { ::unsetenv("CABA_JOBS"); }
    void TearDown() override { ::unsetenv("CABA_JOBS"); }
};

TEST_F(SweepTest, ParallelMatchesSerialBaseline)
{
    const auto apps = testApps();
    const auto designs = testDesigns();
    const ExperimentOptions opts = testOpts();
    const auto baseline = serialBaseline(apps, designs, opts);

    ::setenv("CABA_JOBS", "8", 1);
    const Sweep sweep(apps, designs, opts);

    ASSERT_EQ(sweep.appNames().size(), apps.size());
    ASSERT_EQ(sweep.designNames().size(), designs.size());
    for (const auto &[key, expected] : baseline)
        expectIdentical(sweep.at(key.first, key.second), expected,
                        key.first + " x " + key.second);
}

TEST_F(SweepTest, JobsOptionMatchesSerialBaseline)
{
    const auto apps = testApps();
    const auto designs = testDesigns();
    ExperimentOptions opts = testOpts();
    const auto baseline = serialBaseline(apps, designs, opts);

    opts.jobs = 8; // ExperimentOptions override, no env var involved
    const Sweep sweep(apps, designs, opts);

    for (const auto &[key, expected] : baseline)
        expectIdentical(sweep.at(key.first, key.second), expected,
                        key.first + " x " + key.second);
}

TEST_F(SweepTest, JobsOneDegradesToSerial)
{
    // A 2x2 corner of the grid keeps this case quick: with one worker
    // the sweep must not spin up a pool and must match runApp exactly.
    const std::vector<AppDescriptor> apps = {findApp("PVC"), findApp("bfs")};
    const std::vector<DesignConfig> designs = {DesignConfig::base(),
                                               DesignConfig::caba()};
    const ExperimentOptions opts = testOpts();
    const auto baseline = serialBaseline(apps, designs, opts);

    ::setenv("CABA_JOBS", "1", 1);
    const Sweep sweep(apps, designs, opts);

    for (const auto &[key, expected] : baseline)
        expectIdentical(sweep.at(key.first, key.second), expected,
                        key.first + " x " + key.second);
}

TEST_F(SweepTest, TweakHookAppliesPerDesign)
{
    // The Figure 12 usage: tweak bakes a per-design bandwidth scale in.
    // The hook must run exactly once per cell, on the options the cell
    // actually simulates with, at any worker count.
    const std::vector<AppDescriptor> apps = {findApp("PVC")};
    const std::vector<DesignConfig> designs = {DesignConfig::base(),
                                               DesignConfig::caba()};
    ExperimentOptions opts = testOpts();
    const auto tweak = [](const DesignConfig &d, const ExperimentOptions &o) {
        ExperimentOptions out = o;
        out.bw_scale = d.usesCaba() ? 2.0 : 0.5;
        return out;
    };

    ExperimentOptions lo = opts;
    lo.bw_scale = 0.5;
    ExperimentOptions hi = opts;
    hi.bw_scale = 2.0;
    const RunResult base_lo = runApp(apps[0], designs[0], lo);
    const RunResult caba_hi = runApp(apps[0], designs[1], hi);

    ::setenv("CABA_JOBS", "4", 1);
    const Sweep sweep(apps, designs, opts, tweak);
    expectIdentical(sweep.at("PVC", designs[0].name), base_lo, "base@0.5x");
    expectIdentical(sweep.at("PVC", designs[1].name), caba_hi, "caba@2x");
}

TEST(ThreadPoolTest, RunsEverySubmittedJobOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(64, 0);
    std::mutex mu;
    for (int i = 0; i < 64; ++i)
        pool.submit([&hits, &mu, i] {
            std::lock_guard<std::mutex> lock(mu);
            ++hits[static_cast<std::size_t>(i)];
        });
    pool.wait();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "job " << i;
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 8; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 8);
    }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexAtAnyWidth)
{
    for (int jobs : {1, 2, 7}) {
        std::vector<std::atomic<int>> hits(33);
        for (auto &h : hits)
            h = 0;
        parallelFor(33, jobs, [&hits](int i) {
            ++hits[static_cast<std::size_t>(i)];
        });
        for (int i = 0; i < 33; ++i)
            EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
                << "jobs=" << jobs << " index " << i;
    }
}

TEST(SweepNamedCellTest, BuildsFromPrecomputedCellsInFirstAppearanceOrder)
{
    RunResult fast;
    fast.cycles = 100;
    RunResult slow;
    slow.cycles = 200;
    Sweep sweep({{"appB", "Base", slow},
                 {"appB", "CABA-BDI", fast},
                 {"appA", "Base", slow},
                 {"appA", "CABA-BDI", fast}});
    EXPECT_EQ(sweep.appNames(), (std::vector<std::string>{"appB", "appA"}));
    EXPECT_EQ(sweep.designNames(),
              (std::vector<std::string>{"Base", "CABA-BDI"}));
    EXPECT_DOUBLE_EQ(sweep.speedup("appA", "CABA-BDI", "Base"), 2.0);
}

TEST(SweepNamedCellTest, DuplicateCellPanics)
{
    RunResult r;
    r.cycles = 1;
    EXPECT_DEATH(Sweep({{"a", "d", r}, {"a", "d", r}}),
                 "duplicate \\(app, design\\) cell");
}

TEST(SweepSpeedupTest, ZeroCycleBaseCellPanicsWithNames)
{
    // A base cell that retired zero cycles would make every speedup an
    // x/0 (or 0/0) and silently poison downstream geomeans; the guard
    // must name the offending cell.
    RunResult zero;
    zero.cycles = 0;
    RunResult fine;
    fine.cycles = 42;
    Sweep sweep({{"PVC", "Base", zero}, {"PVC", "CABA-BDI", fine}});
    EXPECT_DEATH(sweep.speedup("PVC", "CABA-BDI", "Base"),
                 "zero cycles.*app=PVC.*base design=Base");
}

} // namespace
} // namespace caba
