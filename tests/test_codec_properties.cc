/**
 * @file
 * Deeper codec property tests: exact size formulas per BDI encoding,
 * FPC bit accounting against a reference count, C-Pack dictionary
 * determinism, idempotence, and cross-algorithm differential checks on
 * randomized structured data.
 */
#include <cstring>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/fpc.h"
#include "compress/registry.h"

namespace caba {
namespace {

/** Builds a line encodable with exactly @p enc (base + tiny deltas). */
void
makeBdiLine(BdiEncoding enc, std::uint8_t *line, Rng &rng)
{
    const int word = bdiWordSize(enc);
    const std::uint64_t base =
        (rng.next() | 0x100) &
        (word == 8 ? ~0ull : ((1ull << (8 * word)) - 1));
    for (int i = 0; i < kLineSize / word; ++i)
        storeLe(line + i * word, word, base + (rng.next() & 0x7));
}

TEST(BdiProperties, SizeFormulaPerEncoding)
{
    BdiCodec codec;
    Rng rng(21);
    std::uint8_t line[kLineSize];
    const BdiEncoding encs[] = {BdiEncoding::B8D1, BdiEncoding::B8D2,
                                BdiEncoding::B8D4, BdiEncoding::B4D1,
                                BdiEncoding::B4D2, BdiEncoding::B2D1};
    for (BdiEncoding enc : encs) {
        makeBdiLine(enc, line, rng);
        CompressedLine cl;
        ASSERT_TRUE(codec.tryEncode(line, enc, &cl));
        const int n = kLineSize / bdiWordSize(enc);
        // metadata byte + base-select mask + base + n deltas.
        EXPECT_EQ(cl.size(),
                  1 + n / 8 + bdiWordSize(enc) + n * bdiDeltaSize(enc));
    }
}

TEST(BdiProperties, SmallerDeltaEncodingPreferredWhenBothApply)
{
    // A line encodable as B8D1 must not come back as B8D4.
    BdiCodec codec;
    Rng rng(22);
    std::uint8_t line[kLineSize];
    for (int trial = 0; trial < 50; ++trial) {
        makeBdiLine(BdiEncoding::B8D1, line, rng);
        const CompressedLine cl = codec.compress(line);
        CompressedLine direct;
        ASSERT_TRUE(codec.tryEncode(line, BdiEncoding::B8D1, &direct));
        EXPECT_LE(cl.size(), direct.size());
    }
}

TEST(BdiProperties, CompressionIsIdempotentOnRoundTrips)
{
    BdiCodec codec;
    Rng rng(23);
    std::uint8_t line[kLineSize], out[kLineSize];
    for (int trial = 0; trial < 100; ++trial) {
        makeBdiLine(BdiEncoding::B4D2, line, rng);
        const CompressedLine a = codec.compress(line);
        codec.decompress(a, out);
        const CompressedLine b = codec.compress(out);
        EXPECT_EQ(a.encoding, b.encoding);
        EXPECT_EQ(a.bytes, b.bytes);
    }
}

/** Reference FPC bit count for one line (mirrors the TR's table). */
int
fpcReferenceBits(const std::uint8_t *line)
{
    int bits = 0;
    int i = 0;
    while (i < kLineSize / 4) {
        const auto w = static_cast<std::uint32_t>(loadLe(line + i * 4, 4));
        if (w == 0) {
            int run = 1;
            while (i + run < kLineSize / 4 && run < 8 &&
                   loadLe(line + (i + run) * 4, 4) == 0)
                ++run;
            bits += 6;
            i += run;
            continue;
        }
        const auto s = static_cast<std::int32_t>(w);
        if (s >= -8 && s < 8) bits += 3 + 4;
        else if (s >= -128 && s < 128) bits += 3 + 8;
        else if (s >= -32768 && s < 32768) bits += 3 + 16;
        else if ((w & 0xFFFF) == 0) bits += 3 + 16;
        else {
            const auto lo = static_cast<std::int16_t>(w & 0xFFFF);
            const auto hi = static_cast<std::int16_t>(w >> 16);
            if (lo >= -128 && lo < 128 && hi >= -128 && hi < 128)
                bits += 3 + 16;
            else if (w == (w & 0xFF) * 0x01010101u)
                bits += 3 + 8;
            else
                bits += 3 + 32;
        }
        ++i;
    }
    return bits;
}

TEST(FpcProperties, SizeMatchesReferenceBitCount)
{
    FpcCodec codec;
    Rng rng(31);
    std::uint8_t line[kLineSize];
    for (int trial = 0; trial < 300; ++trial) {
        for (int i = 0; i < kLineSize / 4; ++i) {
            // Structured mix: zeros, small, halfword, raw.
            const std::uint64_t roll = rng.next();
            std::uint32_t w;
            switch (roll & 3) {
              case 0: w = 0; break;
              case 1: w = static_cast<std::uint32_t>(roll >> 32) & 0x7F;
                      break;
              case 2: w = (static_cast<std::uint32_t>(roll >> 32) & 0xFFFF)
                          << 16;
                      break;
              default: w = static_cast<std::uint32_t>(roll >> 32); break;
            }
            storeLe(line + i * 4, 4, w);
        }
        const CompressedLine cl = codec.compress(line);
        const int expect_bytes =
            1 + (fpcReferenceBits(line) + 7) / 8;
        if (expect_bytes < kLineSize) {
            EXPECT_EQ(cl.size(), expect_bytes);
        } else {
            EXPECT_TRUE(cl.isUncompressed());
        }
    }
}

TEST(CPackProperties, DictionaryIsDeterministicAcrossRoundTrips)
{
    CpackCodec codec;
    Rng rng(41);
    std::uint8_t line[kLineSize], out[kLineSize];
    for (int trial = 0; trial < 300; ++trial) {
        for (int i = 0; i < kLineSize / 4; ++i) {
            const std::uint64_t roll = rng.next();
            // Words drawn from a small pool: dictionary-heavy.
            const std::uint32_t w = static_cast<std::uint32_t>(
                0xABCD0000u + ((roll & 7) << 8) + ((roll >> 8) & 3));
            storeLe(line + i * 4, 4, w);
        }
        const CompressedLine cl = codec.compress(line);
        codec.decompress(cl, out);
        ASSERT_EQ(std::memcmp(line, out, kLineSize), 0);
        // Re-compressing the round-tripped line is byte-identical.
        const CompressedLine again = codec.compress(out);
        EXPECT_EQ(cl.bytes, again.bytes);
    }
}

TEST(CodecDifferential, AllAlgorithmsAgreeOnContent)
{
    // Different algorithms, same functional contract: whatever one
    // compresses, it must restore exactly; sizes are algorithm-specific
    // but contents are not.
    Rng rng(51);
    std::uint8_t line[kLineSize];
    std::uint8_t out_a[kLineSize], out_b[kLineSize];
    for (int trial = 0; trial < 200; ++trial) {
        for (int i = 0; i < kLineSize / 4; ++i) {
            const std::uint64_t roll = rng.next();
            storeLe(line + i * 4, 4,
                    (roll & 1) ? static_cast<std::uint32_t>(roll >> 32)
                               : static_cast<std::uint32_t>(roll & 0xFF));
        }
        const Codec &a = getCodec(Algorithm::Bdi);
        const Codec &b = getCodec(Algorithm::CPack);
        a.decompress(a.compress(line), out_a);
        b.decompress(b.compress(line), out_b);
        ASSERT_EQ(std::memcmp(out_a, out_b, kLineSize), 0);
        ASSERT_EQ(std::memcmp(out_a, line, kLineSize), 0);
    }
}

TEST(CodecProperties, CompressedSizeNeverExceedsLine)
{
    Rng rng(61);
    std::uint8_t line[kLineSize];
    for (Algorithm algo : {Algorithm::Bdi, Algorithm::Fpc,
                           Algorithm::CPack, Algorithm::BestOfAll}) {
        for (int trial = 0; trial < 100; ++trial) {
            for (int i = 0; i < kLineSize / 8; ++i)
                storeLe(line + i * 8, 8, rng.next());
            const CompressedLine cl = getCodec(algo).compress(line);
            EXPECT_LE(cl.size(), kLineSize);
            EXPECT_GE(cl.bursts(), 1);
            EXPECT_LE(cl.bursts(), kBurstsPerLine);
        }
    }
}

} // namespace
} // namespace caba
