/**
 * @file
 * Tiny recursive-descent JSON parser, tests only. The simulator never
 * parses JSON at runtime (common/json.h is write-only); the tests use
 * this to check that the bench `--json` exports and the Chrome trace
 * files are well-formed and carry the expected structure. Strictness
 * over speed: trailing garbage, unbalanced nesting and bad escapes are
 * all parse errors.
 */
#ifndef CABA_TESTS_MINI_JSON_H
#define CABA_TESTS_MINI_JSON_H

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace minijson {

struct Value
{
    enum Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Null; }
    bool isNumber() const { return kind == Number; }
    bool isString() const { return kind == String; }
    bool isArray() const { return kind == Array; }
    bool isObject() const { return kind == Object; }

    /** Member lookup; null when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (kind != Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Value *out)
    {
        pos_ = 0;
        ok_ = true;
        *out = parseValue();
        skipSpace();
        return ok_ && pos_ == text_.size();
    }

  private:
    char
    peek()
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    next()
    {
        return pos_ < text_.size() ? text_[pos_++] : '\0';
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (next() != *p) {
                ok_ = false;
                return false;
            }
        }
        return true;
    }

    Value
    parseValue()
    {
        skipSpace();
        Value v;
        switch (peek()) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"':
            v.kind = Value::String;
            v.string = parseString();
            break;
          case 't':
            literal("true");
            v.kind = Value::Bool;
            v.boolean = true;
            break;
          case 'f':
            literal("false");
            v.kind = Value::Bool;
            break;
          case 'n': literal("null"); break;
          default: v = parseNumber(); break;
        }
        return v;
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Object;
        next(); // '{'
        skipSpace();
        if (peek() == '}') {
            next();
            return v;
        }
        while (ok_) {
            skipSpace();
            if (peek() != '"') {
                ok_ = false;
                break;
            }
            const std::string key = parseString();
            skipSpace();
            if (next() != ':') {
                ok_ = false;
                break;
            }
            v.object[key] = parseValue();
            skipSpace();
            const char c = next();
            if (c == '}')
                break;
            if (c != ',') {
                ok_ = false;
                break;
            }
        }
        return v;
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Array;
        next(); // '['
        skipSpace();
        if (peek() == ']') {
            next();
            return v;
        }
        while (ok_) {
            v.array.push_back(parseValue());
            skipSpace();
            const char c = next();
            if (c == ']')
                break;
            if (c != ',') {
                ok_ = false;
                break;
            }
        }
        return v;
    }

    std::string
    parseString()
    {
        std::string s;
        next(); // '"'
        while (ok_) {
            const char c = next();
            if (c == '"')
                break;
            if (c == '\0') {
                ok_ = false;
                break;
            }
            if (c != '\\') {
                s += c;
                continue;
            }
            const char e = next();
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        ok_ = false;
                }
                // ASCII only; the writer never emits higher escapes.
                s += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: ok_ = false; break;
            }
        }
        return s;
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                (text_[pos_] >= '0' && text_[pos_] <= '9')))
            ++pos_;
        Value v;
        if (pos_ == start) {
            ok_ = false;
            return v;
        }
        v.kind = Value::Number;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Parses @p text; false on any syntax error or trailing garbage. */
inline bool
parse(const std::string &text, Value *out)
{
    return Parser(text).parse(out);
}

} // namespace minijson

#endif // CABA_TESTS_MINI_JSON_H
