/**
 * @file
 * Memory-partition tests: L2 hit/miss service, miss merging, write-back
 * behaviour, the partial-store worst case of Section 4.2.2, MD-cache
 * integration, and MC-side decompression latency for HW-<algo>-Mem.
 */
#include <gtest/gtest.h>

#include "mem/partition.h"
#include "workloads/data_profile.h"

namespace caba {
namespace {

struct PartitionHarness
{
    BackingStore store;
    CompressionModel model;
    MemoryPartition part;
    Cycle now = 0;
    std::uint64_t next_id = 1;

    explicit PartitionHarness(const DesignConfig &design,
                              PartitionConfig cfg = {})
        : store([](Addr line, std::uint8_t *out) {
              generateProfileLine(DataProfile::Pointer, 5, line, out);
          }),
          model(store, design.usesCompression() ? design.algo
                                                : Algorithm::Bdi,
                true),
          part(0, cfg, design,
               design.usesCompression() ? &model : nullptr)
    {}

    MemRequest
    makeLoad(Addr line)
    {
        MemRequest r;
        r.id = next_id++;
        r.line = line;
        r.payload_bytes = 8;
        r.created = now;
        return r;
    }

    MemRequest
    makeStore(Addr line, bool full)
    {
        MemRequest r = makeLoad(line);
        r.is_write = true;
        r.full_line = full;
        r.payload_bytes = kLineSize;
        return r;
    }

    /** Runs until a reply shows up or the cycle budget runs out. */
    bool
    runUntilReply(Cycle budget = 5000)
    {
        for (Cycle end = now + budget; now < end; ++now) {
            part.cycle(now);
            if (!part.replies().empty())
                return true;
        }
        return false;
    }

    void
    drain(Cycle budget = 20000)
    {
        for (Cycle end = now + budget; now < end && part.busy(); ++now)
            part.cycle(now);
    }
};

TEST(Partition, LoadMissGoesToDramAndReplies)
{
    PartitionHarness h(DesignConfig::base());
    h.part.accept(h.makeLoad(0), h.now);
    ASSERT_TRUE(h.runUntilReply());
    const MemRequest reply = h.part.replies().front();
    EXPECT_EQ(reply.line, 0u);
    EXPECT_EQ(reply.payload_bytes, kLineSize);
    EXPECT_FALSE(reply.compressed);
    EXPECT_EQ(h.part.dram().stats().get("reads"), 1u);
}

TEST(Partition, SecondLoadHitsL2)
{
    PartitionHarness h(DesignConfig::base());
    h.part.accept(h.makeLoad(0), h.now);
    ASSERT_TRUE(h.runUntilReply());
    h.part.replies().clear();
    h.part.accept(h.makeLoad(0), h.now);
    ASSERT_TRUE(h.runUntilReply());
    EXPECT_EQ(h.part.dram().stats().get("reads"), 1u);  // no second read
    EXPECT_EQ(h.part.l2().hits(), 1u);
}

TEST(Partition, ConcurrentMissesMergeOnOneDramRead)
{
    PartitionHarness h(DesignConfig::base());
    h.part.accept(h.makeLoad(0), h.now);
    h.part.accept(h.makeLoad(0), h.now);
    h.drain();
    EXPECT_EQ(h.part.dram().stats().get("reads"), 1u);
    EXPECT_EQ(h.part.stats().get("dram_read_merges"), 1u);
    EXPECT_EQ(h.part.stats().get("replies"), 2u);
}

TEST(Partition, CompressedDesignMovesFewerBursts)
{
    PartitionHarness base(DesignConfig::base());
    PartitionHarness comp(DesignConfig::hw());
    for (int i = 0; i < 32; ++i) {
        base.part.accept(base.makeLoad(static_cast<Addr>(i) * kLineSize),
                         base.now);
        comp.part.accept(comp.makeLoad(static_cast<Addr>(i) * kLineSize),
                         comp.now);
    }
    base.drain();
    comp.drain();
    EXPECT_LT(comp.part.dram().stats().get("data_bursts"),
              base.part.dram().stats().get("data_bursts"));
}

TEST(Partition, CompressedReplyCarriesEncoding)
{
    PartitionHarness h(DesignConfig::hw());
    h.part.accept(h.makeLoad(0), h.now);
    ASSERT_TRUE(h.runUntilReply());
    const MemRequest reply = h.part.replies().front();
    EXPECT_TRUE(reply.compressed);
    EXPECT_LT(reply.payload_bytes, kLineSize);
}

TEST(Partition, HwMemDesignDecompressesAtTheMc)
{
    PartitionHarness h(DesignConfig::hwMem());
    h.part.accept(h.makeLoad(0), h.now);
    ASSERT_TRUE(h.runUntilReply());
    const MemRequest reply = h.part.replies().front();
    // Interconnect payload is uncompressed in HW-BDI-Mem.
    EXPECT_FALSE(reply.compressed);
    EXPECT_EQ(reply.payload_bytes, kLineSize);
    EXPECT_EQ(h.part.stats().get("mc_decompressions"), 1u);
}

TEST(Partition, FullLineStoreAllocatesDirtyAndWritesBackOnEviction)
{
    PartitionConfig cfg;
    cfg.l2.size_bytes = 16 * 1024;  // tiny L2 to force evictions
    PartitionHarness h(DesignConfig::base(), cfg);
    const int lines = 16 * 1024 / kLineSize + 64;
    for (int i = 0; i < lines; ++i) {
        while (!h.part.canAccept())
            h.part.cycle(h.now++);
        h.part.accept(h.makeStore(static_cast<Addr>(i) * kLineSize, true),
                      h.now);
        h.part.cycle(h.now++);
    }
    h.drain(100000);
    EXPECT_GT(h.part.stats().get("dram_writes_issued"), 0u);
    EXPECT_EQ(h.part.dram().stats().get("reads"), 0u);
}

TEST(Partition, PartialStoreToCompressedMemoryFetchesFirst)
{
    PartitionHarness h(DesignConfig::hw());
    h.part.accept(h.makeStore(0, false), h.now);
    h.drain();
    // Section 4.2.2 worst case: read-modify-write.
    EXPECT_EQ(h.part.stats().get("partial_store_fills"), 1u);
    EXPECT_EQ(h.part.dram().stats().get("reads"), 1u);
}

TEST(Partition, PartialStoreToUncompressedMemoryWritesThrough)
{
    PartitionHarness h(DesignConfig::base());
    h.part.accept(h.makeStore(0, false), h.now);
    h.drain();
    EXPECT_EQ(h.part.stats().get("partial_store_writethrough"), 1u);
    EXPECT_EQ(h.part.dram().stats().get("reads"), 0u);
    EXPECT_EQ(h.part.dram().stats().get("writes"), 1u);
}

TEST(Partition, MdCacheMissesPiggybackOnPageWalks)
{
    PartitionHarness h(DesignConfig::hw());
    // Touch widely-spaced regions: every access misses both the TLB
    // and the MD cache; the metadata fetch rides along with the page
    // walk (footnote 4), so only one overhead burst per access.
    for (int i = 0; i < 16; ++i) {
        h.part.accept(
            h.makeLoad(static_cast<Addr>(i) * (1u << 22)), h.now);
        h.part.cycle(h.now++);
    }
    h.drain();
    EXPECT_GT(h.part.stats().get("md_misses"), 10u);
    EXPECT_EQ(h.part.stats().get("md_piggybacked"),
              h.part.stats().get("md_misses"));
    EXPECT_EQ(h.part.dram().stats().get("overhead_bursts"),
              h.part.stats().get("tlb_misses"));
}

TEST(Partition, MdMissWithTlbHitChargesItsOwnBurst)
{
    // Disable the TLB so MD misses cannot piggyback.
    PartitionConfig cfg;
    cfg.model_tlb = false;
    PartitionHarness h(DesignConfig::hw(), cfg);
    for (int i = 0; i < 16; ++i) {
        h.part.accept(
            h.makeLoad(static_cast<Addr>(i) * (1u << 22)), h.now);
        h.part.cycle(h.now++);
    }
    h.drain();
    EXPECT_GT(h.part.stats().get("md_misses"), 10u);
    EXPECT_EQ(h.part.dram().stats().get("overhead_bursts"),
              h.part.stats().get("md_misses"));
}

TEST(Partition, DirtyMetadataEvictionsChargeWritebacks)
{
    // Stores update metadata in place, so the MD entry they touch is
    // dirty; once the working set overflows a small MD cache, evicting
    // those entries must surface as md_writebacks with their own DRAM
    // overhead burst (the bug fixed here: the store path used to insert
    // clean and silently drop the eviction).
    PartitionConfig cfg;
    cfg.md_size_bytes = 512;    // 8 entries: 32 regions thrash it
    cfg.model_tlb = false;      // no piggybacking; count bursts exactly
    PartitionHarness h(DesignConfig::hw(), cfg);
    for (int pass = 0; pass < 2; ++pass)
        for (int i = 0; i < 32; ++i) {
            h.part.accept(
                h.makeStore(static_cast<Addr>(i) * (1u << 22), true),
                h.now);
            h.part.cycle(h.now++);
        }
    h.drain();
    EXPECT_GT(h.part.stats().get("md_writebacks"), 0u);
    // Each miss and each dirty writeback costs one overhead burst.
    EXPECT_EQ(h.part.dram().stats().get("overhead_bursts"),
              h.part.stats().get("md_misses") +
                  h.part.stats().get("md_writebacks"));
}

TEST(Partition, LoadOnlyTrafficNeverDirtiesMetadata)
{
    PartitionConfig cfg;
    cfg.md_size_bytes = 512;
    cfg.model_tlb = false;
    PartitionHarness h(DesignConfig::hw(), cfg);
    for (int pass = 0; pass < 2; ++pass)
        for (int i = 0; i < 32; ++i) {
            h.part.accept(
                h.makeLoad(static_cast<Addr>(i) * (1u << 22)), h.now);
            h.part.cycle(h.now++);
        }
    h.drain();
    EXPECT_GT(h.part.stats().get("md_misses"), 8u);
    EXPECT_EQ(h.part.stats().get("md_writebacks"), 0u);
}

TEST(Partition, IdealDesignSkipsMetadataButStillWalksPages)
{
    PartitionConfig cfg;
    PartitionHarness h(DesignConfig::ideal(), cfg);
    for (int i = 0; i < 8; ++i) {
        h.part.accept(h.makeLoad(static_cast<Addr>(i) * (1u << 22)),
                      h.now);
        h.part.cycle(h.now++);
    }
    h.drain();
    EXPECT_EQ(h.part.stats().get("md_lookups"), 0u);
    EXPECT_EQ(h.part.dram().stats().get("overhead_bursts"),
              h.part.stats().get("tlb_misses"));
}

TEST(Partition, CompressedL2VariantHoldsMoreLines)
{
    PartitionConfig small;
    small.l2.size_bytes = 16 * 1024;
    PartitionHarness plain(DesignConfig::caba(), small);
    PartitionHarness big(DesignConfig::cabaCompressedCache(1, 4), small);
    const int lines = 3 * (16 * 1024 / kLineSize);  // 3x nominal capacity
    for (auto *h : {&plain, &big}) {
        for (int i = 0; i < lines; ++i) {
            while (!h->part.canAccept())
                h->part.cycle(h->now++);
            h->part.accept(
                h->makeLoad(static_cast<Addr>(i) * kLineSize), h->now);
            h->part.cycle(h->now++);
        }
        h->drain(200000);
    }
    EXPECT_GT(big.part.l2().residentLines(),
              plain.part.l2().residentLines());
}

} // namespace
} // namespace caba
