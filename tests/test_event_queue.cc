/**
 * @file
 * Event-driven loop foundations: the lazy-deletion calendar queue that
 * tracks per-component wake times, and the warp scheduler's
 * struct-of-arrays selection bitsets, which must agree with the
 * historical per-warp reference loops under arbitrary state churn.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/component.h"
#include "common/event_queue.h"
#include "sim/warp_scheduler.h"
#include "workloads/workload.h"

namespace caba {
namespace {

// ---------------------------------------------------------------- queue

TEST(EventQueue, StartsParked)
{
    EventQueue eq(4);
    EXPECT_EQ(eq.size(), 4);
    for (int id = 0; id < 4; ++id) {
        EXPECT_EQ(eq.when(id), kNoWork);
        EXPECT_FALSE(eq.due(id, 1'000'000));
    }
    EXPECT_EQ(eq.minTime(), kNoWork);
}

TEST(EventQueue, MinTimeTracksEarliestSchedule)
{
    EventQueue eq(3);
    eq.schedule(0, 50);
    eq.schedule(1, 10);
    eq.schedule(2, 30);
    EXPECT_EQ(eq.minTime(), Cycle{10});
    EXPECT_TRUE(eq.due(1, 10));
    EXPECT_FALSE(eq.due(0, 10));
}

TEST(EventQueue, RescheduleSupersedesInBothDirections)
{
    EventQueue eq(2);
    eq.schedule(0, 100);
    eq.schedule(1, 200);
    // Earlier reschedule wins immediately.
    eq.schedule(0, 5);
    EXPECT_EQ(eq.minTime(), Cycle{5});
    // Later reschedule (the requeue a busy component performs every
    // cycle) leaves a stale heap entry behind; minTime must skip it.
    eq.schedule(0, 300);
    EXPECT_EQ(eq.minTime(), Cycle{200});
    EXPECT_EQ(eq.when(0), Cycle{300});
}

TEST(EventQueue, StaleEntriesAreLazilyDiscarded)
{
    EventQueue eq(1);
    for (Cycle c = 1; c <= 64; ++c)
        eq.schedule(0, c);
    // 64 heap entries, one authoritative time.
    EXPECT_EQ(eq.heapEntries(), std::size_t{64});
    EXPECT_EQ(eq.minTime(), Cycle{64});
    // All 63 superseded entries were popped on the way to the answer.
    EXPECT_EQ(eq.heapEntries(), std::size_t{1});
}

TEST(EventQueue, ParkingRemovesFromMin)
{
    EventQueue eq(2);
    eq.schedule(0, 10);
    eq.schedule(1, 20);
    eq.schedule(0, kNoWork);
    EXPECT_EQ(eq.minTime(), Cycle{20});
    eq.schedule(1, kNoWork);
    EXPECT_EQ(eq.minTime(), kNoWork);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq(2);
    eq.schedule(0, 1);
    eq.reset(3);
    EXPECT_EQ(eq.size(), 3);
    EXPECT_EQ(eq.minTime(), kNoWork);
    EXPECT_EQ(eq.heapEntries(), std::size_t{0});
}

// ------------------------------------------------- scoreboard bitsets

/** Deterministic churn source (no external randomness in tests). */
struct Lcg
{
    std::uint64_t s = 0x2545f4914f6cdd1dull;
    std::uint32_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(s >> 33);
    }
    bool chance(int pct) { return next() % 100u < static_cast<unsigned>(pct); }
};

/** Reference predicates: the historical per-warp scans, recomputed from
 *  the scheduler's own (public) warp state every time. */
bool
refAnyReady(const WarpScheduler &sched, int max_warps)
{
    for (int w = 0; w < max_warps; ++w)
        if (sched.warpReady(sched.warp(w)))
            return true;
    return false;
}

bool
refAnyDecodable(const WarpScheduler &sched, int max_warps,
                int ibuffer_entries)
{
    if (!sched.kernel())
        return false;
    for (int w = 0; w < max_warps; ++w) {
        const WarpScheduler::WarpState &ws = sched.warp(w);
        if (ws.exists && !ws.done && !ws.decode_done &&
            ws.ibuf.size() < ibuffer_entries) {
            return true;
        }
    }
    return false;
}

/** Mirrors the historical pickAndIssue loop: predicts the exact visit
 *  sequence (greedy probe + rotated parity scan) and the data-block
 *  flag from the scheduler's state plus its own greedy/rotation
 *  bookkeeping, which it updates under the same rules. */
struct RefPicker
{
    int max_warps;
    int schedulers;
    bool gto;
    std::vector<int> greedy;
    std::vector<int> lrr;

    RefPicker(int mw, int sc, bool g)
        : max_warps(mw), schedulers(sc), gto(g),
          greedy(static_cast<std::size_t>(sc), kInvalidWarp),
          lrr(static_cast<std::size_t>(sc), 0)
    {}

    /** Visit plan for scheduler @p s given the current warp state:
     *  the warps try_issue would be offered, in order, and whether a
     *  data-blocked warp precedes each offer. */
    struct Visit
    {
        int warp;
        bool blocked_seen_before;
    };

    std::vector<Visit>
    plan(const WarpScheduler &sched, int s) const
    {
        std::vector<Visit> visits;
        bool blocked = false;
        const int g = greedy[static_cast<std::size_t>(s)];
        if (gto && g != kInvalidWarp && sched.warpReady(sched.warp(g)))
            visits.push_back({g, blocked});
        const int slots = max_warps / schedulers;
        const int start = gto ? 0 : lrr[static_cast<std::size_t>(s)];
        for (int k = 0; k < slots; ++k) {
            const int w = ((start + k) % slots) * schedulers + s;
            const WarpScheduler::WarpState &ws = sched.warp(w);
            if (!ws.exists || ws.done)
                continue;
            if (!ws.ibuf.empty() && !sched.warpReady(ws)) {
                blocked = true;
                continue;
            }
            if (!sched.warpReady(ws))
                continue;
            visits.push_back({w, blocked});
        }
        return visits;
    }

    void
    noteSuccess(int s, int w)
    {
        const int slots = max_warps / schedulers;
        greedy[static_cast<std::size_t>(s)] = w;
        lrr[static_cast<std::size_t>(s)] = (w / schedulers + 1) % slots;
    }
};

/** One churn round: random issues (with backpressure vetoes), random
 *  writebacks, a decode cycle — checking every scheduler decision
 *  against the reference loops. */
void
churnAndCheck(bool gto)
{
    constexpr int kMaxWarps = 16;
    constexpr int kSchedulers = 2;
    constexpr int kIbufEntries = 2;
    WarpScheduler sched(kMaxWarps, kSchedulers, kIbufEntries,
                        /*decode_width=*/2, gto);

    // A real looped program gives the ibufs genuine register
    // dependences and an Exit to retire warps through.
    AppDescriptor app = findApp("CONS");
    app.iterations = 6;
    Workload wl(app);
    wl.bindGrid(kMaxWarps);
    sched.launch(&wl, kMaxWarps, 0, 1);

    Lcg rng;
    std::vector<std::uint64_t> outstanding(kMaxWarps, 0);
    RefPicker ref(kMaxWarps, kSchedulers, gto);

    for (int round = 0; round < 4000; ++round) {
        ASSERT_EQ(sched.anyReady(), refAnyReady(sched, kMaxWarps));
        ASSERT_EQ(sched.anyDecodable(),
                  refAnyDecodable(sched, kMaxWarps, kIbufEntries));

        sched.decodeCycle();

        for (int s = 0; s < kSchedulers; ++s) {
            const auto visits = ref.plan(sched, s);
            std::size_t vi = 0;
            bool data_block = false;
            const bool issued = sched.pickAndIssue(
                s, &data_block, [&](int w) -> bool {
                    // Every offer must match the reference plan, with
                    // the blocked-warps-before-me flag agreeing too.
                    EXPECT_LT(vi, visits.size());
                    if (vi >= visits.size())
                        return false;
                    EXPECT_EQ(w, visits[vi].warp);
                    EXPECT_EQ(data_block, visits[vi].blocked_seen_before);
                    ++vi;
                    if (rng.chance(30))
                        return false;   // backpressure veto: no mutation
                    // Accepted: emulate SmCore's issue mutations.
                    WarpScheduler::WarpState &ws = sched.warp(w);
                    const Instruction &inst = *ws.ibuf.front().inst;
                    if (inst.op == Opcode::Exit) {
                        ws.done = true;
                        sched.noteWarpRetired();
                    } else if (inst.dst >= 0 && rng.chance(70)) {
                        const std::uint64_t m = std::uint64_t{1}
                                                << inst.dst;
                        ws.pending_regs |= m;
                        outstanding[static_cast<std::size_t>(w)] |= m;
                    }
                    ws.ibuf.pop();
                    return true;
                });
            if (issued) {
                ASSERT_GT(vi, std::size_t{0});
                ref.noteSuccess(s, visits[vi - 1].warp);
            } else {
                // Rejected every offer: the scan must have run dry.
                ASSERT_EQ(vi, visits.size());
            }
        }

        // Random writeback completions (ldst/ALU event hooks).
        for (int w = 0; w < kMaxWarps; ++w) {
            if (outstanding[static_cast<std::size_t>(w)] != 0 &&
                rng.chance(40)) {
                sched.clearPending(w,
                                   outstanding[static_cast<std::size_t>(w)]);
                outstanding[static_cast<std::size_t>(w)] = 0;
            }
        }
        if (sched.liveWarps() == 0)
            break;
    }
    // The churn must retire everything: otherwise the equivalence above
    // exercised only a truncated prefix of warp lifetimes.
    EXPECT_EQ(sched.liveWarps(), 0);
}

TEST(WarpSchedulerBitsets, MatchesReferenceLoopsUnderChurnGto)
{
    churnAndCheck(/*gto=*/true);
}

TEST(WarpSchedulerBitsets, MatchesReferenceLoopsUnderChurnLrr)
{
    churnAndCheck(/*gto=*/false);
}

} // namespace
} // namespace caba
