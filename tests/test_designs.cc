/**
 * @file
 * Design-point configuration tests: the five Section 6 designs and the
 * Figure 13 cache-compression variants carry exactly the properties the
 * paper assigns them.
 */
#include <gtest/gtest.h>

#include "compress/design.h"

namespace caba {
namespace {

TEST(Design, BaseHasNoCompression)
{
    const DesignConfig d = DesignConfig::base();
    EXPECT_EQ(d.name, "Base");
    EXPECT_FALSE(d.usesCompression());
    EXPECT_FALSE(d.mem_compressed);
    EXPECT_FALSE(d.xbar_compressed);
    EXPECT_EQ(d.decompress, DecompressSite::None);
}

TEST(Design, HwMemCompressesDramOnly)
{
    const DesignConfig d = DesignConfig::hwMem();
    EXPECT_EQ(d.name, "HW-BDI-Mem");
    EXPECT_TRUE(d.mem_compressed);
    EXPECT_FALSE(d.xbar_compressed);        // data expands at the MC
    EXPECT_EQ(d.decompress, DecompressSite::MemCtrl);
    EXPECT_TRUE(d.md_overhead);
    EXPECT_FALSE(d.usesCaba());
}

TEST(Design, HwCompressesInterconnectToo)
{
    const DesignConfig d = DesignConfig::hw();
    EXPECT_EQ(d.name, "HW-BDI");
    EXPECT_TRUE(d.mem_compressed);
    EXPECT_TRUE(d.xbar_compressed);
    EXPECT_EQ(d.decompress, DecompressSite::L1Hw);
    EXPECT_FALSE(d.caba_compress_stores);
}

TEST(Design, CabaUsesAssistWarpsEverywhere)
{
    const DesignConfig d = DesignConfig::caba();
    EXPECT_EQ(d.name, "CABA-BDI");
    EXPECT_TRUE(d.usesCaba());
    EXPECT_TRUE(d.caba_compress_stores);
    EXPECT_TRUE(d.md_overhead);
    EXPECT_TRUE(d.mem_compressed);
    EXPECT_TRUE(d.xbar_compressed);
}

TEST(Design, IdealHasNoOverheads)
{
    const DesignConfig d = DesignConfig::ideal();
    EXPECT_EQ(d.name, "Ideal-BDI");
    EXPECT_EQ(d.decompress, DecompressSite::Free);
    EXPECT_FALSE(d.md_overhead);
    EXPECT_FALSE(d.caba_compress_stores);
    EXPECT_TRUE(d.mem_compressed);
    EXPECT_TRUE(d.xbar_compressed);
}

TEST(Design, AlgorithmSelectsName)
{
    EXPECT_EQ(DesignConfig::caba(Algorithm::Fpc).name, "CABA-FPC");
    EXPECT_EQ(DesignConfig::caba(Algorithm::CPack).name, "CABA-C-Pack");
    EXPECT_EQ(DesignConfig::caba(Algorithm::BestOfAll).name,
              "CABA-BestOfAll");
    EXPECT_EQ(DesignConfig::hw(Algorithm::Fpc).name, "HW-FPC");
}

TEST(Design, CacheCompressionVariants)
{
    const DesignConfig l1x2 = DesignConfig::cabaCompressedCache(2, 1);
    EXPECT_EQ(l1x2.name, "CABA-L1-2x");
    EXPECT_EQ(l1x2.l1_tag_factor, 2);
    EXPECT_EQ(l1x2.l2_tag_factor, 1);
    EXPECT_TRUE(l1x2.usesCaba());

    const DesignConfig l2x4 = DesignConfig::cabaCompressedCache(1, 4);
    EXPECT_EQ(l2x4.name, "CABA-L2-4x");
    EXPECT_EQ(l2x4.l2_tag_factor, 4);
}

} // namespace
} // namespace caba
