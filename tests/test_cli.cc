/**
 * @file
 * Unit tests for the caba_bench CLI grammar (harness/bench_cli.h) and
 * the strict numeric parsers behind it (common/parse.h). The first two
 * test groups are regression tests for shipped bugs:
 *
 *  - bare `--json` used to greedily consume the next non-dash token as
 *    an output path, eating the experiment name;
 *  - `--scale nan` passed the old `<= 0` rejection (NaN compares false
 *    against everything), and huge `--jobs` values saturated to
 *    LONG_MAX in strtol and then truncated through an int cast.
 */
#include <gtest/gtest.h>

#include <climits>
#include <string>
#include <vector>

#include "common/parse.h"
#include "harness/bench_cli.h"

namespace caba {
namespace {

BenchCli
mustParse(const std::vector<std::string> &args)
{
    BenchCli cli;
    std::string error;
    EXPECT_TRUE(parseBenchCli(args, &cli, &error)) << error;
    return cli;
}

std::string
mustFail(const std::vector<std::string> &args)
{
    BenchCli cli;
    std::string error;
    EXPECT_FALSE(parseBenchCli(args, &cli, &error));
    EXPECT_FALSE(error.empty());
    return error;
}

// --- The --json greedy-consumption bug -------------------------------------

TEST(BenchCliJsonTest, BareJsonNeverConsumesTheNextToken)
{
    // The shipped bug: `caba_bench --json fig07` treated "fig07" as an
    // output path, leaving no experiment selected.
    const BenchCli cli = mustParse({"--json", "fig07_performance"});
    EXPECT_TRUE(cli.json_enabled);
    EXPECT_TRUE(cli.json_path.empty());
    EXPECT_EQ(cli.names,
              (std::vector<std::string>{"fig07_performance"}));
}

TEST(BenchCliJsonTest, BareJsonBeforeTwoNamesSelectsBoth)
{
    // Second shape of the same bug: `--json fig07 fig08` silently wrote
    // fig08's document to a file literally named "fig07".
    const BenchCli cli =
        mustParse({"--json", "fig07_performance", "fig08_bw_utilization"});
    EXPECT_TRUE(cli.json_enabled);
    EXPECT_TRUE(cli.json_path.empty());
    EXPECT_EQ(cli.names.size(), 2u);
}

TEST(BenchCliJsonTest, ExplicitPathOnlyViaEquals)
{
    const BenchCli cli = mustParse({"--json=/tmp/out.json", "fig07_performance"});
    EXPECT_TRUE(cli.json_enabled);
    EXPECT_EQ(cli.json_path, "/tmp/out.json");
}

TEST(BenchCliJsonTest, EmptyExplicitPathIsAnError)
{
    EXPECT_NE(mustFail({"--json="}).find("non-empty path"),
              std::string::npos);
}

TEST(BenchCliJsonTest, BareJsonAsLastArgumentIsFine)
{
    const BenchCli cli = mustParse({"fig07_performance", "--json"});
    EXPECT_TRUE(cli.json_enabled);
    EXPECT_TRUE(cli.json_path.empty());
}

// --- The --scale nan / --jobs overflow bugs --------------------------------

TEST(BenchCliScaleTest, RejectsNanAndInf)
{
    // strtod parses all of these; NaN defeated the old `<= 0` check.
    for (const char *bad : {"nan", "NaN", "inf", "infinity", "-inf"}) {
        const std::string error = mustFail({"--scale", bad});
        EXPECT_NE(error.find("finite positive"), std::string::npos)
            << bad << ": " << error;
    }
}

TEST(BenchCliScaleTest, RejectsZeroNegativeAndGarbage)
{
    mustFail({"--scale", "0"});
    mustFail({"--scale", "-1.5"});
    mustFail({"--scale", "1.5x"});
    mustFail({"--scale", ""});
    mustFail({"--scale"});
}

TEST(BenchCliScaleTest, AcceptsBothValueSpellings)
{
    EXPECT_DOUBLE_EQ(mustParse({"--scale", "0.25"}).opts.scale, 0.25);
    EXPECT_DOUBLE_EQ(mustParse({"--scale=2.5"}).opts.scale, 2.5);
}

TEST(BenchCliJobsTest, RejectsValuesBeyondIntRange)
{
    // strtol saturates to LONG_MAX; the old int cast truncated it.
    mustFail({"--jobs", "99999999999999999999"});
    mustFail({"--jobs", std::to_string(static_cast<long long>(INT_MAX) + 1)});
    mustFail({"--warps", "99999999999999999999"});
    mustFail({"--jobs", "-1"});
    mustFail({"--jobs", "4x"});
}

TEST(BenchCliJobsTest, AcceptsBoundaryValues)
{
    EXPECT_EQ(mustParse({"--jobs", "0"}).opts.jobs, 0);
    EXPECT_EQ(mustParse({"--jobs", std::to_string(INT_MAX)}).opts.jobs,
              INT_MAX);
    EXPECT_EQ(mustParse({"--warps=24"}).opts.max_warps, 24);
}

// --- General grammar -------------------------------------------------------

TEST(BenchCliTest, FlagValueAndFlagEqualsValueAreEquivalent)
{
    const BenchCli a = mustParse({"--filter", "fig0?_*"});
    const BenchCli b = mustParse({"--filter=fig0?_*"});
    EXPECT_EQ(a.filters, b.filters);
}

TEST(BenchCliTest, HelpAndHelpEnvShortCircuit)
{
    EXPECT_EQ(mustParse({"--help"}).action, BenchCli::Action::Help);
    EXPECT_EQ(mustParse({"-h"}).action, BenchCli::Action::Help);
    EXPECT_EQ(mustParse({"--help-env"}).action, BenchCli::Action::HelpEnv);
}

TEST(BenchCliTest, UnknownFlagsAreHardErrors)
{
    mustFail({"--frobnicate"});
    mustFail({"-x"});
    mustFail({"--list=yes"});
}

// --- globMatch edge cases --------------------------------------------------

TEST(GlobMatchTest, Basics)
{
    EXPECT_TRUE(globMatch("fig0?_*", "fig07_performance"));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("", ""));
    EXPECT_FALSE(globMatch("", "x"));
    EXPECT_FALSE(globMatch("?", ""));
    EXPECT_TRUE(globMatch("a*b*c", "a_long_b_middle_c"));
    EXPECT_FALSE(globMatch("a*b*c", "a_long_b_middle"));
    EXPECT_TRUE(globMatch("**", "x"));
    EXPECT_FALSE(globMatch("fig0?", "fig07_performance"));
}

// --- Selection resolution --------------------------------------------------

TEST(ResolveSelectionTest, GlobMatchingNothingIsAnError)
{
    BenchCli cli;
    cli.filters = {"zzz*"};
    std::vector<std::string> selected;
    std::string error;
    EXPECT_FALSE(resolveSelection(cli, {"fig07_performance"}, &selected,
                                  &error));
    EXPECT_NE(error.find("matches no experiment"), std::string::npos);
}

TEST(ResolveSelectionTest, ExplicitJsonPathNeedsExactlyOneExperiment)
{
    BenchCli cli;
    cli.run_all = true;
    cli.json_enabled = true;
    cli.json_path = "out.json";
    std::vector<std::string> selected;
    std::string error;
    EXPECT_FALSE(resolveSelection(cli, {"a", "b"}, &selected, &error));
    EXPECT_NE(error.find("exactly one"), std::string::npos);
}

TEST(ResolveSelectionTest, DedupesAndSorts)
{
    BenchCli cli;
    cli.names = {"b", "a", "b"};
    cli.filters = {"a*"};
    std::vector<std::string> selected;
    std::string error;
    ASSERT_TRUE(resolveSelection(cli, {"a", "b", "c"}, &selected, &error))
        << error;
    EXPECT_EQ(selected, (std::vector<std::string>{"a", "b"}));
}

TEST(ResolveSelectionTest, EmptySelectionAndUnknownNameAreErrors)
{
    BenchCli cli;
    std::vector<std::string> selected;
    std::string error;
    EXPECT_FALSE(resolveSelection(cli, {"a"}, &selected, &error));
    cli.names = {"nope"};
    EXPECT_FALSE(resolveSelection(cli, {"a"}, &selected, &error));
    EXPECT_NE(error.find("unknown experiment"), std::string::npos);
}

// --- The parse:: helpers directly ------------------------------------------

TEST(ParseTest, FinitePositiveReal)
{
    double d = -1.0;
    EXPECT_TRUE(parse::finitePositiveReal("0.5", &d));
    EXPECT_DOUBLE_EQ(d, 0.5);
    EXPECT_TRUE(parse::finitePositiveReal("1e-3", &d));
    EXPECT_FALSE(parse::finitePositiveReal("nan", &d));
    EXPECT_FALSE(parse::finitePositiveReal("inf", &d));
    EXPECT_FALSE(parse::finitePositiveReal("1e999", &d)); // ERANGE -> inf
    EXPECT_FALSE(parse::finitePositiveReal("0", &d));
    EXPECT_FALSE(parse::finitePositiveReal("-2", &d));
    EXPECT_FALSE(parse::finitePositiveReal("2.5 ", &d));
    EXPECT_FALSE(parse::finitePositiveReal("", &d));
}

TEST(ParseTest, BoundedInt)
{
    long n = -1;
    EXPECT_TRUE(parse::boundedInt("42", 0, 100, &n));
    EXPECT_EQ(n, 42);
    EXPECT_TRUE(parse::boundedInt("-5", -10, 10, &n));
    EXPECT_EQ(n, -5);
    EXPECT_FALSE(parse::boundedInt("101", 0, 100, &n));
    EXPECT_FALSE(parse::boundedInt("99999999999999999999", 0, LONG_MAX, &n));
    EXPECT_FALSE(parse::boundedInt("7up", 0, 100, &n));
    EXPECT_FALSE(parse::boundedInt("", 0, 100, &n));
}

TEST(ParseTest, IntInRange)
{
    int n = -1;
    EXPECT_TRUE(parse::intInRange("0", 0, &n));
    EXPECT_EQ(n, 0);
    EXPECT_TRUE(parse::intInRange(std::to_string(INT_MAX), 0, &n));
    EXPECT_EQ(n, INT_MAX);
    EXPECT_FALSE(
        parse::intInRange(std::to_string(static_cast<long long>(INT_MAX) + 1),
                          0, &n));
    EXPECT_FALSE(parse::intInRange("-1", 0, &n));
}

} // namespace
} // namespace caba
