/**
 * @file
 * System-wide conservation invariants, checked over a sample of the
 * application pool under the paper's main designs (parameterized
 * property tests): every L1 miss produces exactly one fill, every
 * partition reply corresponds to a load, transfer-burst accounting is
 * self-consistent, and the Figure 1 categories exactly partition the
 * issue cycles.
 */
#include <gtest/gtest.h>

#include "harness/runner.h"

namespace caba {
namespace {

class SystemInvariants
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
  protected:
    RunResult
    run()
    {
        const auto [app_name, design_id] = GetParam();
        ExperimentOptions o;
        o.scale = 0.5;
        o.verify = true;
        DesignConfig d;
        switch (design_id) {
          case 0: d = DesignConfig::base(); break;
          case 1: d = DesignConfig::hw(); break;
          case 2: d = DesignConfig::caba(); break;
          default: d = DesignConfig::ideal(); break;
        }
        return runApp(findApp(app_name), d, o);
    }
};

TEST_P(SystemInvariants, Hold)
{
    const RunResult r = run();

    // Completion.
    ASSERT_GT(r.cycles, 0u);
    ASSERT_GT(r.instructions, 0u);

    // Every L1 load miss is eventually filled exactly once, except
    // misses that merged onto an already-outstanding MSHR (they share
    // its fill).
    EXPECT_EQ(r.stats.get("sm_fills"),
              r.stats.get("sm_l1_load_misses") -
                  r.stats.get("sm_mshr_merges"));

    // Each fill crossed the partition as exactly one reply.
    EXPECT_EQ(r.stats.get("sm_fills"), r.stats.get("part_replies"));

    // Loads into partitions equal replies (reads are never dropped).
    EXPECT_EQ(r.stats.get("part_replies"), r.stats.get("part_loads_in"));

    // DRAM burst ledger: total = data + overhead (page walks/metadata).
    EXPECT_EQ(r.stats.get("dram_bursts"),
              r.stats.get("dram_data_bursts") +
                  r.stats.get("dram_overhead_bursts"));

    // Compressed designs never move more data bursts than uncompressed
    // equivalents.
    EXPECT_LE(r.stats.get("part_transfer_bursts"),
              r.stats.get("part_transfer_bursts_uncompressed"));

    // Figure 1 categories partition the issue cycles exactly.
    EXPECT_EQ(r.breakdown.total(),
              r.breakdown.active + r.breakdown.mem_stall +
                  r.breakdown.comp_stall + r.breakdown.data_stall +
                  r.breakdown.idle);

    // Assist warps trigger exactly as often as they complete (none leak).
    EXPECT_EQ(r.stats.get("awc_triggers"),
              r.stats.get("awc_completions") + r.stats.get("awc_kills"));
}

std::string
invariantCaseName(
    const ::testing::TestParamInfo<std::tuple<const char *, int>> &info)
{
    static const char *const designs[] = {"Base", "HW", "CABA", "Ideal"};
    return std::string(std::get<0>(info.param)) + "_" +
           designs[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AppsByDesign, SystemInvariants,
    ::testing::Combine(
        ::testing::Values("PVC", "LPS", "bfs", "hs", "SCP"),
        ::testing::Values(0, 1, 2, 3)),
    invariantCaseName);

} // namespace
} // namespace caba
