/**
 * @file
 * SM-core behaviour tests on a single-SM GPU with controlled kernels:
 * scoreboard stalls, SFU structural behaviour, cycle classification
 * (Figure 1 categories), L1 locality, and assist-warp scheduling
 * integration.
 */
#include <gtest/gtest.h>

#include "gpu/gpu_system.h"
#include "workloads/workload.h"

namespace caba {
namespace {

/** Tiny single-kernel workload harness around a custom descriptor. */
RunResult
runTiny(const AppDescriptor &app, const DesignConfig &design,
        int num_sms = 1, int warps = 8)
{
    GpuConfig cfg;
    cfg.num_sms = num_sms;
    cfg.verify_data = true;
    Workload wl(app);
    wl.bindGrid(warps * num_sms);
    GpuSystem gpu(cfg, design, wl.lineGenerator());
    gpu.launch(&wl, warps);
    return gpu.run();
}

AppDescriptor
baseApp()
{
    AppDescriptor app = findApp("CONS");
    app.iterations = 10;
    app.footprint = 4ull << 20;
    return app;
}

TEST(SmCore, ExecutesExactInstructionCount)
{
    AppDescriptor app = baseApp();
    const RunResult r = runTiny(app, DesignConfig::base(), 1, 8);
    Workload wl(app);
    // Every instruction but Exit executes once per trip (the loop body
    // plus its back-edge); Exit issues once per warp.
    const std::uint64_t expect =
        static_cast<std::uint64_t>(wl.program().size() - 1) *
            app.iterations + 1;
    EXPECT_EQ(r.instructions, 8 * expect);
}

TEST(SmCore, SfuHeavyKernelShowsComputeOrDataStalls)
{
    AppDescriptor app = baseApp();
    app.loads = 1;
    app.stores = 0;
    app.alu = 2;
    app.sfu = 6;
    const RunResult r = runTiny(app, DesignConfig::base(), 1, 16);
    const double frac =
        static_cast<double>(r.breakdown.comp_stall +
                            r.breakdown.data_stall) /
        static_cast<double>(r.breakdown.total());
    EXPECT_GT(frac, 0.3);
}

TEST(SmCore, MemoryHeavyKernelShowsMemoryStalls)
{
    AppDescriptor app = baseApp();
    app.loads = 4;
    app.alu = 1;
    const RunResult r = runTiny(app, DesignConfig::base(), 4, 32);
    const double frac = static_cast<double>(r.breakdown.mem_stall) /
                        static_cast<double>(r.breakdown.total());
    EXPECT_GT(frac, 0.35);
}

TEST(SmCore, SmallFootprintHitsInL1)
{
    AppDescriptor app = baseApp();
    // 4KB per stream x 3 load streams = 96 lines, under the 128-line
    // L1 (a larger sweep would LRU-thrash and never hit).
    app.footprint = 4 * 1024;
    app.iterations = 20;
    const RunResult r = runTiny(app, DesignConfig::base(), 1, 8);
    EXPECT_GT(r.stats.get("l1_hits"), r.stats.get("l1_misses"));
}

TEST(SmCore, L1IsWriteEvict)
{
    AppDescriptor app = baseApp();
    app.stores = 1;
    const RunResult r = runTiny(app, DesignConfig::base(), 1, 8);
    // Stores never allocate in L1; loads alone populate it.
    EXPECT_GT(r.stats.get("sm_stores_sent_uncompressed"), 0u);
}

TEST(SmCore, CabaDecompressionBlocksUntilDone)
{
    AppDescriptor app = baseApp();
    app.data = {DataProfile::Pointer, DataProfile::Pointer, 0.0, 0.2};
    const RunResult r = runTiny(app, DesignConfig::caba(), 2, 16);
    EXPECT_GT(r.stats.get("sm_caba_decompressions"), 0u);
    // Every compressed fill went through an assist warp.
    EXPECT_EQ(r.stats.get("sm_caba_decompressions"),
              r.stats.get("sm_fills_compressed"));
}

TEST(SmCore, AssistInstructionsRespectPipelinePorts)
{
    AppDescriptor app = baseApp();
    const RunResult r = runTiny(app, DesignConfig::caba(), 2, 16);
    // Assist instruction count equals the sum of its ALU and MEM parts.
    EXPECT_EQ(r.stats.get("sm_assist_instructions"),
              r.stats.get("sm_assist_alu_issued") +
                  r.stats.get("sm_assist_mem_issued"));
}

TEST(SmCore, StoresAreCompressedThroughTheBuffer)
{
    AppDescriptor app = baseApp();
    app.stores = 1;
    app.data = {DataProfile::SmallInt, DataProfile::SmallInt, 0.0, 0.2};
    const RunResult r = runTiny(app, DesignConfig::caba(), 2, 16);
    EXPECT_GT(r.stats.get("sm_stores_sent_compressed"), 0u);
    EXPECT_EQ(r.stats.get("sm_caba_compressions"),
              r.stats.get("sm_stores_sent_compressed"));
}

TEST(SmCore, CompressedL1TriggersHitDecompression)
{
    AppDescriptor app = baseApp();
    app.footprint = 4 * 1024;   // small enough to produce L1 hits
    app.iterations = 20;
    app.data = {DataProfile::Pointer, DataProfile::Pointer, 0.0, 0.2};
    const RunResult r =
        runTiny(app, DesignConfig::cabaCompressedCache(2, 1), 1, 8);
    EXPECT_GT(r.stats.get("sm_caba_hit_decompressions"), 0u);
}

TEST(SmCore, MemoizationSkipsSfuWork)
{
    AppDescriptor app = baseApp();
    app.sfu = 4;
    GpuConfig cfg;
    cfg.num_sms = 1;
    cfg.extras.memoize = true;
    cfg.extras.memo_hit_rate = 0.5;
    Workload wl(app);
    wl.bindGrid(8);
    GpuSystem gpu(cfg, DesignConfig::base(), wl.lineGenerator());
    gpu.launch(&wl, 8);
    const RunResult r = gpu.run();
    EXPECT_GT(r.stats.get("sm_memo_hits"), 0u);
    EXPECT_LT(r.stats.get("sm_memo_hits"), r.stats.get("sm_issued_sfu"));
}

TEST(SmCore, PrefetchingPopulatesL1)
{
    AppDescriptor app = baseApp();
    app.iterations = 30;
    GpuConfig cfg;
    cfg.num_sms = 1;
    cfg.extras.prefetch = true;
    Workload wl(app);
    wl.bindGrid(8);
    GpuSystem gpu(cfg, DesignConfig::base(), wl.lineGenerator());
    gpu.launch(&wl, 8);
    const RunResult r = gpu.run();
    EXPECT_GT(r.stats.get("sm_prefetches_issued"), 0u);
}

TEST(SmCore, LrrSchedulerAlsoCompletes)
{
    AppDescriptor app = baseApp();
    GpuConfig cfg;
    cfg.num_sms = 1;
    cfg.sm.gto = false;     // loose round-robin
    Workload wl(app);
    wl.bindGrid(8);
    GpuSystem gpu(cfg, DesignConfig::base(), wl.lineGenerator());
    gpu.launch(&wl, 8);
    const RunResult r = gpu.run();
    Workload ref(app);
    const std::uint64_t expect =
        static_cast<std::uint64_t>(ref.program().size() - 1) *
            app.iterations + 1;
    EXPECT_EQ(r.instructions, 8 * expect);
}

TEST(SmCore, StaleCompressionsAreKilled)
{
    // Rewrite the same tiny output region repeatedly: newer stores to a
    // line whose compression is still pending must kill the stale
    // assist warp (Section 3.4).
    AppDescriptor app = baseApp();
    app.stores = 2;
    app.footprint = 2 * 1024;
    app.iterations = 30;
    app.data = {DataProfile::SmallInt, DataProfile::SmallInt, 0.0, 0.2};
    const RunResult r = runTiny(app, DesignConfig::caba(), 1, 8);
    EXPECT_GT(r.stats.get("sm_stale_compressions_killed"), 0u);
    EXPECT_GT(r.stats.get("awc_kills"), 0u);
}

TEST(GpuSystem, DataIntegrityUnderAllDesigns)
{
    // verify_data = true makes the compression model panic on any
    // round-trip mismatch; surviving a full run of every design over
    // compressible data is the end-to-end integrity property.
    AppDescriptor app = baseApp();
    app.data = {DataProfile::Pointer, DataProfile::Text, 0.3, 0.1};
    for (auto design :
         {DesignConfig::hwMem(), DesignConfig::hw(), DesignConfig::caba(),
          DesignConfig::ideal(),
          DesignConfig::caba(Algorithm::Fpc),
          DesignConfig::caba(Algorithm::CPack),
          DesignConfig::caba(Algorithm::BestOfAll)}) {
        const RunResult r = runTiny(app, design, 2, 16);
        EXPECT_GT(r.cycles, 0u) << design.name;
    }
}

} // namespace
} // namespace caba
