/**
 * @file
 * Tests for the sweep service (harness/sweep_service.h): request
 * parsing/validation, the framed socket protocol, byte-identity of
 * served documents against the in-process runner, and the robustness
 * contract — malformed requests get structured errors (never a crash),
 * a zero-length queue exercises backpressure, deadlines are enforced,
 * and beginShutdown() drains admitted work before the threads exit.
 *
 * Sockets are Unix-domain paths in the working directory (kept short:
 * sun_path is 108 bytes). The experiment used over the wire is
 * fig02_unallocated_regs — pure occupancy arithmetic, no simulation —
 * so the protocol tests stay fast.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_parse.h"
#include "common/socket.h"
#include "harness/experiment.h"
#include "harness/sweep_service.h"

namespace caba {
namespace {

/** A running service on its own UDS path, torn down with the test. */
class ServiceFixture
{
  public:
    explicit ServiceFixture(SweepServiceConfig cfg = {})
    {
        cfg.address = "test_sweepd_" + std::to_string(next_id_++) + ".sock";
        address_ = cfg.address;
        service_ = std::make_unique<SweepService>(cfg);
        std::string error;
        started_ = service_->start(&error);
        EXPECT_TRUE(started_) << error;
    }

    ~ServiceFixture()
    {
        service_->shutdown();
        std::remove(address_.c_str());
    }

    SweepReply
    submit(const std::string &request_json)
    {
        SweepReply reply;
        std::string error;
        EXPECT_TRUE(submitSweepRequest(address_, request_json, &reply,
                                       &error))
            << error;
        return reply;
    }

    const std::string &address() const { return address_; }
    SweepService &service() { return *service_; }
    bool started() const { return started_; }

  private:
    static int next_id_;
    std::string address_;
    std::unique_ptr<SweepService> service_;
    bool started_ = false;
};

int ServiceFixture::next_id_ = 0;

std::string
fig02Request()
{
    SweepRequestSpec spec;
    spec.experiment = "fig02_unallocated_regs";
    return buildSweepRequestJson(spec);
}

// --- Request parsing / validation (no server) ------------------------------

TEST(SweepRequestParseTest, ExperimentFormRoundTripsThroughBuilder)
{
    SweepRequestSpec spec;
    spec.experiment = "fig02_unallocated_regs";
    spec.scale = 0.5;
    spec.jobs = 2;
    spec.timeout_ms = 1234;
    SweepRequest req;
    std::string code;
    std::string message;
    ASSERT_TRUE(parseSweepRequest(buildSweepRequestJson(spec), &req, &code,
                                  &message))
        << code << ": " << message;
    EXPECT_EQ(req.experiment, "fig02_unallocated_regs");
    EXPECT_DOUBLE_EQ(req.opts.scale, 0.5);
    EXPECT_EQ(req.opts.jobs, 2);
    EXPECT_EQ(req.timeout_ms, 1234);
}

TEST(SweepRequestParseTest, CellListFormValidatesNames)
{
    SweepRequestSpec spec;
    spec.apps = {"PVC", "bfs"};
    spec.designs = {"Base", "CABA-BDI"};
    SweepRequest req;
    std::string code;
    std::string message;
    ASSERT_TRUE(parseSweepRequest(buildSweepRequestJson(spec), &req, &code,
                                  &message))
        << code << ": " << message;
    EXPECT_EQ(req.apps.size(), 2u);
    EXPECT_EQ(req.designs.size(), 2u);
}

TEST(SweepRequestParseTest, StructuredErrorCodes)
{
    SweepRequest req;
    std::string code;
    std::string message;

    EXPECT_FALSE(parseSweepRequest("{not json", &req, &code, &message));
    EXPECT_EQ(code, "bad_request");

    EXPECT_FALSE(parseSweepRequest("[1,2,3]", &req, &code, &message));
    EXPECT_EQ(code, "bad_request");

    const std::string schema =
        std::string("\"schema\":\"") + kSweepRequestSchema + "\"";
    EXPECT_FALSE(parseSweepRequest(
        "{" + schema + ",\"experiment\":\"no_such_thing\"}", &req, &code,
        &message));
    EXPECT_EQ(code, "unknown_experiment");

    EXPECT_FALSE(parseSweepRequest(
        "{" + schema +
            ",\"apps\":[\"no_such_app\"],\"designs\":[\"Base\"]}",
        &req, &code, &message));
    EXPECT_EQ(code, "unknown_app");

    EXPECT_FALSE(parseSweepRequest(
        "{" + schema + ",\"apps\":[\"PVC\"],\"designs\":[\"Warp9\"]}",
        &req, &code, &message));
    EXPECT_EQ(code, "unknown_design");

    // Wrong/missing schema, unknown fields, both forms at once.
    EXPECT_FALSE(parseSweepRequest("{\"experiment\":\"x\"}", &req, &code,
                                   &message));
    EXPECT_EQ(code, "bad_request");
    EXPECT_FALSE(parseSweepRequest(
        "{" + schema + ",\"experiment\":\"x\",\"apps\":[\"PVC\"]}", &req,
        &code, &message));
    EXPECT_FALSE(parseSweepRequest(
        "{" + schema + ",\"experiment\":\"x\",\"surprise\":1}", &req,
        &code, &message));
    EXPECT_NE(message.find("surprise"), std::string::npos);
}

TEST(SweepRequestParseTest, OptionValidationMatchesTheCli)
{
    SweepRequest req;
    std::string code;
    std::string message;
    const std::string prefix =
        std::string("{\"schema\":\"") + kSweepRequestSchema +
        "\",\"experiment\":\"fig02_unallocated_regs\",\"options\":";

    EXPECT_FALSE(parseSweepRequest(prefix + "{\"scale\":0}}", &req, &code,
                                   &message));
    EXPECT_FALSE(parseSweepRequest(prefix + "{\"scale\":-2.5}}", &req,
                                   &code, &message));
    EXPECT_FALSE(parseSweepRequest(prefix + "{\"jobs\":1.5}}", &req, &code,
                                   &message));
    EXPECT_FALSE(parseSweepRequest(prefix + "{\"jobs\":3000000000}}", &req,
                                   &code, &message));
    EXPECT_FALSE(parseSweepRequest(prefix + "{\"speed\":9}}", &req, &code,
                                   &message));
    EXPECT_TRUE(parseSweepRequest(prefix +
                                      "{\"scale\":0.25,\"jobs\":1,"
                                      "\"warps\":12}}",
                                  &req, &code, &message))
        << code << ": " << message;
    EXPECT_EQ(req.opts.max_warps, 12);
}

TEST(SweepServableDesignsTest, UniqueNamesIncludingBaseAndCaba)
{
    const std::vector<DesignConfig> &designs = servableDesigns();
    std::vector<std::string> names;
    for (const DesignConfig &d : designs)
        names.push_back(d.name);
    std::vector<std::string> sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "design names must be unique";
    EXPECT_NE(std::find(names.begin(), names.end(), "Base"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "CABA-BDI"),
              names.end());
}

// --- Socket-level protocol -------------------------------------------------

TEST(SweepServiceTest, ServesExperimentByteIdenticalToInProcessRun)
{
    ServiceFixture fx;
    ASSERT_TRUE(fx.started());

    const SweepReply reply = fx.submit(fig02Request());
    ASSERT_TRUE(reply.ok) << reply.code << ": " << reply.message;
    EXPECT_FALSE(reply.payload.empty());

    const Experiment *e =
        ExperimentRegistry::instance().find("fig02_unallocated_regs");
    ASSERT_NE(e, nullptr);
    const std::string direct = runExperimentCaptured(*e, {});
    EXPECT_EQ(reply.payload, direct)
        << "served document must be byte-identical to the in-process run";

    // The response header is well-formed caba-sweep-resp-v1.
    json::Value header;
    ASSERT_TRUE(json::parse(reply.header_json, &header, nullptr));
    const json::Value *schema = header.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, kSweepResponseSchema);
}

TEST(SweepServiceTest, MalformedRequestsGetErrorsAndTheServerSurvives)
{
    ServiceFixture fx;
    ASSERT_TRUE(fx.started());

    const SweepReply bad = fx.submit("this is not json at all");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.code, "bad_request");
    EXPECT_FALSE(bad.message.empty());

    const SweepReply unknown = fx.submit(
        std::string("{\"schema\":\"") + kSweepRequestSchema +
        "\",\"experiment\":\"fig99_imaginary\"}");
    EXPECT_FALSE(unknown.ok);
    EXPECT_EQ(unknown.code, "unknown_experiment");

    // A frame of the wrong type is also answered, not ignored.
    net::Address addr;
    std::string error;
    ASSERT_TRUE(net::parseAddress(fx.address(), &addr, &error)) << error;
    const int fd = net::connectTo(addr, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(net::writeFrame(fd, 99, "whatever"));
    std::uint32_t type = 0;
    std::string payload;
    ASSERT_TRUE(net::readFrame(fd, &type, &payload, 1 << 20, &error))
        << error;
    EXPECT_EQ(type, static_cast<std::uint32_t>(kFrameResponseHeader));
    EXPECT_NE(payload.find("bad_request"), std::string::npos);
    net::closeFd(fd);

    // After all that abuse the daemon still serves real requests.
    const SweepReply good = fx.submit(fig02Request());
    EXPECT_TRUE(good.ok) << good.code << ": " << good.message;
    EXPECT_TRUE(fx.service().running());
    EXPECT_GE(fx.service().stats().get("requests_bad"), 3u);
    EXPECT_GE(fx.service().stats().get("requests_completed"), 1u);
}

TEST(SweepServiceTest, ZeroLengthQueueRejectsWithQueueFull)
{
    SweepServiceConfig cfg;
    cfg.max_queue = 0;
    ServiceFixture fx(cfg);
    ASSERT_TRUE(fx.started());

    const SweepReply reply = fx.submit(fig02Request());
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.code, "queue_full");
    EXPECT_EQ(fx.service().stats().get("requests_queue_full"), 1u);
}

TEST(SweepServiceTest, ExpiredDeadlineIsReportedNotServed)
{
    SweepServiceConfig cfg;
    cfg.test_dequeue_delay_ms = 50; // every request waits 50ms pre-run
    ServiceFixture fx(cfg);
    ASSERT_TRUE(fx.started());

    SweepRequestSpec spec;
    spec.experiment = "fig02_unallocated_regs";
    spec.timeout_ms = 1;
    const SweepReply reply = fx.submit(buildSweepRequestJson(spec));
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.code, "deadline_exceeded");
    EXPECT_EQ(fx.service().stats().get("requests_deadline"), 1u);
}

TEST(SweepServiceTest, BeginShutdownDrainsAdmittedRequests)
{
    SweepServiceConfig cfg;
    cfg.test_dequeue_delay_ms = 100; // hold execution past beginShutdown
    auto fx = std::make_unique<ServiceFixture>(cfg);
    ASSERT_TRUE(fx->started());

    SweepReply reply;
    std::string error;
    bool transported = false;
    const std::string address = fx->address();
    std::thread client([&] {
        transported =
            submitSweepRequest(address, fig02Request(), &reply, &error);
    });
    // Let the request be admitted (acceptor is fast; the executor is
    // still in its test delay), then start draining.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fx->service().beginShutdown();
    fx->service().shutdown();
    client.join();

    ASSERT_TRUE(transported) << error;
    EXPECT_TRUE(reply.ok) << reply.code << ": " << reply.message
                          << " (admitted work must drain, not drop)";
    EXPECT_FALSE(fx->service().running());

    // With the daemon gone, a new submission is a transport error.
    fx.reset();
    SweepReply after;
    EXPECT_FALSE(submitSweepRequest(address, fig02Request(), &after,
                                    &error));
}

TEST(SweepServiceTest, WarmCellRequestIsServedWithoutSimulating)
{
    ServiceFixture fx;
    ASSERT_TRUE(fx.started());

    SweepRequestSpec spec;
    spec.apps = {"PVC"};
    spec.designs = {"Base"};
    spec.scale = 0.25;
    const std::string request = buildSweepRequestJson(spec);

    const SweepReply cold = fx.submit(request);
    ASSERT_TRUE(cold.ok) << cold.code << ": " << cold.message;

    const SweepReply warm = fx.submit(request);
    ASSERT_TRUE(warm.ok) << warm.code << ": " << warm.message;
    EXPECT_EQ(warm.simulations, 0u)
        << "second identical request must be served from the cell cache";
    EXPECT_GE(warm.cache_served, 1u);
    EXPECT_EQ(warm.payload, cold.payload);

    json::Value doc;
    ASSERT_TRUE(json::parse(warm.payload, &doc, nullptr));
    const json::Value *bench = doc.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->string, "custom_cells");
    const json::Value *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    EXPECT_EQ(cells->array.size(), 1u);
}

} // namespace
} // namespace caba
