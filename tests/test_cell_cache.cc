/**
 * @file
 * Tests for the content-addressed cell cache (harness/cell_cache.h):
 * key coverage (semantic inputs in, execution knobs out), stable
 * well-formed hashes, byte-identical disk round trips through the real
 * runApp path, corrupted/stale-entry recovery, version-bump
 * invalidation, the in-process sharing layer, and the audited
 * hit-vs-recompute self-check.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "compress/design.h"
#include "harness/cell_cache.h"
#include "harness/runner.h"
#include "workloads/app.h"

namespace caba {
namespace {

namespace fs = std::filesystem;

ExperimentOptions
testOpts()
{
    ExperimentOptions opts;
    opts.scale = 0.05; // one short cell per simulate()
    return opts;
}

/** The options exactly as runCell keys them: scale resolved against
 *  CABA_SCALE (unset in this binary), execution knobs neutralized. */
ExperimentOptions
resolvedOpts(const ExperimentOptions &opts)
{
    ExperimentOptions resolved = opts;
    resolved.scale = opts.scale * scaleFromEnv();
    resolved.jobs = 0;
    resolved.json_out.clear();
    return resolved;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/** Configures the singleton to a private temp directory per test and
 *  restores the disabled state afterwards (runApp consults the
 *  singleton, so leakage would couple unrelated tests). */
class CellCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = ::testing::TempDir() + "caba_cell_cache_" + info->name();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        CellCache::instance().configure("", kCellCacheCodeVersion, false,
                                        false);
        fs::remove_all(dir_);
    }

    std::string dir_;
};

TEST(CellKey, CoversSemanticInputsAndOnlyThose)
{
    const AppDescriptor app = findApp("PVC");
    const DesignConfig design = DesignConfig::caba();
    const ExperimentOptions opts = resolvedOpts(testOpts());
    const std::string base = cellKeyText(app, design, opts, "v1");
    EXPECT_EQ(base, cellKeyText(app, design, opts, "v1"));

    // Every semantic knob must move the key...
    ExperimentOptions o = opts;
    o.scale *= 2.0;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.bw_scale = 0.5;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.assist_regs = 4;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.verify = true;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.extras.memoize = true;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.caba.throttle = !o.caba.throttle;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.md_cache_kb = 32;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    o = opts;
    o.max_warps = 8;
    EXPECT_NE(base, cellKeyText(app, design, o, "v1"));
    EXPECT_NE(base, cellKeyText(findApp("bfs"), design, opts, "v1"));
    EXPECT_NE(base, cellKeyText(app, DesignConfig::base(), opts, "v1"));
    EXPECT_NE(base, cellKeyText(app, design, opts, "v2"));

    // ...and the execution knobs must not (runCell neutralizes them;
    // the key renderer never reads them).
    o = opts;
    o.jobs = 7;
    o.json_out = "/tmp/anywhere.json";
    EXPECT_EQ(base, cellKeyText(app, design, o, "v1"));
}

TEST(CellKey, HashIsStableAndWellFormed)
{
    const std::string a = cellKeyHash("alpha");
    EXPECT_EQ(a.size(), 32u);
    EXPECT_EQ(a, cellKeyHash("alpha"));
    EXPECT_NE(a, cellKeyHash("alphb"));
    for (char c : a)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

TEST(CellSerialization, RejectsTruncationTamperingAndForeignKeys)
{
    const AppDescriptor app = findApp("PVC");
    const RunResult r = runApp(app, DesignConfig::base(), testOpts());
    const std::string key = "some key text";
    const std::string blob = serializeCell(key, r);

    RunResult out;
    std::string err;
    EXPECT_TRUE(deserializeCell(blob, key, &out, &err)) << err;
    EXPECT_EQ(serializeCell(key, out), blob);

    EXPECT_FALSE(deserializeCell(blob.substr(0, blob.size() / 2), key, &out,
                                 &err));
    EXPECT_FALSE(deserializeCell(blob, "a different key", &out, &err));
    std::string tampered = blob;
    tampered[tampered.size() / 2] =
        static_cast<char>(tampered[tampered.size() / 2] ^ 0x5a);
    EXPECT_FALSE(deserializeCell(tampered, key, &out, &err));
}

TEST_F(CellCacheTest, DiskHitIsByteIdenticalToRecomputation)
{
    CellCache &cache = CellCache::instance();
    cache.configure(dir_, "test-v1", false, false);
    const AppDescriptor app = findApp("PVC");
    const DesignConfig design = DesignConfig::caba();
    const ExperimentOptions opts = testOpts();

    const RunResult miss = runApp(app, design, opts);
    CellCacheStats st = cache.stats();
    EXPECT_EQ(st.simulations, 1u);
    EXPECT_EQ(st.disk_misses, 1u);
    EXPECT_EQ(st.stores, 1u);

    const RunResult hit = runApp(app, design, opts);
    st = cache.stats();
    EXPECT_EQ(st.disk_hits, 1u);
    EXPECT_EQ(st.simulations, 1u) << "a disk hit must not re-simulate";

    const std::string key =
        cellKeyText(app, design, resolvedOpts(opts), "test-v1");
    EXPECT_EQ(serializeCell(key, miss), serializeCell(key, hit));
    EXPECT_TRUE(fs::exists(cache.entryPath(cellKeyHash(key))));
}

TEST_F(CellCacheTest, ExecutionKnobsShareOneEntry)
{
    CellCache &cache = CellCache::instance();
    cache.configure(dir_, "test-v1", false, false);
    const AppDescriptor app = findApp("PVC");
    ExperimentOptions opts = testOpts();
    (void)runApp(app, DesignConfig::base(), opts);

    opts.jobs = 3;
    opts.json_out = "ignored.json";
    (void)runApp(app, DesignConfig::base(), opts);
    const CellCacheStats st = cache.stats();
    EXPECT_EQ(st.simulations, 1u);
    EXPECT_EQ(st.disk_hits, 1u);
}

TEST_F(CellCacheTest, CorruptedEntryIsEvictedAndRecomputed)
{
    CellCache &cache = CellCache::instance();
    cache.configure(dir_, "test-v1", false, false);
    const AppDescriptor app = findApp("PVC");
    const DesignConfig design = DesignConfig::base();
    const ExperimentOptions opts = testOpts();
    const RunResult first = runApp(app, design, opts);

    const std::string key =
        cellKeyText(app, design, resolvedOpts(opts), "test-v1");
    const std::string path = cache.entryPath(cellKeyHash(key));
    std::string blob = slurp(path);
    blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x5a);
    spit(path, blob);

    const RunResult again = runApp(app, design, opts);
    const CellCacheStats st = cache.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.simulations, 2u);
    EXPECT_EQ(st.stores, 2u) << "the healthy entry must be republished";
    EXPECT_EQ(serializeCell(key, first), serializeCell(key, again));
    RunResult reloaded;
    std::string err;
    EXPECT_TRUE(deserializeCell(slurp(path), key, &reloaded, &err)) << err;
}

TEST_F(CellCacheTest, VersionBumpMissesOldEntries)
{
    CellCache &cache = CellCache::instance();
    cache.configure(dir_, "code-v1", false, false);
    const AppDescriptor app = findApp("PVC");
    (void)runApp(app, DesignConfig::base(), testOpts());
    EXPECT_EQ(cache.stats().simulations, 1u);

    // configure() resets the stats, so the counters below are v2-only.
    cache.configure(dir_, "code-v2", false, false);
    (void)runApp(app, DesignConfig::base(), testOpts());
    const CellCacheStats st = cache.stats();
    EXPECT_EQ(st.disk_hits, 0u);
    EXPECT_EQ(st.disk_misses, 1u);
    EXPECT_EQ(st.simulations, 1u);
}

TEST_F(CellCacheTest, InProcessLayerSharesAcrossCalls)
{
    CellCache &cache = CellCache::instance();
    cache.configure("", "test-v1", true, false);
    const AppDescriptor app = findApp("PVC");
    (void)runApp(app, DesignConfig::base(), testOpts());
    (void)runApp(app, DesignConfig::base(), testOpts());
    CellCacheStats st = cache.stats();
    EXPECT_EQ(st.simulations, 1u);
    EXPECT_EQ(st.inproc_hits, 1u);
    EXPECT_EQ(st.stores, 0u) << "no disk layer was configured";

    (void)runApp(app, DesignConfig::caba(), testOpts());
    st = cache.stats();
    EXPECT_EQ(st.simulations, 2u) << "a different design is a new cell";

    cache.clearInProcess();
    (void)runApp(app, DesignConfig::base(), testOpts());
    EXPECT_EQ(cache.stats().simulations, 3u);
}

TEST_F(CellCacheTest, SelfCheckRecomputesAndComparesDiskHits)
{
    CellCache &cache = CellCache::instance();
    cache.configure(dir_, "test-v1", false, true);
    const AppDescriptor app = findApp("PVC");
    (void)runApp(app, DesignConfig::base(), testOpts());
    EXPECT_EQ(cache.stats().self_checks, 0u) << "misses are not checked";

    (void)runApp(app, DesignConfig::base(), testOpts());
    const CellCacheStats st = cache.stats();
    EXPECT_EQ(st.disk_hits, 1u);
    EXPECT_EQ(st.self_checks, 1u);
    EXPECT_EQ(st.simulations, 2u)
        << "the audited hit recomputes the cell to compare";
}

} // namespace
} // namespace caba
