/**
 * @file
 * Audit-layer tests: the mutation self-test (each seeded bookkeeping
 * fault must trip the audit), the zero-perturbation guarantee (RunResult
 * bit-identical with audits off vs. per-N-cycles), CABA_AUDIT spec
 * parsing, and the fatal-mode panic path.
 */
#include <gtest/gtest.h>

#include "gpu/gpu_system.h"
#include "harness/runner.h"

namespace caba {
namespace {

AppDescriptor
tinyApp()
{
    // CONS issues both loads and stores, so every fault site (store
    // packet, read bursts, load slot) sees traffic.
    AppDescriptor app = findApp("CONS");
    app.iterations = 8;
    app.footprint = 2ull << 20;
    return app;
}

GpuConfig
auditedConfig(AuditLevel level, Cycle period = 256)
{
    GpuConfig cfg;
    cfg.audit.level = level;
    cfg.audit.period = period;
    cfg.audit.fatal = false;    // collect failures, don't abort
    cfg.audit.ignore_env = true;
    return cfg;
}

struct AuditedRun
{
    RunResult result;
    std::vector<std::string> failures;
};

AuditedRun
runAudited(const GpuConfig &cfg, const AuditFault *fault = nullptr,
           int warps = 12)
{
    Workload wl(tinyApp());
    wl.bindGrid(warps * cfg.num_sms);
    GpuSystem gpu(cfg, DesignConfig::caba(), wl.lineGenerator());
    gpu.launch(&wl, warps);
    if (fault)
        gpu.injectFault(*fault);
    AuditedRun r;
    r.result = gpu.run();
    r.failures = gpu.auditFailures();
    return r;
}

TEST(Audit, CleanRunPassesEveryPeriodicCheck)
{
    const AuditedRun r =
        runAudited(auditedConfig(AuditLevel::Periodic, 64));
    for (const std::string &f : r.failures)
        ADD_FAILURE() << f;
    EXPECT_TRUE(r.failures.empty());
    EXPECT_GT(r.result.cycles, 0u);
}

// The mutation self-test proper: each seeded silent fault simulates a
// real bookkeeping-bug class and the audit must flag it. A fault that
// sails through would mean the corresponding invariant is vacuous.

TEST(Audit, DetectsDroppedStorePacket)
{
    const AuditFault fault = AuditFault::DropStorePacket;
    const AuditedRun r =
        runAudited(auditedConfig(AuditLevel::EndOfRun), &fault);
    ASSERT_FALSE(r.failures.empty());
    // The lost store shows up both as a crossbar conservation breach
    // and as an orphan in the request lifecycle table.
    bool lifecycle = false;
    for (const std::string &f : r.failures)
        lifecycle = lifecycle || f.find("orphan") != std::string::npos;
    EXPECT_TRUE(lifecycle);
}

TEST(Audit, DetectsDoubleCountedBurst)
{
    const AuditFault fault = AuditFault::DoubleCountBurst;
    const AuditedRun r =
        runAudited(auditedConfig(AuditLevel::EndOfRun), &fault);
    ASSERT_FALSE(r.failures.empty());
    bool ledger = false;
    for (const std::string &f : r.failures)
        ledger = ledger || f.find("transfer bursts") != std::string::npos;
    EXPECT_TRUE(ledger);
}

TEST(Audit, DetectsLeakedLoadSlot)
{
    const AuditFault fault = AuditFault::LeakLoadSlot;
    const AuditedRun r =
        runAudited(auditedConfig(AuditLevel::EndOfRun), &fault);
    EXPECT_FALSE(r.failures.empty());
}

TEST(Audit, PeriodicChecksAlsoCatchFaults)
{
    // The same fault must be visible to the in-flight checker, not just
    // the drain-time one (a leaked slot is live state, not a stat).
    const AuditFault fault = AuditFault::LeakLoadSlot;
    const AuditedRun r =
        runAudited(auditedConfig(AuditLevel::Periodic, 64), &fault);
    EXPECT_FALSE(r.failures.empty());
}

TEST(Audit, ResultsBitIdenticalWithAuditsOnOrOff)
{
    const AuditedRun off = runAudited(auditedConfig(AuditLevel::Off));
    const AuditedRun on =
        runAudited(auditedConfig(AuditLevel::Periodic, 128));
    EXPECT_TRUE(on.failures.empty());
    EXPECT_EQ(off.result.cycles, on.result.cycles);
    EXPECT_EQ(off.result.instructions, on.result.instructions);
    EXPECT_EQ(off.result.stats.get("dram_bursts"),
              on.result.stats.get("dram_bursts"));
    EXPECT_EQ(off.result.stats.get("part_loads_in"),
              on.result.stats.get("part_loads_in"));
    EXPECT_EQ(off.result.stats.get("sm_assist_instructions"),
              on.result.stats.get("sm_assist_instructions"));
    EXPECT_EQ(off.result.stats.get("model_lines_compressed"),
              on.result.stats.get("model_lines_compressed"));
}

TEST(Audit, FatalModeAbortsOnSeededFault)
{
    GpuConfig cfg = auditedConfig(AuditLevel::EndOfRun);
    cfg.audit.fatal = true;
    Workload wl(tinyApp());
    wl.bindGrid(12 * cfg.num_sms);
    GpuSystem gpu(cfg, DesignConfig::caba(), wl.lineGenerator());
    gpu.launch(&wl, 12);
    gpu.injectFault(AuditFault::DropStorePacket);
    EXPECT_DEATH(gpu.run(), "CABA_AUDIT");
}

TEST(Audit, SpecParsing)
{
    AuditConfig base;
    base.level = AuditLevel::EndOfRun;

    EXPECT_EQ(AuditConfig::applySpec(base, "off").level, AuditLevel::Off);
    EXPECT_EQ(AuditConfig::applySpec(base, "0").level, AuditLevel::Off);
    EXPECT_EQ(AuditConfig::applySpec(base, "none").level, AuditLevel::Off);
    EXPECT_EQ(AuditConfig::applySpec(base, "end").level,
              AuditLevel::EndOfRun);
    EXPECT_EQ(AuditConfig::applySpec(base, "1").level,
              AuditLevel::EndOfRun);
    EXPECT_EQ(AuditConfig::applySpec(base, "full").level,
              AuditLevel::Periodic);

    const AuditConfig n = AuditConfig::applySpec(base, "4096");
    EXPECT_EQ(n.level, AuditLevel::Periodic);
    EXPECT_EQ(n.period, 4096u);

    // Unknown or empty specs leave the configured level alone.
    EXPECT_EQ(AuditConfig::applySpec(base, "bogus").level,
              AuditLevel::EndOfRun);
    EXPECT_EQ(AuditConfig::applySpec(base, "").level,
              AuditLevel::EndOfRun);
    EXPECT_EQ(AuditConfig::applySpec(base, nullptr).level,
              AuditLevel::EndOfRun);
}

TEST(Audit, LifecycleCountsBalanceOnCleanRun)
{
    GpuConfig cfg = auditedConfig(AuditLevel::EndOfRun);
    Workload wl(tinyApp());
    wl.bindGrid(12 * cfg.num_sms);
    GpuSystem gpu(cfg, DesignConfig::caba(), wl.lineGenerator());
    gpu.launch(&wl, 12);
    gpu.run();
    EXPECT_GT(gpu.audit().injected(), 0u);
    EXPECT_EQ(gpu.audit().injected(), gpu.audit().retired());
    EXPECT_EQ(gpu.audit().liveRequests(), 0u);
}

} // namespace
} // namespace caba
