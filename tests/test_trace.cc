/**
 * @file
 * Event-tracing tests: a traced CABA-BDI run must produce a valid
 * Chrome trace-event JSON file containing warp, assist-warp, cache and
 * dram events with sane timestamps — and tracing must be invisible to
 * the simulation itself (bit-identical cycle counts on or off).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/trace.h"
#include "compress/design.h"
#include "harness/runner.h"
#include "mini_json.h"
#include "workloads/app.h"

namespace caba {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ExperimentOptions
smallOpts()
{
    ExperimentOptions opts;
    opts.scale = 0.1; // a short run still spawns hundreds of events
    return opts;
}

class TraceTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        // Never leak an active session into other tests.
        if (trace::active())
            trace::stop();
    }
};

TEST_F(TraceTest, MaskFromNames)
{
    EXPECT_EQ(trace::maskFromNames("warp"), trace::kWarp);
    EXPECT_EQ(trace::maskFromNames("warp,dram"),
              trace::kWarp | trace::kDram);
    EXPECT_EQ(trace::maskFromNames("assist, cache"),
              trace::kAssistWarp | trace::kCache);
    EXPECT_EQ(trace::maskFromNames("assist-warp"), trace::kAssistWarp);
    EXPECT_EQ(trace::maskFromNames("slots"), trace::kSlots);
    EXPECT_EQ(trace::maskFromNames("counter"), trace::kCounter);
    EXPECT_EQ(trace::maskFromNames("counters"), trace::kCounter);
    EXPECT_EQ(trace::maskFromNames("slots,counter"),
              trace::kSlots | trace::kCounter);
    EXPECT_EQ(trace::maskFromNames("all"), trace::kAll);
    EXPECT_EQ(trace::maskFromNames("xbar,bogus"), trace::kXbar);
    EXPECT_EQ(trace::maskFromNames(""), 0u);
}

TEST_F(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(trace::active());
    EXPECT_FALSE(trace::on(trace::kWarp));
    // Emission without a session is a silent no-op, not a crash.
    trace::instant(trace::kWarp, trace::kPidSm, 0, "noop", 0);
    trace::complete(trace::kDram, trace::kPidDram, 0, "noop", 0, 1);
}

TEST_F(TraceTest, CategoryMaskGatesOn)
{
    const std::string path = testing::TempDir() + "caba_mask_trace.json";
    trace::start(path, trace::kWarp | trace::kDram);
    EXPECT_TRUE(trace::active());
    EXPECT_TRUE(trace::on(trace::kWarp));
    EXPECT_TRUE(trace::on(trace::kDram));
    EXPECT_FALSE(trace::on(trace::kCache));
    EXPECT_FALSE(trace::on(trace::kXbar));
    trace::stop();
    EXPECT_FALSE(trace::active());
    std::remove(path.c_str());
}

TEST_F(TraceTest, EmptySessionWritesValidJson)
{
    const std::string path = testing::TempDir() + "caba_empty_trace.json";
    trace::start(path);
    trace::stop();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    const minijson::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // Only metadata (process names + the closing placeholder).
    for (const minijson::Value &ev : events->array)
        EXPECT_EQ(ev.find("ph")->string, "M");
    std::remove(path.c_str());
}

TEST_F(TraceTest, TracedRunProducesAllCategories)
{
    const std::string path = testing::TempDir() + "caba_run_trace.json";
    trace::start(path);
    runApp(findApp("PVC"), DesignConfig::caba(), smallOpts());
    trace::stop();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    const minijson::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::set<std::string> cats;
    double last_ts = 0.0;
    std::size_t timed = 0;
    for (const minijson::Value &ev : events->array) {
        const minijson::Value *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M")
            continue; // metadata has no timestamp
        const minijson::Value *cat = ev.find("cat");
        const minijson::Value *ts = ev.find("ts");
        ASSERT_NE(cat, nullptr);
        ASSERT_NE(ts, nullptr);
        cats.insert(cat->string);
        // stop() writes events sorted by timestamp.
        EXPECT_GE(ts->number, last_ts);
        last_ts = ts->number;
        if (ph->string == "X")
            EXPECT_GE(ev.find("dur")->number, 1.0);
        ++timed;
    }
    EXPECT_GT(timed, 100u) << "a real run should emit plenty of events";
    EXPECT_TRUE(cats.count("warp")) << "issue/stall spans missing";
    EXPECT_TRUE(cats.count("assist")) << "assist-warp events missing";
    EXPECT_TRUE(cats.count("cache")) << "cache events missing";
    EXPECT_TRUE(cats.count("dram")) << "dram burst events missing";
    std::remove(path.c_str());
}

TEST_F(TraceTest, SlotSpansCoverTheTaxonomy)
{
    const std::string path = testing::TempDir() + "caba_slots_trace.json";
    trace::start(path, trace::kSlots);
    runApp(findApp("PVC"), DesignConfig::caba(), smallOpts());
    trace::stop();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    std::set<std::string> names;
    std::size_t spans = 0;
    for (const minijson::Value &ev : doc.find("traceEvents")->array) {
        if (ev.find("ph")->string != "X")
            continue;
        EXPECT_EQ(ev.find("cat")->string, "slots");
        EXPECT_EQ(ev.find("pid")->number,
                  static_cast<double>(trace::kPidSlots));
        names.insert(ev.find("name")->string);
        ++spans;
    }
    EXPECT_GT(spans, 0u) << "no slot-category spans recorded";
    // Span names are the taxonomy's stable category names.
    for (const std::string &n : names)
        EXPECT_EQ(n.rfind("slot_", 0), 0u) << n;
    EXPECT_TRUE(names.count("slot_issued"));
    std::remove(path.c_str());
}

TEST_F(TraceTest, CounterTracksEmitOnTimelineCadence)
{
    const std::string path = testing::TempDir() + "caba_counter_trace.json";
    trace::start(path, trace::kCounter);
    runApp(findApp("PVC"), DesignConfig::caba(), smallOpts());
    trace::stop();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    std::set<std::string> names;
    for (const minijson::Value &ev : doc.find("traceEvents")->array) {
        if (ev.find("ph")->string != "C")
            continue;
        EXPECT_EQ(ev.find("cat")->string, "counter");
        EXPECT_EQ(ev.find("pid")->number,
                  static_cast<double>(trace::kPidCounter));
        const minijson::Value *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        ASSERT_NE(args->find("value"), nullptr);
        names.insert(ev.find("name")->string);
    }
    EXPECT_TRUE(names.count("event_queue_depth"));
    EXPECT_TRUE(names.count("issuable_warps"));
    EXPECT_TRUE(names.count("dram_read_queue"));
    std::remove(path.c_str());
}

TEST_F(TraceTest, CategoryFilterDropsOtherCategories)
{
    const std::string path = testing::TempDir() + "caba_filter_trace.json";
    trace::start(path, trace::kDram);
    runApp(findApp("PVC"), DesignConfig::caba(), smallOpts());
    trace::stop();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    std::size_t dram = 0;
    for (const minijson::Value &ev : doc.find("traceEvents")->array) {
        if (ev.find("ph")->string == "M")
            continue;
        EXPECT_EQ(ev.find("cat")->string, "dram");
        ++dram;
    }
    EXPECT_GT(dram, 0u);
    std::remove(path.c_str());
}

TEST_F(TraceTest, TracingDoesNotPerturbSimulation)
{
    const ExperimentOptions opts = smallOpts();
    const RunResult plain = runApp(findApp("PVC"), DesignConfig::caba(),
                                   opts);

    const std::string path = testing::TempDir() + "caba_perturb_trace.json";
    trace::start(path);
    const RunResult traced = runApp(findApp("PVC"), DesignConfig::caba(),
                                    opts);
    trace::stop();

    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.instructions, traced.instructions);
    EXPECT_EQ(plain.stats.all(), traced.stats.all());
    std::remove(path.c_str());
}

} // namespace
} // namespace caba
