/**
 * @file
 * Unit tests for the stats layer: counter-vs-gauge merge semantics
 * (the old StatSet summed everything, which scaled capacities by the
 * number of SMs merged) and the log2-bucketed Distribution histogram,
 * including the 0 / max / saturation edge cases.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/stats.h"

namespace caba {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(DistributionTest, BucketOfEdgeCases)
{
    EXPECT_EQ(Distribution::bucketOf(0), 0);
    EXPECT_EQ(Distribution::bucketOf(1), 1);
    EXPECT_EQ(Distribution::bucketOf(2), 2);
    EXPECT_EQ(Distribution::bucketOf(3), 2);
    EXPECT_EQ(Distribution::bucketOf(4), 3);
    EXPECT_EQ(Distribution::bucketOf(7), 3);
    EXPECT_EQ(Distribution::bucketOf(8), 4);
    EXPECT_EQ(Distribution::bucketOf(std::uint64_t{1} << 63), 64);
    EXPECT_EQ(Distribution::bucketOf(kMax), 64);
}

TEST(DistributionTest, BucketLowInvertsBucketOf)
{
    EXPECT_EQ(Distribution::bucketLow(0), 0u);
    EXPECT_EQ(Distribution::bucketLow(1), 1u);
    EXPECT_EQ(Distribution::bucketLow(64), std::uint64_t{1} << 63);
    // bucketLow(b) is the smallest member of bucket b, and the value
    // just below it falls in bucket b-1.
    for (int b = 1; b < Distribution::kBuckets; ++b) {
        const std::uint64_t low = Distribution::bucketLow(b);
        EXPECT_EQ(Distribution::bucketOf(low), b) << "bucket " << b;
        EXPECT_EQ(Distribution::bucketOf(low - 1), b - 1) << "bucket " << b;
    }
}

TEST(DistributionTest, RecordZero)
{
    Distribution d;
    d.record(0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.sum(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(DistributionTest, RecordMaxValue)
{
    Distribution d;
    d.record(kMax);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.sum(), kMax);
    EXPECT_EQ(d.min(), kMax);
    EXPECT_EQ(d.max(), kMax);
    EXPECT_EQ(d.buckets()[64], 1u);
}

TEST(DistributionTest, SumSaturatesInsteadOfWrapping)
{
    Distribution d;
    d.record(kMax);
    d.record(kMax);
    d.record(7);
    EXPECT_EQ(d.sum(), kMax); // pinned at the ceiling, no wraparound
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.min(), 7u);
    EXPECT_EQ(d.max(), kMax);
}

TEST(DistributionTest, MinMaxTrackAcrossRecords)
{
    Distribution d;
    d.record(100);
    d.record(3);
    d.record(5000);
    EXPECT_EQ(d.min(), 3u);
    EXPECT_EQ(d.max(), 5000u);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 5103u);
    EXPECT_DOUBLE_EQ(d.mean(), 5103.0 / 3.0);
}

TEST(DistributionTest, MergeAddsBucketwise)
{
    Distribution a, b;
    a.record(1);
    a.record(10);
    b.record(0);
    b.record(10);
    b.record(4000);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.sum(), 1u + 10 + 0 + 10 + 4000);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 4000u);
    EXPECT_EQ(a.buckets()[0], 1u);                           // 0
    EXPECT_EQ(a.buckets()[1], 1u);                           // 1
    EXPECT_EQ(a.buckets()[Distribution::bucketOf(10)], 2u);  // both 10s
}

TEST(DistributionTest, MergeWithEmptySides)
{
    Distribution empty, filled, target;
    filled.record(42);

    // empty.merge(empty) stays empty.
    target.merge(empty);
    EXPECT_EQ(target.count(), 0u);

    // merging into an empty histogram copies the other side.
    target.merge(filled);
    EXPECT_TRUE(target == filled);

    // merging an empty histogram changes nothing (min must not be
    // clobbered by the empty side's zero-initialized fields).
    filled.merge(empty);
    EXPECT_EQ(filled.count(), 1u);
    EXPECT_EQ(filled.min(), 42u);
}

TEST(StatSetTest, MergeSumsCounters)
{
    StatSet a, b;
    a.add("hits", 10);
    b.add("hits", 5);
    b.add("misses", 2);
    a.merge(b);
    EXPECT_EQ(a.get("hits"), 15u);
    EXPECT_EQ(a.get("misses"), 2u);
    EXPECT_FALSE(a.isGauge("hits"));
}

TEST(StatSetTest, SetCounterHasCounterSemantics)
{
    // The per-SM snapshot pattern: plain members set into a StatSet,
    // then summed across SMs.
    StatSet total;
    for (int sm = 0; sm < 3; ++sm) {
        StatSet s;
        s.setCounter("issued", 100);
        total.merge(s);
    }
    EXPECT_EQ(total.get("issued"), 300u);
}

TEST(StatSetTest, MergeOverwritesGauges)
{
    // Six partitions each report an 8KB MD cache; the merged result
    // must still say 8KB, not 48KB. This is the bug the counter/gauge
    // split fixes: the old merge summed configuration values.
    StatSet total;
    for (int part = 0; part < 6; ++part) {
        StatSet s;
        s.set("md_capacity_bytes", 8192);
        s.setCounter("md_misses", 10);
        total.merge(s);
    }
    EXPECT_EQ(total.get("md_capacity_bytes"), 8192u);
    EXPECT_TRUE(total.isGauge("md_capacity_bytes"));
    EXPECT_EQ(total.get("md_misses"), 60u);
    EXPECT_FALSE(total.isGauge("md_misses"));
}

TEST(StatSetTest, MergePrefixedKeepsSemantics)
{
    StatSet src;
    src.add("hits", 4);
    src.set("capacity", 512);
    src.dist("lat").record(16);

    StatSet dst;
    dst.mergePrefixed(src, "l1_");
    dst.mergePrefixed(src, "l1_"); // second SM with identical stats

    EXPECT_EQ(dst.get("l1_hits"), 8u);
    EXPECT_EQ(dst.get("l1_capacity"), 512u);
    EXPECT_TRUE(dst.isGauge("l1_capacity"));
    ASSERT_NE(dst.findDist("l1_lat"), nullptr);
    EXPECT_EQ(dst.findDist("l1_lat")->count(), 2u);
    EXPECT_EQ(dst.findDist("lat"), nullptr);
}

TEST(StatSetTest, RatioAndLookupDefaults)
{
    StatSet s;
    EXPECT_EQ(s.get("absent"), 0u); // lint: stat-external negative lookup
    EXPECT_EQ(s.ratio("a", "b"), 0.0);
    s.add("a", 3);
    s.add("b", 4);
    EXPECT_DOUBLE_EQ(s.ratio("a", "b"), 0.75);
    // lint: stat-external negative lookup
    EXPECT_EQ(s.findDist("absent"), nullptr);
}

} // namespace
} // namespace caba
