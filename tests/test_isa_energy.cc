/**
 * @file
 * ISA and energy-model unit tests: program construction/validation,
 * instruction classification and rendering, and the event-energy
 * arithmetic Figure 9 builds on. Plus the Table/StatSet helpers.
 */
#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/table.h"
#include "energy/energy_model.h"
#include "isa/instruction.h"

namespace caba {
namespace {

TEST(Isa, BuilderProducesValidLoop)
{
    ProgramBuilder pb;
    pb.ldGlobal(1, 0);
    pb.alu(Opcode::AluInt, 2, 1);
    pb.stGlobal(2, 1);
    pb.branchTo(0);
    pb.exit();
    const Program prog = pb.build();
    EXPECT_EQ(prog.size(), 5);
    EXPECT_EQ(prog.numRegs(), 3);
    EXPECT_EQ(prog.at(3).branch_target, 0);
}

TEST(Isa, OpcodeClassification)
{
    EXPECT_TRUE(isAlu(Opcode::AluInt));
    EXPECT_TRUE(isAlu(Opcode::Mov));
    EXPECT_FALSE(isAlu(Opcode::Sfu));
    EXPECT_TRUE(isMem(Opcode::LdShared));
    EXPECT_TRUE(isGlobalMem(Opcode::StGlobal));
    EXPECT_FALSE(isGlobalMem(Opcode::LdShared));
    EXPECT_FALSE(isMem(Opcode::Branch));
}

TEST(Isa, ToStringRendersOperands)
{
    Instruction inst;
    inst.op = Opcode::LdGlobal;
    inst.dst = 3;
    inst.stream = 1;
    EXPECT_EQ(inst.toString(), "ld.global r3 [stream 1]");
}

TEST(Isa, ValidationCatchesBadBranch)
{
    std::vector<Instruction> code(2);
    code[0].op = Opcode::Branch;
    code[0].branch_target = 99;
    code[1].op = Opcode::Exit;
    EXPECT_DEATH({ Program p(code); (void)p; }, "branch target");
}

TEST(Stats, AddGetMergeRatio)
{
    StatSet a, b;
    a.add("x", 3);
    a.add("x", 2);
    b.add("x", 5);
    b.add("y", 10);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 10u);
    EXPECT_EQ(a.get("y"), 10u);
    EXPECT_EQ(a.get("absent"), 0u); // lint: stat-external negative lookup
    EXPECT_DOUBLE_EQ(a.ratio("x", "y"), 1.0);
    // lint: stat-external division-by-absent returns 0
    EXPECT_DOUBLE_EQ(a.ratio("x", "absent"), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "bbbb"});
    t.addRow({"xxxxx", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a      bbbb"), std::string::npos);
    EXPECT_NE(out.find("xxxxx  1"), std::string::npos);
    EXPECT_EQ(Table::num(1.234, 1), "1.2");
    EXPECT_EQ(Table::pct(0.417), "41.7%");
}

TEST(Energy, DramTrafficDominatesForMemoryBoundCounts)
{
    StatSet s;
    s.set("sm_issued_alu", 100000);
    s.set("dram_bursts", 500000);
    s.set("dram_activates", 100000);
    const EnergyBreakdown e = computeEnergy(s, 1000000);
    EXPECT_GT(e.dram, e.core);
    EXPECT_GT(e.total, 0.0);
}

TEST(Energy, FewerBurstsMeanLessEnergy)
{
    StatSet base, comp;
    base.set("dram_bursts", 400000);
    comp.set("dram_bursts", 200000);
    const Cycle cycles = 500000;
    EXPECT_LT(computeEnergy(comp, cycles).total,
              computeEnergy(base, cycles).total);
}

TEST(Energy, ShorterRunsSaveStaticEnergy)
{
    StatSet s;
    EXPECT_LT(computeEnergy(s, 100000).static_energy,
              computeEnergy(s, 200000).static_energy);
}

TEST(Energy, CompressionOverheadsAreCharged)
{
    StatSet with, without;
    with.set("sm_assist_instructions", 100000);
    with.set("part_md_lookups", 50000);
    const Cycle cycles = 100000;
    EXPECT_GT(computeEnergy(with, cycles).compression,
              computeEnergy(without, cycles).compression);
}

TEST(Energy, WattsConversion)
{
    StatSet s;
    s.set("dram_bursts", 1000000);
    const EnergyBreakdown e = computeEnergy(s, 1400000);
    // 1.4M cycles at 1.4GHz = 1ms; watts = (total mJ -> J) / 1ms.
    EXPECT_NEAR(e.watts(1400000), e.total, e.total * 0.01);
}

} // namespace
} // namespace caba
