/**
 * @file
 * CABA framework unit tests: the Assist Warp Store's subroutine shapes
 * (Section 4.1.2), the Assist Warp Controller's table management,
 * priority/AWB staging rules, kill semantics (Section 3.4), and the
 * utilization throttle.
 */
#include <gtest/gtest.h>

#include "caba/awc.h"
#include "caba/aws.h"
#include "compress/registry.h"
#include "workloads/data_profile.h"

namespace caba {
namespace {

AssistWarp
makeWarp(const std::vector<AssistInstr> *code, AssistPriority prio,
         std::uint64_t token = 0)
{
    AssistWarp aw;
    aw.priority = prio;
    aw.purpose = AssistPurpose::DecompressFill;
    aw.code = code;
    aw.token = token;
    return aw;
}

TEST(Aws, SubroutinesAreCachedPerEncoding)
{
    AssistWarpStore aws({6, 20});
    const Codec &bdi = getCodec(Algorithm::Bdi);
    std::uint8_t line[kLineSize];

    generateProfileLine(DataProfile::Pointer, 1, 0, line);
    const CompressedLine a = bdi.compress(line);
    const auto &r1 = aws.decompressRoutine(bdi, a);
    const auto &r2 = aws.decompressRoutine(bdi, a);
    EXPECT_EQ(&r1, &r2);    // stable storage, one SR.ID

    generateProfileLine(DataProfile::Zeros, 1, 0, line);
    const CompressedLine z = bdi.compress(line);
    aws.decompressRoutine(bdi, z);
    EXPECT_GE(aws.numSubroutines(), 2);
}

TEST(Aws, SubroutineShapeMatchesCost)
{
    AssistWarpStore aws({6, 20});
    const Codec &bdi = getCodec(Algorithm::Bdi);
    std::uint8_t line[kLineSize];
    generateProfileLine(DataProfile::Pointer, 1, 0, line);
    const CompressedLine cl = bdi.compress(line);
    const SubroutineCost cost = bdi.decompressCost(cl);
    const auto &code = aws.decompressRoutine(bdi, cl);
    // MOVE + (mem_ops-1) loads + alu_ops + 1 store.
    EXPECT_EQ(static_cast<int>(code.size()),
              1 + cost.alu_ops + cost.mem_ops);
    int mem = 0;
    for (const AssistInstr &i : code)
        mem += i.is_mem;
    EXPECT_EQ(mem, cost.mem_ops);
    // The final store carries the memory latency.
    EXPECT_TRUE(code.back().is_mem);
    EXPECT_EQ(code.back().latency, 20);
}

TEST(Aws, CompressionRoutinesCostMoreForComplexAlgorithms)
{
    AssistWarpStore aws({6, 20});
    const auto &bdi = aws.compressRoutine(getCodec(Algorithm::Bdi));
    const auto &fpc = aws.compressRoutine(getCodec(Algorithm::Fpc));
    const auto &cpk = aws.compressRoutine(getCodec(Algorithm::CPack));
    EXPECT_LT(bdi.size(), fpc.size());
    EXPECT_LE(fpc.size(), cpk.size());
}

TEST(Awc, TriggerTrackReap)
{
    CabaConfig cfg;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}, {true, 20}};
    EXPECT_TRUE(awc.trigger(makeWarp(&code, AssistPriority::High)));
    ASSERT_EQ(awc.table().size(), 1u);

    // Simulate issuing both instructions.
    AssistWarp &aw = awc.table()[0];
    aw.ready_at = 5;
    aw.next = 2;

    std::vector<AssistWarp> done;
    awc.reapFinished(4, &done);
    EXPECT_TRUE(done.empty());      // latency not elapsed
    awc.reapFinished(5, &done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(awc.table().empty());
    EXPECT_EQ(awc.stats().get("completions"), 1u);
}

TEST(Awc, AwtCapacityRejects)
{
    CabaConfig cfg;
    cfg.awt_entries = 2;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}};
    EXPECT_TRUE(awc.trigger(makeWarp(&code, AssistPriority::High)));
    EXPECT_TRUE(awc.trigger(makeWarp(&code, AssistPriority::High)));
    EXPECT_FALSE(awc.trigger(makeWarp(&code, AssistPriority::High)));
    EXPECT_EQ(awc.stats().get("awt_full_rejections"), 1u);
}

TEST(Awc, AwbStagesOnlyTwoLowPriorityWarps)
{
    CabaConfig cfg;
    cfg.awb_low_slots = 2;
    cfg.throttle = false;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}};
    for (int i = 0; i < 4; ++i)
        awc.trigger(makeWarp(&code, AssistPriority::Low));
    int eligible = 0;
    for (const AssistWarp &aw : awc.table())
        eligible += awc.eligible(aw);
    EXPECT_EQ(eligible, 2);
}

TEST(Awc, HighPriorityAlwaysEligible)
{
    CabaConfig cfg;
    cfg.throttle = true;
    cfg.throttle_idle_floor = 0.5;
    AssistWarpController awc(cfg);
    // Saturate the window with used slots: idle fraction 0.
    for (int i = 0; i < cfg.throttle_window; ++i)
        awc.noteIssueSlot(true);
    const std::vector<AssistInstr> code = {{false, 1}};
    awc.trigger(makeWarp(&code, AssistPriority::High));
    awc.trigger(makeWarp(&code, AssistPriority::Low));
    EXPECT_TRUE(awc.eligible(awc.table()[0]));
    EXPECT_FALSE(awc.eligible(awc.table()[1]));     // throttled
}

TEST(Awc, ThrottleReleasesWhenIdle)
{
    CabaConfig cfg;
    cfg.throttle_idle_floor = 0.25;
    AssistWarpController awc(cfg);
    for (int i = 0; i < cfg.throttle_window; ++i)
        awc.noteIssueSlot(i % 2 == 0);  // 50% idle
    EXPECT_NEAR(awc.idleFraction(), 0.5, 0.01);
    const std::vector<AssistInstr> code = {{false, 1}};
    awc.trigger(makeWarp(&code, AssistPriority::Low));
    EXPECT_TRUE(awc.eligible(awc.table()[0]));
}

TEST(Awc, KillByTokenFlushesEntries)
{
    CabaConfig cfg;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}};
    awc.trigger(makeWarp(&code, AssistPriority::High, 7));
    awc.trigger(makeWarp(&code, AssistPriority::High, 9));
    awc.trigger(makeWarp(&code, AssistPriority::High, 7));
    // Purpose must match as well as the token.
    EXPECT_EQ(awc.killByToken(7, AssistPurpose::Compress), 0);
    EXPECT_EQ(awc.killByToken(7, AssistPurpose::DecompressFill), 2);
    ASSERT_EQ(awc.table().size(), 1u);
    EXPECT_EQ(awc.table()[0].token, 9u);
}

TEST(Awc, EligibilityMatchesReferenceScanUnderChurn)
{
    // eligible() keeps the low-priority staging order incrementally
    // (O(1)) instead of rescanning the AWT. Drive the controller through
    // a randomized trigger/reap/kill churn and check every entry against
    // a literal reimplementation of the scan it replaced.
    CabaConfig cfg;
    cfg.awt_entries = 16;
    cfg.awb_low_slots = 2;
    cfg.throttle = false;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}};

    std::uint64_t rng = 12345;
    const auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };

    Cycle now = 0;
    for (int step = 0; step < 500; ++step) {
        const std::uint64_t roll = next() % 10;
        if (roll < 6) {
            const AssistPriority prio = next() % 2 == 0
                                            ? AssistPriority::High
                                            : AssistPriority::Low;
            awc.trigger(makeWarp(&code, prio, next() % 4));
        } else if (roll < 8 && !awc.table().empty()) {
            // Finish a random entry and reap it.
            AssistWarp &aw = awc.table()[next() % awc.table().size()];
            aw.next = static_cast<int>(code.size());
            aw.ready_at = now;
            std::vector<AssistWarp> done;
            awc.reapFinished(now, &done);
        } else {
            awc.killByToken(next() % 4, AssistPurpose::DecompressFill);
        }
        ++now;

        // Reference: the first awb_low_slots low-priority entries in
        // table order hold the staging slots (the pre-fix scan).
        int low_seen = 0;
        for (const AssistWarp &aw : awc.table()) {
            bool ref = true;
            if (aw.priority == AssistPriority::Low) {
                ref = low_seen < cfg.awb_low_slots;
                ++low_seen;
            }
            ASSERT_EQ(awc.eligible(aw), ref)
                << "step " << step << " id " << aw.id;
        }
    }
}

TEST(Awc, ZeroLowSlotsBlocksAllLowPriorityWarps)
{
    CabaConfig cfg;
    cfg.awb_low_slots = 0;
    cfg.throttle = false;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}};
    awc.trigger(makeWarp(&code, AssistPriority::Low));
    awc.trigger(makeWarp(&code, AssistPriority::High));
    EXPECT_FALSE(awc.eligible(awc.table()[0]));
    EXPECT_TRUE(awc.eligible(awc.table()[1]));
}

TEST(Awc, ReapBeforeSpawnIsASimulatorBug)
{
    // The old code silently clamped a negative latency to zero; now a
    // time-travelling completion aborts instead of polluting the
    // latency distribution.
    CabaConfig cfg;
    AssistWarpController awc(cfg);
    const std::vector<AssistInstr> code = {{false, 1}};
    AssistWarp aw = makeWarp(&code, AssistPriority::High);
    aw.spawned = 100;
    awc.trigger(aw);
    awc.table()[0].next = static_cast<int>(code.size());
    awc.table()[0].ready_at = 0;
    std::vector<AssistWarp> done;
    EXPECT_DEATH(awc.reapFinished(50, &done),
                 "completed before its spawn");
}

TEST(Awc, IdleWindowIsSliding)
{
    CabaConfig cfg;
    cfg.throttle_window = 8;
    AssistWarpController awc(cfg);
    for (int i = 0; i < 8; ++i)
        awc.noteIssueSlot(false);
    EXPECT_NEAR(awc.idleFraction(), 1.0, 1e-9);
    for (int i = 0; i < 8; ++i)
        awc.noteIssueSlot(true);
    EXPECT_NEAR(awc.idleFraction(), 0.0, 1e-9);
}

} // namespace
} // namespace caba
