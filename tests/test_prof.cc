/**
 * @file
 * Observability-layer tests (DESIGN.md section 11): the caba-prof-v1
 * document schema, the profiler's determinism contract (RunResult
 * bit-identical with CABA_PROF on or off, in both run-loop modes), the
 * exactness of the per-slot cycle taxonomy, and the profiling assist
 * warp's lifecycle.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/prof.h"
#include "gpu/gpu_system.h"
#include "harness/runner.h"
#include "mini_json.h"

namespace caba {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

AppDescriptor
tinyApp(const char *name = "CONS")
{
    AppDescriptor app = findApp(name);
    app.iterations = 8;
    app.footprint = 2ull << 20;
    return app;
}

RunResult
runSystem(const DesignConfig &design, bool event_driven,
          const ExtrasConfig *extras = nullptr, const char *app_name = "CONS")
{
    GpuConfig cfg;
    cfg.event_driven = event_driven;
    cfg.sample_interval = 512;
    if (extras != nullptr)
        cfg.extras = *extras;
    const AppDescriptor app = tinyApp(app_name);
    Workload wl(app);
    const int warps = 12;
    wl.bindGrid(warps * cfg.num_sms);
    GpuSystem gpu(cfg, design, wl.lineGenerator());
    gpu.launch(&wl, warps);
    return gpu.run();
}

/** Field-by-field equality over everything RunResult exposes. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.bw_utilization, b.bw_utilization);
    EXPECT_EQ(a.compression_ratio, b.compression_ratio);
    EXPECT_EQ(a.energy.total, b.energy.total);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    ASSERT_EQ(a.stats.allDists().size(), b.stats.allDists().size());
    for (const auto &[name, dist] : a.stats.allDists()) {
        const Distribution *other = b.stats.findDist(name);
        ASSERT_NE(other, nullptr) << name;
        EXPECT_TRUE(dist == *other) << name;
    }
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].cycle, b.timeline[i].cycle) << i;
        EXPECT_EQ(a.timeline[i].instructions, b.timeline[i].instructions)
            << i;
    }
}

class ProfTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prof::resetForTest();
    }

    void
    TearDown() override
    {
        // Never leak the env knob (or table contents) into other tests.
        ::unsetenv("CABA_PROF");
        prof::resetForTest();
    }
};

TEST_F(ProfTest, SnapshotOrderIsFixed)
{
    const auto buckets = prof::snapshot();
    ASSERT_EQ(static_cast<int>(buckets.size()), prof::kBuckets);
    for (int c = 0; c < prof::kComps; ++c) {
        for (int p = 0; p < prof::kPhases; ++p) {
            const prof::Bucket &b =
                buckets[static_cast<std::size_t>(c * prof::kPhases + p)];
            EXPECT_EQ(static_cast<int>(b.comp), c);
            EXPECT_EQ(static_cast<int>(b.phase), p);
            EXPECT_EQ(b.ns, 0);
            EXPECT_EQ(b.calls, 0u);
        }
    }
}

TEST_F(ProfTest, RecorderFlushMergesIntoGlobalTable)
{
    prof::Recorder r;
    r.add(prof::Comp::Sm, prof::Phase::Cycle, 1000);
    r.add(prof::Comp::Sm, prof::Phase::Cycle, 500);
    r.add(prof::Comp::Loop, prof::Phase::Jump, 42);
    // Nothing global until flush.
    EXPECT_EQ(prof::snapshot()[0].calls, 0u);
    r.flush();
    const auto buckets = prof::snapshot();
    EXPECT_EQ(buckets[0].ns, 1500);
    EXPECT_EQ(buckets[0].calls, 2u);
    const std::size_t loop_jump = static_cast<std::size_t>(
        static_cast<int>(prof::Comp::Loop) * prof::kPhases +
        static_cast<int>(prof::Phase::Jump));
    EXPECT_EQ(buckets[loop_jump].ns, 42);
    EXPECT_EQ(buckets[loop_jump].calls, 1u);
    // flush() zeroes the recorder: a second flush adds nothing.
    r.flush();
    EXPECT_EQ(prof::snapshot()[0].calls, 2u);
}

TEST_F(ProfTest, WriteReportEmitsCabaProfV1Schema)
{
    prof::Recorder r;
    r.add(prof::Comp::Partition, prof::Phase::CatchUp, 7);
    r.flush();

    const std::string path = testing::TempDir() + "caba_prof_schema.json";
    ASSERT_TRUE(prof::writeReport(path));

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(readFile(path), &doc));
    const minijson::Value *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "caba-prof-v1");

    const minijson::Value *entries = doc.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_TRUE(entries->isArray());
    // Every bucket always present, fixed (component, phase) order.
    ASSERT_EQ(entries->array.size(),
              static_cast<std::size_t>(prof::kBuckets));
    for (int i = 0; i < prof::kBuckets; ++i) {
        const minijson::Value &e =
            entries->array[static_cast<std::size_t>(i)];
        const minijson::Value *comp = e.find("component");
        const minijson::Value *phase = e.find("phase");
        ASSERT_NE(comp, nullptr) << i;
        ASSERT_NE(phase, nullptr) << i;
        EXPECT_EQ(comp->string,
                  prof::compName(static_cast<prof::Comp>(i / prof::kPhases)));
        EXPECT_EQ(phase->string, prof::phaseName(static_cast<prof::Phase>(
                                     i % prof::kPhases)));
        ASSERT_NE(e.find("ns"), nullptr) << i;
        ASSERT_NE(e.find("calls"), nullptr) << i;
    }
    const std::size_t part_catch_up = static_cast<std::size_t>(
        static_cast<int>(prof::Comp::Partition) * prof::kPhases +
        static_cast<int>(prof::Phase::CatchUp));
    EXPECT_EQ(entries->array[part_catch_up].find("ns")->number, 7.0);
    EXPECT_EQ(entries->array[part_catch_up].find("calls")->number, 1.0);

    const minijson::Value *self = doc.find("self_profile");
    ASSERT_NE(self, nullptr);
    std::remove(path.c_str());
}

TEST_F(ProfTest, ProfiledRunPopulatesBuckets)
{
    const std::string path = testing::TempDir() + "caba_prof_run.json";
    ASSERT_EQ(::setenv("CABA_PROF", path.c_str(), 1), 0);
    runSystem(DesignConfig::caba(), true);
    const auto buckets = prof::snapshot();
    std::uint64_t calls = 0;
    for (const prof::Bucket &b : buckets)
        calls += b.calls;
    EXPECT_GT(calls, 0u) << "profiled run attributed no time";
    // The whole-run loop/cycle bucket is inclusive: it dominates.
    const std::size_t loop_cycle = static_cast<std::size_t>(
        static_cast<int>(prof::Comp::Loop) * prof::kPhases +
        static_cast<int>(prof::Phase::Cycle));
    EXPECT_EQ(buckets[loop_cycle].calls, 1u);
    EXPECT_GT(buckets[loop_cycle].ns, 0);
    std::remove(path.c_str());
}

TEST_F(ProfTest, RunResultBitIdenticalProfilerOnOff)
{
    const std::string path = testing::TempDir() + "caba_prof_det.json";
    for (const bool ed : {true, false}) {
        SCOPED_TRACE(ed ? "event-driven" : "walk");
        ::unsetenv("CABA_PROF");
        const RunResult off = runSystem(DesignConfig::caba(), ed);
        ASSERT_EQ(::setenv("CABA_PROF", path.c_str(), 1), 0);
        const RunResult on = runSystem(DesignConfig::caba(), ed);
        ::unsetenv("CABA_PROF");
        expectIdentical(off, on);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------- taxonomy

std::uint64_t
slotSum(const RunResult &r)
{
    std::uint64_t sum = 0;
    for (int c = 0; c < kNumSlotCategories; ++c)
        sum += r.stats.get(std::string("sm_") +
                           kSlotCategoryNames[static_cast<std::size_t>(c)]);
    return sum;
}

TEST(Taxonomy, SlotCategoriesSumToCyclesTimesSlots)
{
    // The audit layer proves the identity per SM at drain; this checks
    // the exported aggregate on runs with very different stall mixes.
    struct Case { const char *app; DesignConfig design; };
    const Case cases[] = {
        {"CONS", DesignConfig::base()},
        {"CONS", DesignConfig::caba()},
        {"JPEG", DesignConfig::caba()},
        {"TRA", DesignConfig::hw()},
    };
    GpuConfig ref;
    const std::uint64_t slots =
        static_cast<std::uint64_t>(ref.sm.schedulers);
    for (const Case &c : cases) {
        SCOPED_TRACE(c.app);
        const RunResult r = runSystem(c.design, true, nullptr, c.app);
        const std::uint64_t accounted =
            r.stats.get("sm_slot_cycles_accounted");
        EXPECT_GT(accounted, 0u);
        EXPECT_EQ(slotSum(r), accounted * slots);
        // The reserved barrier category must stay zero (no barrier ops
        // in this ISA) and the AW ledger must match the AW slot count.
        EXPECT_EQ(r.stats.get("sm_slot_sync"), 0u);
        EXPECT_EQ(r.stats.get("sm_aw_slots_decompress_fill") +
                      r.stats.get("sm_aw_slots_decompress_hit") +
                      r.stats.get("sm_aw_slots_compress") +
                      r.stats.get("sm_aw_slots_memoize") +
                      r.stats.get("sm_aw_slots_prefetch") +
                      r.stats.get("sm_aw_slots_profile"),
                  r.stats.get("sm_slot_aw_issued"));
    }
}

TEST(Taxonomy, ExactCategoriesRefineLegacyBreakdown)
{
    // The legacy per-cycle classifier and the exact per-slot taxonomy
    // must agree on the big picture: a cycle is "active" iff at least
    // one slot issued, so active cycles <= issued slots and every
    // issued instruction occupies exactly one slot.
    const RunResult r = runSystem(DesignConfig::caba(), true);
    const std::uint64_t issued = r.stats.get("sm_slot_issued") +
                                 r.stats.get("sm_slot_aw_issued");
    EXPECT_GE(issued, r.breakdown.active);
    EXPECT_EQ(r.stats.get("sm_slot_issued"), r.instructions);
}

// ------------------------------------------------- profiling assist warp

TEST(ProfileAw, LifecycleSpawnsSamplesAndStats)
{
    ExtrasConfig extras;
    extras.profile = true;
    extras.profile_interval = 64;
    const RunResult r =
        runSystem(DesignConfig::caba(), true, &extras);

    const std::uint64_t warps = r.stats.get("sm_profile_warps");
    const std::uint64_t samples = r.stats.get("sm_profile_samples");
    EXPECT_GT(warps, 0u) << "no profiling assist warps spawned";
    EXPECT_GT(samples, 0u) << "no profiling warp completed";
    EXPECT_LE(samples, warps);
    EXPECT_GT(r.stats.get("sm_aw_slots_profile"), 0u)
        << "profiling warps issued no instructions";

    // One stall-vector sample per reaped warp, in every distribution.
    const Distribution *ready =
        r.stats.findDist("sm_aw_profile_ready_warps");
    const Distribution *blocked =
        r.stats.findDist("sm_aw_profile_blocked_warps");
    const Distribution *mem =
        r.stats.findDist("sm_aw_profile_mem_blocked_warps");
    ASSERT_NE(ready, nullptr);
    ASSERT_NE(blocked, nullptr);
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(ready->count(), samples);
    EXPECT_EQ(blocked->count(), samples);
    EXPECT_EQ(mem->count(), samples);
    // A mem-blocked warp is a blocked warp; the sample maxima nest.
    EXPECT_LE(mem->max(), blocked->max());
}

TEST(ProfileAw, DeterministicAcrossRunLoopModes)
{
    ExtrasConfig extras;
    extras.profile = true;
    extras.profile_interval = 128;
    const RunResult event = runSystem(DesignConfig::caba(), true, &extras);
    const RunResult walk = runSystem(DesignConfig::caba(), false, &extras);
    const RunResult again = runSystem(DesignConfig::caba(), true, &extras);
    expectIdentical(event, walk);
    expectIdentical(event, again);
}

TEST(ProfileAw, OffByDefault)
{
    const RunResult r = runSystem(DesignConfig::caba(), true);
    EXPECT_EQ(r.stats.get("sm_profile_warps"), 0u);
    EXPECT_EQ(r.stats.get("sm_profile_samples"), 0u);
    EXPECT_EQ(r.stats.get("sm_aw_slots_profile"), 0u);
}

} // namespace
} // namespace caba
