/**
 * @file
 * Crossbar unit tests: delivery, latency, per-output port bandwidth in
 * flits (how interconnect compression saves cycles), round-robin
 * fairness, and backpressure.
 */
#include <gtest/gtest.h>

#include "mem/xbar.h"

namespace caba {
namespace {

MemRequest
makeReq(int payload, Addr line = 0)
{
    MemRequest r;
    r.line = line;
    r.payload_bytes = payload;
    return r;
}

TEST(Xbar, DeliversAfterLatencyPlusSerialization)
{
    XbarConfig cfg;
    XbarDirection x(2, 2, cfg);
    x.push(0, 1, makeReq(kLineSize));   // 4 flits at 128B
    Cycle now = 0;
    while (!x.hasDelivery(1, now)) {
        x.cycle(now);
        ++now;
        ASSERT_LT(now, 100u);
    }
    // 4 flits of serialization + cfg.latency, plus one cycle of slack
    // for the arbitration step.
    EXPECT_GE(now, static_cast<Cycle>(4 + cfg.latency));
    EXPECT_LE(now, static_cast<Cycle>(4 + cfg.latency + 2));
    EXPECT_EQ(x.popDelivery(1).payload_bytes, kLineSize);
}

TEST(Xbar, CompressedPacketsUseFewerFlitCycles)
{
    XbarConfig cfg;
    auto drain_time = [&](int payload, int packets) {
        XbarDirection x(1, 1, cfg);
        Cycle now = 0;
        int delivered = 0;
        int pushed = 0;
        while (delivered < packets) {
            while (pushed < packets && x.canPush(0)) {
                x.push(0, 0, makeReq(payload));
                ++pushed;
            }
            x.cycle(now);
            while (x.hasDelivery(0, now)) {
                x.popDelivery(0);
                ++delivered;
            }
            ++now;
            EXPECT_LT(now, 10000u);
        }
        return now;
    };
    const Cycle full = drain_time(kLineSize, 64);       // 4 flits each
    const Cycle quarter = drain_time(kLineSize / 4, 64); // 1 flit each
    EXPECT_GT(static_cast<double>(full),
              2.5 * static_cast<double>(quarter));
}

TEST(Xbar, RoundRobinServesAllInputs)
{
    XbarConfig cfg;
    XbarDirection x(4, 1, cfg);
    for (int in = 0; in < 4; ++in)
        for (int k = 0; k < 4; ++k)
            x.push(in, 0, makeReq(32, static_cast<Addr>(in)));
    Cycle now = 0;
    int seen[4] = {0, 0, 0, 0};
    int total = 0;
    while (total < 16) {
        x.cycle(now);
        while (x.hasDelivery(0, now)) {
            ++seen[x.popDelivery(0).line];
            ++total;
        }
        ++now;
        ASSERT_LT(now, 1000u);
    }
    for (int in = 0; in < 4; ++in)
        EXPECT_EQ(seen[in], 4);
}

TEST(Xbar, InputBackpressure)
{
    XbarConfig cfg;
    cfg.input_queue = 4;
    XbarDirection x(1, 1, cfg);
    int pushed = 0;
    while (x.canPush(0)) {
        x.push(0, 0, makeReq(32));
        ++pushed;
    }
    EXPECT_EQ(pushed, 4);
}

TEST(Xbar, FlitsCounted)
{
    XbarConfig cfg;
    XbarDirection x(1, 1, cfg);
    x.push(0, 0, makeReq(kLineSize));       // 4 flits
    x.push(0, 0, makeReq(8));               // header: 1 flit
    Cycle now = 0;
    while (x.busy()) {
        x.cycle(now);
        while (x.hasDelivery(0, now))
            x.popDelivery(0);
        ++now;
        ASSERT_LT(now, 1000u);
    }
    EXPECT_EQ(x.stats().get("flits"), 5u);
    EXPECT_EQ(x.stats().get("packets"), 2u);
}

TEST(Request, FlitMath)
{
    EXPECT_EQ(makeReq(1).flits(), 1);
    EXPECT_EQ(makeReq(32).flits(), 1);
    EXPECT_EQ(makeReq(33).flits(), 2);
    EXPECT_EQ(makeReq(kLineSize).flits(), kLineSize / 32);
    EXPECT_EQ(makeReq(0).flits(), 1);   // header-only packets
}

} // namespace
} // namespace caba
