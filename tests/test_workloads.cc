/**
 * @file
 * Workload layer tests: occupancy math (Figure 2 machinery), program
 * construction, address-stream behaviour (coalescing, grid-stride,
 * footprint wrap), and the application pool's structural invariants.
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "compress/registry.h"
#include "workloads/occupancy.h"
#include "workloads/workload.h"

namespace caba {
namespace {

TEST(Occupancy, RegisterLimited)
{
    OccupancyParams p;
    p.regs_per_thread = 32;
    p.threads_per_block = 256;
    const OccupancyResult r = computeOccupancy(p);
    // 256*32 = 8192 regs/block; 32768/8192 = 4 blocks.
    EXPECT_EQ(r.blocks_per_sm, 4);
    EXPECT_EQ(r.warps_per_sm, 32);
    EXPECT_NEAR(r.unallocated_reg_fraction, 0.0, 1e-9);
}

TEST(Occupancy, ThreadLimited)
{
    OccupancyParams p;
    p.regs_per_thread = 16;
    p.threads_per_block = 512;
    const OccupancyResult r = computeOccupancy(p);
    // Thread limit: 1536/512 = 3 blocks; registers would allow 4.
    EXPECT_EQ(r.blocks_per_sm, 3);
    EXPECT_NEAR(r.unallocated_reg_fraction, 0.25, 1e-9);
}

TEST(Occupancy, BlockLimited)
{
    OccupancyParams p;
    p.regs_per_thread = 20;
    p.threads_per_block = 96;
    const OccupancyResult r = computeOccupancy(p);
    EXPECT_EQ(r.blocks_per_sm, 8);      // hard block limit
    EXPECT_GT(r.unallocated_reg_fraction, 0.5);
}

TEST(Occupancy, AssistRegistersMayFitFreePool)
{
    OccupancyParams p;
    p.regs_per_thread = 16;
    p.threads_per_block = 512;
    p.assist_regs_per_thread = 2;
    const OccupancyResult r = computeOccupancy(p);
    // 3 blocks * 512 * 18 = 27648 <= 32768: still 3 blocks.
    EXPECT_EQ(r.blocks_per_sm, 3);
    EXPECT_TRUE(r.assist_fits_free);
}

TEST(Occupancy, AssistRegistersMayCostABlock)
{
    OccupancyParams p;
    p.regs_per_thread = 32;     // exactly 4 blocks at 256 threads
    p.threads_per_block = 256;
    p.assist_regs_per_thread = 2;
    const OccupancyResult r = computeOccupancy(p);
    EXPECT_EQ(r.blocks_per_sm, 3);
    EXPECT_FALSE(r.assist_fits_free);
}

TEST(Workload, ProgramIsWellFormed)
{
    for (const AppDescriptor &app : allApps()) {
        Workload wl(app);
        const Program &prog = wl.program();
        EXPECT_GT(prog.size(), 2) << app.name;
        EXPECT_LE(prog.numRegs(), 64) << app.name;
        // Mix matches the descriptor.
        int loads = 0, stores = 0, alu = 0, sfu = 0;
        for (const Instruction &inst : prog.instructions()) {
            loads += inst.op == Opcode::LdGlobal;
            stores += inst.op == Opcode::StGlobal;
            alu += inst.op == Opcode::AluInt || inst.op == Opcode::AluFp;
            sfu += inst.op == Opcode::Sfu;
        }
        EXPECT_EQ(loads, app.loads) << app.name;
        EXPECT_EQ(stores, app.stores) << app.name;
        EXPECT_EQ(alu, app.alu) << app.name;
        EXPECT_EQ(sfu, app.sfu) << app.name;
    }
}

TEST(Workload, StreamingAccessesAreFullyCoalesced)
{
    Workload wl(findApp("CONS"));   // 4B streaming
    MemAccess acc;
    wl.genLines(0, 0, 0, &acc);
    // 32 lanes x 4B = 128B = exactly one line.
    EXPECT_EQ(acc.lines.size(), 1u);
    EXPECT_TRUE(acc.full_line);
}

TEST(Workload, IrregularAccessesScatter)
{
    Workload wl(findApp("bfs"));
    MemAccess acc;
    wl.genLines(0, 0, 0, &acc);
    EXPECT_GT(acc.lines.size(), 8u);    // most lanes hit distinct lines
    EXPECT_FALSE(acc.full_line);
}

TEST(Workload, GridStrideMakesNeighborsAdjacent)
{
    Workload wl(findApp("CONS"));
    wl.bindGrid(720);
    MemAccess a0, a1;
    wl.genLines(0, 0, 0, &a0);
    wl.genLines(0, 1, 0, &a1);
    ASSERT_EQ(a0.lines.size(), 1u);
    ASSERT_EQ(a1.lines.size(), 1u);
    EXPECT_EQ(a1.lines[0], a0.lines[0] + kLineSize);
}

TEST(Workload, FootprintWrapsAddresses)
{
    AppDescriptor app = findApp("CONS");
    app.footprint = 64 * kLineSize;
    Workload wl(app);
    wl.bindGrid(720);
    std::set<Addr> lines;
    MemAccess acc;
    for (int iter = 0; iter < app.iterations; ++iter) {
        for (int w = 0; w < 720; w += 37) {
            wl.genLines(0, w, iter, &acc);
            lines.insert(acc.lines.begin(), acc.lines.end());
        }
    }
    EXPECT_LE(lines.size(), 64u);
}

TEST(Workload, LinesAreDeduplicated)
{
    for (const AppDescriptor &app : allApps()) {
        Workload wl(app);
        MemAccess acc;
        wl.genLines(0, 5, 3, &acc);
        std::set<Addr> uniq(acc.lines.begin(), acc.lines.end());
        EXPECT_EQ(uniq.size(), acc.lines.size()) << app.name;
        for (Addr l : acc.lines)
            EXPECT_EQ(l % kLineSize, 0u) << app.name;
    }
}

TEST(Workload, StoresAndLoadsUseDisjointRegions)
{
    Workload wl(findApp("PVC"));
    MemAccess ld, st;
    wl.genLines(0, 0, 0, &ld);
    wl.genLines(findApp("PVC").loads, 0, 0, &st);   // first store stream
    for (Addr a : ld.lines)
        for (Addr b : st.lines)
            EXPECT_NE(a, b);
}

TEST(AppPool, StructuralInvariants)
{
    int fig1 = 0, fig1_mem = 0, compression = 0;
    std::set<std::string> names;
    for (const AppDescriptor &app : allApps()) {
        EXPECT_TRUE(names.insert(app.name).second) << "duplicate name";
        fig1 += app.in_fig1;
        fig1_mem += app.in_fig1 && app.memory_bound;
        compression += app.in_compression;
        EXPECT_GT(app.loads + app.alu + app.sfu, 0) << app.name;
        EXPECT_GT(app.iterations, 0) << app.name;
    }
    // Paper Section 2: 27 apps in Figure 1, 17 of them memory-bound.
    EXPECT_EQ(fig1, 27);
    EXPECT_EQ(fig1_mem, 17);
    // Paper Section 5: 20 apps in the compression study.
    EXPECT_EQ(compression, 20);
}

TEST(AppPool, IncompressibleAppsExcludedFromStudy)
{
    EXPECT_FALSE(findApp("sc").in_compression);
    EXPECT_FALSE(findApp("SCP").in_compression);
}

TEST(Workload, OutputLinesAreCompressible)
{
    // Store data must follow the app's profile, not noise: PVC output
    // lines should compress well under BDI.
    Workload wl(findApp("PVC"));
    std::uint8_t line[kLineSize];
    std::uint64_t bytes = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        wl.outputLine(static_cast<Addr>(i) * kLineSize, line);
        bytes += static_cast<std::uint64_t>(
            getCodec(Algorithm::Bdi).compress(line).size());
    }
    EXPECT_LT(static_cast<double>(bytes) / n, 0.8 * kLineSize);
}

} // namespace
} // namespace caba
