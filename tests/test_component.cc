/**
 * @file
 * The Clocked/Port primitives: Channel capacity semantics (canPush
 * gates, push never refuses), Wire pumping under backpressure, and the
 * kNoWork sentinel contract.
 */
#include <gtest/gtest.h>

#include "common/component.h"

namespace caba {
namespace {

TEST(Channel, CapacityGatesCanPushNotPush)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.canPush());
    ch.push(1);
    ch.push(2);
    EXPECT_FALSE(ch.canPush());
    EXPECT_FALSE(ch.canAccept());
    // Producers with reserved slots may exceed the advertised capacity,
    // exactly like the hand-rolled deques the Channel replaced.
    ch.push(3);
    EXPECT_EQ(ch.size(), 3u);
    EXPECT_EQ(ch.front(), 1);
}

TEST(Channel, UnboundedByDefault)
{
    Channel<int> ch;
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(ch.canPush());
        ch.push(i);
    }
    EXPECT_EQ(ch.size(), 1000u);
}

TEST(Channel, SourceSinkFacesMatchDequeOps)
{
    Channel<int> ch(4);
    ch.accept(7, 0);
    ch.accept(8, 0);
    EXPECT_TRUE(ch.hasData(0));
    EXPECT_EQ(ch.take(), 7);
    EXPECT_EQ(ch.take(), 8);
    EXPECT_FALSE(ch.hasData(0));
}

TEST(Wire, PumpsUntilBackpressure)
{
    Channel<int> src;
    Channel<int> dst(2);
    for (int i = 0; i < 5; ++i)
        src.push(i);
    Wire<int> w{&src, &dst};
    w.pump(0);
    // Two fit; three stay queued at the source.
    EXPECT_EQ(dst.size(), 2u);
    EXPECT_EQ(src.size(), 3u);
    EXPECT_EQ(dst.take(), 0);
    EXPECT_EQ(dst.take(), 1);
    w.pump(1);
    EXPECT_EQ(dst.size(), 2u);
    EXPECT_EQ(src.size(), 1u);
}

TEST(Wire, EmptySourceIsNoOp)
{
    Channel<int> src;
    Channel<int> dst(1);
    Wire<int> w{&src, &dst};
    w.pump(0);
    EXPECT_TRUE(dst.empty());
}

TEST(Clocked, NoWorkSentinelIsMaximal)
{
    EXPECT_EQ(kNoWork, ~Cycle{0});
    EXPECT_GT(kNoWork, Cycle{1} << 62);
}

} // namespace
} // namespace caba
