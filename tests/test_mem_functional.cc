/**
 * @file
 * Backing store + compression model tests: copy-on-write semantics,
 * version tracking, memoization correctness across writes, and the
 * round-trip verification gate.
 */
#include <cstring>

#include <gtest/gtest.h>

#include "mem/backing_store.h"
#include "mem/compression_model.h"
#include "workloads/data_profile.h"

namespace caba {
namespace {

LineGenerator
smallIntGen()
{
    return [](Addr line, std::uint8_t *out) {
        generateProfileLine(DataProfile::SmallInt, 11, line, out);
    };
}

TEST(BackingStore, PristineReadsAreDeterministic)
{
    BackingStore a(smallIntGen()), b(smallIntGen());
    std::uint8_t la[kLineSize], lb[kLineSize];
    for (Addr line = 0; line < 10 * kLineSize; line += kLineSize) {
        a.read(line, la);
        b.read(line, lb);
        EXPECT_EQ(std::memcmp(la, lb, kLineSize), 0);
    }
    EXPECT_EQ(a.dirtyLines(), 0u);
}

TEST(BackingStore, WriteOverlaysAndBumpsVersion)
{
    BackingStore s(smallIntGen());
    std::uint8_t buf[kLineSize];
    std::memset(buf, 0x5A, kLineSize);
    EXPECT_EQ(s.version(0), 0u);
    s.write(0, buf);
    EXPECT_EQ(s.version(0), 1u);
    std::uint8_t out[kLineSize];
    s.read(0, out);
    EXPECT_EQ(std::memcmp(buf, out, kLineSize), 0);
    EXPECT_EQ(s.dirtyLines(), 1u);
    // Other lines unaffected.
    EXPECT_EQ(s.version(kLineSize), 0u);
}

TEST(BackingStore, PartialWriteMutatesOnlyRange)
{
    BackingStore s(smallIntGen());
    std::uint8_t before[kLineSize], after[kLineSize];
    s.read(0, before);
    s.writePartial(0, 32, 16);
    s.read(0, after);
    EXPECT_EQ(std::memcmp(before, after, 32), 0);
    EXPECT_EQ(std::memcmp(before + 48, after + 48, kLineSize - 48), 0);
    EXPECT_NE(std::memcmp(before + 32, after + 32, 16), 0);
    EXPECT_EQ(s.version(0), 1u);
}

TEST(CompressionModel, MemoizesByVersion)
{
    BackingStore s(smallIntGen());
    CompressionModel m(s, Algorithm::Bdi, true);
    const int size1 = m.compressedSize(0);
    const int size2 = m.compressedSize(0);
    EXPECT_EQ(size1, size2);
    EXPECT_EQ(m.stats().get("lines_compressed"), 1u);

    std::uint8_t buf[kLineSize] = {};
    s.write(0, buf);
    EXPECT_EQ(m.compressedSize(0), 1);  // all-zero: BDI Zeros encoding
    EXPECT_EQ(m.stats().get("lines_compressed"), 2u);
}

TEST(CompressionModel, BurstsMatchSize)
{
    BackingStore s(smallIntGen());
    CompressionModel m(s, Algorithm::Bdi, true);
    for (Addr line = 0; line < 64 * kLineSize; line += kLineSize) {
        const int bytes = m.compressedSize(line);
        EXPECT_EQ(m.bursts(line),
                  static_cast<int>(divCeil(bytes, kBurstSize)));
    }
}

TEST(CompressionModel, DisabledModelReportsFullSize)
{
    BackingStore s(smallIntGen());
    CompressionModel m(s, Algorithm::None, false);
    EXPECT_FALSE(m.enabled());
    EXPECT_EQ(m.compressedSize(0), kLineSize);
    EXPECT_EQ(m.bursts(0), kBurstsPerLine);
}

TEST(CompressionModel, TracksAggregateRatio)
{
    BackingStore s([](Addr, std::uint8_t *out) {
        std::memset(out, 0, kLineSize);     // everything compresses to 1B
    });
    CompressionModel m(s, Algorithm::Bdi, true);
    for (Addr line = 0; line < 32 * kLineSize; line += kLineSize)
        m.lookup(line);
    EXPECT_EQ(m.stats().get("compressed_bursts"), 32u);
    EXPECT_EQ(m.stats().get("uncompressed_bursts"),
              32u * kBurstsPerLine);
}

TEST(CompressionModel, MemoIsBoundedAndReportsPeak)
{
    BackingStore s(smallIntGen());
    CompressionModel m(s, Algorithm::Bdi, true, /*memo_cap=*/8);
    for (Addr line = 0; line < 64 * kLineSize; line += kLineSize)
        m.lookup(line);
    EXPECT_LE(m.memoEntries(), 8u);
    EXPECT_EQ(m.memoCapacity(), 8u);
    EXPECT_EQ(m.stats().get("memo_evictions"), 64u - 8u);
    EXPECT_EQ(m.stats().get("memo_peak_entries"), 8u);
    EXPECT_GT(m.stats().get("memo_peak_bytes"), 0u);
    // Eviction is purely a caching concern: every line was still
    // compressed exactly once.
    EXPECT_EQ(m.stats().get("lines_compressed"), 64u);
}

TEST(CompressionModel, MemoEvictsLeastRecentlyUsed)
{
    BackingStore s(smallIntGen());
    CompressionModel m(s, Algorithm::Bdi, true, /*memo_cap=*/2);
    const Addr a = 0, b = kLineSize, c = 2 * kLineSize;
    m.lookup(a);
    m.lookup(b);
    m.lookup(a);                // refresh a: b is now the LRU victim
    m.lookup(c);                // evicts b, not a
    EXPECT_EQ(m.stats().get("lines_compressed"), 3u);
    m.lookup(a);                // still memoized: no recompression
    EXPECT_EQ(m.stats().get("lines_compressed"), 3u);
    m.lookup(b);                // was evicted: recompressed
    EXPECT_EQ(m.stats().get("lines_compressed"), 4u);
    EXPECT_EQ(m.stats().get("memo_evictions"), 2u);
}

TEST(CompressionModel, EvictedLinesRecompressCorrectlyAfterWrites)
{
    BackingStore s(smallIntGen());
    CompressionModel m(s, Algorithm::Bdi, true, /*memo_cap=*/4);
    // Mutate lines while the memo churns; verify=true round-trips every
    // compression, so any stale image would panic.
    for (int pass = 0; pass < 3; ++pass)
        for (Addr line = 0; line < 16 * kLineSize; line += kLineSize) {
            s.writePartial(line, 8 * pass, 8);
            EXPECT_GT(m.compressedSize(line), 0);
        }
    EXPECT_LE(m.memoEntries(), 4u);
}

} // namespace
} // namespace caba
