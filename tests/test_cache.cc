/**
 * @file
 * Unit tests for the set-associative cache model, including the
 * compressed-cache variant of Section 6.5 (tag_factor > 1: more tags,
 * same per-set byte budget).
 */
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/md_cache.h"

namespace caba {
namespace {

Addr
lineN(int set, int n, int num_sets)
{
    return (static_cast<Addr>(n) * num_sets + set) * kLineSize;
}

TEST(Cache, MissThenHit)
{
    Cache c({16 * 1024, 4, 1});
    EXPECT_FALSE(c.access(0));
    std::vector<Eviction> ev;
    c.insert(0, kLineSize, false, &ev);
    EXPECT_TRUE(ev.empty());
    EXPECT_TRUE(c.access(0));
    EXPECT_EQ(c.stats().get("hits"), 1u);
    EXPECT_EQ(c.stats().get("misses"), 1u);
}

TEST(Cache, ContainsDoesNotCount)
{
    Cache c({16 * 1024, 4, 1});
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.stats().get("misses"), 0u);
    std::vector<Eviction> ev;
    c.insert(0, kLineSize, false, &ev);
    EXPECT_TRUE(c.contains(0));
    EXPECT_EQ(c.stats().get("hits"), 0u);
}

TEST(Cache, LruEvictionOrder)
{
    Cache c({16 * 1024, 4, 1});
    const int sets = c.numSets();
    std::vector<Eviction> ev;
    for (int n = 0; n < 4; ++n)
        c.insert(lineN(0, n, sets), kLineSize, false, &ev);
    EXPECT_TRUE(ev.empty());
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.access(lineN(0, 0, sets)));
    c.insert(lineN(0, 4, sets), kLineSize, false, &ev);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].line, lineN(0, 1, sets));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c({16 * 1024, 4, 1});
    const int sets = c.numSets();
    std::vector<Eviction> ev;
    c.insert(lineN(0, 0, sets), kLineSize, true, &ev);
    for (int n = 1; n <= 4; ++n)
        c.insert(lineN(0, n, sets), kLineSize, false, &ev);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_TRUE(ev[0].dirty);
    EXPECT_EQ(c.stats().get("dirty_evictions"), 1u);
}

TEST(Cache, SetDirtyAndInvalidate)
{
    Cache c({16 * 1024, 4, 1});
    std::vector<Eviction> ev;
    c.insert(0, kLineSize, false, &ev);
    EXPECT_TRUE(c.setDirty(0));
    Eviction out;
    EXPECT_TRUE(c.invalidate(0, &out));
    EXPECT_TRUE(out.dirty);
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.invalidate(0));
    EXPECT_FALSE(c.setDirty(0));
}

TEST(Cache, ConventionalChargesFullSlotRegardlessOfSize)
{
    Cache c({16 * 1024, 4, 1});
    std::vector<Eviction> ev;
    c.insert(0, 10, false, &ev);    // tiny compressed line
    EXPECT_EQ(c.occupiedBytes(), kLineSize);
}

TEST(CompressedCache, DoubleTagsHoldMoreCompressedLines)
{
    // 2x tags: 8 tags per set, byte budget 4 * kLineSize. Half-size
    // lines -> 8 fit.
    Cache c({16 * 1024, 4, 2});
    EXPECT_EQ(c.tagsPerSet(), 8);
    const int sets = c.numSets();
    std::vector<Eviction> ev;
    for (int n = 0; n < 8; ++n)
        c.insert(lineN(0, n, sets), kLineSize / 2, false, &ev);
    EXPECT_TRUE(ev.empty());
    for (int n = 0; n < 8; ++n)
        EXPECT_TRUE(c.contains(lineN(0, n, sets)));
}

TEST(CompressedCache, ByteBudgetStillEvicts)
{
    Cache c({16 * 1024, 4, 2});
    const int sets = c.numSets();
    std::vector<Eviction> ev;
    // Full-size lines: only 4 fit despite 8 tags.
    for (int n = 0; n < 5; ++n)
        c.insert(lineN(0, n, sets), kLineSize, false, &ev);
    EXPECT_EQ(ev.size(), 1u);
    EXPECT_LE(c.occupiedBytes(), c.setBudgetBytes() * c.numSets());
}

TEST(CompressedCache, MixedSizesPackTightly)
{
    Cache c({16 * 1024, 4, 4});
    const int sets = c.numSets();
    std::vector<Eviction> ev;
    // 16 tags, budget 4*kLineSize: sixteen quarter-size lines fit.
    for (int n = 0; n < 16; ++n)
        c.insert(lineN(0, n, sets), kLineSize / 4, false, &ev);
    EXPECT_TRUE(ev.empty());
    EXPECT_EQ(c.residentLines(), 16);
}

TEST(Cache, ReinsertUpdatesSizeInPlace)
{
    Cache c({16 * 1024, 4, 2});
    std::vector<Eviction> ev;
    c.insert(0, kLineSize, false, &ev);
    c.insert(0, 16, true, &ev);     // recompressed smaller, now dirty
    EXPECT_TRUE(ev.empty());
    EXPECT_EQ(c.residentLines(), 1);
    EXPECT_EQ(c.occupiedBytes(), 16);
    Eviction out;
    c.invalidate(0, &out);
    EXPECT_TRUE(out.dirty);
}

TEST(MdCache, SpatialLocalityAcrossCoveredRegion)
{
    MdCache md(8 * 1024, 4, 256);
    // First access to a 16KB region misses, subsequent ones hit.
    EXPECT_FALSE(md.access(0));
    for (int i = 1; i < 256; ++i)
        EXPECT_TRUE(md.access(static_cast<Addr>(i) * kLineSize));
    EXPECT_GT(md.hitRate(), 0.99);
}

TEST(MdCache, CapacityBoundsHitRate)
{
    MdCache md(2 * 1024, 4, 256);
    // Touch far more regions than the cache covers, twice: round two
    // still misses because round one evicted everything.
    const int regions = 4096;
    for (int round = 0; round < 2; ++round) {
        for (int r = 0; r < regions; ++r)
            md.access(static_cast<Addr>(r) * 256 * kLineSize);
    }
    EXPECT_LT(md.hitRate(), 0.1);
}

} // namespace
} // namespace caba
