/**
 * @file
 * Unit tests for the bit-level helpers every codec builds on.
 */
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "common/types.h"
#include "compress/bitstream.h"

namespace caba {
namespace {

TEST(Bitops, LoadStoreRoundTripAllWidths)
{
    Rng rng(1);
    std::uint8_t buf[8];
    for (int width : {1, 2, 4, 8}) {
        for (int trial = 0; trial < 1000; ++trial) {
            const std::uint64_t v =
                rng.next() & (width == 8 ? ~0ull
                                         : ((1ull << (8 * width)) - 1));
            storeLe(buf, width, v);
            EXPECT_EQ(loadLe(buf, width), v);
        }
    }
}

TEST(Bitops, FitsSignedBoundaries)
{
    EXPECT_TRUE(fitsSigned(127, 1));
    EXPECT_FALSE(fitsSigned(128, 1));
    EXPECT_TRUE(fitsSigned(-128, 1));
    EXPECT_FALSE(fitsSigned(-129, 1));
    EXPECT_TRUE(fitsSigned(32767, 2));
    EXPECT_FALSE(fitsSigned(32768, 2));
    EXPECT_TRUE(fitsSigned(-2147483648ll, 4));
    EXPECT_FALSE(fitsSigned(2147483648ll, 4));
    EXPECT_TRUE(fitsSigned(1ll << 62, 8));
}

TEST(Bitops, FitsUnsignedBoundaries)
{
    EXPECT_TRUE(fitsUnsigned(255, 1));
    EXPECT_FALSE(fitsUnsigned(256, 1));
    EXPECT_TRUE(fitsUnsigned(~0ull, 8));
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0xFF, 1), -1);
    EXPECT_EQ(signExtend(0x7F, 1), 127);
    EXPECT_EQ(signExtend(0x8000, 2), -32768);
    EXPECT_EQ(signExtend(0xFFFFFFFF, 4), -1);
}

TEST(Bitstream, RoundTripMixedWidths)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        BitWriter bw;
        std::vector<std::pair<std::uint32_t, int>> fields;
        for (int i = 0; i < 50; ++i) {
            const int bits = 1 + static_cast<int>(rng.below(32));
            const std::uint32_t v = static_cast<std::uint32_t>(
                rng.next() & ((bits == 32) ? ~0u : ((1u << bits) - 1)));
            fields.emplace_back(v, bits);
            bw.put(v, bits);
        }
        BitReader br(bw.bytes().data(),
                     static_cast<int>(bw.bytes().size()));
        for (const auto &[v, bits] : fields)
            EXPECT_EQ(br.get(bits), v);
    }
}

TEST(Bitstream, BitCountMatchesBytes)
{
    BitWriter bw;
    bw.put(0x5, 3);
    bw.put(0x1F, 5);
    EXPECT_EQ(bw.bitCount(), 8);
    EXPECT_EQ(bw.bytes().size(), 1u);
    bw.put(1, 1);
    EXPECT_EQ(bw.bytes().size(), 2u);
}

TEST(Types, AlignHelpers)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(kLineSize - 1), 0u);
    EXPECT_EQ(lineAddr(kLineSize), static_cast<Addr>(kLineSize));
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(divCeil(65, 32), 3u);
    EXPECT_EQ(divCeil(64, 32), 2u);
}

} // namespace
} // namespace caba
