/**
 * @file
 * End-to-end integration tests: full GPU simulations of small workloads
 * under every design point, checking the invariants the paper's results
 * rest on (completion, bandwidth ordering, CABA overhead ordering, data
 * integrity via round-trip verification).
 */
#include <gtest/gtest.h>

#include "harness/runner.h"

namespace caba {
namespace {

ExperimentOptions
smallOpts()
{
    ExperimentOptions o;
    o.scale = 1.0;      // descriptor iteration counts are already small
    o.verify = true;    // every compressed line round-trips exactly
    return o;
}

TEST(Integration, BaseRunsToCompletion)
{
    const RunResult r = runApp(findApp("PVC"), DesignConfig::base(),
                               smallOpts());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(r.breakdown.total(), 0u + r.breakdown.active +
              r.breakdown.mem_stall + r.breakdown.comp_stall +
              r.breakdown.data_stall + r.breakdown.idle);
}

TEST(Integration, AllDesignsCompleteAndAgreeOnPerWarpWork)
{
    // Regular (application) instructions per warp are design-invariant;
    // only assist instructions and occupancy (CABA reserves assist-warp
    // registers, Section 3.2.2) may differ.
    const AppDescriptor &app = findApp("PVC");
    const DesignConfig designs[] = {
        DesignConfig::base(), DesignConfig::hwMem(), DesignConfig::hw(),
        DesignConfig::caba(), DesignConfig::ideal()};
    ExperimentOptions o = smallOpts();
    std::uint64_t per_warp_base = 0;
    for (const DesignConfig &d : designs) {
        const RunResult r = runApp(app, d, o);
        EXPECT_GT(r.cycles, 0u) << d.name;
        Workload wl(app, o.scale);
        const int warps =
            wl.warpsPerSm(d.usesCaba() ? o.assist_regs : 0) * 15;
        const std::uint64_t per_warp =
            r.instructions / static_cast<std::uint64_t>(warps);
        if (per_warp_base == 0)
            per_warp_base = per_warp;
        EXPECT_EQ(per_warp, per_warp_base) << d.name;
    }
}

TEST(Integration, CompressionReducesDramBursts)
{
    const AppDescriptor &app = findApp("PVC");    // pointer data: BDI-good
    const RunResult base = runApp(app, DesignConfig::base(), smallOpts());
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    EXPECT_LT(caba.stats.get("dram_bursts"),
              base.stats.get("dram_bursts"));
    EXPECT_GT(caba.compression_ratio, 1.3);
}

TEST(Integration, CabaSpeedsUpBandwidthBoundApp)
{
    const AppDescriptor &app = findApp("PVC");
    const RunResult base = runApp(app, DesignConfig::base(), smallOpts());
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    EXPECT_LT(caba.cycles, base.cycles);
}

TEST(Integration, IdealIsAtLeastAsFastAsCaba)
{
    const AppDescriptor &app = findApp("PVC");
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    const RunResult ideal = runApp(app, DesignConfig::ideal(), smallOpts());
    // Ideal has no decompression overhead; allow a tiny tolerance for
    // second-order scheduling effects (the paper itself reports CABA
    // occasionally beating Ideal by < 3%, Section 6.1).
    EXPECT_LT(static_cast<double>(ideal.cycles),
              static_cast<double>(caba.cycles) * 1.05);
}

TEST(Integration, IncompressibleAppIsNotHurt)
{
    // Paper Section 5: apps without compressible data (sc, SCP) are not
    // degraded because assist warps are not triggered for them.
    const AppDescriptor &app = findApp("SCP");
    const RunResult base = runApp(app, DesignConfig::base(), smallOpts());
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    EXPECT_LT(static_cast<double>(caba.cycles),
              static_cast<double>(base.cycles) * 1.06);
}

TEST(Integration, AssistWarpsOnlyInCabaDesigns)
{
    const AppDescriptor &app = findApp("PVC");
    const RunResult hw = runApp(app, DesignConfig::hw(), smallOpts());
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    EXPECT_EQ(hw.stats.get("sm_assist_instructions"), 0u);
    EXPECT_GT(caba.stats.get("sm_assist_instructions"), 0u);
    EXPECT_GT(caba.stats.get("sm_caba_decompressions"), 0u);
    EXPECT_GT(caba.stats.get("awc_triggers"), 0u);
}

TEST(Integration, MdCacheOnlyUsedByCompressedMemoryDesigns)
{
    const AppDescriptor &app = findApp("MM");
    const RunResult base = runApp(app, DesignConfig::base(), smallOpts());
    const RunResult hw = runApp(app, DesignConfig::hwMem(), smallOpts());
    EXPECT_EQ(base.stats.get("part_md_lookups"), 0u);
    EXPECT_GT(hw.stats.get("part_md_lookups"), 0u);
}

TEST(Integration, BandwidthUtilizationDropsWithCompression)
{
    const AppDescriptor &app = findApp("PVC");
    const RunResult base = runApp(app, DesignConfig::base(), smallOpts());
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    EXPECT_GT(base.bw_utilization, caba.bw_utilization);
}

TEST(Integration, HalfBandwidthSlowsMemoryBoundApp)
{
    const AppDescriptor &app = findApp("PVC");
    ExperimentOptions o = smallOpts();
    const RunResult full = runApp(app, DesignConfig::base(), o);
    o.bw_scale = 0.5;
    const RunResult half = runApp(app, DesignConfig::base(), o);
    EXPECT_GT(half.cycles, full.cycles);
}

TEST(Integration, ComputeBoundAppInsensitiveToBandwidth)
{
    const AppDescriptor &app = findApp("NQU");
    ExperimentOptions o = smallOpts();
    const RunResult full = runApp(app, DesignConfig::base(), o);
    o.bw_scale = 2.0;
    const RunResult dbl = runApp(app, DesignConfig::base(), o);
    const double delta =
        std::abs(static_cast<double>(full.cycles) -
                 static_cast<double>(dbl.cycles)) /
        static_cast<double>(full.cycles);
    // "Little effect" (Section 2); the scaled-down runs leave some
    // cold-miss startup sensitivity, so allow a modest margin.
    EXPECT_LT(delta, 0.12);
}

TEST(Integration, EnergyDropsWithCaba)
{
    const AppDescriptor &app = findApp("PVC");
    const RunResult base = runApp(app, DesignConfig::base(), smallOpts());
    const RunResult caba = runApp(app, DesignConfig::caba(), smallOpts());
    EXPECT_LT(caba.energy.total, base.energy.total);
}

} // namespace
} // namespace caba
