/**
 * @file
 * Tests for caba-lint (tools/lint): every rule must fire on its
 * fixture with the expected count, annotations and whitelists must
 * suppress, the JSON report must be well-formed, and the real source
 * tree must lint clean against the committed (empty) baseline.
 *
 * Fixture files live in tools/lint/fixtures/ and are linted under
 * fake src/ paths so the src-only rules (iteration-order,
 * check-discipline, stat-hygiene) apply to them.
 */
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"
#include "mini_json.h"

#ifndef CABA_LINT_SOURCE_ROOT
#error "CABA_LINT_SOURCE_ROOT must be defined by the build"
#endif
#ifndef CABA_LINT_FIXTURE_DIR
#error "CABA_LINT_FIXTURE_DIR must be defined by the build"
#endif

namespace {

using caba::lint::Finding;
using caba::lint::SourceFile;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Loads a fixture and poses it as a file under src/. */
SourceFile
fixture(const std::string &name)
{
    SourceFile f;
    f.path = "src/" + name;
    f.text = slurp(std::string(CABA_LINT_FIXTURE_DIR) + "/" + name);
    return f;
}

std::map<std::string, int>
countByRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> counts;
    for (const Finding &f : findings)
        ++counts[f.rule];
    return counts;
}

TEST(Lint, DeterminismClockAndRandSources)
{
    auto findings = caba::lint::run({fixture("det_clocks.cc")});
    EXPECT_EQ(findings.size(), 7u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "determinism");
        EXPECT_EQ(f.file, "src/det_clocks.cc");
        EXPECT_GT(f.line, 0);
    }
}

TEST(Lint, DeterminismPointerSortPredicates)
{
    auto findings = caba::lint::run({fixture("det_ptr_sort.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "determinism");
        EXPECT_NE(f.message.find("pointer"), std::string::npos)
            << f.message;
    }
}

TEST(Lint, DeterminismWhitelistSuppresses)
{
    // The same content under a whitelisted path produces no findings.
    SourceFile f = fixture("det_clocks.cc");
    f.path = "src/common/self_profile.cc";
    EXPECT_TRUE(caba::lint::run({f}).empty());
}

TEST(Lint, IterationOrderUnorderedRangeFor)
{
    auto findings = caba::lint::run({fixture("iter_unordered.cc")});
    ASSERT_EQ(findings.size(), 3u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "iteration-order");
    // Annotated loops (lines 39 and 43) must not appear.
    for (const Finding &f : findings) {
        EXPECT_NE(f.line, 39);
        EXPECT_NE(f.line, 43);
    }
}

TEST(Lint, IterationOrderOnlyEnforcedInSrc)
{
    // tests/ may iterate unordered containers freely.
    SourceFile f = fixture("iter_unordered.cc");
    f.path = "tests/iter_unordered.cc";
    EXPECT_TRUE(caba::lint::run({f}).empty());
}

TEST(Lint, EnvAccessOutsideRegistry)
{
    auto findings = caba::lint::run({fixture("env_direct.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "env-access");
}

TEST(Lint, EnvAccessAllowedInRegistry)
{
    SourceFile f = fixture("env_direct.cc");
    f.path = "src/common/env.cc";
    EXPECT_TRUE(caba::lint::run({f}).empty());
}

TEST(Lint, CheckDisciplineBareAssert)
{
    auto findings = caba::lint::run({fixture("assert_bare.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "check-discipline");
        EXPECT_NE(f.message.find("CABA_CHECK"), std::string::npos);
    }
}

TEST(Lint, StatHygiene)
{
    auto findings = caba::lint::run({fixture("stats_bad.cc")});
    ASSERT_EQ(findings.size(), 4u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "stat-hygiene");
}

TEST(Lint, ExperimentRegistryCaseAndDuplicates)
{
    auto findings = caba::lint::run({fixture("exp_registry.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "experiment-registry");
    EXPECT_NE(findings[0].message.find("snake_case"), std::string::npos)
        << findings[0].message;
    EXPECT_NE(findings[1].message.find("duplicate"), std::string::npos)
        << findings[1].message;
}

TEST(Lint, ExperimentRegistryCrossFileDuplicate)
{
    // The uniqueness check spans files, and the finding lands on the
    // lexicographically later file regardless of input order.
    SourceFile a{"bench/a.cc",
                 "CABA_REGISTER_EXPERIMENT(shared_name)\n{\n}\n"};
    SourceFile b{"bench/b.cc",
                 "CABA_REGISTER_EXPERIMENT(shared_name)\n{\n}\n"};
    for (const auto &files :
         {std::vector<SourceFile>{a, b}, std::vector<SourceFile>{b, a}}) {
        auto findings = caba::lint::run(files);
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].rule, "experiment-registry");
        EXPECT_EQ(findings[0].file, "bench/b.cc");
        EXPECT_NE(findings[0].message.find("bench/a.cc"),
                  std::string::npos)
            << findings[0].message;
    }
}

TEST(Lint, CleanFixtureHasNoFindings)
{
    EXPECT_TRUE(caba::lint::run({fixture("clean.cc")}).empty());
}

TEST(Lint, FindingsAreSortedAndStable)
{
    std::vector<SourceFile> files = {fixture("stats_bad.cc"),
                                     fixture("det_clocks.cc")};
    auto a = caba::lint::run(files);
    std::swap(files[0], files[1]);
    auto b = caba::lint::run(files);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].rule, b[i].rule);
        EXPECT_EQ(a[i].file, b[i].file);
        EXPECT_EQ(a[i].line, b[i].line);
        EXPECT_EQ(a[i].message, b[i].message);
    }
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].file, a[i].file);
}

TEST(Lint, JsonReportShape)
{
    std::vector<SourceFile> files;
    for (const char *name :
         {"det_clocks.cc", "det_ptr_sort.cc", "iter_unordered.cc",
          "env_direct.cc", "assert_bare.cc", "stats_bad.cc",
          "exp_registry.cc", "clean.cc"})
        files.push_back(fixture(name));
    auto findings = caba::lint::run(files);
    auto by_rule = countByRule(findings);
    EXPECT_EQ(by_rule["determinism"], 9);
    EXPECT_EQ(by_rule["iteration-order"], 3);
    EXPECT_EQ(by_rule["env-access"], 2);
    EXPECT_EQ(by_rule["check-discipline"], 2);
    EXPECT_EQ(by_rule["stat-hygiene"], 4);
    EXPECT_EQ(by_rule["experiment-registry"], 2);

    const std::string json = caba::lint::toJson(findings, {});
    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(json, &doc)) << json;
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string, "caba-lint-v1");
    const minijson::Value *counts = doc.find("counts");
    ASSERT_NE(counts, nullptr);
    auto count_of = [&](const char *key) {
        const minijson::Value *v = counts->find(key);
        return v && v->isNumber() ? static_cast<int>(v->number) : -1;
    };
    EXPECT_EQ(count_of("determinism"), 9);
    EXPECT_EQ(count_of("iteration-order"), 3);
    EXPECT_EQ(count_of("env-access"), 2);
    EXPECT_EQ(count_of("check-discipline"), 2);
    EXPECT_EQ(count_of("stat-hygiene"), 4);
    EXPECT_EQ(count_of("experiment-registry"), 2);
    EXPECT_EQ(count_of("total"), 22);
    EXPECT_EQ(count_of("baselined"), 0);
    const minijson::Value *arr = doc.find("findings");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_EQ(arr->array.size(), findings.size());
    for (std::size_t i = 0; i < arr->array.size(); ++i) {
        const minijson::Value &e = arr->array[i];
        ASSERT_TRUE(e.isObject());
        EXPECT_EQ(e.find("rule")->string, findings[i].rule);
        EXPECT_EQ(e.find("file")->string, findings[i].file);
        EXPECT_EQ(static_cast<int>(e.find("line")->number),
                  findings[i].line);
        EXPECT_EQ(e.find("message")->string, findings[i].message);
        EXPECT_FALSE(e.find("baselined")->boolean);
    }
}

TEST(Lint, BaselineRoundTrip)
{
    auto findings = caba::lint::run({fixture("env_direct.cc")});
    ASSERT_EQ(findings.size(), 2u);
    // A report can be fed back as a baseline; all findings then match
    // even if line numbers drift.
    const std::string json = caba::lint::toJson(findings, {});
    std::vector<Finding> baseline;
    std::string err;
    ASSERT_TRUE(caba::lint::parseBaseline(json, &baseline, &err)) << err;
    ASSERT_EQ(baseline.size(), 2u);
    for (Finding &f : baseline)
        f.line += 100; // lines are not part of the match key
    std::vector<Finding> fresh, matched;
    caba::lint::applyBaseline(findings, baseline, &fresh, &matched);
    EXPECT_TRUE(fresh.empty());
    EXPECT_EQ(matched.size(), 2u);
}

TEST(Lint, SourceTreeIsClean)
{
    std::vector<Finding> findings;
    std::string err;
    ASSERT_TRUE(caba::lint::runTree(CABA_LINT_SOURCE_ROOT, &findings, &err))
        << err;

    std::vector<Finding> baseline;
    const std::string baseline_path =
        std::string(CABA_LINT_SOURCE_ROOT) + "/tools/lint/baseline.json";
    ASSERT_TRUE(
        caba::lint::parseBaseline(slurp(baseline_path), &baseline, &err))
        << err;
    EXPECT_TRUE(baseline.empty())
        << "the committed baseline should stay empty; fix findings "
           "instead of baselining them";

    std::vector<Finding> fresh, matched;
    caba::lint::applyBaseline(findings, baseline, &fresh, &matched);
    EXPECT_TRUE(fresh.empty()) << caba::lint::toText(fresh);
}

} // namespace
